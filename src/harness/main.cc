/**
 * @file
 * pargpu_harness: the observability-first simulator driver. Renders any
 * game workload under any design scenario and exports the run as a
 * versioned metrics document (JSON/CSV, see docs/METRICS.md) and an
 * optional chrome://tracing profile.
 *
 * Usage:
 *   pargpu_harness [--game hl2|doom3|grid|nfs|stal|ut3|wolf|rbench]
 *                  [--scenario baseline|noaf|n|ntxds|patu]
 *                  [--threshold T] [--width W] [--height H] [--frames N]
 *                  [--tc-scale S] [--llc-scale S] [--max-aniso A]
 *                  [--table-entries E] [--threads N]
 *                  [--reference baseline|noaf|n|ntxds|patu]
 *                  [--metrics-json FILE] [--metrics-csv FILE]
 *                  [--trace-out FILE] [--quiet]
 *
 * --reference renders a second run under the given scenario and reports
 * MSSIM of the primary run against it (the paper's quality axis).
 * --trace-out enables the runtime trace collector around the run and
 * writes a JSON trace loadable in chrome://tracing / Perfetto.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/threadpool.hh"
#include "common/tracing.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"

using namespace pargpu;

namespace
{

struct Options
{
    GameId game = GameId::HL2;
    RunConfig run;
    int width = 640;
    int height = 512;
    int frames = 2;
    bool quiet = false;
    bool have_reference = false;
    DesignScenario reference = DesignScenario::Baseline;
    std::string metrics_json;
    std::string metrics_csv;
    std::string trace_out;
};

GameId
parseGame(const std::string &v)
{
    if (v == "hl2") return GameId::HL2;
    if (v == "doom3") return GameId::Doom3;
    if (v == "grid") return GameId::Grid;
    if (v == "nfs") return GameId::Nfs;
    if (v == "stal") return GameId::Stalker;
    if (v == "ut3") return GameId::Ut3;
    if (v == "wolf") return GameId::Wolf;
    if (v == "rbench") return GameId::RBench;
    std::fprintf(stderr, "unknown game '%s'\n", v.c_str());
    std::exit(2);
}

DesignScenario
parseScenario(const std::string &v)
{
    if (v == "baseline") return DesignScenario::Baseline;
    if (v == "noaf") return DesignScenario::NoAF;
    if (v == "n") return DesignScenario::AfSsimN;
    if (v == "ntxds") return DesignScenario::AfSsimNTxds;
    if (v == "patu") return DesignScenario::Patu;
    std::fprintf(stderr, "unknown scenario '%s'\n", v.c_str());
    std::exit(2);
}

void
usage()
{
    std::printf(
        "pargpu_harness: render a workload and export structured "
        "metrics\n"
        "  --game hl2|doom3|grid|nfs|stal|ut3|wolf|rbench   workload\n"
        "  --scenario baseline|noaf|n|ntxds|patu            design\n"
        "  --threshold T     unified AF-SSIM threshold (default 0.4)\n"
        "  --width W --height H --frames N                  viewport\n"
        "  --tc-scale S --llc-scale S                       cache scaling\n"
        "  --max-aniso A --table-entries E                  PATU knobs\n"
        "  --threads N       frame-level parallelism (0 = default)\n"
        "  --reference SCEN  also render SCEN, report MSSIM against it\n"
        "  --metrics-json F  write the metrics document (schema v%d)\n"
        "  --metrics-csv F   write per-frame stats as CSV\n"
        "  --trace-out F     write a chrome://tracing JSON profile\n"
        "  --quiet           suppress the human-readable summary\n"
        "See docs/METRICS.md for the schema and every metric name.\n",
        kMetricsSchemaVersion);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--game") {
            o.game = parseGame(need("--game"));
        } else if (a == "--scenario") {
            o.run.scenario = parseScenario(need("--scenario"));
        } else if (a == "--threshold") {
            o.run.threshold =
                static_cast<float>(std::atof(need("--threshold").c_str()));
        } else if (a == "--width") {
            o.width = std::atoi(need("--width").c_str());
        } else if (a == "--height") {
            o.height = std::atoi(need("--height").c_str());
        } else if (a == "--frames") {
            o.frames = std::atoi(need("--frames").c_str());
        } else if (a == "--tc-scale") {
            o.run.tc_scale =
                static_cast<unsigned>(std::atoi(need("--tc-scale").c_str()));
        } else if (a == "--llc-scale") {
            o.run.llc_scale = static_cast<unsigned>(
                std::atoi(need("--llc-scale").c_str()));
        } else if (a == "--max-aniso") {
            o.run.max_aniso = std::atoi(need("--max-aniso").c_str());
        } else if (a == "--table-entries") {
            o.run.table_entries =
                std::atoi(need("--table-entries").c_str());
        } else if (a == "--threads") {
            o.run.threads = std::atoi(need("--threads").c_str());
            if (o.run.threads > 0)
                ThreadPool::setDefaultThreads(
                    static_cast<unsigned>(o.run.threads));
        } else if (a == "--reference") {
            o.have_reference = true;
            o.reference = parseScenario(need("--reference"));
        } else if (a == "--metrics-json") {
            o.metrics_json = need("--metrics-json");
        } else if (a == "--metrics-csv") {
            o.metrics_csv = need("--metrics-csv");
        } else if (a == "--trace-out") {
            o.trace_out = need("--trace-out");
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            std::exit(2);
        }
    }
    if (o.width <= 0 || o.height <= 0 || o.frames <= 0) {
        std::fprintf(stderr, "viewport and frame count must be positive\n");
        std::exit(2);
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    // The quality axis needs rendered images on both sides.
    o.run.keep_images = o.have_reference;

    GameTrace trace = buildGameTrace(o.game, o.width, o.height, o.frames);

    if (!o.trace_out.empty())
        trace::Tracing::enable();

    RunResult run = runTrace(trace, o.run);

    double mssim = -1.0;
    if (o.have_reference) {
        RunConfig ref_cfg = o.run;
        ref_cfg.scenario = o.reference;
        RunResult ref = runTrace(trace, ref_cfg);
        mssim = run.mssimAgainst(ref.images);
    }

    if (!o.trace_out.empty()) {
        trace::Tracing::disable();
        if (!trace::Tracing::writeFile(o.trace_out)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         o.trace_out.c_str());
            return 1;
        }
    }

    RunMetadata meta;
    meta.tool = "pargpu_harness";
    meta.workload = trace.name;
    meta.width = o.width;
    meta.height = o.height;
    meta.frames = o.frames;

    if (!o.metrics_json.empty() &&
        !writeMetricsJson(o.metrics_json, meta, o.run, run, mssim)) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     o.metrics_json.c_str());
        return 1;
    }
    if (!o.metrics_csv.empty() &&
        !writeMetricsCsv(o.metrics_csv, meta, o.run, run)) {
        std::fprintf(stderr, "cannot write metrics CSV to %s\n",
                     o.metrics_csv.c_str());
        return 1;
    }

    if (!o.quiet) {
        std::printf("workload   : %s (%d frames)\n", trace.name.c_str(),
                    o.frames);
        std::printf("scenario   : %s, threshold %.2f\n",
                    scenarioMetricName(o.run.scenario), o.run.threshold);
        std::printf("avg cycles : %.0f (%.2f fps @1GHz)\n", run.avg_cycles,
                    run.avg_cycles > 0.0 ? 1e9 / run.avg_cycles : 0.0);
        std::printf("energy     : %.3f mJ (%.2f W avg)\n",
                    run.total_energy_nj * 1e-6, run.avg_power_w);
        if (mssim >= 0.0)
            std::printf("mssim      : %.4f (vs %s)\n", mssim,
                        scenarioMetricName(o.reference));
        if (!o.metrics_json.empty())
            std::printf("metrics    : %s\n", o.metrics_json.c_str());
        if (!o.metrics_csv.empty())
            std::printf("csv        : %s\n", o.metrics_csv.c_str());
        if (!o.trace_out.empty())
            std::printf("trace      : %s (%zu events)\n",
                        o.trace_out.c_str(),
                        trace::Tracing::eventCount());
    }
    return 0;
}
