/**
 * @file
 * pargpu_harness: the observability-first simulator driver. Renders any
 * game workload under any design scenario and exports the run as a
 * versioned metrics document (JSON/CSV, see docs/METRICS.md) and an
 * optional chrome://tracing profile.
 *
 * Flags come in three families (see docs/REPRODUCING.md for the full
 * mapping):
 *   --run-*      the experimental condition (workload, scenario, knobs)
 *   --metrics-*  structured metric exports
 *   --trace-*    chrome://tracing profile capture
 *
 * Usage:
 *   pargpu_harness [--run-game hl2|doom3|grid|nfs|stal|ut3|wolf|rbench]
 *                  [--run-scenario baseline|noaf|n|ntxds|patu]
 *                  [--run-threshold T] [--run-width W] [--run-height H]
 *                  [--run-frames N] [--run-tc-scale S] [--run-llc-scale S]
 *                  [--run-max-aniso A] [--run-table-entries E]
 *                  [--run-threads N] [--run-tile-parallel]
 *                  [--run-clusters C]
 *                  [--run-filter-policy patu|stf_uniform|stf_blue|
 *                                       stf_weighted|filter_after_shading]
 *                  [--run-reference baseline|noaf|n|ntxds|patu]
 *                  [--metrics-json FILE] [--metrics-csv FILE]
 *                  [--trace-out FILE] [--quiet]
 *
 * The pre-family spellings (--game, --scenario, --threshold, --width,
 * --height, --frames, --tc-scale, --llc-scale, --max-aniso,
 * --table-entries, --threads, --reference) still work as deprecated
 * aliases; the first use of each spelling prints a one-line warning on
 * stderr (once per process).
 *
 * --run-reference renders a second run under the given scenario and
 * reports MSSIM of the primary run against it (the paper's quality axis).
 * --trace-out enables the runtime trace collector around the run and
 * writes a JSON trace loadable in chrome://tracing / Perfetto.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/threadpool.hh"
#include "common/tracing.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "harness/serve.hh"

using namespace pargpu;

namespace
{

struct Options
{
    GameId game = GameId::HL2;
    RunConfig run;
    int width = 640;
    int height = 512;
    int frames = 2;
    bool quiet = false;
    bool have_reference = false;
    DesignScenario reference = DesignScenario::Baseline;
    std::string metrics_json;
    std::string metrics_csv;
    std::string trace_out;
};

GameId
parseGame(const std::string &v)
{
    GameId id;
    if (parseGameName(v, id))
        return id;
    std::fprintf(stderr, "unknown game '%s'\n", v.c_str());
    std::exit(2);
}

DesignScenario
parseScenario(const std::string &v)
{
    DesignScenario s;
    if (parseScenarioName(v, s))
        return s;
    std::fprintf(stderr, "unknown scenario '%s'\n", v.c_str());
    std::exit(2);
}

FilterPolicyId
parseFilterPolicyOrDie(const std::string &v)
{
    FilterPolicyId id;
    if (parseFilterPolicy(v, id))
        return id;
    std::fprintf(stderr, "unknown filter policy '%s' (valid:", v.c_str());
    for (const FilterPolicyDesc &d : filterPolicyRegistry())
        std::fprintf(stderr, " %s", d.name);
    std::fprintf(stderr, ")\n");
    std::exit(2);
}

void
usage()
{
    std::printf(
        "pargpu_harness: render a workload and export structured "
        "metrics\n"
        "run condition:\n"
        "  --run-game hl2|doom3|grid|nfs|stal|ut3|wolf|rbench\n"
        "  --run-scenario baseline|noaf|n|ntxds|patu\n"
        "  --run-threshold T   unified AF-SSIM threshold (default 0.4)\n"
        "  --run-width W --run-height H --run-frames N      viewport\n"
        "  --run-tc-scale S --run-llc-scale S               cache scaling\n"
        "  --run-max-aniso A --run-table-entries E          PATU knobs\n"
        "  --run-threads N     frame-level parallelism (0 = default)\n"
        "  --run-tile-parallel render tiles in parallel across clusters\n"
        "                      (bit-identical; PARGPU_TILE_PARALLEL=1\n"
        "                      forces it on)\n"
        "  --run-clusters C    shader clusters (0 = Table I default)\n"
        "  --run-filter-policy patu|stf_uniform|stf_blue|stf_weighted|\n"
        "                      filter_after_shading   texture filtering\n"
        "                      strategy (docs/FILTERING.md; default patu,\n"
        "                      or PARGPU_FILTER_POLICY when set)\n"
        "  --run-reference S   also render S, report MSSIM against it\n"
        "exports:\n"
        "  --metrics-json F    write the metrics document (schema v%d)\n"
        "  --metrics-csv F     write per-frame stats as CSV\n"
        "  --trace-out F       write a chrome://tracing JSON profile\n"
        "  --quiet             suppress the human-readable summary\n"
        "Unprefixed spellings of the run flags (--game, --scenario, ...)\n"
        "are deprecated aliases; see docs/REPRODUCING.md.\n"
        "See docs/METRICS.md for the schema and every metric name.\n",
        kMetricsSchemaVersion);
}

/**
 * Map a deprecated pre-family spelling to its canonical --run-* form,
 * warning once per spelling; canonical and unknown flags pass through.
 */
std::string
canonicalFlag(const std::string &flag)
{
    static const struct
    {
        const char *old_name;
        const char *new_name;
    } kAliases[] = {
        {"--game", "--run-game"},
        {"--scenario", "--run-scenario"},
        {"--threshold", "--run-threshold"},
        {"--width", "--run-width"},
        {"--height", "--run-height"},
        {"--frames", "--run-frames"},
        {"--tc-scale", "--run-tc-scale"},
        {"--llc-scale", "--run-llc-scale"},
        {"--max-aniso", "--run-max-aniso"},
        {"--table-entries", "--run-table-entries"},
        {"--threads", "--run-threads"},
        {"--reference", "--run-reference"},
    };
    static bool warned[sizeof(kAliases) / sizeof(kAliases[0])] = {};
    for (std::size_t k = 0; k < sizeof(kAliases) / sizeof(kAliases[0]);
         ++k) {
        if (flag == kAliases[k].old_name) {
            if (!warned[k]) {
                warned[k] = true;
                std::fprintf(
                    stderr,
                    "pargpu_harness: '%s' is deprecated, use '%s'\n",
                    kAliases[k].old_name, kAliases[k].new_name);
            }
            return kAliases[k].new_name;
        }
    }
    return flag;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = canonicalFlag(argv[i]);
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--run-game") {
            o.game = parseGame(need("--run-game"));
        } else if (a == "--run-scenario") {
            o.run.scenario = parseScenario(need("--run-scenario"));
        } else if (a == "--run-threshold") {
            o.run.threshold = static_cast<float>(
                std::atof(need("--run-threshold").c_str()));
        } else if (a == "--run-width") {
            o.width = std::atoi(need("--run-width").c_str());
        } else if (a == "--run-height") {
            o.height = std::atoi(need("--run-height").c_str());
        } else if (a == "--run-frames") {
            o.frames = std::atoi(need("--run-frames").c_str());
        } else if (a == "--run-tc-scale") {
            o.run.tc_scale = static_cast<unsigned>(
                std::atoi(need("--run-tc-scale").c_str()));
        } else if (a == "--run-llc-scale") {
            o.run.llc_scale = static_cast<unsigned>(
                std::atoi(need("--run-llc-scale").c_str()));
        } else if (a == "--run-max-aniso") {
            o.run.max_aniso = std::atoi(need("--run-max-aniso").c_str());
        } else if (a == "--run-table-entries") {
            o.run.table_entries =
                std::atoi(need("--run-table-entries").c_str());
        } else if (a == "--run-threads") {
            o.run.threads = std::atoi(need("--run-threads").c_str());
        } else if (a == "--run-tile-parallel") {
            o.run.tile_parallel = true;
        } else if (a == "--run-clusters") {
            o.run.clusters = std::atoi(need("--run-clusters").c_str());
        } else if (a == "--run-filter-policy") {
            o.run.filter_policy =
                parseFilterPolicyOrDie(need("--run-filter-policy"));
        } else if (a == "--run-reference") {
            o.have_reference = true;
            o.reference = parseScenario(need("--run-reference"));
        } else if (a == "--metrics-json") {
            o.metrics_json = need("--metrics-json");
        } else if (a == "--metrics-csv") {
            o.metrics_csv = need("--metrics-csv");
        } else if (a == "--trace-out") {
            o.trace_out = need("--trace-out");
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            std::exit(2);
        }
    }
    if (o.width <= 0 || o.height <= 0 || o.frames <= 0) {
        std::fprintf(stderr, "viewport and frame count must be positive\n");
        std::exit(2);
    }
    // Typed validation instead of the old behavior (silent acceptance,
    // then a crash or clamp deep inside the run). Report every violation,
    // not just the first — the CLI is interactive.
    const std::vector<ConfigError> errors = o.run.validate();
    if (!errors.empty()) {
        for (ConfigError e : errors)
            std::fprintf(stderr, "invalid option: %s\n",
                         configErrorMessage(e));
        std::exit(2);
    }
    if (o.run.threads > 0)
        ThreadPool::setDefaultThreads(
            static_cast<unsigned>(o.run.threads));
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    // The quality axis needs rendered images on both sides.
    o.run.keep_images = o.have_reference;

    // Constructing the Session takes the one validated pass over every
    // PARGPU_* override (envOverrides()), after parseArgs() so a
    // --run-threads override is already in effect; both runs below then
    // execute against the same pinned environment.
    Session session;

    GameTrace trace = buildGameTrace(o.game, o.width, o.height, o.frames);

    if (!o.trace_out.empty())
        trace::Tracing::enable();

    RunResult run = session.run(trace, o.run);

    double mssim = -1.0;
    if (o.have_reference) {
        RunConfig ref_cfg = o.run;
        ref_cfg.scenario = o.reference;
        // The reference is the quality yardstick: always exact filtering
        // under the requested scenario, never an approximating policy
        // (comparing an STF run against its own noise would report a
        // meaningless MSSIM of 1).
        ref_cfg.filter_policy = FilterPolicyId::Patu;
        RunResult ref = session.run(trace, ref_cfg);
        mssim = run.mssimAgainst(ref.images);
    }

    if (!o.trace_out.empty()) {
        trace::Tracing::disable();
        if (!trace::Tracing::writeFile(o.trace_out)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         o.trace_out.c_str());
            return 1;
        }
    }

    RunMetadata meta;
    meta.tool = "pargpu_harness";
    meta.workload = trace.name;
    meta.width = o.width;
    meta.height = o.height;
    meta.frames = o.frames;

    if (!o.metrics_json.empty() &&
        !writeMetricsJson(o.metrics_json, meta, o.run, run, mssim)) {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     o.metrics_json.c_str());
        return 1;
    }
    if (!o.metrics_csv.empty() &&
        !writeMetricsCsv(o.metrics_csv, meta, o.run, run)) {
        std::fprintf(stderr, "cannot write metrics CSV to %s\n",
                     o.metrics_csv.c_str());
        return 1;
    }

    if (!o.quiet) {
        std::printf("workload   : %s (%d frames)\n", trace.name.c_str(),
                    o.frames);
        std::printf("scenario   : %s, threshold %.2f\n",
                    scenarioMetricName(o.run.scenario), o.run.threshold);
        std::printf("policy     : %s\n",
                    filterPolicyName(o.run.filter_policy));
        std::printf("avg cycles : %.0f (%.2f fps @1GHz)\n", run.avg_cycles,
                    run.avg_cycles > 0.0 ? 1e9 / run.avg_cycles : 0.0);
        std::printf("energy     : %.3f mJ (%.2f W avg)\n",
                    run.total_energy_nj * 1e-6, run.avg_power_w);
        if (mssim >= 0.0)
            std::printf("mssim      : %.4f (vs %s)\n", mssim,
                        scenarioMetricName(o.reference));
        if (!o.metrics_json.empty())
            std::printf("metrics    : %s\n", o.metrics_json.c_str());
        if (!o.metrics_csv.empty())
            std::printf("csv        : %s\n", o.metrics_csv.c_str());
        if (!o.trace_out.empty())
            std::printf("trace      : %s (%zu events)\n",
                        o.trace_out.c_str(),
                        trace::Tracing::eventCount());
    }
    return 0;
}
