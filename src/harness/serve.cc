#include "harness/serve.hh"

#include <istream>
#include <ostream>

#include "harness/metrics.hh"

namespace pargpu
{

namespace
{

/** Serve protocol schema version (docs/SERVE.md; bumped on change). */
constexpr int kServeSchemaVersion = 1;

/** A response skeleton carrying @p status and the request's echoed id. */
Json
responseFor(const Json &request, const Status &status)
{
    Json r = Json::object();
    r.set("status", Json{statusCodeName(status.code)});
    if (!status.ok())
        r.set("message", Json{status.message});
    if (request.has("id"))
        r.set("id", request["id"]);
    return r;
}

/** Integer-valued number member check (rejects 1.5 for "width"). */
bool
intMember(const Json &j, double &out)
{
    if (!j.isNumber())
        return false;
    out = j.number();
    return out == static_cast<double>(static_cast<long long>(out));
}

/** Full metrics document for one finished run on @p trace. */
Json
runMetrics(const std::string &key, const GameTrace &trace,
           const RunConfig &config, const RunResult &result)
{
    RunMetadata meta;
    meta.tool = "pargpu_serve";
    meta.workload = key;
    meta.width = trace.width;
    meta.height = trace.height;
    meta.frames = static_cast<int>(trace.cameras.size());
    return metricsJson(meta, config, result);
}

} // namespace

bool
parseGameName(const std::string &name, GameId &out)
{
    if (name == "hl2") out = GameId::HL2;
    else if (name == "doom3") out = GameId::Doom3;
    else if (name == "grid") out = GameId::Grid;
    else if (name == "nfs") out = GameId::Nfs;
    else if (name == "stal") out = GameId::Stalker;
    else if (name == "ut3") out = GameId::Ut3;
    else if (name == "wolf") out = GameId::Wolf;
    else if (name == "rbench") out = GameId::RBench;
    else return false;
    return true;
}

bool
parseScenarioName(const std::string &name, DesignScenario &out)
{
    if (name == "baseline") out = DesignScenario::Baseline;
    else if (name == "noaf") out = DesignScenario::NoAF;
    else if (name == "n") out = DesignScenario::AfSsimN;
    else if (name == "ntxds") out = DesignScenario::AfSsimNTxds;
    else if (name == "patu") out = DesignScenario::Patu;
    else return false;
    return true;
}

Status
parseRunConfigJson(const Json &j, RunConfig &out)
{
    if (!j.isObject())
        return Status::fail(StatusCode::InvalidRequest,
                            "config must be an object");
    for (const auto &kv : j.members()) {
        const std::string &key = kv.first;
        const Json &v = kv.second;
        double n = 0.0;
        if (key == "scenario") {
            if (!v.isString() || !parseScenarioName(v.str(), out.scenario))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.scenario: unknown scenario '" +
                                        v.str() + "'");
        } else if (key == "threshold") {
            if (!v.isNumber())
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.threshold must be a number");
            out.threshold = static_cast<float>(v.number());
        } else if (key == "tc_scale") {
            if (!intMember(v, n) || n < 0)
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.tc_scale must be a "
                                    "non-negative integer");
            out.tc_scale = static_cast<unsigned>(n);
        } else if (key == "llc_scale") {
            if (!intMember(v, n) || n < 0)
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.llc_scale must be a "
                                    "non-negative integer");
            out.llc_scale = static_cast<unsigned>(n);
        } else if (key == "max_aniso") {
            if (!intMember(v, n))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.max_aniso must be an integer");
            out.max_aniso = static_cast<int>(n);
        } else if (key == "keep_images") {
            if (!v.isBool())
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.keep_images must be a bool");
            out.keep_images = v.boolean();
        } else if (key == "table_entries") {
            if (!intMember(v, n))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.table_entries must be an "
                                    "integer");
            out.table_entries = static_cast<int>(n);
        } else if (key == "threads") {
            if (!intMember(v, n))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.threads must be an integer");
            out.threads = static_cast<int>(n);
        } else if (key == "tile_parallel") {
            if (!v.isBool())
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.tile_parallel must be a bool");
            out.tile_parallel = v.boolean();
        } else if (key == "clusters") {
            if (!intMember(v, n))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.clusters must be an integer");
            out.clusters = static_cast<int>(n);
        } else if (key == "filter_policy") {
            FilterPolicyId id;
            if (!v.isString() || !parseFilterPolicy(v.str(), id))
                return Status::fail(StatusCode::InvalidRequest,
                                    "config.filter_policy: unknown "
                                    "policy '" + v.str() + "'");
            out.filter_policy = id;
        } else {
            return Status::fail(StatusCode::InvalidRequest,
                                "config." + key + ": unknown member");
        }
    }
    return Status::success();
}

ServeLoop::ServeLoop(std::istream &in, std::ostream &out,
                     ServeOptions options)
    : session_(SessionOptions{options.job_workers}), in_(in), out_(out)
{
}

bool
ServeLoop::readFrame(std::istream &in, std::string &payload,
                     std::string *error)
{
    if (error != nullptr)
        error->clear();
    std::string header;
    if (!std::getline(in, header)) {
        // Clean EOF between frames; anything unread would have produced
        // a header line first.
        return false;
    }
    std::size_t length = 0;
    if (header.empty() ||
        header.find_first_not_of("0123456789") != std::string::npos) {
        if (error != nullptr)
            *error = "malformed frame header '" + header + "'";
        return false;
    }
    for (char c : header) {
        length = length * 10 + static_cast<std::size_t>(c - '0');
        if (length > kMaxFrameBytes) {
            if (error != nullptr)
                *error = "frame exceeds " +
                         std::to_string(kMaxFrameBytes) + " bytes";
            return false;
        }
    }
    payload.resize(length);
    if (length > 0 &&
        !in.read(payload.data(), static_cast<std::streamsize>(length))) {
        if (error != nullptr)
            *error = "truncated frame payload";
        return false;
    }
    return true;
}

void
ServeLoop::writeFrame(std::ostream &out, const std::string &payload)
{
    out << payload.size() << "\n" << payload;
    out.flush();
}

int
ServeLoop::run()
{
    std::string payload;
    for (;;) {
        std::string frame_error;
        if (!readFrame(in_, payload, &frame_error)) {
            if (frame_error.empty())
                return 0; // Clean EOF: client closed the request stream.
            Json err = Json::object();
            err.set("status",
                    Json{statusCodeName(StatusCode::IoError)});
            err.set("message", Json{frame_error});
            writeFrame(out_, err.dump());
            return 1;
        }
        std::string parse_error;
        Json request = Json::parse(payload, &parse_error);
        if (!request.isObject()) {
            Json err = responseFor(
                Json::object(),
                Status::fail(StatusCode::InvalidRequest,
                             parse_error.empty()
                                 ? "request must be a JSON object"
                                 : "bad JSON: " + parse_error));
            writeFrame(out_, err.dump());
            continue;
        }
        if (request["op"].str() == "sweep") {
            handleSweep(request);
            continue;
        }
        Json response = handle(request);
        writeFrame(out_, response.dump());
        if (shutdown_)
            return 0;
    }
}

Json
ServeLoop::handle(const Json &request)
{
    const std::string op = request["op"].str();

    if (op == "ping") {
        Json r = responseFor(request, Status::success());
        r.set("type", Json{"pong"});
        r.set("schema", Json{"pargpu-serve"});
        r.set("schema_version", Json{kServeSchemaVersion});
        return r;
    }

    if (op == "load") {
        GameId game;
        double w = 0.0, h = 0.0, frames = 0.0;
        if (!request["key"].isString() || !request["game"].isString() ||
            !parseGameName(request["game"].str(), game) ||
            !intMember(request["width"], w) ||
            !intMember(request["height"], h) ||
            !intMember(request["frames"], frames))
            return responseFor(
                request,
                Status::fail(StatusCode::InvalidRequest,
                             "load needs key (string), game (known "
                             "name), width/height/frames (integers)"));
        Status st = session_.load(request["key"].str(), game,
                                  static_cast<int>(w),
                                  static_cast<int>(h),
                                  static_cast<int>(frames));
        return responseFor(request, st);
    }

    if (op == "traces") {
        Json r = responseFor(request, Status::success());
        Json list = Json::array();
        for (const std::string &key : session_.traceKeys()) {
            std::shared_ptr<const GameTrace> t = session_.trace(key);
            Json e = Json::object();
            e.set("key", Json{key});
            e.set("workload", Json{t->name});
            e.set("width", Json{t->width});
            e.set("height", Json{t->height});
            e.set("frames",
                  Json{static_cast<std::uint64_t>(t->cameras.size())});
            list.push(std::move(e));
        }
        r.set("traces", std::move(list));
        return r;
    }

    if (op == "run") {
        if (!request["trace"].isString())
            return responseFor(
                request, Status::fail(StatusCode::InvalidRequest,
                                      "run needs trace (string key)"));
        RunConfig config;
        Status st = Status::success();
        if (request.has("config")) // Absent config = all defaults.
            st = parseRunConfigJson(request["config"], config);
        if (!st.ok())
            return responseFor(request, st);
        const std::string key = request["trace"].str();
        JobHandle job = session_.submit(key, config, &st);
        if (job == nullptr)
            return responseFor(request, st);
        job->wait();
        Json r = responseFor(request, Status::success());
        r.set("metrics", runMetrics(key, *session_.trace(key), config,
                                    job->result()));
        return r;
    }

    if (op == "status") {
        Json r = responseFor(request, Status::success());
        r.set("traces",
              Json{static_cast<std::uint64_t>(
                  session_.traceKeys().size())});
        r.set("jobs_submitted",
              Json{static_cast<std::uint64_t>(
                  session_.jobsSubmitted())});
        r.set("jobs_completed",
              Json{static_cast<std::uint64_t>(
                  session_.jobsCompleted())});
        return r;
    }

    if (op == "shutdown") {
        shutdown_ = true;
        Json r = responseFor(request, Status::success());
        r.set("type", Json{"bye"});
        return r;
    }

    return responseFor(request,
                       Status::fail(StatusCode::InvalidRequest,
                                    "unknown op '" + op + "'"));
}

void
ServeLoop::handleSweep(const Json &request)
{
    if (!request["trace"].isString() ||
        !request["configs"].isArray()) {
        writeFrame(out_,
                   responseFor(request,
                               Status::fail(StatusCode::InvalidRequest,
                                            "sweep needs trace (string "
                                            "key) and configs (array)"))
                       .dump());
        return;
    }
    const std::string key = request["trace"].str();
    std::vector<RunConfig> configs;
    configs.reserve(request["configs"].items().size());
    for (std::size_t i = 0; i < request["configs"].items().size(); ++i) {
        RunConfig config;
        Status st = parseRunConfigJson(request["configs"][i], config);
        if (!st.ok()) {
            st.message =
                "configs[" + std::to_string(i) + "]: " + st.message;
            writeFrame(out_, responseFor(request, st).dump());
            return;
        }
        configs.push_back(config);
    }

    Status st;
    std::vector<JobHandle> jobs = session_.submitSweep(key, configs, &st);
    if (!st.ok()) {
        writeFrame(out_, responseFor(request, st).dump());
        return;
    }

    // Stream one snapshot event per job, in submission order, each
    // emitted once that job finishes. Jobs run concurrently on the
    // session dispatchers, but the event order (and every payload) is
    // deterministic: a Done snapshot is a pure function of the config.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i]->wait();
        Json event = Json::object();
        event.set("status", Json{statusCodeName(StatusCode::Ok)});
        event.set("event", Json{"job_done"});
        event.set("index", Json{static_cast<std::uint64_t>(i)});
        if (request.has("id"))
            event.set("id", request["id"]);
        event.set("snapshot", jobs[i]->snapshot());
        writeFrame(out_, event.dump());
    }

    std::shared_ptr<const GameTrace> trace = session_.trace(key);
    Json final_frame = responseFor(request, Status::success());
    final_frame.set("event", Json{"done"});
    Json results = Json::array();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results.push(runMetrics(key, *trace, configs[i],
                                jobs[i]->result()));
    final_frame.set("results", std::move(results));
    writeFrame(out_, final_frame.dump());
}

} // namespace pargpu
