/**
 * @file
 * Experiment runner: renders a game trace under a design scenario and
 * aggregates the measurements every bench and example consumes.
 *
 * Frames of a trace are independent by construction (the simulator resets
 * cache and DRAM state per frame), so runTrace() renders them in parallel
 * on the shared thread pool — one GpuSimulator per worker partition, each
 * frame written into its own pre-sized slot, aggregation done serially in
 * frame order. The parallel path is bit-identical to the serial one.
 * runSweep() parallelizes one level up, across RunConfig conditions.
 */

#ifndef PARGPU_HARNESS_RUNNER_HH
#define PARGPU_HARNESS_RUNNER_HH

#include <vector>

#include "power/energy.hh"
#include "quality/ssim.hh"
#include "scenes/scenes.hh"
#include "sim/pipeline.hh"
#include "texture/filter_policy.hh"

namespace pargpu
{

/**
 * Typed reason a RunConfig field is invalid, as reported by
 * RunConfig::validate(). Callers that want a human-readable message use
 * configErrorMessage().
 */
enum class ConfigError
{
    BadThreshold,    ///< threshold outside [0, 1].
    BadTcScale,      ///< tc_scale zero or not a power of two.
    BadLlcScale,     ///< llc_scale zero or not a power of two.
    BadMaxAniso,     ///< max_aniso outside [1, 64].
    BadTableEntries, ///< table_entries negative or above 4096.
    BadThreads,      ///< threads negative or above 4096.
    BadClusters,     ///< clusters negative or above 64.
    BadFilterPolicy, ///< filter_policy not a registered policy.
};

/** Human-readable description of @p error (includes the legal range). */
const char *configErrorMessage(ConfigError error);

/** One experimental condition. */
struct RunConfig
{
    DesignScenario scenario = DesignScenario::Baseline;
    float threshold = 0.4f;   ///< Unified AF-SSIM threshold.
    unsigned tc_scale = 1;    ///< Texture-cache capacity multiplier.
    unsigned llc_scale = 1;   ///< LLC capacity multiplier.
    int max_aniso = 16;
    bool keep_images = true;  ///< Retain rendered frames (for SSIM).
    int table_entries = 0;    ///< PATU hash-table entries (0 = default).
    int threads = 0;          ///< Frame-level parallelism for runTrace():
                              ///< 0 = PARGPU_THREADS/default, 1 = serial.
    bool tile_parallel = false; ///< Intra-frame tile parallelism across
                                ///< clusters (GpuConfig::tile_parallel;
                                ///< bit-identical to serial).
    int clusters = 0;         ///< Shader clusters (0 = Table I default).
    /**
     * Texture-unit filtering strategy (docs/FILTERING.md); defaults to
     * PARGPU_FILTER_POLICY when set, else the paper's PATU flow.
     */
    FilterPolicyId filter_policy = defaultFilterPolicy();

    /**
     * Check every field against its legal range and return the list of
     * violations (empty = valid). runTrace()/runSweep() call this and
     * fatal() on the first violation instead of silently clamping or
     * crashing deep inside cache construction; interactive drivers (the
     * harness CLI) report all violations and exit cleanly.
     *
     * Ranges: threshold in [0,1]; tc_scale/llc_scale a power of two >= 1
     * (the cache model requires a power-of-two set count); max_aniso in
     * [1,64]; table_entries in [0,4096] (0 = scenario default);
     * threads in [0,4096] (0 = PARGPU_THREADS/default); clusters in
     * [0,64] (0 = Table I default); filter_policy a registered
     * FilterPolicyId.
     */
    std::vector<ConfigError> validate() const;
};

/** Aggregated results of rendering all frames of a trace. */
struct RunResult
{
    std::vector<FrameStats> frames;
    std::vector<Image> images;     ///< Empty if keep_images was false.
    double avg_cycles = 0.0;       ///< Mean frame time (cycles).
    double total_energy_nj = 0.0;  ///< Sum over frames (GPU + DRAM).
    double avg_power_w = 0.0;      ///< Mean of per-frame average power.

    /** Mean MSSIM of this run's frames against @p reference frames. */
    double mssimAgainst(const std::vector<Image> &reference) const;
};

/** Build the GpuConfig for a run condition. */
GpuConfig makeGpuConfig(const RunConfig &config);

/**
 * Render every frame of @p trace under @p config.
 *
 * Deprecated for external callers: a thin wrapper over the process-global
 * Session (harness/session.hh) that prints a one-shot per-process note on
 * first direct use. The result is bit-identical to
 * Session::run(trace, config).
 */
RunResult runTrace(const GameTrace &trace, const RunConfig &config);

/**
 * Render @p trace under every condition of @p configs, conditions in
 * parallel (frames within each condition stay serial on a worker).
 * results[i] corresponds to configs[i] and is bit-identical to
 * runTrace(trace, configs[i]).
 *
 * Deprecated for external callers like runTrace(): a thin wrapper over
 * Session::sweep() on the process-global Session.
 *
 * @param threads  Total concurrency (0 = PARGPU_THREADS/default).
 */
std::vector<RunResult> runSweep(const GameTrace &trace,
                                const std::vector<RunConfig> &configs,
                                int threads = 0);

/** Frame times of a run, for the replay/vsync model. */
std::vector<Cycle> frameCycles(const RunResult &run);

/**
 * Sum a FrameStats field across frames (convenience for benches).
 */
template <typename T>
double
sumOver(const std::vector<FrameStats> &frames, T FrameStats::*field)
{
    double acc = 0.0;
    for (const FrameStats &f : frames)
        acc += static_cast<double>(f.*field);
    return acc;
}

} // namespace pargpu

#endif // PARGPU_HARNESS_RUNNER_HH
