/**
 * @file
 * pargpu_serve: persistent simulation server over stdin/stdout.
 *
 * Binds a ServeLoop to the process's standard streams: the client (e.g.
 * `pargpu_report.py --serve`) spawns this binary, writes length-prefixed
 * JSON request frames to its stdin and reads response frames from its
 * stdout (protocol in docs/SERVE.md). Assets load once per process and
 * are shared read-only across every request — the amortization
 * BENCH_serve.json measures.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/serve.hh"

namespace
{

void
usage()
{
    std::printf(
        "pargpu_serve: persistent simulation server (docs/SERVE.md)\n"
        "\n"
        "Speaks length-prefixed JSON frames over stdin/stdout:\n"
        "  <decimal payload bytes>\\n<payload>\n"
        "Ops: ping, load, traces, run, sweep (streamed), status, "
        "shutdown.\n"
        "\n"
        "Options:\n"
        "  --job-workers N   concurrent sweep jobs (default 2)\n"
        "  --help            this text\n");
}

} // namespace

int
main(int argc, char **argv)
{
    pargpu::ServeOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            usage();
            return 0;
        }
        if (std::strcmp(argv[i], "--job-workers") == 0 && i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 1 || v > 4096) {
                std::fprintf(stderr,
                             "--job-workers must be in [1, 4096]\n");
                return 2;
            }
            options.job_workers = static_cast<unsigned>(v);
            continue;
        }
        std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
        usage();
        return 2;
    }
    // Frames are written explicitly and flushed per frame; keeping
    // iostream sync off avoids per-character stdio round-trips.
    std::ios::sync_with_stdio(false);
    pargpu::ServeLoop loop(std::cin, std::cout, options);
    return loop.run();
}
