#include "harness/runner.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "common/tracing.hh"
#include "harness/session.hh"

namespace pargpu
{

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
configErrorMessage(ConfigError error)
{
    switch (error) {
    case ConfigError::BadThreshold:
        return "threshold must be in [0, 1]";
    case ConfigError::BadTcScale:
        return "tc-scale must be a power of two >= 1";
    case ConfigError::BadLlcScale:
        return "llc-scale must be a power of two >= 1";
    case ConfigError::BadMaxAniso:
        return "max-aniso must be in [1, 64]";
    case ConfigError::BadTableEntries:
        return "table-entries must be in [0, 4096] (0 = default)";
    case ConfigError::BadThreads:
        return "threads must be in [0, 4096] (0 = default)";
    case ConfigError::BadClusters:
        return "clusters must be in [0, 64] (0 = default)";
    case ConfigError::BadFilterPolicy:
        return "filter-policy must be one of "
               "patu|stf_uniform|stf_blue|stf_weighted|filter_after_shading";
    }
    return "invalid RunConfig";
}

std::vector<ConfigError>
RunConfig::validate() const
{
    std::vector<ConfigError> errors;
    if (!(threshold >= 0.0f && threshold <= 1.0f))
        errors.push_back(ConfigError::BadThreshold);
    if (!isPow2(tc_scale))
        errors.push_back(ConfigError::BadTcScale);
    if (!isPow2(llc_scale))
        errors.push_back(ConfigError::BadLlcScale);
    if (max_aniso < 1 || max_aniso > 64)
        errors.push_back(ConfigError::BadMaxAniso);
    if (table_entries < 0 || table_entries > 4096)
        errors.push_back(ConfigError::BadTableEntries);
    if (threads < 0 || threads > 4096)
        errors.push_back(ConfigError::BadThreads);
    if (clusters < 0 || clusters > 64)
        errors.push_back(ConfigError::BadClusters);
    if (!isKnownFilterPolicy(filter_policy))
        errors.push_back(ConfigError::BadFilterPolicy);
    return errors;
}

double
RunResult::mssimAgainst(const std::vector<Image> &reference) const
{
    if (images.empty() || images.size() != reference.size())
        fatal("mssimAgainst: image sets unavailable or mismatched");
    // Per-frame MSSIMs land in index-addressed slots; the reduction runs
    // serially in frame order so the sum is bit-identical at any thread
    // count.
    std::vector<double> per(images.size());
    ThreadPool::run(images.size(), 1, [&](std::size_t i) {
        per[i] = mssim(reference[i], images[i]);
    });
    double acc = 0.0;
    for (double v : per)
        acc += v;
    return acc / static_cast<double>(images.size());
}

GpuConfig
makeGpuConfig(const RunConfig &config)
{
    GpuConfig g;
    g.max_aniso = config.max_aniso;
    g.mem.tc_scale = config.tc_scale;
    g.mem.llc_scale = config.llc_scale;
    g.patu.scenario = config.scenario;
    g.patu.threshold = config.threshold;
    g.patu.max_aniso = config.max_aniso;
    if (config.table_entries > 0)
        g.patu.table_entries = config.table_entries;
    if (config.clusters > 0)
        g.clusters = static_cast<unsigned>(config.clusters);
    g.tile_parallel = config.tile_parallel;
    g.filter_policy = config.filter_policy;
    return g;
}

namespace detail
{

RunResult
renderTrace(const GameTrace &trace, const RunConfig &config,
            RunProgress *progress)
{
    // Pin the validated environment snapshot before any frame renders
    // (also arms the PARGPU_CONTRACT_REPORT atexit dump on first use).
    envOverrides();
    const std::vector<ConfigError> errors = config.validate();
    if (!errors.empty())
        fatal(std::string("invalid RunConfig: ") +
              configErrorMessage(errors.front()));
    const std::size_t n = trace.cameras.size();
    const unsigned want = config.threads > 0
        ? static_cast<unsigned>(config.threads)
        : ThreadPool::defaultThreads();
    const std::size_t parts =
        std::min<std::size_t>(want, n == 0 ? 1 : n);

    // Every frame renders into its own slot. The simulator resets cache
    // and DRAM state per frame, so a frame's output is the same whether
    // its simulator previously rendered other frames (serial path) or is
    // freshly built for a partition (parallel path); determinism_test
    // pins this down.
    PARGPU_TRACE_SCOPE_F("harness", "runTrace", n);
    std::vector<FrameOutput> outs(n);
    if (parts <= 1 || ThreadPool::inWorker()) {
        GpuSimulator sim(makeGpuConfig(config));
        for (std::size_t f = 0; f < n; ++f) {
            PARGPU_TRACE_SCOPE_F("harness", "renderFrame", f);
            outs[f] = sim.renderFrame(trace.scene, trace.cameras[f],
                                      trace.width, trace.height);
            if (progress != nullptr)
                progress->onFrame(f, outs[f].stats);
        }
    } else {
        ThreadPool::run(parts, 1, [&](std::size_t p) {
            const std::size_t lo = n * p / parts;
            const std::size_t hi = n * (p + 1) / parts;
            GpuSimulator sim(makeGpuConfig(config));
            for (std::size_t f = lo; f < hi; ++f) {
                PARGPU_TRACE_SCOPE_F("harness", "renderFrame", f);
                outs[f] = sim.renderFrame(trace.scene, trace.cameras[f],
                                          trace.width, trace.height);
                if (progress != nullptr)
                    progress->onFrame(f, outs[f].stats);
            }
        }, static_cast<unsigned>(parts));
    }

    // Aggregate serially in frame order — the identical sequence of
    // floating-point additions as the serial path.
    PARGPU_TRACE_SCOPE("harness", "aggregate");
    RunResult result;
    result.frames.reserve(n);
    if (config.keep_images)
        result.images.reserve(n);
    double cycles = 0.0, power = 0.0;
    for (FrameOutput &out : outs) {
        EnergyBreakdown e = computeEnergy(out.stats);
        result.total_energy_nj += e.total_nj();
        power += averagePowerW(e, out.stats);
        cycles += static_cast<double>(out.stats.total_cycles);
        result.frames.push_back(out.stats);
        if (config.keep_images)
            result.images.push_back(std::move(out.image));
    }
    if (n > 0) {
        result.avg_cycles = cycles / static_cast<double>(n);
        result.avg_power_w = power / static_cast<double>(n);
    }
    PARGPU_INVARIANT(result.avg_cycles >= 0.0 &&
                         result.total_energy_nj >= 0.0 &&
                         result.avg_power_w >= 0.0,
                     "negative aggregate: cycles=", result.avg_cycles,
                     " energy=", result.total_energy_nj,
                     " power=", result.avg_power_w);
    return result;
}

std::vector<RunResult>
renderSweep(const GameTrace &trace, const std::vector<RunConfig> &configs,
            int threads)
{
    // Reject bad conditions before fanning out — a fatal() on a worker
    // thread would otherwise tear down the pool mid-sweep.
    for (const RunConfig &c : configs) {
        const std::vector<ConfigError> errors = c.validate();
        if (!errors.empty())
            fatal(std::string("invalid RunConfig in sweep: ") +
                  configErrorMessage(errors.front()));
    }
    std::vector<RunResult> results(configs.size());
    // Conditions fan out across workers; renderTrace() detects it is on
    // a worker and keeps its frames serial, so there is exactly one
    // level of parallelism and results stay independent of the thread
    // count.
    ThreadPool::run(configs.size(), 1, [&](std::size_t i) {
        results[i] = renderTrace(trace, configs[i]);
    }, threads > 0 ? static_cast<unsigned>(threads) : 0);
    return results;
}

} // namespace detail

RunResult
runTrace(const GameTrace &trace, const RunConfig &config)
{
    detail::warnLegacyEntryPoint("runTrace()", "Session::run()/submit()");
    return Session::global().run(trace, config);
}

std::vector<RunResult>
runSweep(const GameTrace &trace, const std::vector<RunConfig> &configs,
         int threads)
{
    detail::warnLegacyEntryPoint("runSweep()", "Session::sweep()");
    return Session::global().sweep(trace, configs, threads);
}

std::vector<Cycle>
frameCycles(const RunResult &run)
{
    std::vector<Cycle> c;
    c.reserve(run.frames.size());
    for (const FrameStats &f : run.frames)
        c.push_back(f.total_cycles);
    return c;
}

} // namespace pargpu
