#include "harness/runner.hh"

#include "common/logging.hh"

namespace pargpu
{

double
RunResult::mssimAgainst(const std::vector<Image> &reference) const
{
    if (images.empty() || images.size() != reference.size())
        fatal("mssimAgainst: image sets unavailable or mismatched");
    double acc = 0.0;
    for (std::size_t i = 0; i < images.size(); ++i)
        acc += mssim(reference[i], images[i]);
    return acc / static_cast<double>(images.size());
}

GpuConfig
makeGpuConfig(const RunConfig &config)
{
    GpuConfig g;
    g.max_aniso = config.max_aniso;
    g.mem.tc_scale = config.tc_scale;
    g.mem.llc_scale = config.llc_scale;
    g.patu.scenario = config.scenario;
    g.patu.threshold = config.threshold;
    g.patu.max_aniso = config.max_aniso;
    return g;
}

RunResult
runTrace(const GameTrace &trace, const RunConfig &config)
{
    RunResult result;
    GpuSimulator sim(makeGpuConfig(config));

    double cycles = 0.0, power = 0.0;
    for (const Camera &cam : trace.cameras) {
        FrameOutput out =
            sim.renderFrame(trace.scene, cam, trace.width, trace.height);
        EnergyBreakdown e = computeEnergy(out.stats);
        result.total_energy_nj += e.total_nj();
        power += averagePowerW(e, out.stats);
        cycles += static_cast<double>(out.stats.total_cycles);
        result.frames.push_back(out.stats);
        if (config.keep_images)
            result.images.push_back(std::move(out.image));
    }
    const double n = static_cast<double>(result.frames.size());
    if (n > 0) {
        result.avg_cycles = cycles / n;
        result.avg_power_w = power / n;
    }
    return result;
}

std::vector<Cycle>
frameCycles(const RunResult &run)
{
    std::vector<Cycle> c;
    c.reserve(run.frames.size());
    for (const FrameStats &f : run.frames)
        c.push_back(f.total_cycles);
    return c;
}

} // namespace pargpu
