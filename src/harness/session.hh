/**
 * @file
 * Session-based experiment facade: immutable shared assets, queued jobs,
 * streamed metrics snapshots.
 *
 * A Session amortizes everything a one-shot runTrace()/runSweep() process
 * pays per invocation: decoded scenes, procedural textures and their mip
 * pyramids, replayable traces, and the validated environment overrides.
 * Assets are loaded once (load()), held behind shared_ptr<const GameTrace>
 * and shared read-only across every job; thousands of config evaluations
 * can then run in one process against one decode.
 *
 * Execution surfaces, all bit-identical to the legacy free functions:
 *
 *  - run()/sweep(trace, ...): synchronous, borrowing a caller-owned
 *    trace — the exact code path the deprecated runTrace()/runSweep()
 *    wrappers forward to.
 *  - sweep(key, ...): synchronous sweep over a loaded asset; its output
 *    (RunResults, metrics JSON, counters, images) is byte-identical to
 *    runSweep() on the same configs (session_test pins this down).
 *  - submit()/submitSweep(): asynchronous jobs on a small dispatcher
 *    crew; each job fans its frames out onto the shared ThreadPool and
 *    exposes streamed metrics snapshots while running. Handles are
 *    shared_ptr<Job> and outlive the Session (teardown drains the
 *    queue, so a surviving handle always ends in State::Done).
 *
 * Error reporting extends the ConfigError/configErrorMessage pattern into
 * a small typed Status (code + message): loading and submission return
 * Status instead of fataling, so a server (pargpu_serve) can reject bad
 * requests with the same typed reasons RunConfig::validate() produces.
 */

#ifndef PARGPU_HARNESS_SESSION_HH
#define PARGPU_HARNESS_SESSION_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/json.hh"
#include "harness/runner.hh"

namespace pargpu
{

/** Typed reason a Session request failed (Status::code). */
enum class StatusCode
{
    Ok,            ///< Request accepted / completed.
    InvalidConfig, ///< A RunConfig failed RunConfig::validate().
    UnknownTrace,  ///< No asset loaded under the requested key.
    DuplicateKey,  ///< load() under a key already bound to another asset.
    InvalidRequest,///< Malformed request (missing field, bad value).
    ShuttingDown,  ///< Session/server is tearing down.
    IoError,       ///< Transport or filesystem failure.
};

/** Stable wire name of @p code ("ok", "invalid_config", ...). */
const char *statusCodeName(StatusCode code);

/**
 * Typed error report for the Session surface: a StatusCode plus a
 * human-readable message (for InvalidConfig, the joined
 * configErrorMessage() strings of every violation).
 */
struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }

    /** The success value. */
    static Status success() { return Status{}; }

    /** An error with @p code and @p message. */
    static Status
    fail(StatusCode code, std::string message)
    {
        return Status{code, std::move(message)};
    }
};

/**
 * Validate @p config the Session way: Ok when valid, else InvalidConfig
 * with every configErrorMessage() joined by "; " — the same typed
 * reasons runTrace() fatals with, minus the process exit.
 */
Status validateRunConfig(const RunConfig &config);

/**
 * Snapshot of every PARGPU_* environment override that can change run
 * behavior, parsed and validated in one pass (envOverrides()). All the
 * underlying readers cache on first use; taking the snapshot at Session
 * construction forces that first use up front, so a job started later
 * can never observe a mid-run environment change.
 */
struct EnvOverrides
{
    unsigned default_threads = 1;  ///< PARGPU_THREADS / hardware.
    bool tile_parallel_forced = false; ///< PARGPU_TILE_PARALLEL=1.
    FilterPolicyId filter_policy = FilterPolicyId::Patu;
        ///< PARGPU_FILTER_POLICY (default patu).
    TexelStorage texel_storage = TexelStorage::Morton;
        ///< PARGPU_TEXEL_STORAGE.
    bool contract_report = false;  ///< PARGPU_CONTRACT_REPORT set.
};

/**
 * The process's environment overrides, parsed and validated once (first
 * call; fatal() on malformed values, exactly like the lazy readers it
 * front-loads). Subsequent calls return the same snapshot.
 */
const EnvOverrides &envOverrides();

namespace detail
{

/** Per-frame completion hook for streamed job progress. */
class RunProgress
{
  public:
    virtual ~RunProgress() = default;

    /**
     * Frame @p index of the trace finished with @p stats. May be called
     * from any ThreadPool worker; implementations synchronize
     * internally and must not mutate the run.
     */
    virtual void onFrame(std::size_t index, const FrameStats &stats) = 0;
};

/**
 * The runTrace() engine (moved here from the free function): renders
 * every frame of @p trace under @p config, frames parallel on the
 * shared pool unless nested, aggregation serial in frame order.
 * fatal()s on an invalid config. @p progress, when non-null, observes
 * each frame completion (it never affects the result).
 */
RunResult renderTrace(const GameTrace &trace, const RunConfig &config,
                      RunProgress *progress = nullptr);

/** The runSweep() engine: conditions in parallel, results by index. */
std::vector<RunResult> renderSweep(const GameTrace &trace,
                                   const std::vector<RunConfig> &configs,
                                   int threads = 0);

/**
 * One-shot per-process deprecation note for a legacy entry point (same
 * mechanism as the harness's deprecated-alias flag warnings): the first
 * direct call of runTrace()/runSweep() prints one line on stderr
 * pointing at the Session API; later calls are silent.
 */
void warnLegacyEntryPoint(const char *legacy, const char *replacement);

} // namespace detail

class Session;

/**
 * One queued/running/finished unit of Session work: a single RunConfig
 * rendered against one loaded trace. Handles are shared_ptr and remain
 * valid after the owning Session is destroyed (teardown drains the
 * queue, so a surviving handle always reaches State::Done).
 */
class Job
{
  public:
    /** Lifecycle of a submitted job. */
    enum class State
    {
        Queued,  ///< Accepted, waiting for a dispatcher.
        Running, ///< Rendering frames.
        Done,    ///< result() is final.
    };

    /** Construction passkey: only Session can mint one. */
    class Passkey
    {
        friend class Session;
        Passkey() = default;
    };

    /** Session-only (via Passkey); use Session::submit() to make jobs. */
    Job(Passkey, std::string trace_key,
        std::shared_ptr<const GameTrace> trace, const RunConfig &config);

    State state() const;

    /** Block until the job reaches State::Done. */
    void wait() const;

    /** Key of the loaded trace this job renders. */
    const std::string &traceKey() const { return trace_key_; }

    /** The condition this job renders. */
    const RunConfig &config() const { return config_; }

    /** Frames in the job's trace. */
    std::size_t framesTotal() const { return frames_total_; }

    /** Frames finished so far (monotonic; == framesTotal() when Done). */
    std::size_t framesCompleted() const;

    /**
     * Blocking access to the finished result (wait() + reference). The
     * result is bit-identical to runTrace(trace, config()).
     */
    const RunResult &result() const;

    /**
     * Streamed metrics snapshot: a JSON object with the job state,
     * frame progress, and the standard registry built over the frames
     * completed so far (in frame order). Callable at any time from any
     * thread; a snapshot never perturbs the run. After Done the
     * registry equals the one metricsJson() derives from result().
     */
    Json snapshot() const;

  private:
    friend class Session;

    /**
     * Dispatcher-side execution (exactly once). @p completed, when
     * non-null, is incremented before Done is published so a waiter
     * never observes a finished job with a stale session counter.
     */
    void execute(std::atomic<std::size_t> *completed);

    /** The progress sink handed to detail::renderTrace(). */
    class Progress;

    const std::string trace_key_;
    const std::shared_ptr<const GameTrace> trace_; ///< Keeps asset alive.
    const RunConfig config_;
    const std::size_t frames_total_;

    mutable Mutex mu_;
    mutable std::condition_variable_any cv_;
    State state_ PARGPU_GUARDED_BY(mu_) = State::Queued;
    /** Completed frames' stats, index-addressed (empty slot = pending). */
    std::vector<FrameStats> partial_ PARGPU_GUARDED_BY(mu_);
    std::vector<bool> partial_done_ PARGPU_GUARDED_BY(mu_);
    std::size_t n_done_ PARGPU_GUARDED_BY(mu_) = 0;
    RunResult result_ PARGPU_GUARDED_BY(mu_);
};

/** Shared, Session-outliving reference to a submitted Job. */
using JobHandle = std::shared_ptr<Job>;

/** Session construction knobs. */
struct SessionOptions
{
    /**
     * Dispatcher threads executing submitted jobs concurrently
     * (0 = default of 2). Each job additionally fans its frames onto
     * the shared ThreadPool; concurrency across jobs never changes any
     * job's result.
     */
    unsigned job_workers = 0;
};

/**
 * The session facade (file header above for the full story). Thread
 * safe: load/submit/sweep may be called from any thread.
 */
class Session
{
  public:
    explicit Session(SessionOptions options = {});

    /**
     * Drains the job queue (every accepted job runs to completion),
     * then joins the dispatchers. Outstanding JobHandles stay valid.
     */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** The validated env snapshot taken at construction. */
    const EnvOverrides &env() const { return env_; }

    // --- Immutable shared assets ----------------------------------------

    /**
     * Bind @p trace to @p key. The asset becomes immutable and shared
     * read-only by every job that references it. Reloading the same key
     * is DuplicateKey (assets never mutate under running jobs).
     */
    Status load(const std::string &key, GameTrace trace);

    /** Build buildGameTrace(game, width, height, frames) under @p key. */
    Status load(const std::string &key, GameId game, int width, int height,
                int frames);

    /** The asset under @p key, or nullptr. */
    std::shared_ptr<const GameTrace> trace(const std::string &key) const;

    /** Keys of every loaded asset, sorted. */
    std::vector<std::string> traceKeys() const;

    // --- Synchronous execution (legacy-identical) ------------------------

    /**
     * Render @p trace under @p config — the exact legacy runTrace()
     * path (fatal() on an invalid config), minus the deprecation note.
     */
    RunResult run(const GameTrace &trace, const RunConfig &config);

    /** The exact legacy runSweep() path over a borrowed trace. */
    std::vector<RunResult> sweep(const GameTrace &trace,
                                 const std::vector<RunConfig> &configs,
                                 int threads = 0);

    /**
     * Sweep a loaded asset: validates every config (typed Status instead
     * of fatal()), then runs the legacy sweep engine. @p results is
     * byte-identical to runSweep(trace, configs, threads) — metrics
     * JSON, counters and images included.
     */
    Status sweep(const std::string &key,
                 const std::vector<RunConfig> &configs,
                 std::vector<RunResult> *results, int threads = 0);

    // --- Asynchronous jobs ----------------------------------------------

    /**
     * Enqueue one condition against a loaded asset. On success returns
     * the handle (and Ok through @p status when given); on failure
     * returns nullptr with the typed reason in @p status.
     */
    JobHandle submit(const std::string &key, const RunConfig &config,
                     Status *status = nullptr);

    /**
     * Enqueue one job per config (a concurrent sweep). All-or-nothing:
     * on any invalid config nothing is enqueued and the vector is
     * empty with the reason in @p status. Waiting on the handles in
     * order yields results bit-identical to runSweep().
     */
    std::vector<JobHandle> submitSweep(const std::string &key,
                                       const std::vector<RunConfig> &configs,
                                       Status *status = nullptr);

    /** Jobs accepted so far (monotonic). */
    std::size_t jobsSubmitted() const;

    /** Jobs finished so far (monotonic). */
    std::size_t jobsCompleted() const;

    /**
     * The process-global Session backing the legacy runTrace()/runSweep()
     * wrappers. Constructed on first use; holds no assets of its own.
     */
    static Session &global();

  private:
    void dispatcherLoop();
    void enqueue(const JobHandle &job);

    const EnvOverrides &env_;
    const unsigned job_workers_;

    mutable Mutex mu_;
    std::condition_variable_any cv_;
    std::map<std::string, std::shared_ptr<const GameTrace>> traces_
        PARGPU_GUARDED_BY(mu_);
    std::deque<JobHandle> queue_ PARGPU_GUARDED_BY(mu_);
    std::vector<std::thread> dispatchers_ PARGPU_GUARDED_BY(mu_);
    bool stop_ PARGPU_GUARDED_BY(mu_) = false;
    std::atomic<std::size_t> submitted_{0};
    std::atomic<std::size_t> completed_{0};
};

} // namespace pargpu

#endif // PARGPU_HARNESS_SESSION_HH
