/**
 * @file
 * Structured metrics export: the versioned machine-readable result format
 * every bench and the pargpu_harness CLI emit, and that
 * tools/pargpu_report.py consumes to diff two runs.
 *
 * A metrics document (JSON) contains:
 *   - "schema" / "schema_version": format identification,
 *   - "run": the workload + RunConfig that produced the numbers,
 *   - "aggregate": run-level aggregates (avg cycles, energy, power,
 *     optional MSSIM against a reference run),
 *   - "frames": one object per frame with every FrameStats field,
 *   - "registry": a StatSnapshot of per-stage counters, scalars and
 *     histograms (names documented in docs/METRICS.md).
 *
 * The CSV form is one row per frame with the same FrameStats columns,
 * for spreadsheet-style consumption.
 */

#ifndef PARGPU_HARNESS_METRICS_HH
#define PARGPU_HARNESS_METRICS_HH

#include <string>

#include "common/json.hh"
#include "common/stats.hh"
#include "harness/runner.hh"

namespace pargpu
{

/** Version of the metrics-JSON/CSV schema emitted by this build. */
inline constexpr int kMetricsSchemaVersion = 1;

/** Schema identifier stored in the "schema" field. */
inline constexpr const char *kMetricsSchemaName = "pargpu-metrics";

/** Identifies the run a metrics document describes. */
struct RunMetadata
{
    std::string tool;     ///< Producing binary ("pargpu_harness", "fig19").
    std::string workload; ///< Workload label, e.g. "HL2-640x512".
    int width = 0;
    int height = 0;
    int frames = 0;
};

/**
 * Build the per-stage stat registry for a finished run: the aggregated
 * FrameStats mapped onto hierarchical dotted names (raster, early-Z,
 * shading, texunit, PATU, memory, energy) plus per-frame histograms.
 * Every name is documented in docs/METRICS.md.
 *
 * @param mssim  Mean MSSIM against a reference run, or < 0 if none.
 */
void buildRunRegistry(const RunResult &run, StatRegistry &reg,
                      double mssim = -1.0);

/**
 * Serialize a run as a metrics document (see file header for the layout).
 *
 * @param mssim  Mean MSSIM against a reference run, or < 0 to omit.
 */
Json metricsJson(const RunMetadata &meta, const RunConfig &config,
                 const RunResult &run, double mssim = -1.0);

/** Write metricsJson() to @p path. @return false on I/O failure. */
bool writeMetricsJson(const std::string &path, const RunMetadata &meta,
                      const RunConfig &config, const RunResult &run,
                      double mssim = -1.0);

/**
 * Write the per-frame CSV form (header row + one row per frame) to
 * @p path. @return false on I/O failure.
 */
bool writeMetricsCsv(const std::string &path, const RunMetadata &meta,
                     const RunConfig &config, const RunResult &run);

/** The "scenario" string stored in metrics documents ("patu", ...). */
const char *scenarioMetricName(DesignScenario s);

} // namespace pargpu

#endif // PARGPU_HARNESS_METRICS_HH
