#include "harness/metrics.hh"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <thread>

#include "power/energy.hh"
#include "simd/dispatch.hh"

namespace pargpu
{

namespace
{

/** One FrameStats column: name + accessor (all fields are integral). */
struct FrameField
{
    const char *name;
    std::uint64_t (*get)(const FrameStats &);
};

/** Field table shared by the JSON and CSV writers (order = CSV order). */
constexpr FrameField kFrameFields[] = {
    {"total_cycles", [](const FrameStats &f) { return f.total_cycles; }},
    {"geometry_cycles",
     [](const FrameStats &f) { return f.geometry_cycles; }},
    {"fragment_cycles",
     [](const FrameStats &f) { return f.fragment_cycles; }},
    {"texture_filter_cycles",
     [](const FrameStats &f) { return f.texture_filter_cycles; }},
    {"texture_mem_stall",
     [](const FrameStats &f) { return f.texture_mem_stall; }},
    {"shader_busy_cycles",
     [](const FrameStats &f) { return f.shader_busy_cycles; }},
    {"triangles_in", [](const FrameStats &f) { return f.triangles_in; }},
    {"triangles_setup",
     [](const FrameStats &f) { return f.triangles_setup; }},
    {"earlyz_tested", [](const FrameStats &f) { return f.earlyz_tested; }},
    {"earlyz_killed", [](const FrameStats &f) { return f.earlyz_killed; }},
    {"quads", [](const FrameStats &f) { return f.quads; }},
    {"pixels_shaded", [](const FrameStats &f) { return f.pixels_shaded; }},
    {"trilinear_samples",
     [](const FrameStats &f) { return f.trilinear_samples; }},
    {"texels", [](const FrameStats &f) { return f.texels; }},
    {"addr_ops", [](const FrameStats &f) { return f.addr_ops; }},
    {"table_accesses",
     [](const FrameStats &f) { return f.table_accesses; }},
    {"tex_lines", [](const FrameStats &f) { return f.tex_lines; }},
    {"memo_lookups", [](const FrameStats &f) { return f.memo_lookups; }},
    {"memo_hits", [](const FrameStats &f) { return f.memo_hits; }},
    {"simd_batches", [](const FrameStats &f) { return f.simd_batches; }},
    {"raster_simd_quads",
     [](const FrameStats &f) { return f.raster_simd_quads; }},
    {"fb_simd_fills", [](const FrameStats &f) { return f.fb_simd_fills; }},
    {"arena_frame_bytes",
     [](const FrameStats &f) { return f.arena_frame_bytes; }},
    {"arena_high_water",
     [](const FrameStats &f) { return f.arena_high_water; }},
    {"af_candidate_pixels",
     [](const FrameStats &f) { return f.af_candidate_pixels; }},
    {"approx_stage1", [](const FrameStats &f) { return f.approx_stage1; }},
    {"approx_stage2", [](const FrameStats &f) { return f.approx_stage2; }},
    {"full_af", [](const FrameStats &f) { return f.full_af; }},
    {"trivial_tf", [](const FrameStats &f) { return f.trivial_tf; }},
    {"af_input_samples",
     [](const FrameStats &f) { return f.af_input_samples; }},
    {"shared_samples",
     [](const FrameStats &f) { return f.shared_samples; }},
    {"divergent_quads",
     [](const FrameStats &f) { return f.divergent_quads; }},
    {"af_quads", [](const FrameStats &f) { return f.af_quads; }},
    {"stf_samples", [](const FrameStats &f) { return f.stf_samples; }},
    {"fas_quads", [](const FrameStats &f) { return f.fas_quads; }},
    {"traffic_texture",
     [](const FrameStats &f) { return f.traffic_texture; }},
    {"traffic_colordepth",
     [](const FrameStats &f) { return f.traffic_colordepth; }},
    {"traffic_geometry",
     [](const FrameStats &f) { return f.traffic_geometry; }},
    {"l1_hits", [](const FrameStats &f) { return f.l1_hits; }},
    {"l1_misses", [](const FrameStats &f) { return f.l1_misses; }},
    {"llc_hits", [](const FrameStats &f) { return f.llc_hits; }},
    {"llc_misses", [](const FrameStats &f) { return f.llc_misses; }},
    {"dram_reads", [](const FrameStats &f) { return f.dram_reads; }},
    {"dram_row_hits", [](const FrameStats &f) { return f.dram_row_hits; }},
};

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

const char *
scenarioMetricName(DesignScenario s)
{
    switch (s) {
    case DesignScenario::Baseline: return "baseline";
    case DesignScenario::NoAF: return "noaf";
    case DesignScenario::AfSsimN: return "n";
    case DesignScenario::AfSsimNTxds: return "ntxds";
    case DesignScenario::Patu: return "patu";
    }
    return "unknown";
}

void
buildRunRegistry(const RunResult &run, StatRegistry &reg, double mssim)
{
    // Aggregate the per-frame stats once.
    FrameStats t;
    for (const FrameStats &f : run.frames) {
        t.geometry_cycles += f.geometry_cycles;
        t.fragment_cycles += f.fragment_cycles;
        t.shader_busy_cycles += f.shader_busy_cycles;
        t.texture_filter_cycles += f.texture_filter_cycles;
        t.texture_mem_stall += f.texture_mem_stall;
        t.triangles_in += f.triangles_in;
        t.triangles_setup += f.triangles_setup;
        t.earlyz_tested += f.earlyz_tested;
        t.earlyz_killed += f.earlyz_killed;
        t.quads += f.quads;
        t.pixels_shaded += f.pixels_shaded;
        t.trilinear_samples += f.trilinear_samples;
        t.texels += f.texels;
        t.addr_ops += f.addr_ops;
        t.table_accesses += f.table_accesses;
        t.tex_lines += f.tex_lines;
        t.memo_lookups += f.memo_lookups;
        t.memo_hits += f.memo_hits;
        t.simd_batches += f.simd_batches;
        t.raster_simd_quads += f.raster_simd_quads;
        t.fb_simd_fills += f.fb_simd_fills;
        t.arena_frame_bytes += f.arena_frame_bytes;
        t.arena_high_water =
            std::max(t.arena_high_water, f.arena_high_water);
        t.af_candidate_pixels += f.af_candidate_pixels;
        t.approx_stage1 += f.approx_stage1;
        t.approx_stage2 += f.approx_stage2;
        t.full_af += f.full_af;
        t.trivial_tf += f.trivial_tf;
        t.af_input_samples += f.af_input_samples;
        t.shared_samples += f.shared_samples;
        t.divergent_quads += f.divergent_quads;
        t.af_quads += f.af_quads;
        t.stf_samples += f.stf_samples;
        t.fas_quads += f.fas_quads;
        t.traffic_texture += f.traffic_texture;
        t.traffic_colordepth += f.traffic_colordepth;
        t.traffic_geometry += f.traffic_geometry;
        t.l1_hits += f.l1_hits;
        t.l1_misses += f.l1_misses;
        t.llc_hits += f.llc_hits;
        t.llc_misses += f.llc_misses;
        t.dram_reads += f.dram_reads;
        t.dram_row_hits += f.dram_row_hits;
    }

    // Geometry front-end.
    reg.inc("geometry.cycles", t.geometry_cycles);
    reg.inc("geometry.triangles_in", t.triangles_in);
    reg.inc("geometry.triangles_setup", t.triangles_setup);

    // Rasterizer + early depth test. raster.simd_quads counts edge_quad
    // kernel evaluations (covered or not); like fb.simd_fills and the
    // arena.* scalars below it is invocation-granular and geometry-
    // determined, so the values are identical across SIMD tiers and
    // execution modes (only PARGPU_ARENA=0 changes arena.* — to zero).
    reg.inc("raster.quads", t.quads);
    reg.inc("raster.simd_quads", t.raster_simd_quads);
    reg.inc("fb.simd_fills", t.fb_simd_fills);
    reg.inc("arena.frame_bytes", t.arena_frame_bytes);
    reg.set("arena.high_water",
            static_cast<double>(t.arena_high_water));
    reg.inc("earlyz.tested_pixels", t.earlyz_tested);
    reg.inc("earlyz.killed_pixels", t.earlyz_killed);
    reg.set("earlyz.kill_rate", ratio(t.earlyz_killed, t.earlyz_tested));

    // Fragment shading.
    reg.inc("shade.pixels", t.pixels_shaded);
    reg.inc("shade.busy_cycles", t.shader_busy_cycles);
    reg.inc("shade.fragment_cycles", t.fragment_cycles);

    // Texture unit (filtering dataflow).
    reg.inc("texunit.filter_cycles", t.texture_filter_cycles);
    reg.inc("texunit.mem_stall_cycles", t.texture_mem_stall);
    reg.inc("texunit.trilinear_samples", t.trilinear_samples);
    reg.inc("texunit.texels", t.texels);
    reg.inc("texunit.addr_ops", t.addr_ops);
    reg.inc("texunit.lines", t.tex_lines);
    reg.set("texunit.lines_per_quad", ratio(t.tex_lines, t.quads));
    reg.inc("texunit.memo_lookups", t.memo_lookups);
    reg.inc("texunit.memo_hits", t.memo_hits);
    reg.set("texunit.memo_hit_rate", ratio(t.memo_hits, t.memo_lookups));
    // SoA batch-filter host-path counters. simd_batches is dispatch-tier
    // independent (one per batched filter call); simd_width and
    // simd.dispatch describe the host tier and are the only registry keys
    // allowed to differ across PARGPU_SIMD tiers / build knobs.
    reg.inc("texunit.simd_batches", t.simd_batches);
    reg.set("texunit.simd_width",
            static_cast<double>(simd::tierLanes(simd::activeTier())));
    reg.set("simd.dispatch",
            static_cast<double>(static_cast<int>(simd::activeTier())));
    // Host-side texel storage in effect for this process (1 = Morton).
    reg.set("texture.morton_storage",
            TextureMap::defaultStorage() == TexelStorage::Morton ? 1.0
                                                                 : 0.0);

    // FilterPolicy reporting (docs/FILTERING.md). Counters are emitted
    // unconditionally (zero under Patu) so the registry key set is
    // identical across policies; only texunit.policy's value differs.
    reg.set("texunit.policy",
            static_cast<double>(run.frames.empty()
                                    ? 0
                                    : run.frames.front().filter_policy));
    reg.inc("texunit.stf_samples", t.stf_samples);
    reg.inc("texunit.fas_quads", t.fas_quads);

    // PATU prediction.
    reg.inc("patu.table_accesses", t.table_accesses);
    reg.inc("patu.af_candidate_pixels", t.af_candidate_pixels);
    reg.inc("patu.approx_stage1", t.approx_stage1);
    reg.inc("patu.approx_stage2", t.approx_stage2);
    reg.inc("patu.full_af", t.full_af);
    reg.inc("patu.trivial_tf", t.trivial_tf);
    reg.inc("patu.af_input_samples", t.af_input_samples);
    reg.inc("patu.shared_samples", t.shared_samples);
    reg.inc("patu.divergent_quads", t.divergent_quads);
    reg.inc("patu.af_quads", t.af_quads);

    // Memory hierarchy.
    reg.inc("mem.l1.hits", t.l1_hits);
    reg.inc("mem.l1.misses", t.l1_misses);
    reg.set("mem.l1.hit_rate", ratio(t.l1_hits, t.l1_hits + t.l1_misses));
    reg.inc("mem.llc.hits", t.llc_hits);
    reg.inc("mem.llc.misses", t.llc_misses);
    reg.set("mem.llc.hit_rate",
            ratio(t.llc_hits, t.llc_hits + t.llc_misses));
    reg.inc("mem.dram.reads", t.dram_reads);
    reg.inc("mem.dram.row_hits", t.dram_row_hits);
    reg.set("mem.dram.row_hit_rate", ratio(t.dram_row_hits, t.dram_reads));
    reg.inc("mem.traffic.texture_bytes", t.traffic_texture);
    reg.inc("mem.traffic.color_depth_bytes", t.traffic_colordepth);
    reg.inc("mem.traffic.geometry_bytes", t.traffic_geometry);
    reg.inc("mem.traffic.total_bytes",
            t.traffic_texture + t.traffic_colordepth + t.traffic_geometry);

    // Energy / run-level aggregates.
    reg.set("energy.total_nj", run.total_energy_nj);
    reg.set("energy.avg_power_w", run.avg_power_w);
    reg.set("run.avg_cycles", run.avg_cycles);
    if (mssim >= 0.0)
        reg.set("run.mssim", mssim);

    // Per-frame distributions (p50/p95/max in the snapshot).
    for (const FrameStats &f : run.frames) {
        reg.observe("frame.cycles", static_cast<double>(f.total_cycles));
        reg.observe("frame.texels", static_cast<double>(f.texels));
        reg.observe("frame.dram_bytes",
                    static_cast<double>(f.totalTraffic()));
    }

    // Per-cluster shards of the fragment phase. Present for serial and
    // tile-parallel runs alike (the static `tile % clusters` assignment
    // is the same either way), so the imbalance of that assignment is
    // always visible.
    std::size_t n_clusters = 0;
    for (const FrameStats &f : run.frames)
        n_clusters = std::max(n_clusters, f.clusters.size());
    if (n_clusters > 0) {
        std::vector<ClusterStats> totals(n_clusters);
        for (const FrameStats &f : run.frames) {
            for (std::size_t c = 0; c < f.clusters.size(); ++c) {
                totals[c].tiles += f.clusters[c].tiles;
                totals[c].quads += f.clusters[c].quads;
                totals[c].pixels += f.clusters[c].pixels;
                totals[c].texels += f.clusters[c].texels;
                totals[c].cycles += f.clusters[c].cycles;
                totals[c].filter_busy += f.clusters[c].filter_busy;
                totals[c].mem_stall += f.clusters[c].mem_stall;
            }
        }
        reg.set("cluster.count", static_cast<double>(n_clusters));
        Cycle max_cycles = 0;
        double sum_cycles = 0.0;
        for (std::size_t c = 0; c < n_clusters; ++c) {
            const std::string p = "cluster." + std::to_string(c);
            reg.inc(p + ".tiles", totals[c].tiles);
            reg.inc(p + ".quads", totals[c].quads);
            reg.inc(p + ".pixels", totals[c].pixels);
            reg.inc(p + ".fragment_cycles", totals[c].cycles);
            reg.inc(p + ".texunit.texels", totals[c].texels);
            reg.inc(p + ".texunit.filter_cycles", totals[c].filter_busy);
            reg.inc(p + ".texunit.mem_stall_cycles", totals[c].mem_stall);
            max_cycles = std::max(max_cycles, totals[c].cycles);
            sum_cycles += static_cast<double>(totals[c].cycles);
        }
        // Skew of the static tile assignment: slowest cluster over the
        // mean (1.0 = perfectly balanced; the tile-parallel speedup
        // ceiling is clusters / imbalance).
        if (sum_cycles > 0.0)
            reg.set("cluster.imbalance",
                    static_cast<double>(max_cycles) *
                        static_cast<double>(n_clusters) / sum_cycles);
        for (const FrameStats &f : run.frames)
            for (const ClusterStats &cs : f.clusters)
                reg.observe("frame.tiles_per_cluster",
                            static_cast<double>(cs.tiles));
    }
}

Json
metricsJson(const RunMetadata &meta, const RunConfig &config,
            const RunResult &run, double mssim)
{
    Json root = Json::object();
    root.set("schema", Json{kMetricsSchemaName});
    root.set("schema_version", Json{kMetricsSchemaVersion});

    Json rj = Json::object();
    rj.set("tool", Json{meta.tool});
    rj.set("workload", Json{meta.workload});
    rj.set("width", Json{meta.width});
    rj.set("height", Json{meta.height});
    rj.set("frames", Json{meta.frames});
    rj.set("scenario", Json{scenarioMetricName(config.scenario)});
    rj.set("threshold", Json{static_cast<double>(config.threshold)});
    rj.set("tc_scale", Json{static_cast<std::uint64_t>(config.tc_scale)});
    rj.set("llc_scale",
           Json{static_cast<std::uint64_t>(config.llc_scale)});
    rj.set("max_aniso", Json{config.max_aniso});
    rj.set("table_entries", Json{config.table_entries});
    rj.set("threads", Json{config.threads});
    rj.set("tile_parallel", Json{config.tile_parallel});
    rj.set("clusters", Json{config.clusters});
    rj.set("filter_policy",
           Json{std::string(filterPolicyName(config.filter_policy))});
    // Host-machine context: makes cross-machine metric comparisons
    // interpretable (the simulated metrics are host-independent; only
    // wall-clock and the active kernel tier depend on these).
    rj.set("hardware_concurrency",
           Json{static_cast<std::uint64_t>(
               std::thread::hardware_concurrency())});
    rj.set("cpu_sse", Json{simd::hostHasSse()});
    rj.set("cpu_avx2", Json{simd::hostHasAvx2()});
    rj.set("simd_dispatch", Json{std::string(
        simd::tierName(simd::activeTier()))});
    root.set("run", std::move(rj));

    Json agg = Json::object();
    agg.set("avg_cycles", Json{run.avg_cycles});
    agg.set("total_energy_nj", Json{run.total_energy_nj});
    agg.set("avg_power_w", Json{run.avg_power_w});
    if (mssim >= 0.0)
        agg.set("mssim", Json{mssim});
    root.set("aggregate", std::move(agg));

    Json frames = Json::array();
    for (const FrameStats &f : run.frames) {
        Json fj = Json::object();
        for (const FrameField &field : kFrameFields)
            fj.set(field.name, Json{field.get(f)});
        frames.push(std::move(fj));
    }
    root.set("frames", std::move(frames));

    StatRegistry reg;
    buildRunRegistry(run, reg, mssim);
    root.set("registry", reg.snapshot().toJson());
    return root;
}

bool
writeMetricsJson(const std::string &path, const RunMetadata &meta,
                 const RunConfig &config, const RunResult &run,
                 double mssim)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << metricsJson(meta, config, run, mssim).dump(1) << "\n";
    return static_cast<bool>(f);
}

bool
writeMetricsCsv(const std::string &path, const RunMetadata &meta,
                const RunConfig &config, const RunResult &run)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << "# " << kMetricsSchemaName << "-csv v" << kMetricsSchemaVersion
      << " tool=" << meta.tool << " workload=" << meta.workload
      << " scenario=" << scenarioMetricName(config.scenario) << "\n";
    f << "frame";
    for (const FrameField &field : kFrameFields)
        f << "," << field.name;
    f << ",energy_nj\n";
    for (std::size_t i = 0; i < run.frames.size(); ++i) {
        const FrameStats &fs = run.frames[i];
        f << i;
        for (const FrameField &field : kFrameFields)
            f << "," << field.get(fs);
        f << "," << computeEnergy(fs).total_nj() << "\n";
    }
    return static_cast<bool>(f);
}

} // namespace pargpu
