/**
 * @file
 * pargpu_serve request loop: length-prefixed JSON frames over a stream
 * pair, executing against one persistent Session.
 *
 * Framing (both directions): the ASCII decimal byte length of the
 * payload, a single '\n', then exactly that many payload bytes — no
 * trailing separator. A frame's payload is one JSON document.
 *
 * Requests are objects with an "op" member ("ping", "load", "traces",
 * "run", "sweep", "status", "shutdown"; docs/SERVE.md specifies each).
 * Every response carries "status": "ok" or a statusCodeName(), plus
 * "message" on errors; an "id" member in the request is echoed back.
 * "sweep" responds with a deterministic stream of frames: one
 * job-snapshot event per config (in submission order, each emitted when
 * that job finishes) followed by a final frame with the full metrics
 * documents.
 *
 * The loop is transport-agnostic (std::istream/std::ostream), so
 * serve_main.cc binds it to stdin/stdout and tests drive it with string
 * streams; determinism of the simulator makes the full response stream
 * for a given request stream reproducible byte for byte.
 */

#ifndef PARGPU_HARNESS_SERVE_HH
#define PARGPU_HARNESS_SERVE_HH

#include <iosfwd>
#include <string>

#include "harness/session.hh"

namespace pargpu
{

/** Non-fatal workload-name parser ("hl2", "doom3", ...). */
bool parseGameName(const std::string &name, GameId &out);

/** Non-fatal scenario-name parser ("baseline", "noaf", "n", ...). */
bool parseScenarioName(const std::string &name, DesignScenario &out);

/**
 * Strictly parse a request's "config" object into @p out (which keeps
 * its defaults for absent members). Unknown members and wrong types are
 * InvalidRequest — the server never guesses. Range validity is checked
 * separately by validateRunConfig() at submission.
 */
Status parseRunConfigJson(const Json &j, RunConfig &out);

/** Serve-loop construction knobs. */
struct ServeOptions
{
    unsigned job_workers = 0; ///< Session dispatchers (0 = default).
};

/** One server: a Session plus the framed request/response loop. */
class ServeLoop
{
  public:
    /** Payloads above this many bytes are rejected as IoError. */
    static constexpr std::size_t kMaxFrameBytes = 1u << 26;

    ServeLoop(std::istream &in, std::ostream &out,
              ServeOptions options = {});

    /**
     * Process frames until "shutdown", clean EOF, or a transport error.
     * Returns 0 on clean exit, 1 on a malformed/oversized frame.
     */
    int run();

    /** The session requests execute against (tests inspect it). */
    Session &session() { return session_; }

    /**
     * Read one frame's payload. False at clean EOF (error empty) or on
     * a framing violation (error set). Shared with the test driver.
     */
    static bool readFrame(std::istream &in, std::string &payload,
                          std::string *error);

    /** Write one framed payload and flush. */
    static void writeFrame(std::ostream &out, const std::string &payload);

  private:
    /** Dispatch a single-response op; sets shutdown_ for "shutdown". */
    Json handle(const Json &request);

    /** The streamed "sweep" op (writes its own frames). */
    void handleSweep(const Json &request);

    Session session_;
    std::istream &in_;
    std::ostream &out_;
    bool shutdown_ = false;
};

} // namespace pargpu

#endif // PARGPU_HARNESS_SERVE_HH
