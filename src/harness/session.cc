#include "harness/session.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "harness/metrics.hh"
#include "power/energy.hh"
#include "sim/pipeline.hh"

namespace pargpu
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidConfig: return "invalid_config";
    case StatusCode::UnknownTrace: return "unknown_trace";
    case StatusCode::DuplicateKey: return "duplicate_key";
    case StatusCode::InvalidRequest: return "invalid_request";
    case StatusCode::ShuttingDown: return "shutting_down";
    case StatusCode::IoError: return "io_error";
    }
    return "unknown";
}

Status
validateRunConfig(const RunConfig &config)
{
    const std::vector<ConfigError> errors = config.validate();
    if (errors.empty())
        return Status::success();
    std::string message;
    for (ConfigError e : errors) {
        if (!message.empty())
            message += "; ";
        message += configErrorMessage(e);
    }
    return Status::fail(StatusCode::InvalidConfig, std::move(message));
}

const EnvOverrides &
envOverrides()
{
    // One validated pass, cached for the process. Each reader below is
    // itself once-cached; touching them all here (the Session
    // constructor's first act) pins the whole environment before any
    // job runs, so server jobs can never observe a mid-run change.
    static const EnvOverrides env = [] {
        EnvOverrides e;
        e.default_threads = ThreadPool::defaultThreads();
        e.tile_parallel_forced = tileParallelForced();
        e.filter_policy = defaultFilterPolicy();
        e.texel_storage = TextureMap::defaultStorage();
        e.contract_report =
            std::getenv("PARGPU_CONTRACT_REPORT") != nullptr;
        // ContractStats harness hook: with PARGPU_CONTRACT_REPORT set,
        // dump every contract site's evaluation count at exit
        // (scripts/check.sh greps for it).
        if (e.contract_report)
            std::atexit([] { contract::statsReport(std::cerr); });
        return e;
    }();
    return env;
}

namespace detail
{

void
warnLegacyEntryPoint(const char *legacy, const char *replacement)
{
    static Mutex mu;
    static std::set<std::string> warned;
    MutexLock lk(mu);
    if (!warned.insert(legacy).second)
        return;
    std::fprintf(stderr,
                 "pargpu: %s is deprecated for external callers; use %s "
                 "(pargpu/session.hh, docs/SERVE.md)\n",
                 legacy, replacement);
}

} // namespace detail

// --- Job -----------------------------------------------------------------

/** Forwards per-frame completions into the job's guarded partial state. */
class Job::Progress : public detail::RunProgress
{
  public:
    explicit Progress(Job &job) : job_(job) {}

    void
    onFrame(std::size_t index, const FrameStats &stats) override
    {
        MutexLock lk(job_.mu_);
        if (index < job_.partial_done_.size() &&
            !job_.partial_done_[index]) {
            job_.partial_[index] = stats;
            job_.partial_done_[index] = true;
            ++job_.n_done_;
        }
    }

  private:
    Job &job_;
};

Job::Job(Passkey, std::string trace_key,
         std::shared_ptr<const GameTrace> trace, const RunConfig &config)
    : trace_key_(std::move(trace_key)), trace_(std::move(trace)),
      config_(config), frames_total_(trace_->cameras.size()),
      partial_(frames_total_), partial_done_(frames_total_, false)
{
}

Job::State
Job::state() const
{
    MutexLock lk(mu_);
    return state_;
}

void
Job::wait() const
{
    UniqueLock lk(mu_);
    while (state_ != State::Done)
        cv_.wait(lk);
}

std::size_t
Job::framesCompleted() const
{
    MutexLock lk(mu_);
    return n_done_;
}

const RunResult &
Job::result() const
{
    UniqueLock lk(mu_);
    while (state_ != State::Done)
        cv_.wait(lk);
    // State::Done is terminal and result_ is never written again, so
    // the reference stays valid after the lock is released.
    return result_;
}

void
Job::execute(std::atomic<std::size_t> *completed)
{
    {
        MutexLock lk(mu_);
        state_ = State::Running;
    }
    cv_.notify_all();
    Progress progress(*this);
    RunResult run = detail::renderTrace(*trace_, config_, &progress);
    {
        MutexLock lk(mu_);
        result_ = std::move(run);
        // Count the completion before Done is published: a waiter that
        // has observed Done must observe the session counter too.
        if (completed != nullptr)
            completed->fetch_add(1, std::memory_order_relaxed);
        state_ = State::Done;
    }
    cv_.notify_all();
}

Json
Job::snapshot() const
{
    // Copy the completed frames (in frame order) under the lock, then
    // aggregate outside it — snapshots never block the run for longer
    // than the copy.
    State state;
    std::vector<FrameStats> frames;
    {
        MutexLock lk(mu_);
        state = state_;
        if (state == State::Done) {
            frames = result_.frames;
        } else {
            frames.reserve(n_done_);
            for (std::size_t i = 0; i < partial_done_.size(); ++i)
                if (partial_done_[i])
                    frames.push_back(partial_[i]);
        }
    }

    // The same serial frame-order aggregation renderTrace() performs, so
    // a snapshot taken after Done matches the final result exactly.
    RunResult partial;
    double cycles = 0.0, power = 0.0;
    for (const FrameStats &f : frames) {
        EnergyBreakdown e = computeEnergy(f);
        partial.total_energy_nj += e.total_nj();
        power += averagePowerW(e, f);
        cycles += static_cast<double>(f.total_cycles);
        partial.frames.push_back(f);
    }
    if (!frames.empty()) {
        partial.avg_cycles = cycles / static_cast<double>(frames.size());
        partial.avg_power_w = power / static_cast<double>(frames.size());
    }

    const char *state_name = state == State::Queued    ? "queued"
                             : state == State::Running ? "running"
                                                       : "done";
    Json j = Json::object();
    j.set("type", Json{"job_snapshot"});
    j.set("state", Json{state_name});
    j.set("trace", Json{trace_key_});
    j.set("frames_total",
          Json{static_cast<std::uint64_t>(frames_total_)});
    j.set("frames_completed",
          Json{static_cast<std::uint64_t>(frames.size())});
    Json agg = Json::object();
    agg.set("avg_cycles", Json{partial.avg_cycles});
    agg.set("total_energy_nj", Json{partial.total_energy_nj});
    agg.set("avg_power_w", Json{partial.avg_power_w});
    j.set("aggregate", std::move(agg));
    StatRegistry reg;
    buildRunRegistry(partial, reg);
    j.set("registry", reg.snapshot().toJson());
    return j;
}

// --- Session -------------------------------------------------------------

Session::Session(SessionOptions options)
    : env_(envOverrides()),
      job_workers_(options.job_workers > 0 ? options.job_workers : 2)
{
}

Session::~Session()
{
    // Swap the dispatchers out under the lock, then join without it
    // (they need the mutex to drain); queued jobs still run to
    // completion first, so surviving JobHandles always reach Done.
    std::vector<std::thread> dispatchers;
    {
        MutexLock lk(mu_);
        stop_ = true;
        dispatchers.swap(dispatchers_);
    }
    cv_.notify_all();
    for (std::thread &t : dispatchers)
        t.join();
}

Status
Session::load(const std::string &key, GameTrace trace)
{
    if (key.empty())
        return Status::fail(StatusCode::InvalidRequest,
                            "trace key must be non-empty");
    auto asset = std::make_shared<const GameTrace>(std::move(trace));
    MutexLock lk(mu_);
    if (!traces_.emplace(key, std::move(asset)).second)
        return Status::fail(StatusCode::DuplicateKey,
                            "trace key '" + key +
                                "' already loaded (assets are immutable)");
    return Status::success();
}

Status
Session::load(const std::string &key, GameId game, int width, int height,
              int frames)
{
    if (width <= 0 || height <= 0 || frames <= 0)
        return Status::fail(StatusCode::InvalidRequest,
                            "viewport and frame count must be positive");
    return load(key, buildGameTrace(game, width, height, frames));
}

std::shared_ptr<const GameTrace>
Session::trace(const std::string &key) const
{
    MutexLock lk(mu_);
    auto it = traces_.find(key);
    return it == traces_.end() ? nullptr : it->second;
}

std::vector<std::string>
Session::traceKeys() const
{
    std::vector<std::string> keys;
    MutexLock lk(mu_);
    keys.reserve(traces_.size());
    for (const auto &kv : traces_)
        keys.push_back(kv.first);
    return keys;
}

RunResult
Session::run(const GameTrace &trace, const RunConfig &config)
{
    return detail::renderTrace(trace, config);
}

std::vector<RunResult>
Session::sweep(const GameTrace &trace,
               const std::vector<RunConfig> &configs, int threads)
{
    return detail::renderSweep(trace, configs, threads);
}

Status
Session::sweep(const std::string &key,
               const std::vector<RunConfig> &configs,
               std::vector<RunResult> *results, int threads)
{
    std::shared_ptr<const GameTrace> asset = trace(key);
    if (!asset)
        return Status::fail(StatusCode::UnknownTrace,
                            "no trace loaded under key '" + key + "'");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        Status st = validateRunConfig(configs[i]);
        if (!st.ok()) {
            st.message =
                "configs[" + std::to_string(i) + "]: " + st.message;
            return st;
        }
    }
    std::vector<RunResult> out =
        detail::renderSweep(*asset, configs, threads);
    if (results != nullptr)
        *results = std::move(out);
    return Status::success();
}

JobHandle
Session::submit(const std::string &key, const RunConfig &config,
                Status *status)
{
    Status st = Status::success();
    std::shared_ptr<const GameTrace> asset = trace(key);
    if (!asset)
        st = Status::fail(StatusCode::UnknownTrace,
                          "no trace loaded under key '" + key + "'");
    else
        st = validateRunConfig(config);
    if (!st.ok()) {
        if (status != nullptr)
            *status = st;
        return nullptr;
    }
    JobHandle job =
        std::make_shared<Job>(Job::Passkey{}, key, std::move(asset),
                              config);
    enqueue(job);
    if (status != nullptr)
        *status = Status::success();
    return job;
}

std::vector<JobHandle>
Session::submitSweep(const std::string &key,
                     const std::vector<RunConfig> &configs,
                     Status *status)
{
    std::shared_ptr<const GameTrace> asset = trace(key);
    Status st = Status::success();
    if (!asset)
        st = Status::fail(StatusCode::UnknownTrace,
                          "no trace loaded under key '" + key + "'");
    for (std::size_t i = 0; st.ok() && i < configs.size(); ++i) {
        st = validateRunConfig(configs[i]);
        if (!st.ok())
            st.message =
                "configs[" + std::to_string(i) + "]: " + st.message;
    }
    if (!st.ok()) {
        if (status != nullptr)
            *status = st;
        return {};
    }
    std::vector<JobHandle> jobs;
    jobs.reserve(configs.size());
    for (const RunConfig &config : configs) {
        JobHandle job = std::make_shared<Job>(Job::Passkey{}, key, asset,
                                              config);
        enqueue(job);
        jobs.push_back(std::move(job));
    }
    if (status != nullptr)
        *status = Status::success();
    return jobs;
}

void
Session::enqueue(const JobHandle &job)
{
    {
        MutexLock lk(mu_);
        // Dispatchers spin up lazily so synchronous-only sessions (and
        // the global legacy-wrapper session) never spawn threads.
        while (dispatchers_.size() < job_workers_)
            dispatchers_.emplace_back([this] { dispatcherLoop(); });
        queue_.push_back(job);
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
}

void
Session::dispatcherLoop()
{
    for (;;) {
        JobHandle job;
        {
            UniqueLock lk(mu_);
            while (!stop_ && queue_.empty())
                cv_.wait(lk);
            if (queue_.empty())
                return; // Tearing down and fully drained.
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job->execute(&completed_);
    }
}

std::size_t
Session::jobsSubmitted() const
{
    return submitted_.load(std::memory_order_relaxed);
}

std::size_t
Session::jobsCompleted() const
{
    return completed_.load(std::memory_order_relaxed);
}

Session &
Session::global()
{
    static Session session;
    return session;
}

} // namespace pargpu
