#include "trace/trace.hh"

#include <cstdio>
#include <memory>

namespace pargpu
{

namespace
{

// Little helpers for fixed-width binary I/O.
struct Writer
{
    std::FILE *f;
    bool ok = true;

    void
    u32(std::uint32_t v)
    {
        ok = ok && std::fwrite(&v, sizeof(v), 1, f) == 1;
    }

    void
    f32(float v)
    {
        ok = ok && std::fwrite(&v, sizeof(v), 1, f) == 1;
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        ok = ok &&
            std::fwrite(s.data(), 1, s.size(), f) == s.size();
    }

    void
    mat(const Mat4 &m)
    {
        for (int c = 0; c < 4; ++c)
            for (int r = 0; r < 4; ++r)
                f32(m.m[c][r]);
    }
};

struct Reader
{
    std::FILE *f;
    bool ok = true;

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        ok = ok && std::fread(&v, sizeof(v), 1, f) == 1;
        return v;
    }

    float
    f32()
    {
        float v = 0;
        ok = ok && std::fread(&v, sizeof(v), 1, f) == 1;
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!ok || n > (1u << 20)) {
            ok = false;
            return {};
        }
        std::string s(n, '\0');
        ok = ok && std::fread(s.data(), 1, n, f) == n;
        return s;
    }

    Mat4
    mat()
    {
        Mat4 m;
        for (int c = 0; c < 4; ++c)
            for (int r = 0; r < 4; ++r)
                m.m[c][r] = f32();
        return m;
    }
};

} // namespace

bool
writeTrace(const GameTrace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    Writer w{f};

    w.u32(kTraceMagic);
    w.str(trace.name);
    w.u32(static_cast<std::uint32_t>(trace.id));
    w.u32(static_cast<std::uint32_t>(trace.width));
    w.u32(static_cast<std::uint32_t>(trace.height));

    w.u32(static_cast<std::uint32_t>(trace.recipes.size()));
    for (const TextureRecipe &r : trace.recipes) {
        w.u32(static_cast<std::uint32_t>(r.kind));
        w.u32(static_cast<std::uint32_t>(r.size));
        w.u32(r.seed);
        w.u32(static_cast<std::uint32_t>(r.wrap));
    }

    w.u32(static_cast<std::uint32_t>(trace.scene.draws.size()));
    for (const DrawCall &d : trace.scene.draws) {
        w.u32(static_cast<std::uint32_t>(d.mesh.texture_id));
        w.u32(static_cast<std::uint32_t>(d.filter));
        w.u32((d.backface_cull ? 1u : 0u) | (d.specular ? 2u : 0u));
        w.mat(d.model);
        w.u32(static_cast<std::uint32_t>(d.mesh.vertices.size()));
        for (const Vertex &v : d.mesh.vertices) {
            w.f32(v.pos.x);
            w.f32(v.pos.y);
            w.f32(v.pos.z);
            w.f32(v.uv.x);
            w.f32(v.uv.y);
        }
        w.u32(static_cast<std::uint32_t>(d.mesh.indices.size()));
        for (std::uint32_t i : d.mesh.indices)
            w.u32(i);
    }

    w.u32(static_cast<std::uint32_t>(trace.cameras.size()));
    for (const Camera &c : trace.cameras) {
        w.mat(c.view);
        w.mat(c.proj);
        w.f32(c.eye.x);
        w.f32(c.eye.y);
        w.f32(c.eye.z);
    }

    bool ok = w.ok;
    std::fclose(f);
    return ok;
}

GameTrace
readTrace(const std::string &path, bool &ok)
{
    GameTrace t;
    ok = false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return t;
    Reader r{f};

    if (r.u32() != kTraceMagic) {
        std::fclose(f);
        return t;
    }
    t.name = r.str();
    t.scene.name = t.name;
    t.id = static_cast<GameId>(r.u32());
    t.width = static_cast<int>(r.u32());
    t.height = static_cast<int>(r.u32());

    std::uint32_t ntex = r.u32();
    if (!r.ok || ntex > 4096) {
        std::fclose(f);
        return t;
    }
    for (std::uint32_t i = 0; i < ntex && r.ok; ++i) {
        TextureRecipe rec;
        rec.kind = static_cast<TextureKind>(r.u32());
        rec.size = static_cast<int>(r.u32());
        rec.seed = r.u32();
        rec.wrap = static_cast<WrapMode>(r.u32());
        if (!r.ok || rec.size <= 0 || rec.size > 8192) {
            r.ok = false;
            break;
        }
        t.recipes.push_back(rec);
        t.scene.addTexture(std::make_unique<TextureMap>(
            rec.size, rec.size,
            generateTexture(rec.kind, rec.size, rec.seed), rec.wrap));
    }

    std::uint32_t ndraws = r.u32();
    if (!r.ok || ndraws > (1u << 20)) {
        std::fclose(f);
        return t;
    }
    for (std::uint32_t i = 0; i < ndraws && r.ok; ++i) {
        DrawCall d;
        d.mesh.texture_id = static_cast<int>(r.u32());
        d.filter = static_cast<FilterMode>(r.u32());
        std::uint32_t flags = r.u32();
        d.backface_cull = (flags & 1u) != 0;
        d.specular = (flags & 2u) != 0;
        d.model = r.mat();
        std::uint32_t nverts = r.u32();
        if (!r.ok || nverts > (1u << 24)) {
            r.ok = false;
            break;
        }
        d.mesh.vertices.resize(nverts);
        for (Vertex &v : d.mesh.vertices) {
            v.pos.x = r.f32();
            v.pos.y = r.f32();
            v.pos.z = r.f32();
            v.uv.x = r.f32();
            v.uv.y = r.f32();
        }
        std::uint32_t nidx = r.u32();
        if (!r.ok || nidx > (1u << 26)) {
            r.ok = false;
            break;
        }
        d.mesh.indices.resize(nidx);
        for (std::uint32_t &idx : d.mesh.indices)
            idx = r.u32();
        t.scene.draws.push_back(std::move(d));
    }

    std::uint32_t ncams = r.u32();
    if (!r.ok || ncams > (1u << 20)) {
        std::fclose(f);
        return t;
    }
    for (std::uint32_t i = 0; i < ncams && r.ok; ++i) {
        Camera c;
        c.view = r.mat();
        c.proj = r.mat();
        c.eye.x = r.f32();
        c.eye.y = r.f32();
        c.eye.z = r.f32();
        t.cameras.push_back(c);
    }

    ok = r.ok;
    std::fclose(f);
    return t;
}

} // namespace pargpu
