/**
 * @file
 * Binary trace serialization for game workloads — the analog of the
 * ATTILA-trace capture the paper replays.
 *
 * A trace stores texture *recipes* (procedural generator parameters)
 * rather than raw texels, the full draw lists with transforms and filter
 * settings, and the per-frame cameras. Reading a trace reconstructs a
 * bit-identical workload.
 */

#ifndef PARGPU_TRACE_TRACE_HH
#define PARGPU_TRACE_TRACE_HH

#include <string>

#include "scenes/scenes.hh"

namespace pargpu
{

/** Trace file magic + version. */
inline constexpr std::uint32_t kTraceMagic = 0x50475431; // "PGT1"

/**
 * Serialize @p trace to @p path.
 * @return true on success.
 */
bool writeTrace(const GameTrace &trace, const std::string &path);

/**
 * Load a trace previously written with writeTrace(); textures are
 * regenerated from their recipes.
 *
 * @param path  File to read.
 * @param ok    Set to whether the load succeeded.
 */
GameTrace readTrace(const std::string &path, bool &ok);

} // namespace pargpu

#endif // PARGPU_TRACE_TRACE_HH
