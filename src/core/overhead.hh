/**
 * @file
 * PATU hardware-overhead model (Section V-D).
 *
 * The paper sizes the added structures with McPAT/CACTI at 28 nm; this
 * module reproduces the same accounting analytically: the dominant cost is
 * the four 16-entry texel-address tables per texture unit (one per pixel of
 * a quad), 260 bits per entry, ~2 KB per texture unit in total, about
 * 0.15 mm^2 per unified shader cluster or 0.2 % of a 66 mm^2 GPU.
 */

#ifndef PARGPU_CORE_OVERHEAD_HH
#define PARGPU_CORE_OVERHEAD_HH

namespace pargpu
{

/** Inputs to the overhead estimate. */
struct OverheadConfig
{
    int pipes_per_tu = 4;     ///< Filtering pipelines (pixels of a quad).
    int table_entries = 16;   ///< Entries per table (max AF level).
    int addrs_per_entry = 8;  ///< Texel addresses per trilinear sample.
    int addr_bits = 32;       ///< Address width.
    int count_bits = 4;       ///< Count-tag width.
    int clusters = 4;         ///< Shader clusters (1 TU each).
    double gpu_area_mm2 = 66.0;          ///< Total GPU area at 28 nm.
    double sram_mm2_per_kb = 0.0735;     ///< 28 nm SRAM density (McPAT).
    double logic_area_mm2 = 0.003;       ///< AF-SSIM compute logic per TU.
};

/** Derived overhead figures. */
struct OverheadReport
{
    int bits_per_entry = 0;        ///< (8 x 32) + 4 = 260.
    double table_bytes_per_tu = 0; ///< ~2 KB.
    double area_mm2_per_cluster = 0; ///< ~0.15 mm^2.
    double total_area_mm2 = 0;
    double area_fraction = 0;      ///< vs. gpu_area_mm2 (~0.002).
    int table_access_cycles = 1;   ///< CACTI: < 1 cycle at 1 GHz.
};

/** Compute the Section V-D overhead report. */
OverheadReport computeOverhead(const OverheadConfig &config = {});

} // namespace pargpu

#endif // PARGPU_CORE_OVERHEAD_HH
