#include "core/hashtable.hh"

#include "common/contract.hh"

namespace pargpu
{

bool
TexelAddressTable::insert(const TexelAddrSet &addrs)
{
    PARGPU_INVARIANT(valid_ >= 0 && valid_ <= capacity(),
                     "occupancy out of bounds: valid=", valid_,
                     " capacity=", capacity());
    ++inserted_;
    // Top-to-bottom associative compare, as in the hardware description.
    for (int i = 0; i < valid_; ++i) {
        if (entries_[i].addrs == addrs) {
            // Saturating count tag (4 bits).
            constexpr unsigned max_count = (1u << kCountBits) - 1;
            if (entries_[i].count < max_count + 1)
                ++entries_[i].count;
            PARGPU_INVARIANT(entries_[i].count <= max_count + 1,
                             "count tag overflow: count=",
                             entries_[i].count);
            return true;
        }
    }
    if (valid_ < capacity()) {
        entries_[valid_].addrs = addrs;
        entries_[valid_].count = 1;
        ++valid_;
    }
    // At the baseline capacity (16 == maxAniso) the table can never
    // overflow. With a smaller ablation table an overflowing sample is
    // dropped from the distribution (conservative: lowers Txds accuracy,
    // never causes false approximation).
    return false;
}

std::vector<float>
TexelAddressTable::probabilityVector() const
{
    std::vector<float> p;
    if (inserted_ == 0)
        return p;
    float inv = 1.0f / static_cast<float>(inserted_);
    int stored = 0;
    for (int i = 0; i < valid_; ++i)
        stored += static_cast<int>(entries_[i].count);
    // Entries only accumulate via insert(), so the stored mass can never
    // exceed the inserted sample count (an overflowing ablation table
    // drops samples; it never invents them).
    PARGPU_INVARIANT(stored <= inserted_,
                     "stored=", stored, " inserted=", inserted_);
    // Samples dropped by an overflowing (ablation-sized) table must be
    // treated as distinct singleton events: assuming anything else would
    // understate the entropy and approve AF approximations the full
    // table would have rejected. This keeps undersized tables strictly
    // conservative.
    int dropped = inserted_ - stored;
    p.reserve(static_cast<std::size_t>(valid_ + dropped));
    for (int i = 0; i < valid_; ++i)
        p.push_back(static_cast<float>(entries_[i].count) * inv);
    for (int i = 0; i < dropped; ++i)
        p.push_back(inv);
    return p;
}

void
TexelAddressTable::reset()
{
    valid_ = 0;
    inserted_ = 0;
    for (Entry &e : entries_)
        e.count = 0;
}

} // namespace pargpu
