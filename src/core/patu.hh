/**
 * @file
 * The Perception-Aware Texture Unit decision logic (Section V).
 *
 * PATU sits in the conventional texture-filtering pipeline (Fig. 14) and
 * decides, per pixel and before texel fetching, whether anisotropic
 * filtering can be replaced with a single trilinear sample:
 *
 *  - Stage 1, after Texel Generation: sample-area similarity check —
 *    AF-SSIM(N) (Eq. 6) against the threshold.
 *  - Stage 2, after Texel Address Calculation: texel-distribution check —
 *    AF's trilinear-sample address sets go through the 16-entry hash table,
 *    the count tags form a probability vector, and AF-SSIM(Txds) (Eq. 10)
 *    is compared against the same unified threshold.
 *
 * Approximated pixels are filtered with TF; under the full PATU design they
 * reuse AF's LOD (the finer mip level selected by the minor axis) to avoid
 * the intra-frame LOD shift of Section V-C(2).
 */

#ifndef PARGPU_CORE_PATU_HH
#define PARGPU_CORE_PATU_HH

#include <cstdint>
#include <span>
#include <string>

#include "common/stats.hh"
#include "core/hashtable.hh"
#include "texture/sampler.hh"

namespace pargpu
{

/** The design scenarios compared throughout Section VII. */
enum class DesignScenario
{
    Baseline,    ///< Conventional 16x AF on every anisotropic pixel.
    NoAF,        ///< AF disabled: TF everywhere (Section II-B study).
    AfSsimN,     ///< Sample-area based prediction only.
    AfSsimNTxds, ///< Sample-area + distribution based prediction.
    Patu,        ///< Both predictions + LOD-shift elimination.
};

/** Human-readable scenario name for report tables. */
const char *scenarioName(DesignScenario s);

/** PATU configuration knobs. */
struct PatuConfig
{
    DesignScenario scenario = DesignScenario::Patu;
    /**
     * Unified AF-SSIM threshold in [0, 1] for both prediction stages
     * (Section IV-C(C)). Predicted AF-SSIM above the threshold marks the
     * pixel approximated. 0 disables AF entirely; 1 keeps the baseline.
     * Default 0.4 = the paper's average best point.
     */
    float threshold = 0.4f;
    int max_aniso = 16;     ///< Texture-unit anisotropy cap.
    int table_entries = 16; ///< Texel-address table capacity (ablation).
};

/** How a pixel's filtering decision was reached. */
enum class DecisionStage
{
    TrivialTf,    ///< N == 1: AF degenerates to TF, no prediction needed.
    SampleArea,   ///< Approximated by stage 1 (AF-SSIM(N)).
    Distribution, ///< Approximated by stage 2 (AF-SSIM(Txds)).
    FullAf,       ///< Prediction kept AF.
    Forced,       ///< Scenario forced the outcome (Baseline / NoAF).
};

/** Result of the per-pixel decision flow (Fig. 13). */
struct PixelDecision
{
    bool approximate = false;  ///< Filter with TF instead of AF.
    bool need_distribution = false; ///< Stage 2 must still run.
    DecisionStage stage = DecisionStage::FullAf;
    float af_ssim_n = 1.0f;    ///< Stage-1 prediction value.
    float txds_value = -1.0f;  ///< Stage-2 Txds (-1 if not evaluated).
    float af_ssim_txds = -1.0f;///< Stage-2 prediction (-1 if not evaluated).
    float lod = 0.0f;          ///< LOD the chosen filter should use.
    int sample_size = 1;       ///< Sample count the chosen filter issues.
};

/**
 * One PATU decision pipeline (a texture unit instantiates four, one per
 * pixel of a quad). Owns a TexelAddressTable and accumulates the decision
 * statistics the evaluation section reports.
 */
class PatuUnit
{
  public:
    explicit PatuUnit(const PatuConfig &config)
        : config_(config), table_(config.table_entries)
    {
    }

    const PatuConfig &config() const { return config_; }

    /**
     * Run everything decidable after Texel Generation: scenario forcing,
     * the trivial N == 1 case and the stage-1 sample-area check. If the
     * result has need_distribution set, the caller must compute the AF
     * footprints (address calculation) and call finishDistribution().
     */
    PixelDecision preDecide(const AnisotropyInfo &info);

    /**
     * preDecide() for @p count pixels that share the same AnisotropyInfo
     * (a quad's covered pixels — the info is quad-wide). The decision is
     * a pure function of the info, so one evaluation serves all pixels;
     * the per-pixel decision counters advance by @p count, exactly as
     * count preDecide() calls would. count == 0 is a no-op returning the
     * (unused) decision.
     */
    PixelDecision preDecideN(const AnisotropyInfo &info, int count);

    /**
     * Run the stage-2 distribution check on the AF trilinear samples'
     * address sets and finalize the decision.
     *
     * @param d        Decision returned by preDecide() with
     *                 need_distribution set.
     * @param info     The pixel's anisotropy parameters (for LOD re-select).
     * @param samples  The N AF trilinear samples (address sets filled in).
     */
    void finishDistribution(PixelDecision &d, const AnisotropyInfo &info,
                            std::span<const TrilinearSample> samples);

    /** finishDistribution() on pre-extracted address sets (hot path). */
    void finishDistribution(PixelDecision &d, const AnisotropyInfo &info,
                            std::span<const TexelAddrSet> sets);

    /**
     * Measurement helper for the Fig. 12 statistic: count how many of the
     * AF samples share a texel set with a previously seen sample of the
     * same pixel (first occurrence of each distinct set is the "original").
     *
     * @return Number of shared (non-first-occurrence) samples.
     */
    int countSharedSamples(std::span<const TrilinearSample> samples);

    /** countSharedSamples() on pre-extracted address sets (hot path). */
    int countSharedSamples(std::span<const TexelAddrSet> sets);

    /** Decision statistics accumulated since construction. */
    const StatRegistry &stats() const { return stats_; }
    StatRegistry &stats() { return stats_; }

  private:
    /** LOD an approximated pixel's TF should use (Section V-C(2)). */
    float approximatedLod(const AnisotropyInfo &info) const;

    /**
     * Cached registry cell, bound on first use so counters that are never
     * touched stay absent from exports — exactly like inc() on demand.
     * The PatuUnit is single-threaded (one per texture-unit pipeline), so
     * bumping the cell directly is safe; see StatRegistry::counterCell().
     */
    std::uint64_t &
    cell(std::uint64_t *&c, const char *name)
    {
        if (c == nullptr)
            c = stats_.counterCell(name);
        return *c;
    }

    PatuConfig config_;
    TexelAddressTable table_;
    StatRegistry stats_;
    std::uint64_t *ctr_pixels_ = nullptr;
    std::uint64_t *ctr_full_af_ = nullptr;
    std::uint64_t *ctr_approx_forced_ = nullptr;
    std::uint64_t *ctr_trivial_tf_ = nullptr;
    std::uint64_t *ctr_stage1_ = nullptr;
    std::uint64_t *ctr_stage2_ = nullptr;
    std::uint64_t *ctr_addr_recalc_ = nullptr;
    std::uint64_t *ctr_table_inserts_ = nullptr;
    std::uint64_t *ctr_table_shared_ = nullptr;
};

/** Extract the 8-address set of a trilinear sample. */
TexelAddrSet addrSetOf(const TrilinearSample &s);

} // namespace pargpu

#endif // PARGPU_CORE_PATU_HH
