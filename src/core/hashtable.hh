/**
 * @file
 * PATU's runtime texel-address hash table (component 2 in Fig. 14).
 *
 * A fully-associative 16-entry SRAM structure (16 == the texture unit's
 * maximum anisotropy level). Each entry stores the eight 32-bit texel
 * addresses of one trilinear sample plus a 4-bit count tag. Incoming
 * trilinear-sample address sets are compared against stored entries top to
 * bottom; a match increments the entry's count, otherwise the set is stored
 * in the first free entry. After all N samples of a pixel are inserted, the
 * count tags form the probability vector for the texel-distribution entropy
 * (Section IV-C(B)).
 */

#ifndef PARGPU_CORE_HASHTABLE_HH
#define PARGPU_CORE_HASHTABLE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh" // TexelAddrSet: one sample's 8 addresses.

namespace pargpu
{

/**
 * The texel-address lookup table of one PATU filtering pipeline.
 *
 * The baseline design has 16 entries (== the texture unit's maximum
 * anisotropy, so a pixel can never overflow it); smaller tables are a
 * cost-reduction ablation in which overflowing samples are dropped from
 * the distribution (conservative: can only make Txds lower and keep AF).
 */
class TexelAddressTable
{
  public:
    /** Entries == maximum anisotropy of the texture unit (Section V-A). */
    static constexpr int kEntries = 16;
    /** Count tag width in bits (saturates at 2^4 - 1 = 15 extra hits). */
    static constexpr unsigned kCountBits = 4;

    /** Storage bits per entry: 8 x 32-bit addresses + count tag. */
    static constexpr unsigned kEntryBits = 8 * 32 + kCountBits;

    /** Construct with @p entries entries (the baseline uses kEntries). */
    explicit TexelAddressTable(int entries = kEntries)
        : entries_(static_cast<std::size_t>(entries > 0 ? entries : 1))
    {
        reset();
    }

    /** Configured capacity. */
    int capacity() const { return static_cast<int>(entries_.size()); }

    /**
     * Insert one trilinear sample's address set.
     *
     * @return true if the set matched an existing entry (a shared sample).
     */
    bool insert(const TexelAddrSet &addrs);

    /** Number of valid entries (distinct texel sets seen). */
    int distinctSets() const { return valid_; }

    /** Total samples inserted since the last reset(). */
    int samplesInserted() const { return inserted_; }

    /**
     * Probability vector over distinct texel sets: count_i / total, in
     * entry order. Empty if nothing was inserted.
     */
    std::vector<float> probabilityVector() const;

    /** Clear all entries for the next pixel (Section V-B). */
    void reset();

  private:
    struct Entry
    {
        TexelAddrSet addrs{};
        unsigned count = 0; ///< Samples mapped here (saturating tag + 1).
    };

    std::vector<Entry> entries_;
    int valid_ = 0;
    int inserted_ = 0;
};

} // namespace pargpu

#endif // PARGPU_CORE_HASHTABLE_HH
