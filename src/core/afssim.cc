#include "core/afssim.hh"

#include <algorithm>
#include <cmath>

#include "common/contract.hh"
#include "common/logging.hh"

namespace pargpu
{

float
afSsimFromSimilarity(float mu)
{
    float num = 2.0f * mu + kAfSsimC1;
    float den = mu * mu + 1.0f + kAfSsimC1;
    float r = num / den;
    return r * r;
}

float
afSsimFromSampleSize(int n)
{
    if (n < 1)
        panic("afSsimFromSampleSize: sample size must be >= 1");
    float fn = static_cast<float>(n);
    float r = 2.0f * fn / (fn * fn + 1.0f);
    return r * r;
}

float
entropyBits(const std::vector<float> &p)
{
    float e = 0.0f;
    for (float pi : p) {
        // count * (1/total) can land one ulp above 1.0 when count==total.
        PARGPU_CHECK_RANGE(pi, 0.0f, 1.0f + 1e-5f, "probability mass");
        if (pi > 0.0f)
            e -= pi * std::log2(pi);
    }
    PARGPU_INVARIANT(e >= -1e-4f, "entropy must be non-negative: ", e);
    return e;
}

float
txds(const std::vector<float> &p, int n)
{
    if (n < 1)
        panic("txds: sample size must be >= 1");
    if (n == 1)
        return 1.0f;
    float norm = std::log2(static_cast<float>(n));
    float t = 1.0f - entropyBits(p) / norm;
    return std::clamp(t, 0.0f, 1.0f);
}

float
afSsimFromTxds(float txds_value)
{
    float t = std::clamp(txds_value, 0.0f, 1.0f);
    float r = 2.0f * t / (t * t + 1.0f);
    return r * r;
}

} // namespace pargpu
