/**
 * @file
 * AF-SSIM: the paper's runtime-predictable reconstruction of SSIM for
 * anisotropic-filtering approximation (Section IV).
 *
 * The key identity (Eq. 4) is that the AF result Y of a pixel equals its
 * trilinear result X scaled by the mean ratio mu of AF's trilinear input
 * samples to X. Substituting Y = mu * X into the SSIM formula collapses it
 * to a function of mu alone (Eq. 5); mu is then approximated before any
 * texel is fetched, either from the anisotropy sample size N (Eq. 6) or
 * from the texel-distribution similarity Txds (Eq. 8-10).
 */

#ifndef PARGPU_CORE_AFSSIM_HH
#define PARGPU_CORE_AFSSIM_HH

#include <vector>

namespace pargpu
{

/** SSIM stability constant C1 = (0.01 * L)^2 with L = 1 (Section II-C). */
inline constexpr float kAfSsimC1 = 0.0001f;

/**
 * AF-SSIM as a function of the similarity degree mu (Eq. 5):
 * ((2 mu + C1) / (mu^2 + 1 + C1))^2.
 *
 * Equals 1 when mu == 1 (AF and TF identical) and decreases as mu departs
 * from 1.
 */
float afSsimFromSimilarity(float mu);

/**
 * Sample-area based prediction AF-SSIM(N) (Eq. 6): (2N / (N^2 + 1))^2 for
 * the anisotropy sample size N in [1, 16]. Monotonically decreasing in N;
 * equals 1 at N == 1.
 */
float afSsimFromSampleSize(int n);

/**
 * Shannon entropy (bits) of a probability vector (Eq. 8).
 * Zero-probability entries contribute nothing.
 *
 * @pre Entries are non-negative; callers normally pass a vector summing
 *      to 1, but the function does not renormalize.
 */
float entropyBits(const std::vector<float> &p);

/**
 * Texel distribution similarity (Eq. 9):
 * Txds = 1 - Entropy(P) / log2(N), clamped to [0, 1]. By convention
 * Txds = 1 when N == 1 (a single sample trivially shares its own texels).
 *
 * @param p  Probability of each distinct shared texel set.
 * @param n  Anisotropy sample size the probabilities were gathered over.
 */
float txds(const std::vector<float> &p, int n);

/**
 * Distribution based prediction AF-SSIM(Txds) (Eq. 10):
 * (2 Txds / (Txds^2 + 1))^2.
 */
float afSsimFromTxds(float txds_value);

} // namespace pargpu

#endif // PARGPU_CORE_AFSSIM_HH
