#include "core/overhead.hh"

namespace pargpu
{

OverheadReport
computeOverhead(const OverheadConfig &config)
{
    OverheadReport r;
    r.bits_per_entry =
        config.addrs_per_entry * config.addr_bits + config.count_bits;
    double bits_per_tu = static_cast<double>(r.bits_per_entry) *
        config.table_entries * config.pipes_per_tu;
    r.table_bytes_per_tu = bits_per_tu / 8.0;

    double kb_per_tu = r.table_bytes_per_tu / 1024.0;
    r.area_mm2_per_cluster =
        kb_per_tu * config.sram_mm2_per_kb + config.logic_area_mm2;
    r.total_area_mm2 = r.area_mm2_per_cluster * config.clusters;
    // Paper quotes the per-cluster overhead (0.15 mm^2) against the full
    // GPU (66 mm^2) as ~0.2 %; report the same per-cluster ratio.
    r.area_fraction = r.area_mm2_per_cluster / config.gpu_area_mm2;
    r.table_access_cycles = 1;
    return r;
}

} // namespace pargpu
