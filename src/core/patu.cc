#include "core/patu.hh"

#include "common/contract.hh"
#include "core/afssim.hh"

namespace pargpu
{

const char *
scenarioName(DesignScenario s)
{
    switch (s) {
      case DesignScenario::Baseline:
        return "Baseline";
      case DesignScenario::NoAF:
        return "No-AF";
      case DesignScenario::AfSsimN:
        return "AF-SSIM(N)";
      case DesignScenario::AfSsimNTxds:
        return "AF-SSIM(N)+(Txds)";
      case DesignScenario::Patu:
        return "PATU";
    }
    return "?";
}

TexelAddrSet
addrSetOf(const TrilinearSample &s)
{
    TexelAddrSet set;
    for (int i = 0; i < 8; ++i)
        set[i] = s.texels[i].addr;
    return set;
}

float
PatuUnit::approximatedLod(const AnisotropyInfo &info) const
{
    // Full PATU reuses AF's (finer) LOD for approximated pixels so that
    // adjacent approximated / non-approximated surfaces sample the same
    // mip level: no visible quality shift, and better texture-cache
    // locality. The plain prediction scenarios exhibit the LOD shift the
    // paper describes.
    return config_.scenario == DesignScenario::Patu ? info.lodAF
                                                    : info.lodTF;
}

PixelDecision
PatuUnit::preDecide(const AnisotropyInfo &info)
{
    PixelDecision d;
    // Eq. 6 operates on the anisotropy degree (the axis ratio), which is
    // available right after Texel Generation — before the pipeline
    // quantizes it to an issued sample count.
    d.af_ssim_n = afSsimFromSampleSize(info.anisoDegree);
    PARGPU_CHECK_RANGE(d.af_ssim_n, 0.0f, 1.0f,
                       "AF-SSIM(N) is a similarity, N=", info.anisoDegree);
    stats_.inc("patu.pixels");

    // Scenario forcing: Baseline always filters AF, NoAF never does.
    if (config_.scenario == DesignScenario::Baseline) {
        d.approximate = false;
        d.stage = DecisionStage::Forced;
        d.lod = info.lodAF;
        d.sample_size = info.sampleSize;
        stats_.inc("patu.full_af");
        return d;
    }
    if (config_.scenario == DesignScenario::NoAF) {
        d.approximate = true;
        d.stage = DecisionStage::Forced;
        d.lod = info.lodTF;
        d.sample_size = 1;
        stats_.inc("patu.approx_forced");
        return d;
    }

    // Trivial case: N == 1 means AF degenerates to one trilinear sample;
    // such pixels bypass both checking stages (Section V-B).
    if (info.sampleSize <= 1) {
        d.approximate = true;
        d.stage = DecisionStage::TrivialTf;
        d.lod = info.lodTF;
        d.sample_size = 1;
        stats_.inc("patu.trivial_tf");
        return d;
    }

    // Stage 1: sample-area similarity check.
    if (d.af_ssim_n > config_.threshold) {
        d.approximate = true;
        d.stage = DecisionStage::SampleArea;
        d.lod = approximatedLod(info);
        d.sample_size = 1;
        stats_.inc("patu.approx_stage1");
        return d;
    }

    // Stage 2 runs only in the designs that include the distribution
    // check; plain AF-SSIM(N) proceeds straight to full AF.
    if (config_.scenario == DesignScenario::AfSsimN) {
        d.approximate = false;
        d.stage = DecisionStage::FullAf;
        d.lod = info.lodAF;
        d.sample_size = info.sampleSize;
        stats_.inc("patu.full_af");
        return d;
    }

    d.need_distribution = true;
    d.lod = info.lodAF; // AF footprints are generated at AF's LOD.
    d.sample_size = info.sampleSize;
    return d;
}

void
PatuUnit::finishDistribution(PixelDecision &d, const AnisotropyInfo &info,
                             std::span<const TrilinearSample> samples)
{
    d.need_distribution = false;

    table_.reset();
    for (const TrilinearSample &s : samples) {
        bool shared = table_.insert(addrSetOf(s));
        stats_.inc("patu.table.inserts");
        if (shared)
            stats_.inc("patu.table.shared_hits");
    }

    d.txds_value = txds(table_.probabilityVector(),
                        static_cast<int>(samples.size()));
    d.af_ssim_txds = afSsimFromTxds(d.txds_value);
    PARGPU_CHECK_RANGE(d.txds_value, 0.0f, 1.0f, "Txds is normalized");
    PARGPU_CHECK_RANGE(d.af_ssim_txds, 0.0f, 1.0f,
                       "AF-SSIM(Txds) is a similarity");
    PARGPU_INVARIANT(table_.samplesInserted() ==
                         static_cast<int>(samples.size()),
                     "hash table lost samples: inserted=",
                     table_.samplesInserted(), " expected=", samples.size());

    if (d.af_ssim_txds > config_.threshold) {
        d.approximate = true;
        d.stage = DecisionStage::Distribution;
        d.sample_size = 1;
        d.lod = approximatedLod(info);
        // The approximation controller sends the tag back to Texel Address
        // Calculation to recalculate with sample size 1 (Section V-B).
        stats_.inc("patu.approx_stage2");
        stats_.inc("patu.addr_recalc");
    } else {
        d.approximate = false;
        d.stage = DecisionStage::FullAf;
        stats_.inc("patu.full_af");
    }
}

int
PatuUnit::countSharedSamples(std::span<const TrilinearSample> samples)
{
    TexelAddressTable t;
    int shared = 0;
    for (const TrilinearSample &s : samples) {
        if (t.insert(addrSetOf(s)))
            ++shared;
    }
    return shared;
}

} // namespace pargpu
