#include "core/patu.hh"

#include "common/contract.hh"
#include "core/afssim.hh"

namespace pargpu
{

const char *
scenarioName(DesignScenario s)
{
    switch (s) {
      case DesignScenario::Baseline:
        return "Baseline";
      case DesignScenario::NoAF:
        return "No-AF";
      case DesignScenario::AfSsimN:
        return "AF-SSIM(N)";
      case DesignScenario::AfSsimNTxds:
        return "AF-SSIM(N)+(Txds)";
      case DesignScenario::Patu:
        return "PATU";
    }
    return "?";
}

TexelAddrSet
addrSetOf(const TrilinearSample &s)
{
    TexelAddrSet set;
    for (int i = 0; i < 8; ++i)
        set[i] = s.texels[i].addr;
    return set;
}

float
PatuUnit::approximatedLod(const AnisotropyInfo &info) const
{
    // Full PATU reuses AF's (finer) LOD for approximated pixels so that
    // adjacent approximated / non-approximated surfaces sample the same
    // mip level: no visible quality shift, and better texture-cache
    // locality. The plain prediction scenarios exhibit the LOD shift the
    // paper describes.
    return config_.scenario == DesignScenario::Patu ? info.lodAF
                                                    : info.lodTF;
}

PixelDecision
PatuUnit::preDecide(const AnisotropyInfo &info)
{
    return preDecideN(info, 1);
}

PixelDecision
PatuUnit::preDecideN(const AnisotropyInfo &info, int count)
{
    const auto n = static_cast<std::uint64_t>(count);
    PixelDecision d;
    if (count == 0)
        return d;
    // Eq. 6 operates on the anisotropy degree (the axis ratio), which is
    // available right after Texel Generation — before the pipeline
    // quantizes it to an issued sample count.
    d.af_ssim_n = afSsimFromSampleSize(info.anisoDegree);
    PARGPU_CHECK_RANGE(d.af_ssim_n, 0.0f, 1.0f,
                       "AF-SSIM(N) is a similarity, N=", info.anisoDegree);
    cell(ctr_pixels_, "patu.pixels") += n;

    // Scenario forcing: Baseline always filters AF, NoAF never does.
    if (config_.scenario == DesignScenario::Baseline) {
        d.approximate = false;
        d.stage = DecisionStage::Forced;
        d.lod = info.lodAF;
        d.sample_size = info.sampleSize;
        cell(ctr_full_af_, "patu.full_af") += n;
        return d;
    }
    if (config_.scenario == DesignScenario::NoAF) {
        d.approximate = true;
        d.stage = DecisionStage::Forced;
        d.lod = info.lodTF;
        d.sample_size = 1;
        cell(ctr_approx_forced_, "patu.approx_forced") += n;
        return d;
    }

    // Trivial case: N == 1 means AF degenerates to one trilinear sample;
    // such pixels bypass both checking stages (Section V-B).
    if (info.sampleSize <= 1) {
        d.approximate = true;
        d.stage = DecisionStage::TrivialTf;
        d.lod = info.lodTF;
        d.sample_size = 1;
        cell(ctr_trivial_tf_, "patu.trivial_tf") += n;
        return d;
    }

    // Stage 1: sample-area similarity check.
    if (d.af_ssim_n > config_.threshold) {
        d.approximate = true;
        d.stage = DecisionStage::SampleArea;
        d.lod = approximatedLod(info);
        d.sample_size = 1;
        cell(ctr_stage1_, "patu.approx_stage1") += n;
        return d;
    }

    // Stage 2 runs only in the designs that include the distribution
    // check; plain AF-SSIM(N) proceeds straight to full AF.
    if (config_.scenario == DesignScenario::AfSsimN) {
        d.approximate = false;
        d.stage = DecisionStage::FullAf;
        d.lod = info.lodAF;
        d.sample_size = info.sampleSize;
        cell(ctr_full_af_, "patu.full_af") += n;
        return d;
    }

    d.need_distribution = true;
    d.lod = info.lodAF; // AF footprints are generated at AF's LOD.
    d.sample_size = info.sampleSize;
    return d;
}

void
PatuUnit::finishDistribution(PixelDecision &d, const AnisotropyInfo &info,
                             std::span<const TrilinearSample> samples)
{
    std::vector<TexelAddrSet> sets;
    sets.reserve(samples.size());
    for (const TrilinearSample &s : samples)
        sets.push_back(addrSetOf(s));
    finishDistribution(d, info, std::span<const TexelAddrSet>(sets));
}

void
PatuUnit::finishDistribution(PixelDecision &d, const AnisotropyInfo &info,
                             std::span<const TexelAddrSet> samples)
{
    d.need_distribution = false;

    table_.reset();
    std::uint64_t shared_hits = 0;
    for (const TexelAddrSet &s : samples) {
        if (table_.insert(s))
            ++shared_hits;
    }
    // Batched counter updates; bound only when non-zero so untouched
    // counters stay absent from exports, like per-sample inc() calls.
    if (!samples.empty())
        cell(ctr_table_inserts_, "patu.table.inserts") += samples.size();
    if (shared_hits > 0)
        cell(ctr_table_shared_, "patu.table.shared_hits") += shared_hits;

    d.txds_value = txds(table_.probabilityVector(),
                        static_cast<int>(samples.size()));
    d.af_ssim_txds = afSsimFromTxds(d.txds_value);
    PARGPU_CHECK_RANGE(d.txds_value, 0.0f, 1.0f, "Txds is normalized");
    PARGPU_CHECK_RANGE(d.af_ssim_txds, 0.0f, 1.0f,
                       "AF-SSIM(Txds) is a similarity");
    PARGPU_INVARIANT(table_.samplesInserted() ==
                         static_cast<int>(samples.size()),
                     "hash table lost samples: inserted=",
                     table_.samplesInserted(), " expected=", samples.size());

    if (d.af_ssim_txds > config_.threshold) {
        d.approximate = true;
        d.stage = DecisionStage::Distribution;
        d.sample_size = 1;
        d.lod = approximatedLod(info);
        // The approximation controller sends the tag back to Texel Address
        // Calculation to recalculate with sample size 1 (Section V-B).
        ++cell(ctr_stage2_, "patu.approx_stage2");
        ++cell(ctr_addr_recalc_, "patu.addr_recalc");
    } else {
        d.approximate = false;
        d.stage = DecisionStage::FullAf;
        ++cell(ctr_full_af_, "patu.full_af");
    }
}

int
PatuUnit::countSharedSamples(std::span<const TrilinearSample> samples)
{
    std::vector<TexelAddrSet> sets;
    sets.reserve(samples.size());
    for (const TrilinearSample &s : samples)
        sets.push_back(addrSetOf(s));
    return countSharedSamples(std::span<const TexelAddrSet>(sets));
}

int
PatuUnit::countSharedSamples(std::span<const TexelAddrSet> sets)
{
    // Equivalent to inserting every address set into a fresh
    // kEntries-capacity TexelAddressTable, but measured in place: a
    // sample is shared iff its 8-address set equals an earlier *recorded*
    // set, and once kEntries distinct sets are recorded later new sets
    // are dropped exactly as the full table drops them. Avoids a heap
    // allocation and an address-set copy per pixel.
    int first[TexelAddressTable::kEntries];
    int distinct = 0;
    int shared = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        const TexelAddrSet &a = sets[i];
        bool match = false;
        for (int d = 0; d < distinct && !match; ++d)
            match = a == sets[static_cast<std::size_t>(first[d])];
        if (match)
            ++shared;
        else if (distinct < TexelAddressTable::kEntries)
            first[distinct++] = static_cast<int>(i);
    }
    return shared;
}

} // namespace pargpu
