#include "replay/userstudy.hh"

#include <algorithm>

#include "common/rng.hh"

namespace pargpu
{

double
performanceWeight(int width, int height)
{
    // Higher pixel counts mean heavier frames and more visible motion lag,
    // shifting user preference toward performance (Fig. 22 discussion).
    double mpix = static_cast<double>(width) * height / 1e6;
    double w = 0.25 + 0.25 * std::min(2.0, mpix);
    return std::clamp(w, 0.25, 0.75);
}

double
perceivedQuality(double mssim, const UserStudyConfig &config)
{
    // Linear ramp between floor and saturation, flat outside.
    double q = (mssim - config.mssim_floor) /
        (config.mssim_saturation - config.mssim_floor);
    return std::clamp(q, 0.0, 1.0);
}

double
satisfactionScore(const ReplayCondition &condition,
                  const UserStudyConfig &config)
{
    double q = perceivedQuality(condition.mssim, config);

    // Smoothness: fps against target, with an extra penalty for frames
    // that visibly miss refreshes (stutter is worse than uniform slowness).
    double p = std::clamp(condition.avg_fps / config.target_fps, 0.0, 1.0);
    p *= 1.0 - 0.25 * std::clamp(condition.lag_fraction, 0.0, 1.0);

    double wp = performanceWeight(condition.width, condition.height);
    double base = 1.0 + 4.0 * ((1.0 - wp) * q + wp * p);

    SplitMix64 rng(config.seed);
    double sum = 0.0;
    for (int i = 0; i < config.raters; ++i) {
        double s = base + config.noise_sigma * rng.nextGaussian();
        sum += std::clamp(s, 1.0, 5.0);
    }
    return sum / std::max(1, config.raters);
}

} // namespace pargpu
