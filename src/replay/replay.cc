#include "replay/replay.hh"

#include <algorithm>

#include "common/contract.hh"

namespace pargpu
{

ReplayResult
simulateReplay(const std::vector<Cycle> &frame_cycles,
               const ReplayConfig &config)
{
    ReplayResult r;
    if (frame_cycles.empty())
        return r;

    const Cycle interval = config.refreshCycles();
    const Cycle cpu = static_cast<Cycle>(
        static_cast<double>(interval) * config.cpu_fraction);

    double fps_sum = 0.0;
    r.min_fps = 1e30;
    r.max_fps = 0.0;
    std::size_t lagged = 0;

    for (Cycle gpu : frame_cycles) {
        Cycle frame_time = cpu + gpu;
        int refreshes = static_cast<int>(
            (frame_time + interval - 1) / interval);
        refreshes = std::max(1, refreshes);
        r.refreshes_per_frame.push_back(refreshes);
        double fps = config.refresh_hz / refreshes;
        fps_sum += fps;
        r.min_fps = std::min(r.min_fps, fps);
        r.max_fps = std::max(r.max_fps, fps);
        if (refreshes > 1)
            ++lagged;
    }
    r.avg_fps = fps_sum / static_cast<double>(frame_cycles.size());
    r.lag_fraction =
        static_cast<double>(lagged) / frame_cycles.size();
    // Vsync quantization can only lower FPS, never raise it above the
    // refresh rate, and the lag fraction is a proper fraction.
    PARGPU_CHECK_RANGE(r.avg_fps, 0.0, config.refresh_hz + 1e-9,
                       "vsync-quantized FPS bound");
    PARGPU_CHECK_RANGE(r.lag_fraction, 0.0, 1.0, "lag fraction");
    PARGPU_INVARIANT(r.min_fps <= r.max_fps + 1e-9,
                     "min_fps=", r.min_fps, " max_fps=", r.max_fps);
    return r;
}

} // namespace pargpu
