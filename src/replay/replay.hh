/**
 * @file
 * Game-replay timing model: the paper's MATLAB vertical-synchronization
 * playback (Section VI, analysis layer).
 *
 * Frames are displayed at 60 Hz refresh boundaries; a frame that is not
 * complete within the refresh interval stalls to the next boundary (the
 * user perceives motion lag). A fixed CPU latency of half the refresh
 * interval is charged per frame, so the GPU budget per refresh is ~8.33
 * million cycles at 1 GHz.
 */

#ifndef PARGPU_REPLAY_REPLAY_HH
#define PARGPU_REPLAY_REPLAY_HH

#include <vector>

#include "common/types.hh"

namespace pargpu
{

/** Vertical-synchronization parameters. */
struct ReplayConfig
{
    double refresh_hz = 60.0;      ///< Monitor refresh rate.
    double frequency_ghz = 1.0;    ///< GPU clock.
    /** CPU latency per frame, as a fraction of the refresh interval. */
    double cpu_fraction = 0.5;

    /** Refresh interval in GPU cycles. */
    Cycle
    refreshCycles() const
    {
        return static_cast<Cycle>(frequency_ghz * 1e9 / refresh_hz);
    }
};

/** Result of replaying a frame sequence under vsync. */
struct ReplayResult
{
    double avg_fps = 0.0;   ///< Displayed frames per second.
    double min_fps = 0.0;   ///< Worst instantaneous frame rate.
    double max_fps = 0.0;   ///< Best instantaneous frame rate.
    double lag_fraction = 0.0; ///< Fraction of frames missing one refresh.
    std::vector<int> refreshes_per_frame; ///< Refresh intervals consumed.
};

/**
 * Replay a sequence of frame render times under vertical synchronization.
 *
 * @param frame_cycles  GPU cycles per frame.
 * @param config        Refresh parameters.
 */
ReplayResult simulateReplay(const std::vector<Cycle> &frame_cycles,
                            const ReplayConfig &config = {});

} // namespace pargpu

#endif // PARGPU_REPLAY_REPLAY_HH
