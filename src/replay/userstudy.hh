/**
 * @file
 * Simulated user-experience study (the paper's Section VII-D).
 *
 * The paper recruited 30 participants to rate trace-based game replays on
 * a 1-5 satisfaction scale. We cannot run a human study, so this module
 * provides a psychometric *model* of a rater, documented in DESIGN.md:
 *
 *  - perceived quality saturates once MSSIM exceeds the visibility
 *    threshold (~0.93, the level the paper calls indistinguishable);
 *  - perceived smoothness follows displayed fps against the 60 fps target,
 *    with motion lag penalized;
 *  - the quality/performance weighting depends on resolution: at high
 *    resolutions users favor smoothness, at low resolutions image quality
 *    (the paper's observation in Fig. 22);
 *  - individual raters add zero-mean noise; scores are clamped to [1, 5]
 *    and averaged over the panel.
 */

#ifndef PARGPU_REPLAY_USERSTUDY_HH
#define PARGPU_REPLAY_USERSTUDY_HH

#include <cstdint>

namespace pargpu
{

/** Panel configuration for the simulated study. */
struct UserStudyConfig
{
    int raters = 30;             ///< Panel size (matches the paper).
    std::uint64_t seed = 0x5EED; ///< Rater-noise seed.
    double noise_sigma = 0.35;   ///< Per-rater score noise.
    /**
     * MSSIM -> perceived-quality mapping. The mapping is content
     * dependent: the paper's game traces span MSSIM ~0.61-1.0 with a
     * visibility threshold near 0.93, while this repository's procedural
     * scenes compress the same perceptual range into MSSIM ~0.95-1.0 at
     * the evaluated resolutions (see EXPERIMENTS.md). The defaults are
     * calibrated to the local content so the rater model discriminates
     * the same conditions the paper's panel did.
     */
    double mssim_floor = 0.95;       ///< Quality score is 0 at/below this.
    double mssim_saturation = 0.995; ///< ... and 1 at/above this.
    double target_fps = 60.0;    ///< Smoothness saturates here.
};

/** Inputs describing one replay condition. */
struct ReplayCondition
{
    double mssim = 1.0;   ///< Mean MSSIM of the replay's frames.
    double avg_fps = 60.0;///< Displayed fps under vsync.
    double lag_fraction = 0.0; ///< Fraction of frames missing a refresh.
    int width = 1280;     ///< Render resolution.
    int height = 1024;
};

/**
 * Mean satisfaction score in [1, 5] of a simulated 30-rater panel for one
 * replay condition. Deterministic for a given config.
 */
double satisfactionScore(const ReplayCondition &condition,
                         const UserStudyConfig &config = {});

/**
 * Resolution-dependent performance weight in [0, 1]: the share of the
 * score driven by smoothness rather than image quality.
 */
double performanceWeight(int width, int height);

/**
 * Perceived-quality score in [0, 1] for an MSSIM value under the panel's
 * content-calibrated mapping (0 at/below the floor, 1 at/above the
 * saturation point).
 */
double perceivedQuality(double mssim, const UserStudyConfig &config = {});

} // namespace pargpu

#endif // PARGPU_REPLAY_USERSTUDY_HH
