#include "simd/dispatch.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/** True when this build compiled the vector kernels (-DPARGPU_SIMD=ON). */
constexpr bool
buildHasVectorKernels()
{
#ifdef PARGPU_SIMD_ENABLED
    return true;
#else
    return false;
#endif
}

/** Fatal unless @p t can actually run here (build knob + CPUID). */
SimdTier
validateTier(SimdTier t)
{
    if (t != SimdTier::Scalar && !buildHasVectorKernels())
        fatal(std::string("PARGPU_SIMD tier '") + tierName(t) +
              "' requested but this build compiled scalar kernels only "
              "(-DPARGPU_SIMD=OFF)");
    if (t == SimdTier::Sse && !hostHasSse())
        fatal("PARGPU_SIMD=sse requested but the CPU lacks SSE2");
    if (t == SimdTier::Avx2 && !hostHasAvx2())
        fatal("PARGPU_SIMD=avx2 requested but the CPU lacks AVX2");
    return t;
}

// Set once from the environment before main() and read-only after;
// deterministic per run by construction. pargpu-analyze: allow(global-state)
SimdTier g_tier = [] {
    const char *v = std::getenv("PARGPU_SIMD");
    if (v == nullptr || v[0] == '\0')
        return detectTier();
    if (std::strcmp(v, "scalar") == 0)
        return SimdTier::Scalar;
    if (std::strcmp(v, "sse") == 0)
        return validateTier(SimdTier::Sse);
    if (std::strcmp(v, "avx2") == 0)
        return validateTier(SimdTier::Avx2);
    fatal("PARGPU_SIMD must be 'scalar', 'sse' or 'avx2'");
}();

} // namespace

bool
hostHasSse()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("sse2") != 0;
#else
    return false;
#endif
}

bool
hostHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

SimdTier
detectTier()
{
    if (!buildHasVectorKernels())
        return SimdTier::Scalar;
    if (hostHasAvx2())
        return SimdTier::Avx2;
    if (hostHasSse())
        return SimdTier::Sse;
    return SimdTier::Scalar;
}

SimdTier
activeTier()
{
    return g_tier;
}

void
setActiveTier(SimdTier t)
{
    g_tier = validateTier(t);
}

const char *
tierName(SimdTier t)
{
    switch (t) {
    case SimdTier::Scalar: return "scalar";
    case SimdTier::Sse: return "sse";
    case SimdTier::Avx2: return "avx2";
    }
    return "unknown";
}

int
tierLanes(SimdTier t)
{
    switch (t) {
    case SimdTier::Sse: return 4;
    case SimdTier::Avx2: return 8;
    case SimdTier::Scalar: break;
    }
    return 1;
}

const KernelOps &
activeKernels()
{
#ifdef PARGPU_SIMD_ENABLED
    switch (g_tier) {
    case SimdTier::Sse: return sseKernels();
    case SimdTier::Avx2: return avx2Kernels();
    case SimdTier::Scalar: break;
    }
#endif
    return scalarKernels();
}

} // namespace pargpu::simd
