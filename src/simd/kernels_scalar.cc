#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * The reference accumulation: per lane, a single multiply-add chain over
 * the slots, per channel. Every vector kernel must reproduce this chain
 * bit-for-bit (same order, no FMA, no reassociation).
 */
void
accumulateScalar(const TexelBatch &tex, const WeightBatch &wgt, int slots,
                 int lanes, float *out_r, float *out_g, float *out_b,
                 float *out_a)
{
    for (int j = 0; j < lanes; ++j) {
        float r = 0.0f, g = 0.0f, b = 0.0f, a = 0.0f;
        for (int s = 0; s < slots; ++s) {
            const float w = wgt.w[s][j];
            r += tex.r[s][j] * w;
            g += tex.g[s][j] * w;
            b += tex.b[s][j] * w;
            a += tex.a[s][j] * w;
        }
        out_r[j] = r;
        out_g[j] = g;
        out_b[j] = b;
        out_a[j] = a;
    }
}

/**
 * The reference 2x2 quad evaluation: the per-pixel loop body that lived
 * inline in rasterizeTriangle(), verbatim. Vector tiers evaluate the
 * same chain with one lane per pixel.
 */
void
edgeQuadScalar(const EdgeTri &tri, int qx, int qy, int x0, int y0, int x1,
               int y1, EdgeQuadOut &out)
{
    out.coverage = 0;
    for (int i = 0; i < 4; ++i) {
        const int px = qx + (i & 1);
        const int py = qy + (i >> 1);
        const float cx = px + 0.5f;
        const float cy = py + 0.5f;

        const float e0 = (cx - tri.bx) * (tri.cy - tri.by) -
            (cy - tri.by) * (tri.cx - tri.bx);
        const float e1 = (cx - tri.cx) * (tri.ay - tri.cy) -
            (cy - tri.cy) * (tri.ax - tri.cx);
        const float w0 = e0 * tri.inv_area;
        const float w1 = e1 * tri.inv_area;
        const float w2 = 1.0f - w0 - w1;

        const float inv_w = w0 * tri.iw0 + w1 * tri.iw1 + w2 * tri.iw2;
        const float u_w = w0 * tri.uw0 + w1 * tri.uw1 + w2 * tri.uw2;
        const float v_w = w0 * tri.vw0 + w1 * tri.vw1 + w2 * tri.vw2;
        // Exact-zero guard against dividing by an extrapolated 1/w of 0;
        // near-zero values are valid and must divide.
        const float rcp = // pargpu-lint: allow(float-eq)
            inv_w != 0.0f ? 1.0f / inv_w : 0.0f;
        out.u[i] = u_w * rcp;
        out.v[i] = v_w * rcp;
        out.depth[i] = w0 * tri.z0 + w1 * tri.z1 + w2 * tri.z2;

        const bool inside = w0 >= 0.0f && w1 >= 0.0f && w2 >= 0.0f;
        const bool in_window = px >= x0 && px <= x1 && py >= y0 && py <= y1;
        if (inside && in_window)
            out.coverage |= 1u << i;
    }
}

void
fillColorScalar(float *dst, int pixels, const float *rgba)
{
    for (int i = 0; i < pixels; ++i) {
        dst[4 * i + 0] = rgba[0];
        dst[4 * i + 1] = rgba[1];
        dst[4 * i + 2] = rgba[2];
        dst[4 * i + 3] = rgba[3];
    }
}

void
fillDepthScalar(float *dst, int count, float value)
{
    for (int i = 0; i < count; ++i)
        dst[i] = value;
}

/** The Framebuffer::depthTest compare-and-store, per lane. */
unsigned
depthQuadScalar(float *row0, float *row1, const float *depth)
{
    unsigned pass = 0;
    for (int i = 0; i < 4; ++i) {
        float &stored = i < 2 ? row0[i] : row1[i - 2];
        if (depth[i] < stored) {
            stored = depth[i];
            pass |= 1u << i;
        }
    }
    return pass;
}

void
scatterQuadScalar(float *row0, float *row1, const float *rgba,
                  unsigned mask)
{
    for (int i = 0; i < 4; ++i) {
        if (!(mask & (1u << i)))
            continue;
        float *px = (i < 2 ? row0 : row1) + 4 * (i & 1);
        px[0] = rgba[4 * i + 0];
        px[1] = rgba[4 * i + 1];
        px[2] = rgba[4 * i + 2];
        px[3] = rgba[4 * i + 3];
    }
}

/** The SSIM blur accumulation chain: ascending taps, then one divide. */
void
ssimRowScalar(const float *src, float *out, int n, int stride,
              const float *k, int taps, float wsum)
{
    for (int i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (int t = 0; t < taps; ++t)
            acc += k[t] * src[i + t * stride];
        out[i] = acc / wsum;
    }
}

} // namespace

const KernelOps &
scalarKernels()
{
    static const KernelOps ops{accumulateScalar, edgeQuadScalar,
                               fillColorScalar, fillDepthScalar,
                               depthQuadScalar, scatterQuadScalar,
                               ssimRowScalar,   1,
                               "scalar"};
    return ops;
}

} // namespace pargpu::simd
