#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * The reference accumulation: per lane, a single multiply-add chain over
 * the slots, per channel. Every vector kernel must reproduce this chain
 * bit-for-bit (same order, no FMA, no reassociation).
 */
void
accumulateScalar(const TexelBatch &tex, const WeightBatch &wgt, int slots,
                 int lanes, float *out_r, float *out_g, float *out_b,
                 float *out_a)
{
    for (int j = 0; j < lanes; ++j) {
        float r = 0.0f, g = 0.0f, b = 0.0f, a = 0.0f;
        for (int s = 0; s < slots; ++s) {
            const float w = wgt.w[s][j];
            r += tex.r[s][j] * w;
            g += tex.g[s][j] * w;
            b += tex.b[s][j] * w;
            a += tex.a[s][j] * w;
        }
        out_r[j] = r;
        out_g[j] = g;
        out_b[j] = b;
        out_a[j] = a;
    }
}

} // namespace

const KernelOps &
scalarKernels()
{
    static const KernelOps ops{accumulateScalar, 1, "scalar"};
    return ops;
}

} // namespace pargpu::simd
