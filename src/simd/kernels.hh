/**
 * @file
 * The SoA kernel family behind the per-frame hot path: texel weight
 * accumulation, 2x2 edge-function rasterization, framebuffer fills /
 * depth tests / scatters, and the SSIM separable-blur row reduction.
 *
 * One accumulation shape serves all three filters: bilinear is a 4-slot
 * accumulation, trilinear an 8-slot one, and anisotropic filtering an
 * 8-slot accumulation over N lanes (one lane per AF sample). Each lane j
 * computes, per channel,
 *
 *     out[j] = sum over s in [0, slots) of color[s][j] * weight[s][j]
 *
 * accumulated from 0.0f in slot order with separate multiply and add —
 * the exact FP operation chain of the scalar reference
 * (TextureSampler::trilinearInto), so every tier is bit-identical. The
 * same discipline governs every kernel here: the scalar member is the
 * reference chain, the vector variants parallelize across lanes only,
 * and none uses FMA or reassociates.
 *
 * This header is deliberately free of intrinsics and of inline float
 * math: the AVX2 translation unit is compiled with -mavx2, and anything
 * inline shared with portable TUs would be an ODR hazard.
 */

#ifndef PARGPU_SIMD_KERNELS_HH
#define PARGPU_SIMD_KERNELS_HH

#include "simd/batch.hh"

namespace pargpu::simd
{

/**
 * Per-triangle constants for the 2x2 edge/interpolation kernel, copied
 * out of SetupTriangle once per rasterized triangle (plain floats so
 * this header stays independent of sim/).
 */
struct EdgeTri
{
    float ax, ay, bx, by, cx, cy; ///< Screen positions of v0/v1/v2.
    float inv_area;               ///< 1 / twice the signed area.
    float z0, z1, z2;             ///< Per-vertex depth.
    float iw0, iw1, iw2;          ///< Per-vertex 1/w.
    float uw0, uw1, uw2;          ///< Per-vertex u/w.
    float vw0, vw1, vw2;          ///< Per-vertex v/w.
};

/**
 * One 2x2 quad evaluated by edge_quad: lane i covers pixel
 * (qx + (i & 1), qy + (i >> 1)); coverage bit i is set iff that pixel
 * is inside the triangle and inside the walk window.
 */
struct EdgeQuadOut
{
    float u[4];
    float v[4];
    float depth[4];
    unsigned coverage;
};

/** One tier's kernel implementations (see activeKernels()). */
struct KernelOps
{
    /**
     * Accumulate @p slots texels per lane over lanes [0, lanes).
     *
     * Output arrays must hold kMaxLanes floats, 32-byte aligned; lanes
     * are processed in vector-width chunks, so up to the next multiple
     * of the width of pad lanes are read (callers zero their weights)
     * and written beyond @p lanes.
     */
    void (*accumulate)(const TexelBatch &tex, const WeightBatch &wgt,
                       int slots, int lanes, float *out_r, float *out_g,
                       float *out_b, float *out_a);

    /**
     * Evaluate the 2x2 quad at (qx, qy) against @p tri, windowed to
     * pixels [x0, x1] x [y0, y1] inclusive. All four lanes get
     * perspective-correct uv and depth (extrapolated outside the
     * triangle, so quad derivatives exist at partial coverage); the FP
     * chain per lane is rasterizeTriangle's original per-pixel loop.
     */
    void (*edge_quad)(const EdgeTri &tri, int qx, int qy, int x0, int y0,
                      int x1, int y1, EdgeQuadOut &out);

    /**
     * Fill @p pixels RGBA pixels starting at @p dst (4 floats each)
     * with the pattern rgba[0..3].
     */
    void (*fill_color)(float *dst, int pixels, const float *rgba);

    /** Fill @p count floats starting at @p dst with @p value. */
    void (*fill_depth)(float *dst, int count, float value);

    /**
     * Depth-test-and-write a fully covered 2x2 quad. @p row0 points at
     * the two depth-plane floats of the top row, @p row1 at the bottom
     * row's; lane i maps as in EdgeQuadOut. Returns the pass mask (bit
     * i set iff depth[i] < stored, in which case stored is updated) —
     * the exact compare-and-store of Framebuffer::depthTest per lane.
     */
    unsigned (*depth_quad)(float *row0, float *row1, const float *depth);

    /**
     * Scatter shaded quad colors into the color plane: for each set bit
     * i of @p mask, write rgba[4*i .. 4*i+3] to the pixel's 4 floats.
     * @p row0 / @p row1 point at the quad's top/bottom row pixels (8
     * floats each); lanes with a clear mask bit are never touched (the
     * tile-parallel pass relies on that for pixel disjointness).
     */
    void (*scatter_quad)(float *row0, float *row1, const float *rgba,
                         unsigned mask);

    /**
     * Separable-blur row reduction:
     *
     *     out[i] = (sum over t in [0, taps) of k[t] * src[i + t*stride])
     *              / wsum
     *
     * accumulated in ascending tap order from 0.0f — the scalar chain
     * of the SSIM blur loop. Serves the horizontal interior (stride 1)
     * and every vertical row (stride = image width, @p k sliced to the
     * rows that exist near the top/bottom edges).
     */
    void (*ssim_row)(const float *src, float *out, int n, int stride,
                     const float *k, int taps, float wsum);

    int lanes;        ///< Vector width in samples.
    const char *name; ///< Matches tierName().
};

/** The scalar reference kernels (always available). */
const KernelOps &scalarKernels();

/** SSE kernels; defined only in -DPARGPU_SIMD=ON builds. */
const KernelOps &sseKernels();

/** AVX2 kernels; defined only in -DPARGPU_SIMD=ON builds. */
const KernelOps &avx2Kernels();

/** Kernels of the process-wide active tier (dispatch.hh). */
const KernelOps &activeKernels();

} // namespace pargpu::simd

#endif // PARGPU_SIMD_KERNELS_HH
