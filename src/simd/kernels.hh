/**
 * @file
 * The weight-accumulation kernel family behind the texel filtering paths.
 *
 * One kernel shape serves all three filters: bilinear is a 4-slot
 * accumulation, trilinear an 8-slot one, and anisotropic filtering an
 * 8-slot accumulation over N lanes (one lane per AF sample). Each lane j
 * computes, per channel,
 *
 *     out[j] = sum over s in [0, slots) of color[s][j] * weight[s][j]
 *
 * accumulated from 0.0f in slot order with separate multiply and add —
 * the exact FP operation chain of the scalar reference
 * (TextureSampler::trilinearInto), so every tier is bit-identical. The
 * vector variants parallelize across lanes only; none uses FMA.
 *
 * This header is deliberately free of intrinsics and of inline float
 * math: the AVX2 translation unit is compiled with -mavx2, and anything
 * inline shared with portable TUs would be an ODR hazard.
 */

#ifndef PARGPU_SIMD_KERNELS_HH
#define PARGPU_SIMD_KERNELS_HH

#include "simd/batch.hh"

namespace pargpu::simd
{

/** One tier's kernel implementations (see activeKernels()). */
struct KernelOps
{
    /**
     * Accumulate @p slots texels per lane over lanes [0, lanes).
     *
     * Output arrays must hold kMaxLanes floats, 32-byte aligned; lanes
     * are processed in vector-width chunks, so up to the next multiple
     * of the width of pad lanes are read (callers zero their weights)
     * and written beyond @p lanes.
     */
    void (*accumulate)(const TexelBatch &tex, const WeightBatch &wgt,
                       int slots, int lanes, float *out_r, float *out_g,
                       float *out_b, float *out_a);
    int lanes;        ///< Vector width in samples.
    const char *name; ///< Matches tierName().
};

/** The scalar reference kernels (always available). */
const KernelOps &scalarKernels();

/** SSE kernels; defined only in -DPARGPU_SIMD=ON builds. */
const KernelOps &sseKernels();

/** AVX2 kernels; defined only in -DPARGPU_SIMD=ON builds. */
const KernelOps &avx2Kernels();

/** Kernels of the process-wide active tier (dispatch.hh). */
const KernelOps &activeKernels();

} // namespace pargpu::simd

#endif // PARGPU_SIMD_KERNELS_HH
