/**
 * @file
 * Structure-of-arrays batch buffers for the texel filtering kernels.
 *
 * A batch holds up to kMaxLanes trilinear samples side by side: lane j of
 * slot s is texel s (of the 8 per sample) of sample j. The kernels in
 * kernels.hh reduce over the slot axis — each lane accumulates its own
 * 8-texel weighted sum in slot order, which is exactly the accumulation
 * order of the scalar reference path (TextureSampler::trilinearInto), so
 * vectorizing ACROSS lanes never reassociates a sample's sum and the
 * result is bit-identical to the scalar code.
 *
 * Slot rows are kMaxLanes floats and the structs are 32-byte aligned, so
 * any lane index that is a multiple of the vector width is an aligned
 * load for both SSE (4 lanes) and AVX2 (8 lanes).
 */

#ifndef PARGPU_SIMD_BATCH_HH
#define PARGPU_SIMD_BATCH_HH

namespace pargpu::simd
{

/**
 * Widest batch: a whole quad's anisotropic samples in one kernel call
 * (4 pixels x 16x max anisotropy).
 */
inline constexpr int kMaxLanes = 64;

/** Texels per trilinear sample (2x2 footprint at each of two levels). */
inline constexpr int kMaxSlots = 8;

/** Texel colors, slot-major: r[s][j] is texel s of sample j. */
struct alignas(32) TexelBatch
{
    float r[kMaxSlots][kMaxLanes];
    float g[kMaxSlots][kMaxLanes];
    float b[kMaxSlots][kMaxLanes];
    float a[kMaxSlots][kMaxLanes];
};

/** Blend weights, slot-major, matching TexelBatch. */
struct alignas(32) WeightBatch
{
    float w[kMaxSlots][kMaxLanes];
};

} // namespace pargpu::simd

#endif // PARGPU_SIMD_BATCH_HH
