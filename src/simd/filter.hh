/**
 * @file
 * Batched quad filtering on top of the SoA kernels.
 *
 * QuadFilter is the texture unit's replacement for the per-texel blend
 * loops in TextureSampler: it walks the texels of up to kMaxLanes
 * trilinear samples — footprints served by reference from the per-quad
 * FootprintMemo, misses fetched block-at-a-time through
 * TextureMap::fetchFootprint — and accumulates each sample's RGBA in a
 * single 4-wide register (one lane per channel), fused into the gather
 * loop. The slot-major SoA staging + accumulate-kernel round-trip lives
 * on in kernels.hh for workloads that batch wider than a sample.
 *
 * Everything observable is bit-identical to the scalar sampler paths:
 * the per-sample FP accumulation chain (see kernels.hh), the TexelRef
 * streams, and the memo lookup/store sequence (which drives the
 * texunit.memo_* counters) are all preserved exactly.
 */

#ifndef PARGPU_SIMD_FILTER_HH
#define PARGPU_SIMD_FILTER_HH

#include <cstdint>

#include "common/color.hh"
#include "common/types.hh"
#include "common/vec.hh"
#include "simd/batch.hh"
#include "texture/sampler.hh"

namespace pargpu::simd
{

/**
 * Per-texture-unit batch filter; allocation-free. Not thread-safe —
 * each texture unit owns one, like its FootprintMemo.
 */
class QuadFilter
{
  public:
    /**
     * Filter @p n trilinear samples centered at @p uvs[0..n) under the
     * shared level selection @p sel, through @p memo. Fills @p out[i]
     * exactly as TextureSampler::trilinearInto would (uv, levels, the
     * 8 TexelRefs, color) and issues the same memo lookup/store sequence
     * in sample order. One kernel call per invocation.
     */
    void filterSamples(const TextureSampler &sampler, const Vec2 *uvs,
                       int n, const LodSelect &sel, FootprintMemo &memo,
                       TrilinearSample *out);

    /** Batched equivalent of TextureSampler::filterTrilinearInto(). */
    Color4f filterTrilinear(const TextureSampler &sampler, const Vec2 &uv,
                            float lod, FootprintMemo &memo,
                            TrilinearSample &out);

    /** Batched equivalent of TextureSampler::filterAnisotropicInto(). */
    Color4f filterAnisotropic(const TextureSampler &sampler,
                              const Vec2 &uv, const AnisotropyInfo &info,
                              FootprintMemo &memo, TrilinearSample *out);

    /**
     * The AF sample placement of filterAnisotropic(): writes the
     * info.sampleSize sample centers for a pixel at @p uv into @p out
     * and returns the count. Lets a caller concatenate several pixels'
     * samples into one filterSamples() batch.
     */
    static int anisoUvs(const Vec2 &uv, const AnisotropyInfo &info,
                        Vec2 *out);

    /**
     * The AF sample average of filterAnisotropic(): mean of @p n sample
     * colors in sample order, with the same FP operation sequence.
     */
    static Color4f averageColors(const TrilinearSample *samples, int n);

    /** averageColors() over a plain color array (compact path). */
    static Color4f averageColors(const Color4f *colors, int n);

    // --- Compact path -------------------------------------------------
    // The simulator consumes only each sample's 8 texel addresses (fetch
    // bookkeeping, the PATU hash table) and its filtered color; the
    // compact variants skip materializing full TrilinearSample records
    // (~230 B/sample of stores) and emit exactly those two outputs. Same
    // gather loop (one template), so colors, addresses and the memo
    // probe sequence are bit-identical to the full variants.

    /** filterSamples() emitting only addresses and colors. */
    void filterSamplesAddrs(const TextureSampler &sampler, const Vec2 *uvs,
                            int n, const LodSelect &sel,
                            FootprintMemo &memo, TexelAddrSet *addrs,
                            Color4f *colors);

    /** filterTrilinear() emitting only the address set. */
    Color4f filterTrilinearAddrs(const TextureSampler &sampler,
                                 const Vec2 &uv, float lod,
                                 FootprintMemo &memo, TexelAddrSet &addrs);

    /**
     * filterAnisotropic() emitting addresses and per-sample colors
     * (info.sampleSize of each); returns the averaged pixel color.
     */
    Color4f filterAnisotropicAddrs(const TextureSampler &sampler,
                                   const Vec2 &uv,
                                   const AnisotropyInfo &info,
                                   FootprintMemo &memo, TexelAddrSet *addrs,
                                   Color4f *colors);

    /** Batched filter invocations since the last call; drains to zero. */
    std::uint64_t
    takeBatches()
    {
        std::uint64_t b = batches_;
        batches_ = 0;
        return b;
    }

  private:
    /**
     * The one gather-accumulate-scatter loop behind both variants:
     * kFull writes TrilinearSample records to @p out, compact writes
     * address sets and colors to @p addrs / @p colors.
     */
    template <bool kFull>
    void gather(const TextureSampler &sampler, const Vec2 *uvs, int n,
                const LodSelect &sel, FootprintMemo &memo,
                TrilinearSample *out, TexelAddrSet *addrs,
                Color4f *colors);

    std::uint64_t batches_ = 0;
    /**
     * Reusable AF sample-center scratch: Vec2's default member
     * initializers would zero-fill a kMaxLanes local on every
     * filterAnisotropic*() call. Dead between calls.
     */
    Vec2 uvs_[kMaxLanes];
};

} // namespace pargpu::simd

#endif // PARGPU_SIMD_FILTER_HH
