/**
 * @file
 * Batched quad filtering on top of the SoA kernels.
 *
 * QuadFilter is the texture unit's replacement for the per-texel blend
 * loops in TextureSampler: it gathers the texels of up to kMaxLanes
 * trilinear samples into slot-major SoA batches — footprints served by
 * reference from the per-quad FootprintMemo, misses fetched block-at-a-
 * time through TextureMap::fetchFootprint — runs one weight-accumulation
 * kernel call (dispatch.hh picks the tier), and scatters the colors back.
 *
 * Everything observable is bit-identical to the scalar sampler paths:
 * the per-sample FP accumulation chain (see kernels.hh), the TexelRef
 * streams, and the memo lookup/store sequence (which drives the
 * texunit.memo_* counters) are all preserved exactly.
 */

#ifndef PARGPU_SIMD_FILTER_HH
#define PARGPU_SIMD_FILTER_HH

#include <cstdint>

#include "common/color.hh"
#include "common/types.hh"
#include "common/vec.hh"
#include "simd/batch.hh"
#include "texture/sampler.hh"

namespace pargpu::simd
{

/**
 * Per-texture-unit batch filter. Holds the SoA staging buffers (a few KB,
 * allocation-free after construction); not thread-safe — each texture
 * unit owns one, like its FootprintMemo.
 */
class QuadFilter
{
  public:
    /**
     * Filter @p n trilinear samples centered at @p uvs[0..n) under the
     * shared level selection @p sel, through @p memo. Fills @p out[i]
     * exactly as TextureSampler::trilinearInto would (uv, levels, the
     * 8 TexelRefs, color) and issues the same memo lookup/store sequence
     * in sample order. One kernel call per invocation.
     */
    void filterSamples(const TextureSampler &sampler, const Vec2 *uvs,
                       int n, const LodSelect &sel, FootprintMemo &memo,
                       TrilinearSample *out);

    /** Batched equivalent of TextureSampler::filterTrilinearInto(). */
    Color4f filterTrilinear(const TextureSampler &sampler, const Vec2 &uv,
                            float lod, FootprintMemo &memo,
                            TrilinearSample &out);

    /** Batched equivalent of TextureSampler::filterAnisotropicInto(). */
    Color4f filterAnisotropic(const TextureSampler &sampler,
                              const Vec2 &uv, const AnisotropyInfo &info,
                              FootprintMemo &memo, TrilinearSample *out);

    /**
     * The AF sample placement of filterAnisotropic(): writes the
     * info.sampleSize sample centers for a pixel at @p uv into @p out
     * and returns the count. Lets a caller concatenate several pixels'
     * samples into one filterSamples() batch.
     */
    static int anisoUvs(const Vec2 &uv, const AnisotropyInfo &info,
                        Vec2 *out);

    /**
     * The AF sample average of filterAnisotropic(): mean of @p n sample
     * colors in sample order, with the same FP operation sequence.
     */
    static Color4f averageColors(const TrilinearSample *samples, int n);

    /** averageColors() over a plain color array (compact path). */
    static Color4f averageColors(const Color4f *colors, int n);

    // --- Compact path -------------------------------------------------
    // The simulator consumes only each sample's 8 texel addresses (fetch
    // bookkeeping, the PATU hash table) and its filtered color; the
    // compact variants skip materializing full TrilinearSample records
    // (~230 B/sample of stores) and emit exactly those two outputs. Same
    // gather loop (one template), so colors, addresses and the memo
    // probe sequence are bit-identical to the full variants.

    /** filterSamples() emitting only addresses and colors. */
    void filterSamplesAddrs(const TextureSampler &sampler, const Vec2 *uvs,
                            int n, const LodSelect &sel,
                            FootprintMemo &memo, TexelAddrSet *addrs,
                            Color4f *colors);

    /** filterTrilinear() emitting only the address set. */
    Color4f filterTrilinearAddrs(const TextureSampler &sampler,
                                 const Vec2 &uv, float lod,
                                 FootprintMemo &memo, TexelAddrSet &addrs);

    /**
     * filterAnisotropic() emitting addresses and per-sample colors
     * (info.sampleSize of each); returns the averaged pixel color.
     */
    Color4f filterAnisotropicAddrs(const TextureSampler &sampler,
                                   const Vec2 &uv,
                                   const AnisotropyInfo &info,
                                   FootprintMemo &memo, TexelAddrSet *addrs,
                                   Color4f *colors);

    /** Kernel invocations since the last call; drains to zero. */
    std::uint64_t
    takeBatches()
    {
        std::uint64_t b = batches_;
        batches_ = 0;
        return b;
    }

  private:
    /**
     * The one gather-accumulate-scatter loop behind both variants:
     * kFull writes TrilinearSample records to @p out, compact writes
     * address sets and colors to @p addrs / @p colors.
     */
    template <bool kFull>
    void gather(const TextureSampler &sampler, const Vec2 *uvs, int n,
                const LodSelect &sel, FootprintMemo &memo,
                TrilinearSample *out, TexelAddrSet *addrs,
                Color4f *colors);

    TexelBatch tex_{};
    WeightBatch wgt_{};
    alignas(32) float out_r_[kMaxLanes] = {};
    alignas(32) float out_g_[kMaxLanes] = {};
    alignas(32) float out_b_[kMaxLanes] = {};
    alignas(32) float out_a_[kMaxLanes] = {};
    std::uint64_t batches_ = 0;
};

} // namespace pargpu::simd

#endif // PARGPU_SIMD_FILTER_HH
