#include "simd/filter.hh"

#include <algorithm>
#include <cmath>

#include "common/contract.hh"
#include "simd/kernels.hh"

// This TU is compiled at the base x86-64 ISA, which includes SSE2: the
// RGBA accumulator below rides one 4-wide register per sample with no
// dispatch needed. Each channel's lane runs the exact scalar chain
// (separate mulps/addps in slot order — no FMA at this ISA level), so
// the colors are bit-identical to the scalar fallback and independent
// of the PARGPU_SIMD tier and build knob.
#if defined(__SSE2__)
#define PARGPU_FILTER_SSE 1
#include <emmintrin.h>
#else
#define PARGPU_FILTER_SSE 0
#endif

namespace pargpu::simd
{

template <bool kFull>
void
QuadFilter::gather(const TextureSampler &sampler, const Vec2 *uvs, int n,
                   const LodSelect &sel, FootprintMemo &memo,
                   TrilinearSample *out, TexelAddrSet *addrs,
                   Color4f *colors)
{
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "batch lane count");
    const TextureMap &tex = sampler.texture();

    // The level selection is batch-wide: hoist the per-level constants out
    // of the sample loop. (Manually — the stores below could alias the
    // texture's arrays for all the compiler knows, blocking the hoist.)
    struct LevelCtx
    {
        int level;
        float w, h;     ///< Level dimensions, as the UV scale factors.
        float level_w;  ///< Trilinear blend weight of this level.
    };
    const LevelCtx lctx[2] = {
        {sel.level0, static_cast<float>(tex.level(sel.level0).width),
         static_cast<float>(tex.level(sel.level0).height), 1.0f - sel.frac},
        {sel.level1, static_cast<float>(tex.level(sel.level1).width),
         static_cast<float>(tex.level(sel.level1).height), sel.frac},
    };

    // Gather + accumulate in one pass: per sample, the same footprint
    // walk as trilinearInto() — identical address math, blend weights
    // and memo probe order — with the RGBA accumulation riding one
    // 4-wide register (one lane per channel, broadcast weight). A
    // sample's channels are independent, so vectorizing ACROSS channels
    // leaves each channel's slot-order multiply-add chain untouched:
    // the color is bit-identical to the scalar fallback below, on every
    // dispatch tier, with none of the slot-major staging traffic the
    // previous kernel round-trip paid (~40 stores + reloads per sample).
    for (int i = 0; i < n; ++i) {
#if PARGPU_FILTER_SSE
        __m128 acc = _mm_setzero_ps();
#else
        float acc_r = 0.0f, acc_g = 0.0f, acc_b = 0.0f, acc_a = 0.0f;
#endif
        if constexpr (kFull) {
            TrilinearSample &s = out[i];
            s.uv = uvs[i];
            s.level0 = sel.level0;
            s.level1 = sel.level1;
            s.frac = sel.frac;
        }
        int slot = 0;
        for (int li = 0; li < 2; ++li) {
            const int level = lctx[li].level;
            const float level_w = lctx[li].level_w;
            float tu = uvs[i].x * lctx[li].w - 0.5f;
            float tv = uvs[i].y * lctx[li].h - 0.5f;
            int x0 = static_cast<int>(std::floor(tu));
            int y0 = static_cast<int>(std::floor(tv));
            float fu = tu - x0;
            float fv = tv - y0;
            const float bw[4] = {
                (1.0f - fu) * (1.0f - fv),
                fu * (1.0f - fv),
                (1.0f - fu) * fv,
                fu * fv,
            };
            // Footprint by reference: a hit reads straight from the memo
            // slot, a miss fetches into the slot and reads it back — no
            // 2x2 copy either way, one hash probe total, and the
            // lookup/store counter sequence equals the sampler path's.
            bool hit = false;
            FootprintMemo::Entry &e = memo.acquire(level, x0, y0, hit);
            if (!hit)
                tex.fetchFootprint(level, x0, y0, e.color, e.addr);
            const int dx[4] = {0, 1, 0, 1};
            const int dy[4] = {0, 0, 1, 1};
            for (int k = 0; k < 4; ++k, ++slot) {
                const float w = bw[k] * level_w;
                if constexpr (kFull) {
                    TexelRef &t = out[i].texels[slot];
                    t.level = level;
                    t.x = x0 + dx[k];
                    t.y = y0 + dy[k];
                    t.weight = w;
                    t.addr = e.addr[k];
                } else {
                    addrs[i][slot] = e.addr[k];
                }
#if PARGPU_FILTER_SSE
                acc = _mm_add_ps(
                    acc, _mm_mul_ps(_mm_loadu_ps(&e.color[k].r),
                                    _mm_set1_ps(w)));
#else
                acc_r += e.color[k].r * w;
                acc_g += e.color[k].g * w;
                acc_b += e.color[k].b * w;
                acc_a += e.color[k].a * w;
#endif
            }
        }
#if PARGPU_FILTER_SSE
        if constexpr (kFull)
            _mm_storeu_ps(&out[i].color.r, acc);
        else
            _mm_storeu_ps(&colors[i].r, acc);
#else
        const Color4f c{acc_r, acc_g, acc_b, acc_a};
        if constexpr (kFull)
            out[i].color = c;
        else
            colors[i] = c;
#endif
    }
    ++batches_;
}

void
QuadFilter::filterSamples(const TextureSampler &sampler, const Vec2 *uvs,
                          int n, const LodSelect &sel, FootprintMemo &memo,
                          TrilinearSample *out)
{
    gather<true>(sampler, uvs, n, sel, memo, out, nullptr, nullptr);
}

void
QuadFilter::filterSamplesAddrs(const TextureSampler &sampler,
                               const Vec2 *uvs, int n, const LodSelect &sel,
                               FootprintMemo &memo, TexelAddrSet *addrs,
                               Color4f *colors)
{
    gather<false>(sampler, uvs, n, sel, memo, nullptr, addrs, colors);
}

Color4f
QuadFilter::filterTrilinear(const TextureSampler &sampler, const Vec2 &uv,
                            float lod, FootprintMemo &memo,
                            TrilinearSample &out)
{
    filterSamples(sampler, &uv, 1, sampler.selectLod(lod), memo, &out);
    return out.color;
}

int
QuadFilter::anisoUvs(const Vec2 &uv, const AnisotropyInfo &info, Vec2 *out)
{
    const int n = info.sampleSize;
    // Sample placement identical to filterAnisotropicInto(): centers
    // confined to the ellipse interior along the major axis.
    float span = info.pMax > 0.0f
        ? std::max(0.0f, 1.0f - info.pMin / info.pMax) : 0.0f;
    for (int i = 0; i < n; ++i) {
        float t = span * (2.0f * i - n + 1.0f) / (2.0f * n);
        out[i] = Vec2{uv.x + info.majorUv.x * t,
                      uv.y + info.majorUv.y * t};
    }
    return n;
}

Color4f
QuadFilter::averageColors(const TrilinearSample *samples, int n)
{
    // Same across-channel vectorization as the gather accumulator: each
    // channel's lane performs the scalar sequence (mul by 1/n, add in
    // sample order), so the mean is bit-identical to the scalar loop.
#if PARGPU_FILTER_SSE
    const __m128 inv_n = _mm_set1_ps(1.0f / static_cast<float>(n));
    __m128 acc = _mm_setzero_ps();
    for (int i = 0; i < n; ++i)
        acc = _mm_add_ps(
            acc, _mm_mul_ps(_mm_loadu_ps(&samples[i].color.r), inv_n));
    Color4f out;
    _mm_storeu_ps(&out.r, acc);
    return out;
#else
    Color4f acc{0, 0, 0, 0};
    for (int i = 0; i < n; ++i)
        acc += samples[i].color * (1.0f / static_cast<float>(n));
    return acc;
#endif
}

Color4f
QuadFilter::averageColors(const Color4f *colors, int n)
{
#if PARGPU_FILTER_SSE
    const __m128 inv_n = _mm_set1_ps(1.0f / static_cast<float>(n));
    __m128 acc = _mm_setzero_ps();
    for (int i = 0; i < n; ++i)
        acc = _mm_add_ps(acc,
                         _mm_mul_ps(_mm_loadu_ps(&colors[i].r), inv_n));
    Color4f out;
    _mm_storeu_ps(&out.r, acc);
    return out;
#else
    Color4f acc{0, 0, 0, 0};
    for (int i = 0; i < n; ++i)
        acc += colors[i] * (1.0f / static_cast<float>(n));
    return acc;
#endif
}

Color4f
QuadFilter::filterAnisotropic(const TextureSampler &sampler, const Vec2 &uv,
                              const AnisotropyInfo &info,
                              FootprintMemo &memo, TrilinearSample *out)
{
    const int n = info.sampleSize;
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "anisotropic sample count");
    const LodSelect sel = sampler.selectLod(info.lodAF);
    Vec2 *uvs = uvs_;
    anisoUvs(uv, info, uvs);
    filterSamples(sampler, uvs, n, sel, memo, out);
    return averageColors(out, n);
}

Color4f
QuadFilter::filterTrilinearAddrs(const TextureSampler &sampler,
                                 const Vec2 &uv, float lod,
                                 FootprintMemo &memo, TexelAddrSet &addrs)
{
    Color4f color;
    filterSamplesAddrs(sampler, &uv, 1, sampler.selectLod(lod), memo,
                       &addrs, &color);
    return color;
}

Color4f
QuadFilter::filterAnisotropicAddrs(const TextureSampler &sampler,
                                   const Vec2 &uv,
                                   const AnisotropyInfo &info,
                                   FootprintMemo &memo, TexelAddrSet *addrs,
                                   Color4f *colors)
{
    const int n = info.sampleSize;
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "anisotropic sample count");
    const LodSelect sel = sampler.selectLod(info.lodAF);
    Vec2 *uvs = uvs_;
    anisoUvs(uv, info, uvs);
    filterSamplesAddrs(sampler, uvs, n, sel, memo, addrs, colors);
    return averageColors(colors, n);
}

} // namespace pargpu::simd
