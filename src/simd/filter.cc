#include "simd/filter.hh"

#include <algorithm>
#include <cmath>

#include "common/contract.hh"
#include "simd/kernels.hh"

namespace pargpu::simd
{

template <bool kFull>
void
QuadFilter::gather(const TextureSampler &sampler, const Vec2 *uvs, int n,
                   const LodSelect &sel, FootprintMemo &memo,
                   TrilinearSample *out, TexelAddrSet *addrs,
                   Color4f *colors)
{
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "batch lane count");
    const TextureMap &tex = sampler.texture();
    const KernelOps &ops = activeKernels();

    // The level selection is batch-wide: hoist the per-level constants out
    // of the sample loop. (Manually — the SoA stores below could alias the
    // texture's arrays for all the compiler knows, blocking the hoist.)
    struct LevelCtx
    {
        int level;
        float w, h;     ///< Level dimensions, as the UV scale factors.
        float level_w;  ///< Trilinear blend weight of this level.
    };
    const LevelCtx lctx[2] = {
        {sel.level0, static_cast<float>(tex.level(sel.level0).width),
         static_cast<float>(tex.level(sel.level0).height), 1.0f - sel.frac},
        {sel.level1, static_cast<float>(tex.level(sel.level1).width),
         static_cast<float>(tex.level(sel.level1).height), sel.frac},
    };

    // Batches narrower than the active vector width gain nothing from the
    // slot-major staging: accumulate them directly in the gather loop.
    // The chain per lane is the same sequential slot-order multiply-add
    // (separate mul and add — this TU is compiled at the base x86-64 ISA,
    // which has no FMA to contract into) every kernel implements, so the
    // result is bit-identical to the staged path on any dispatch tier.
    const bool direct = n < ops.lanes;

    // Gather: per sample, the same footprint walk as trilinearInto() —
    // identical address math, blend weights and memo probe order — but
    // colors land in the slot-major batch instead of being blended
    // per-texel.
    for (int i = 0; i < n; ++i) {
        float acc_r = 0.0f, acc_g = 0.0f, acc_b = 0.0f, acc_a = 0.0f;
        if constexpr (kFull) {
            TrilinearSample &s = out[i];
            s.uv = uvs[i];
            s.level0 = sel.level0;
            s.level1 = sel.level1;
            s.frac = sel.frac;
        }
        int slot = 0;
        for (int li = 0; li < 2; ++li) {
            const int level = lctx[li].level;
            const float level_w = lctx[li].level_w;
            float tu = uvs[i].x * lctx[li].w - 0.5f;
            float tv = uvs[i].y * lctx[li].h - 0.5f;
            int x0 = static_cast<int>(std::floor(tu));
            int y0 = static_cast<int>(std::floor(tv));
            float fu = tu - x0;
            float fv = tv - y0;
            const float bw[4] = {
                (1.0f - fu) * (1.0f - fv),
                fu * (1.0f - fv),
                (1.0f - fu) * fv,
                fu * fv,
            };
            // Footprint by reference: a hit reads straight from the memo
            // slot, a miss fetches into the slot and reads it back — no
            // 2x2 copy either way, one hash probe total, and the
            // lookup/store counter sequence equals the sampler path's.
            bool hit = false;
            FootprintMemo::Entry &e = memo.acquire(level, x0, y0, hit);
            if (!hit)
                tex.fetchFootprint(level, x0, y0, e.color, e.addr);
            const int dx[4] = {0, 1, 0, 1};
            const int dy[4] = {0, 0, 1, 1};
            for (int k = 0; k < 4; ++k, ++slot) {
                const float w = bw[k] * level_w;
                if constexpr (kFull) {
                    TexelRef &t = out[i].texels[slot];
                    t.level = level;
                    t.x = x0 + dx[k];
                    t.y = y0 + dy[k];
                    t.weight = w;
                    t.addr = e.addr[k];
                } else {
                    addrs[i][slot] = e.addr[k];
                }
                if (direct) {
                    acc_r += e.color[k].r * w;
                    acc_g += e.color[k].g * w;
                    acc_b += e.color[k].b * w;
                    acc_a += e.color[k].a * w;
                } else {
                    tex_.r[slot][i] = e.color[k].r;
                    tex_.g[slot][i] = e.color[k].g;
                    tex_.b[slot][i] = e.color[k].b;
                    tex_.a[slot][i] = e.color[k].a;
                    wgt_.w[slot][i] = w;
                }
            }
        }
        if (direct) {
            out_r_[i] = acc_r;
            out_g_[i] = acc_g;
            out_b_[i] = acc_b;
            out_a_[i] = acc_a;
        }
    }

    if (!direct) {
        // Pad lanes up to the vector width carry zero weights so the
        // kernel may compute (and discard) them; their colors are
        // stale-but-finite (the batches start zeroed).
        const int padded = (n + ops.lanes - 1) / ops.lanes * ops.lanes;
        for (int i = n; i < padded; ++i)
            for (int s = 0; s < kMaxSlots; ++s)
                wgt_.w[s][i] = 0.0f;
        ops.accumulate(tex_, wgt_, kMaxSlots, n, out_r_, out_g_, out_b_,
                       out_a_);
    }
    ++batches_;

    for (int i = 0; i < n; ++i) {
        const Color4f c{out_r_[i], out_g_[i], out_b_[i], out_a_[i]};
        if constexpr (kFull)
            out[i].color = c;
        else
            colors[i] = c;
    }
}

void
QuadFilter::filterSamples(const TextureSampler &sampler, const Vec2 *uvs,
                          int n, const LodSelect &sel, FootprintMemo &memo,
                          TrilinearSample *out)
{
    gather<true>(sampler, uvs, n, sel, memo, out, nullptr, nullptr);
}

void
QuadFilter::filterSamplesAddrs(const TextureSampler &sampler,
                               const Vec2 *uvs, int n, const LodSelect &sel,
                               FootprintMemo &memo, TexelAddrSet *addrs,
                               Color4f *colors)
{
    gather<false>(sampler, uvs, n, sel, memo, nullptr, addrs, colors);
}

Color4f
QuadFilter::filterTrilinear(const TextureSampler &sampler, const Vec2 &uv,
                            float lod, FootprintMemo &memo,
                            TrilinearSample &out)
{
    filterSamples(sampler, &uv, 1, sampler.selectLod(lod), memo, &out);
    return out.color;
}

int
QuadFilter::anisoUvs(const Vec2 &uv, const AnisotropyInfo &info, Vec2 *out)
{
    const int n = info.sampleSize;
    // Sample placement identical to filterAnisotropicInto(): centers
    // confined to the ellipse interior along the major axis.
    float span = info.pMax > 0.0f
        ? std::max(0.0f, 1.0f - info.pMin / info.pMax) : 0.0f;
    for (int i = 0; i < n; ++i) {
        float t = span * (2.0f * i - n + 1.0f) / (2.0f * n);
        out[i] = Vec2{uv.x + info.majorUv.x * t,
                      uv.y + info.majorUv.y * t};
    }
    return n;
}

Color4f
QuadFilter::averageColors(const TrilinearSample *samples, int n)
{
    Color4f acc{0, 0, 0, 0};
    for (int i = 0; i < n; ++i)
        acc += samples[i].color * (1.0f / static_cast<float>(n));
    return acc;
}

Color4f
QuadFilter::averageColors(const Color4f *colors, int n)
{
    Color4f acc{0, 0, 0, 0};
    for (int i = 0; i < n; ++i)
        acc += colors[i] * (1.0f / static_cast<float>(n));
    return acc;
}

Color4f
QuadFilter::filterAnisotropic(const TextureSampler &sampler, const Vec2 &uv,
                              const AnisotropyInfo &info,
                              FootprintMemo &memo, TrilinearSample *out)
{
    const int n = info.sampleSize;
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "anisotropic sample count");
    const LodSelect sel = sampler.selectLod(info.lodAF);
    Vec2 uvs[kMaxLanes];
    anisoUvs(uv, info, uvs);
    filterSamples(sampler, uvs, n, sel, memo, out);
    return averageColors(out, n);
}

Color4f
QuadFilter::filterTrilinearAddrs(const TextureSampler &sampler,
                                 const Vec2 &uv, float lod,
                                 FootprintMemo &memo, TexelAddrSet &addrs)
{
    Color4f color;
    filterSamplesAddrs(sampler, &uv, 1, sampler.selectLod(lod), memo,
                       &addrs, &color);
    return color;
}

Color4f
QuadFilter::filterAnisotropicAddrs(const TextureSampler &sampler,
                                   const Vec2 &uv,
                                   const AnisotropyInfo &info,
                                   FootprintMemo &memo, TexelAddrSet *addrs,
                                   Color4f *colors)
{
    const int n = info.sampleSize;
    PARGPU_CHECK_RANGE(n, 1, kMaxLanes, "anisotropic sample count");
    const LodSelect sel = sampler.selectLod(info.lodAF);
    Vec2 uvs[kMaxLanes];
    anisoUvs(uv, info, uvs);
    filterSamplesAddrs(sampler, uvs, n, sel, memo, addrs, colors);
    return averageColors(colors, n);
}

} // namespace pargpu::simd
