#include <emmintrin.h>
#include <xmmintrin.h>

#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * 4 lanes per step. mulps + addps perform the same IEEE multiply and add
 * as the scalar chain lane-wise (no contraction to FMA is possible: the
 * intrinsics map to fixed instructions), so results are bit-identical to
 * accumulateScalar().
 */
void
accumulateSse(const TexelBatch &tex, const WeightBatch &wgt, int slots,
              int lanes, float *out_r, float *out_g, float *out_b,
              float *out_a)
{
    for (int j = 0; j < lanes; j += 4) {
        __m128 r = _mm_setzero_ps();
        __m128 g = _mm_setzero_ps();
        __m128 b = _mm_setzero_ps();
        __m128 a = _mm_setzero_ps();
        for (int s = 0; s < slots; ++s) {
            const __m128 w = _mm_load_ps(&wgt.w[s][j]);
            r = _mm_add_ps(r, _mm_mul_ps(_mm_load_ps(&tex.r[s][j]), w));
            g = _mm_add_ps(g, _mm_mul_ps(_mm_load_ps(&tex.g[s][j]), w));
            b = _mm_add_ps(b, _mm_mul_ps(_mm_load_ps(&tex.b[s][j]), w));
            a = _mm_add_ps(a, _mm_mul_ps(_mm_load_ps(&tex.a[s][j]), w));
        }
        _mm_store_ps(out_r + j, r);
        _mm_store_ps(out_g + j, g);
        _mm_store_ps(out_b + j, b);
        _mm_store_ps(out_a + j, a);
    }
}

/**
 * One 2x2 quad in 4 lanes. Every step is the scalar chain's operation —
 * subps/mulps/addps in the same order, divps for the reciprocal (IEEE
 * correctly rounded, so it equals the scalar 1.0f/x), cmpneqps keeping
 * the unordered semantics of the scalar != guard. The window test is
 * integer and computed outside the vector path, exactly as the scalar
 * kernel evaluates it.
 */
void
edgeQuadSse(const EdgeTri &tri, int qx, int qy, int x0, int y0, int x1,
            int y1, EdgeQuadOut &out)
{
    const __m128 half = _mm_set1_ps(0.5f);
    const __m128 vcx = _mm_add_ps(
        _mm_cvtepi32_ps(_mm_setr_epi32(qx, qx + 1, qx, qx + 1)), half);
    const __m128 vcy = _mm_add_ps(
        _mm_cvtepi32_ps(_mm_setr_epi32(qy, qy, qy + 1, qy + 1)), half);

    const __m128 ax = _mm_set1_ps(tri.ax), ay = _mm_set1_ps(tri.ay);
    const __m128 bx = _mm_set1_ps(tri.bx), by = _mm_set1_ps(tri.by);
    const __m128 cx = _mm_set1_ps(tri.cx), cy = _mm_set1_ps(tri.cy);

    const __m128 e0 = _mm_sub_ps(
        _mm_mul_ps(_mm_sub_ps(vcx, bx), _mm_sub_ps(cy, by)),
        _mm_mul_ps(_mm_sub_ps(vcy, by), _mm_sub_ps(cx, bx)));
    const __m128 e1 = _mm_sub_ps(
        _mm_mul_ps(_mm_sub_ps(vcx, cx), _mm_sub_ps(ay, cy)),
        _mm_mul_ps(_mm_sub_ps(vcy, cy), _mm_sub_ps(ax, cx)));

    const __m128 inv_area = _mm_set1_ps(tri.inv_area);
    const __m128 w0 = _mm_mul_ps(e0, inv_area);
    const __m128 w1 = _mm_mul_ps(e1, inv_area);
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 w2 = _mm_sub_ps(_mm_sub_ps(one, w0), w1);

    const __m128 inv_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.iw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.iw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.iw2)));
    const __m128 u_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.uw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.uw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.uw2)));
    const __m128 v_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.vw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.vw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.vw2)));

    const __m128 zero = _mm_setzero_ps();
    const __m128 rcp = _mm_and_ps(_mm_div_ps(one, inv_w),
                                  _mm_cmpneq_ps(inv_w, zero));
    _mm_storeu_ps(out.u, _mm_mul_ps(u_w, rcp));
    _mm_storeu_ps(out.v, _mm_mul_ps(v_w, rcp));
    _mm_storeu_ps(out.depth,
                  _mm_add_ps(_mm_add_ps(
                                 _mm_mul_ps(w0, _mm_set1_ps(tri.z0)),
                                 _mm_mul_ps(w1, _mm_set1_ps(tri.z1))),
                             _mm_mul_ps(w2, _mm_set1_ps(tri.z2))));

    const __m128 inside = _mm_and_ps(
        _mm_and_ps(_mm_cmpge_ps(w0, zero), _mm_cmpge_ps(w1, zero)),
        _mm_cmpge_ps(w2, zero));
    const unsigned in0 = qx >= x0 && qx <= x1 ? 1u : 0u;
    const unsigned in1 = qx + 1 >= x0 && qx + 1 <= x1 ? 1u : 0u;
    const unsigned iny0 = qy >= y0 && qy <= y1 ? 1u : 0u;
    const unsigned iny1 = qy + 1 >= y0 && qy + 1 <= y1 ? 1u : 0u;
    const unsigned wmask = (in0 & iny0) | ((in1 & iny0) << 1) |
        ((in0 & iny1) << 2) | ((in1 & iny1) << 3);
    out.coverage =
        static_cast<unsigned>(_mm_movemask_ps(inside)) & wmask;
}

void
fillColorSse(float *dst, int pixels, const float *rgba)
{
    const __m128 c = _mm_loadu_ps(rgba);
    for (int i = 0; i < pixels; ++i)
        _mm_storeu_ps(dst + 4 * i, c);
}

void
fillDepthSse(float *dst, int count, float value)
{
    const __m128 v = _mm_set1_ps(value);
    int i = 0;
    for (; i + 4 <= count; i += 4)
        _mm_storeu_ps(dst + i, v);
    for (; i < count; ++i)
        dst[i] = value;
}

/**
 * cmpltps is the scalar depth < stored compare per lane; the and/andnot
 * select stores the new depth on pass lanes and rewrites the original
 * bits on fail lanes (the quad is fully in-window, so every lane's pixel
 * belongs to this tile's owner).
 */
unsigned
depthQuadSse(float *row0, float *row1, const float *depth)
{
    __m128 stored = _mm_setzero_ps();
    stored = _mm_loadl_pi(stored, reinterpret_cast<const __m64 *>(row0));
    stored = _mm_loadh_pi(stored, reinterpret_cast<const __m64 *>(row1));
    const __m128 d = _mm_loadu_ps(depth);
    const __m128 pass = _mm_cmplt_ps(d, stored);
    const __m128 updated =
        _mm_or_ps(_mm_and_ps(pass, d), _mm_andnot_ps(pass, stored));
    _mm_storel_pi(reinterpret_cast<__m64 *>(row0), updated);
    _mm_storeh_pi(reinterpret_cast<__m64 *>(row1), updated);
    return static_cast<unsigned>(_mm_movemask_ps(pass));
}

void
scatterQuadSse(float *row0, float *row1, const float *rgba, unsigned mask)
{
    if (mask & 1u)
        _mm_storeu_ps(row0, _mm_loadu_ps(rgba));
    if (mask & 2u)
        _mm_storeu_ps(row0 + 4, _mm_loadu_ps(rgba + 4));
    if (mask & 4u)
        _mm_storeu_ps(row1, _mm_loadu_ps(rgba + 8));
    if (mask & 8u)
        _mm_storeu_ps(row1 + 4, _mm_loadu_ps(rgba + 12));
}

void
ssimRowSse(const float *src, float *out, int n, int stride, const float *k,
           int taps, float wsum)
{
    const __m128 vws = _mm_set1_ps(wsum);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128 acc = _mm_setzero_ps();
        for (int t = 0; t < taps; ++t)
            acc = _mm_add_ps(
                acc, _mm_mul_ps(_mm_set1_ps(k[t]),
                                _mm_loadu_ps(src + i + t * stride)));
        _mm_storeu_ps(out + i, _mm_div_ps(acc, vws));
    }
    for (; i < n; ++i) {
        float acc = 0.0f;
        for (int t = 0; t < taps; ++t)
            acc += k[t] * src[i + t * stride];
        out[i] = acc / wsum;
    }
}

} // namespace

const KernelOps &
sseKernels()
{
    static const KernelOps ops{accumulateSse, edgeQuadSse, fillColorSse,
                               fillDepthSse,  depthQuadSse, scatterQuadSse,
                               ssimRowSse,    4,            "sse"};
    return ops;
}

} // namespace pargpu::simd
