#include <emmintrin.h>

#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * 4 lanes per step. mulps + addps perform the same IEEE multiply and add
 * as the scalar chain lane-wise (no contraction to FMA is possible: the
 * intrinsics map to fixed instructions), so results are bit-identical to
 * accumulateScalar().
 */
void
accumulateSse(const TexelBatch &tex, const WeightBatch &wgt, int slots,
              int lanes, float *out_r, float *out_g, float *out_b,
              float *out_a)
{
    for (int j = 0; j < lanes; j += 4) {
        __m128 r = _mm_setzero_ps();
        __m128 g = _mm_setzero_ps();
        __m128 b = _mm_setzero_ps();
        __m128 a = _mm_setzero_ps();
        for (int s = 0; s < slots; ++s) {
            const __m128 w = _mm_load_ps(&wgt.w[s][j]);
            r = _mm_add_ps(r, _mm_mul_ps(_mm_load_ps(&tex.r[s][j]), w));
            g = _mm_add_ps(g, _mm_mul_ps(_mm_load_ps(&tex.g[s][j]), w));
            b = _mm_add_ps(b, _mm_mul_ps(_mm_load_ps(&tex.b[s][j]), w));
            a = _mm_add_ps(a, _mm_mul_ps(_mm_load_ps(&tex.a[s][j]), w));
        }
        _mm_store_ps(out_r + j, r);
        _mm_store_ps(out_g + j, g);
        _mm_store_ps(out_b + j, b);
        _mm_store_ps(out_a + j, a);
    }
}

} // namespace

const KernelOps &
sseKernels()
{
    static const KernelOps ops{accumulateSse, 4, "sse"};
    return ops;
}

} // namespace pargpu::simd
