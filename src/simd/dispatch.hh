/**
 * @file
 * Runtime instruction-set dispatch for the SoA filtering kernels.
 *
 * The kernel layer ships one scalar reference implementation plus SSE and
 * AVX2 variants (compiled only with -DPARGPU_SIMD=ON). The process-wide
 * active tier is chosen once: the PARGPU_SIMD environment variable
 * (scalar|sse|avx2) when set — fatal if it names a tier this build or CPU
 * cannot run — otherwise the widest tier the host CPU supports. All tiers
 * produce bit-identical filtering results; the tier only changes host
 * wall-clock, never simulated metrics.
 *
 * setActiveTier() mirrors TextureMap::setDefaultStorage(): a test hook,
 * not thread-safe, to be called before any rendering starts.
 */

#ifndef PARGPU_SIMD_DISPATCH_HH
#define PARGPU_SIMD_DISPATCH_HH

namespace pargpu::simd
{

/** Instruction-set tier of a kernel implementation. */
enum class SimdTier
{
    Scalar, ///< Portable reference (always available).
    Sse,    ///< 4-lane SSE2 (x86-64 baseline).
    Avx2,   ///< 8-lane AVX2.
};

/** Widest tier this build and the host CPU can run. */
SimdTier detectTier();

/**
 * The tier the process filters with: the PARGPU_SIMD override when set,
 * else detectTier().
 */
SimdTier activeTier();

/**
 * Override the active tier (test/bench hook; fatal if @p t is not
 * runnable). Not thread-safe: call before building simulators.
 */
void setActiveTier(SimdTier t);

/** "scalar" | "sse" | "avx2". */
const char *tierName(SimdTier t);

/** Vector width of a tier in samples (scalar 1, SSE 4, AVX2 8). */
int tierLanes(SimdTier t);

/** Raw host CPUID feature flags (independent of the build knob). */
bool hostHasSse();
bool hostHasAvx2();

} // namespace pargpu::simd

#endif // PARGPU_SIMD_DISPATCH_HH
