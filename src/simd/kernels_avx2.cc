// Compiled with -mavx2 (see CMakeLists.txt); keep this TU free of any
// inline code shared with portable translation units.
#include <immintrin.h>

#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * 8 lanes per step. vmulps + vaddps, never vfmadd (the build does not
 * enable FMA and the intrinsics are not contractable), so each lane's
 * chain is bit-identical to accumulateScalar().
 */
void
accumulateAvx2(const TexelBatch &tex, const WeightBatch &wgt, int slots,
               int lanes, float *out_r, float *out_g, float *out_b,
               float *out_a)
{
    for (int j = 0; j < lanes; j += 8) {
        __m256 r = _mm256_setzero_ps();
        __m256 g = _mm256_setzero_ps();
        __m256 b = _mm256_setzero_ps();
        __m256 a = _mm256_setzero_ps();
        for (int s = 0; s < slots; ++s) {
            const __m256 w = _mm256_load_ps(&wgt.w[s][j]);
            r = _mm256_add_ps(
                r, _mm256_mul_ps(_mm256_load_ps(&tex.r[s][j]), w));
            g = _mm256_add_ps(
                g, _mm256_mul_ps(_mm256_load_ps(&tex.g[s][j]), w));
            b = _mm256_add_ps(
                b, _mm256_mul_ps(_mm256_load_ps(&tex.b[s][j]), w));
            a = _mm256_add_ps(
                a, _mm256_mul_ps(_mm256_load_ps(&tex.a[s][j]), w));
        }
        _mm256_store_ps(out_r + j, r);
        _mm256_store_ps(out_g + j, g);
        _mm256_store_ps(out_b + j, b);
        _mm256_store_ps(out_a + j, a);
    }
}

/**
 * A 2x2 quad is exactly one 4-lane vector, so the AVX2 tier evaluates
 * it at SSE width — VEX-encoded here, but the same fixed vsubps/vmulps/
 * vaddps/vdivps chain as the SSE tier, hence bit-identical to the
 * scalar reference (see kernels_sse.cc for the chain notes).
 */
void
edgeQuadAvx2(const EdgeTri &tri, int qx, int qy, int x0, int y0, int x1,
             int y1, EdgeQuadOut &out)
{
    const __m128 half = _mm_set1_ps(0.5f);
    const __m128 vcx = _mm_add_ps(
        _mm_cvtepi32_ps(_mm_setr_epi32(qx, qx + 1, qx, qx + 1)), half);
    const __m128 vcy = _mm_add_ps(
        _mm_cvtepi32_ps(_mm_setr_epi32(qy, qy, qy + 1, qy + 1)), half);

    const __m128 ax = _mm_set1_ps(tri.ax), ay = _mm_set1_ps(tri.ay);
    const __m128 bx = _mm_set1_ps(tri.bx), by = _mm_set1_ps(tri.by);
    const __m128 cx = _mm_set1_ps(tri.cx), cy = _mm_set1_ps(tri.cy);

    const __m128 e0 = _mm_sub_ps(
        _mm_mul_ps(_mm_sub_ps(vcx, bx), _mm_sub_ps(cy, by)),
        _mm_mul_ps(_mm_sub_ps(vcy, by), _mm_sub_ps(cx, bx)));
    const __m128 e1 = _mm_sub_ps(
        _mm_mul_ps(_mm_sub_ps(vcx, cx), _mm_sub_ps(ay, cy)),
        _mm_mul_ps(_mm_sub_ps(vcy, cy), _mm_sub_ps(ax, cx)));

    const __m128 inv_area = _mm_set1_ps(tri.inv_area);
    const __m128 w0 = _mm_mul_ps(e0, inv_area);
    const __m128 w1 = _mm_mul_ps(e1, inv_area);
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 w2 = _mm_sub_ps(_mm_sub_ps(one, w0), w1);

    const __m128 inv_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.iw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.iw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.iw2)));
    const __m128 u_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.uw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.uw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.uw2)));
    const __m128 v_w = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w0, _mm_set1_ps(tri.vw0)),
                   _mm_mul_ps(w1, _mm_set1_ps(tri.vw1))),
        _mm_mul_ps(w2, _mm_set1_ps(tri.vw2)));

    const __m128 zero = _mm_setzero_ps();
    const __m128 rcp = _mm_and_ps(_mm_div_ps(one, inv_w),
                                  _mm_cmpneq_ps(inv_w, zero));
    _mm_storeu_ps(out.u, _mm_mul_ps(u_w, rcp));
    _mm_storeu_ps(out.v, _mm_mul_ps(v_w, rcp));
    _mm_storeu_ps(out.depth,
                  _mm_add_ps(_mm_add_ps(
                                 _mm_mul_ps(w0, _mm_set1_ps(tri.z0)),
                                 _mm_mul_ps(w1, _mm_set1_ps(tri.z1))),
                             _mm_mul_ps(w2, _mm_set1_ps(tri.z2))));

    const __m128 inside = _mm_and_ps(
        _mm_and_ps(_mm_cmpge_ps(w0, zero), _mm_cmpge_ps(w1, zero)),
        _mm_cmpge_ps(w2, zero));
    const unsigned in0 = qx >= x0 && qx <= x1 ? 1u : 0u;
    const unsigned in1 = qx + 1 >= x0 && qx + 1 <= x1 ? 1u : 0u;
    const unsigned iny0 = qy >= y0 && qy <= y1 ? 1u : 0u;
    const unsigned iny1 = qy + 1 >= y0 && qy + 1 <= y1 ? 1u : 0u;
    const unsigned wmask = (in0 & iny0) | ((in1 & iny0) << 1) |
        ((in0 & iny1) << 2) | ((in1 & iny1) << 3);
    out.coverage =
        static_cast<unsigned>(_mm_movemask_ps(inside)) & wmask;
}

void
fillColorAvx2(float *dst, int pixels, const float *rgba)
{
    const __m128 c = _mm_loadu_ps(rgba);
    const __m256 cc = _mm256_set_m128(c, c);
    int i = 0;
    for (; i + 2 <= pixels; i += 2)
        _mm256_storeu_ps(dst + 4 * i, cc);
    if (i < pixels)
        _mm_storeu_ps(dst + 4 * i, c);
}

void
fillDepthAvx2(float *dst, int count, float value)
{
    const __m256 v = _mm256_set1_ps(value);
    int i = 0;
    for (; i + 8 <= count; i += 8)
        _mm256_storeu_ps(dst + i, v);
    for (; i < count; ++i)
        dst[i] = value;
}

/** SSE-width body (one quad is 4 lanes); see kernels_sse.cc notes. */
unsigned
depthQuadAvx2(float *row0, float *row1, const float *depth)
{
    __m128 stored = _mm_setzero_ps();
    stored = _mm_loadl_pi(stored, reinterpret_cast<const __m64 *>(row0));
    stored = _mm_loadh_pi(stored, reinterpret_cast<const __m64 *>(row1));
    const __m128 d = _mm_loadu_ps(depth);
    const __m128 pass = _mm_cmplt_ps(d, stored);
    const __m128 updated =
        _mm_or_ps(_mm_and_ps(pass, d), _mm_andnot_ps(pass, stored));
    _mm_storel_pi(reinterpret_cast<__m64 *>(row0), updated);
    _mm_storeh_pi(reinterpret_cast<__m64 *>(row1), updated);
    return static_cast<unsigned>(_mm_movemask_ps(pass));
}

void
scatterQuadAvx2(float *row0, float *row1, const float *rgba, unsigned mask)
{
    if ((mask & 3u) == 3u) {
        _mm256_storeu_ps(row0, _mm256_loadu_ps(rgba));
    } else {
        if (mask & 1u)
            _mm_storeu_ps(row0, _mm_loadu_ps(rgba));
        if (mask & 2u)
            _mm_storeu_ps(row0 + 4, _mm_loadu_ps(rgba + 4));
    }
    if ((mask & 12u) == 12u) {
        _mm256_storeu_ps(row1, _mm256_loadu_ps(rgba + 8));
    } else {
        if (mask & 4u)
            _mm_storeu_ps(row1, _mm_loadu_ps(rgba + 8));
        if (mask & 8u)
            _mm_storeu_ps(row1 + 4, _mm_loadu_ps(rgba + 12));
    }
}

void
ssimRowAvx2(const float *src, float *out, int n, int stride,
            const float *k, int taps, float wsum)
{
    const __m256 vws = _mm256_set1_ps(wsum);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (int t = 0; t < taps; ++t)
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(_mm256_set1_ps(k[t]),
                              _mm256_loadu_ps(src + i + t * stride)));
        _mm256_storeu_ps(out + i, _mm256_div_ps(acc, vws));
    }
    for (; i < n; ++i) {
        float acc = 0.0f;
        for (int t = 0; t < taps; ++t)
            acc += k[t] * src[i + t * stride];
        out[i] = acc / wsum;
    }
}

} // namespace

const KernelOps &
avx2Kernels()
{
    static const KernelOps ops{accumulateAvx2, edgeQuadAvx2, fillColorAvx2,
                               fillDepthAvx2,  depthQuadAvx2,
                               scatterQuadAvx2, ssimRowAvx2, 8, "avx2"};
    return ops;
}

} // namespace pargpu::simd
