// Compiled with -mavx2 (see CMakeLists.txt); keep this TU free of any
// inline code shared with portable translation units.
#include <immintrin.h>

#include "simd/kernels.hh"

namespace pargpu::simd
{

namespace
{

/**
 * 8 lanes per step. vmulps + vaddps, never vfmadd (the build does not
 * enable FMA and the intrinsics are not contractable), so each lane's
 * chain is bit-identical to accumulateScalar().
 */
void
accumulateAvx2(const TexelBatch &tex, const WeightBatch &wgt, int slots,
               int lanes, float *out_r, float *out_g, float *out_b,
               float *out_a)
{
    for (int j = 0; j < lanes; j += 8) {
        __m256 r = _mm256_setzero_ps();
        __m256 g = _mm256_setzero_ps();
        __m256 b = _mm256_setzero_ps();
        __m256 a = _mm256_setzero_ps();
        for (int s = 0; s < slots; ++s) {
            const __m256 w = _mm256_load_ps(&wgt.w[s][j]);
            r = _mm256_add_ps(
                r, _mm256_mul_ps(_mm256_load_ps(&tex.r[s][j]), w));
            g = _mm256_add_ps(
                g, _mm256_mul_ps(_mm256_load_ps(&tex.g[s][j]), w));
            b = _mm256_add_ps(
                b, _mm256_mul_ps(_mm256_load_ps(&tex.b[s][j]), w));
            a = _mm256_add_ps(
                a, _mm256_mul_ps(_mm256_load_ps(&tex.a[s][j]), w));
        }
        _mm256_store_ps(out_r + j, r);
        _mm256_store_ps(out_g + j, g);
        _mm256_store_ps(out_b + j, b);
        _mm256_store_ps(out_a + j, a);
    }
}

} // namespace

const KernelOps &
avx2Kernels()
{
    static const KernelOps ops{accumulateAvx2, 8, "avx2"};
    return ops;
}

} // namespace pargpu::simd
