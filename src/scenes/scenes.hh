/**
 * @file
 * Procedural game scenes standing in for the paper's Table II traces.
 *
 * Each generator produces a deterministic multi-frame trace whose geometry
 * and texture statistics are tuned to a distinct point of the anisotropy-
 * distribution space (see DESIGN.md): racing games have vast grazing-angle
 * track surfaces (heavy AF), indoor shooters mix walls and floors, and the
 * R.Bench stand-in stresses texture rate. The absolute content differs from
 * the commercial games; the workload *shape* — which is what every
 * experiment in the paper measures — is preserved.
 */

#ifndef PARGPU_SCENES_SCENES_HH
#define PARGPU_SCENES_SCENES_HH

#include <string>
#include <vector>

#include "sim/geometry.hh"
#include "texture/procedural.hh"

namespace pargpu
{

/** The evaluated workloads (Table II plus the R.Bench stand-in). */
enum class GameId
{
    HL2,     ///< Half-Life 2 style: outdoor terrain + buildings.
    Doom3,   ///< Doom 3 style: dark indoor corridors.
    Grid,    ///< GRID style: racing track.
    Nfs,     ///< Need For Speed style: street racing.
    Stalker, ///< S.T.A.L.K.E.R. style: outdoor ruins.
    Ut3,     ///< Unreal Tournament 3 style: arena.
    Wolf,    ///< Wolfenstein style: low-res indoor.
    RBench,  ///< Relative Benchmark style: texture-rate stress.
};

/** Short name used in result tables ("HL2", "doom3", ...). */
const char *gameAbbr(GameId id);

/** How a texture slot was generated (for trace serialization). */
struct TextureRecipe
{
    TextureKind kind = TextureKind::Noise;
    int size = 512;
    std::uint32_t seed = 0;
    WrapMode wrap = WrapMode::Repeat;
};

/** A complete replayable workload: scene + per-frame cameras. */
struct GameTrace
{
    std::string name;            ///< e.g. "HL2-1600x1200".
    GameId id = GameId::HL2;
    int width = 1280;
    int height = 1024;
    Scene scene;
    std::vector<Camera> cameras; ///< One per frame.
    std::vector<TextureRecipe> recipes; ///< Parallel to scene.textures.
};

/**
 * Build the trace for @p id at the given resolution.
 *
 * @param frames  Number of camera frames to generate.
 */
GameTrace buildGameTrace(GameId id, int width, int height, int frames = 3);

/** One row of the paper's Table II. */
struct BenchmarkEntry
{
    GameId id;
    const char *abbr;
    const char *full_name;
    int width;
    int height;
    const char *library; ///< Rendering API of the original game.
};

/**
 * The nine game/resolution pairs evaluated throughout Section VII
 * (HL2 and Doom3 at three resolutions each, plus five games at one).
 */
std::vector<BenchmarkEntry> paperBenchmarks();

} // namespace pargpu

#endif // PARGPU_SCENES_SCENES_HH
