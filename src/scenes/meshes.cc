#include "scenes/meshes.hh"

namespace pargpu
{

Mesh
makeGrid(const Vec3 &origin, const Vec3 &eu, const Vec3 &ev,
         int nu, int nv, float u_scale, float v_scale, int texture_id)
{
    Mesh m;
    m.texture_id = texture_id;
    m.vertices.reserve(static_cast<std::size_t>(nu + 1) * (nv + 1));
    for (int j = 0; j <= nv; ++j) {
        for (int i = 0; i <= nu; ++i) {
            float s = static_cast<float>(i) / nu;
            float t = static_cast<float>(j) / nv;
            Vertex v;
            v.pos = origin + eu * s + ev * t;
            v.uv = Vec2{s * u_scale, t * v_scale};
            m.vertices.push_back(v);
        }
    }
    auto idx = [nu](int i, int j) {
        return static_cast<std::uint32_t>(j * (nu + 1) + i);
    };
    for (int j = 0; j < nv; ++j) {
        for (int i = 0; i < nu; ++i) {
            // Two CCW triangles per cell (against the eu x ev normal).
            m.indices.push_back(idx(i, j));
            m.indices.push_back(idx(i + 1, j));
            m.indices.push_back(idx(i + 1, j + 1));
            m.indices.push_back(idx(i, j));
            m.indices.push_back(idx(i + 1, j + 1));
            m.indices.push_back(idx(i, j + 1));
        }
    }
    return m;
}

void
appendBox(Mesh &mesh, const Vec3 &center, const Vec3 &half,
          float uv_scale)
{
    struct Face
    {
        Vec3 origin, eu, ev;
    };
    const float hx = half.x, hy = half.y, hz = half.z;
    const Face faces[6] = {
        // +Z (front)
        {{-hx, -hy, hz}, {2 * hx, 0, 0}, {0, 2 * hy, 0}},
        // -Z (back)
        {{hx, -hy, -hz}, {-2 * hx, 0, 0}, {0, 2 * hy, 0}},
        // +X (right)
        {{hx, -hy, hz}, {0, 0, -2 * hz}, {0, 2 * hy, 0}},
        // -X (left)
        {{-hx, -hy, -hz}, {0, 0, 2 * hz}, {0, 2 * hy, 0}},
        // +Y (top)
        {{-hx, hy, hz}, {2 * hx, 0, 0}, {0, 0, -2 * hz}},
        // -Y (bottom)
        {{-hx, -hy, -hz}, {2 * hx, 0, 0}, {0, 0, 2 * hz}},
    };
    for (const Face &f : faces) {
        Mesh face = makeGrid(center + f.origin, f.eu, f.ev, 1, 1,
                             uv_scale, uv_scale, mesh.texture_id);
        appendMesh(mesh, face);
    }
}

void
appendMesh(Mesh &dst, const Mesh &src)
{
    std::uint32_t base = static_cast<std::uint32_t>(dst.vertices.size());
    dst.vertices.insert(dst.vertices.end(), src.vertices.begin(),
                        src.vertices.end());
    for (std::uint32_t i : src.indices)
        dst.indices.push_back(base + i);
}

} // namespace pargpu
