#include "scenes/scenes.hh"

#include <cmath>

#include "common/logging.hh"
#include "scenes/meshes.hh"

namespace pargpu
{

namespace
{

/**
 * Global texel-density calibration. Commercial games of the paper's era
 * pair 256-512 px textures with 1280x1024+ screens, so surfaces near the
 * viewer are magnified along the minor footprint axis (pMin < 1) — the
 * regime in which AF's trilinear samples share texel sets (Fig. 12's
 * ~62 % statistic). This factor scales every draw's uv range to land the
 * suite in that regime.
 */
constexpr float kUvDensity = 0.15f;

/** Shared scene-building context. */
struct Builder
{
    GameTrace trace;

    int
    texture(TextureKind kind, int size, std::uint32_t seed,
            WrapMode wrap = WrapMode::Repeat)
    {
        trace.recipes.push_back({kind, size, seed, wrap});
        return trace.scene.addTexture(std::make_unique<TextureMap>(
            size, size, generateTexture(kind, size, seed), wrap));
    }

    void
    draw(Mesh mesh, FilterMode filter = FilterMode::Anisotropic,
         bool cull = true, bool specular = false)
    {
        for (Vertex &v : mesh.vertices)
            v.uv = v.uv * kUvDensity;
        DrawCall d;
        d.mesh = std::move(mesh);
        d.filter = filter;
        d.backface_cull = cull;
        d.specular = specular;
        trace.scene.draws.push_back(std::move(d));
    }

    /**
     * A large camera-facing backdrop (sky, distant wall). Such surfaces
     * have near-isotropic footprints (N == 1), matching the substantial
     * fraction of real game frames that never needs AF.
     */
    void
    backdrop(int texture_id, float z, float half_w, float height)
    {
        draw(makeGrid({-half_w, -5, z}, {2 * half_w, 0, 0},
                      {0, height, 0}, 8, 4, 6.0f / kUvDensity,
                      3.0f / kUvDensity, texture_id),
             FilterMode::Anisotropic, false);
    }

    /** Forward-walking camera path common to the corridor/track scenes. */
    void
    walkCameras(int frames, const Vec3 &start, float step, float eye_h,
                float look_down, float sway = 0.0f)
    {
        for (int f = 0; f < frames; ++f) {
            Camera cam;
            float z = start.z - step * f;
            float x = start.x +
                sway * std::sin(0.6f * static_cast<float>(f));
            Vec3 eye{x, eye_h, z};
            Vec3 at{x, eye_h - look_down, z - 10.0f};
            cam.eye = eye;
            cam.view = Mat4::lookAt(eye, at, {0, 1, 0});
            cam.proj = Mat4::perspective(
                1.1f,
                static_cast<float>(trace.width) / trace.height,
                0.3f, 400.0f);
            trace.cameras.push_back(cam);
        }
    }
};

// ---------------------------------------------------------------------
// HL2: outdoor terrain, water strip, distant buildings.
void
buildHl2(Builder &b, int frames)
{
    int grass = b.texture(TextureKind::Grass, 512, 11);
    int rock = b.texture(TextureKind::Noise, 512, 12);
    int brick = b.texture(TextureKind::Bricks, 512, 13);
    int marble = b.texture(TextureKind::Marble, 512, 14);

    // Remote mountain + sky backdrop (faces the camera: N == 1 pixels,
    // like the upper half of a real outdoor game frame).
    b.backdrop(rock, -150, 170, 110);
    // Large ground plane: the dominant grazing-angle surface.
    b.draw(makeGrid({-120, 0, 20}, {240, 0, 0}, {0, 0, -160}, 12, 24,
                    48.0f, 32.0f, grass));
    // Water sheet ahead of the path: rippling (specular) surface whose
    // glints vanish when the texture is blurred.
    b.draw(makeGrid({-35, 0.05f, -15}, {75, 0, 0}, {0, 0, -130}, 4, 16,
                    25.0f, 20.0f, marble), FilterMode::Anisotropic,
           true, true);
    // A few buildings along the path.
    for (int i = 0; i < 6; ++i) {
        Mesh box;
        box.texture_id = brick;
        float z = -40.0f - 55.0f * i;
        float x = (i % 2 == 0) ? -22.0f : 18.0f;
        appendBox(box, {x, 8, z}, {7, 8, 9}, 3.0f);
        b.draw(std::move(box));
    }
    b.walkCameras(frames, {0, 0, 0}, 6.0f, 1.8f, 0.35f, 0.4f);
}

// Doom3: dark panel corridors; low-contrast textures make AF's absence
// hard to perceive at high resolution (Section VII-A observation 3).
void
buildDoom3(Builder &b, int frames)
{
    int panel = b.texture(TextureKind::Panels, 512, 21);
    int floor = b.texture(TextureKind::Panels, 512, 22);
    int pipe = b.texture(TextureKind::Noise, 256, 23);

    const float w = 8.0f, h = 5.0f, len = 120.0f;
    // Corridor end wall: the facing surface at the vanishing point.
    b.backdrop(panel, -len + 12, w, h + 2);
    // Floor and ceiling (grazing surfaces).
    b.draw(makeGrid({-w, 0, 10}, {2 * w, 0, 0}, {0, 0, -len}, 4, 24,
                    8.0f, 28.0f, floor));
    b.draw(makeGrid({-w, h, 10}, {0, 0, -len}, {2 * w, 0, 0}, 24, 4,
                    28.0f, 8.0f, panel));
    // Side walls.
    b.draw(makeGrid({-w, 0, 10}, {0, 0, -len}, {0, h, 0}, 24, 3,
                    24.0f, 4.0f, panel));
    b.draw(makeGrid({w, 0, 10}, {0, h, 0}, {0, 0, -len}, 3, 24,
                    4.0f, 24.0f, panel));
    // Crates along the corridor: their front faces are camera-facing.
    for (int i = 0; i < 10; ++i) {
        Mesh box;
        box.texture_id = pipe;
        float z = -18.0f - 26.0f * i;
        float x = (i % 2 == 0) ? -4.6f : 4.0f;
        appendBox(box, {x, 1.8f, z}, {2.2f, 1.8f, 1.8f}, 2.0f);
        b.draw(std::move(box));
    }
    b.trace.scene.clear_color = {0.02f, 0.02f, 0.03f, 1.0f};
    b.walkCameras(frames, {0, 0, 4}, 5.0f, 1.7f, 0.25f, 0.3f);
}

// Grid / NFS: racing — a vast striped track at extreme grazing angles.
void
buildRacing(Builder &b, int frames, bool urban)
{
    int track = b.texture(TextureKind::Stripes, 512, urban ? 31 : 41);
    int ground = b.texture(TextureKind::Noise, 512, urban ? 32 : 42);
    int barrier = b.texture(TextureKind::Checker, 256, urban ? 33 : 43);
    int building = b.texture(TextureKind::Panels, 512, urban ? 34 : 44);

    // Horizon / stadium backdrop.
    b.backdrop(building, -190, 210, 140);
    // The track: the single most anisotropic surface in the suite; its
    // glossy surface glints under the glint (specular) pass.
    b.draw(makeGrid({-10, 0, 30}, {20, 0, 0}, {0, 0, -200}, 4, 40,
                    6.0f, 64.0f, track), FilterMode::Anisotropic,
           true, true);
    // Grass / ground on both sides.
    b.draw(makeGrid({-150, -0.02f, 30}, {140, 0, 0}, {0, 0, -200}, 6, 24,
                    40.0f, 48.0f, ground));
    b.draw(makeGrid({10, -0.02f, 30}, {140, 0, 0}, {0, 0, -200}, 6, 24,
                    40.0f, 48.0f, ground));
    // Barriers lining the track.
    b.draw(makeGrid({-10.5f, 0, 30}, {0, 0, -200}, {0, 1.2f, 0}, 40, 1,
                    80.0f, 1.0f, barrier));
    b.draw(makeGrid({10.5f, 0, 30}, {0, 1.2f, 0}, {0, 0, -200}, 1, 40,
                    1.0f, 80.0f, barrier));
    if (urban) {
        for (int i = 0; i < 10; ++i) {
            Mesh box;
            box.texture_id = building;
            float z = -30.0f - 45.0f * i;
            float x = (i % 2 == 0) ? -30.0f : 28.0f;
            appendBox(box, {x, 14, z}, {9, 14, 10}, 4.0f);
            b.draw(std::move(box));
        }
    }
    // Low car-style camera for extreme track anisotropy.
    b.walkCameras(frames, {0, 0, 10}, 12.0f, 1.1f, 0.12f, 0.8f);
}

// Stalker: outdoor ruins — noise terrain + broken brick structures.
void
buildStalker(Builder &b, int frames)
{
    int dirt = b.texture(TextureKind::Noise, 512, 51);
    int brick = b.texture(TextureKind::Bricks, 512, 52);
    int rust = b.texture(TextureKind::Wood, 512, 53);

    // Overcast sky / treeline backdrop.
    b.backdrop(dirt, -150, 170, 110);
    b.draw(makeGrid({-120, 0, 20}, {240, 0, 0}, {0, 0, -140}, 10, 20,
                    60.0f, 36.0f, dirt));
    // Rain puddles on the central path (specular).
    b.draw(makeGrid({-8, 0.03f, 15}, {16, 0, 0}, {0, 0, -130}, 2, 12,
                    5.0f, 18.0f, rust), FilterMode::Anisotropic, true,
           true);
    for (int i = 0; i < 7; ++i) {
        // Ruined walls at varying orientations.
        float z = -25.0f - 40.0f * i;
        float x = (i % 2 == 0) ? -15.0f : 12.0f;
        float ang = 0.5f * static_cast<float>(i);
        Vec3 dir{std::cos(ang) * 14.0f, 0, std::sin(ang) * 14.0f};
        b.draw(makeGrid({x, 0, z}, dir, {0, 5.0f + (i % 3), 0}, 4, 2,
                        6.0f, 2.5f, brick), FilterMode::Anisotropic,
               false);
    }
    for (int i = 0; i < 4; ++i) {
        Mesh box;
        box.texture_id = rust;
        appendBox(box, {(i % 2) ? 6.0f : -7.0f, 1.0f,
                        -35.0f - 60.0f * i}, {1.5f, 1.0f, 2.5f}, 2.0f);
        b.draw(std::move(box));
    }
    b.walkCameras(frames, {0, 0, 0}, 5.0f, 1.8f, 0.3f, 0.5f);
}

// UT3: arena — marble floors, panel walls, central structures.
void
buildUt3(Builder &b, int frames)
{
    int floor = b.texture(TextureKind::Marble, 512, 61);
    int wall = b.texture(TextureKind::Panels, 512, 62);
    int core = b.texture(TextureKind::Checker, 512, 63);

    const float s = 60.0f;
    // The arena's far wall faces the camera for most of the orbit; the
    // polished marble floor carries specular glints.
    b.backdrop(wall, -s + 2, s, 40);
    b.draw(makeGrid({-s, 0, s}, {2 * s, 0, 0}, {0, 0, -2 * s}, 8, 8,
                    24.0f, 24.0f, floor), FilterMode::Anisotropic,
           true, true);
    // Surrounding walls.
    b.draw(makeGrid({-s, 0, -s}, {2 * s, 0, 0}, {0, 18, 0}, 8, 2,
                    16.0f, 3.0f, wall));
    b.draw(makeGrid({-s, 0, s}, {0, 18, 0}, {0, 0, -2 * s}, 2, 8,
                    3.0f, 16.0f, wall));
    b.draw(makeGrid({s, 0, s}, {0, 0, -2 * s}, {0, 18, 0}, 8, 2,
                    16.0f, 3.0f, wall));
    // Central platforms.
    for (int i = 0; i < 5; ++i) {
        Mesh box;
        box.texture_id = core;
        appendBox(box, {-20.0f + 10.0f * i, 1.5f, -10.0f - 8.0f * i},
                  {3, 1.5f, 3}, 2.0f);
        b.draw(std::move(box));
    }
    b.walkCameras(frames, {0, 0, 45}, 4.0f, 2.0f, 0.3f, 1.2f);
}

// Wolfenstein: tight low-res indoor corridor, wood and brick.
void
buildWolf(Builder &b, int frames)
{
    int wood = b.texture(TextureKind::Wood, 256, 71);
    int brick = b.texture(TextureKind::Bricks, 256, 72);

    const float w = 6.0f, h = 4.0f, len = 100.0f;
    // End wall at the vanishing point.
    b.backdrop(brick, -len + 10, w, h + 1);
    // Polished wooden floor: waxed-floor glints need sharp filtering.
    b.draw(makeGrid({-w, 0, 10}, {2 * w, 0, 0}, {0, 0, -len}, 3, 16,
                    10.0f, 25.0f, wood), FilterMode::Anisotropic, true,
           true);
    b.draw(makeGrid({-w, h, 10}, {0, 0, -len}, {2 * w, 0, 0}, 16, 3,
                    25.0f, 10.0f, wood));
    b.draw(makeGrid({-w, 0, 10}, {0, 0, -len}, {0, h, 0}, 16, 2,
                    20.0f, 3.0f, brick));
    b.draw(makeGrid({w, 0, 10}, {0, h, 0}, {0, 0, -len}, 2, 16,
                    3.0f, 20.0f, brick));
    b.walkCameras(frames, {0, 0, 4}, 4.0f, 1.6f, 0.2f, 0.25f);
}

// R.Bench stand-in: texture-rate stress with many overlapping high-detail
// layers, both grazing and facing.
void
buildRBench(Builder &b, int frames)
{
    int t0 = b.texture(TextureKind::Marble, 1024, 81);
    int t1 = b.texture(TextureKind::Checker, 1024, 82);
    int t2 = b.texture(TextureKind::Noise, 1024, 83);
    int t3 = b.texture(TextureKind::Stripes, 1024, 84);

    b.backdrop(t2, -150, 170, 110);
    b.draw(makeGrid({-100, 0, 20}, {200, 0, 0}, {0, 0, -160}, 10, 20,
                    80.0f, 64.0f, t1), FilterMode::Anisotropic, true,
           true);
    b.draw(makeGrid({-100, 12, 20}, {0, 0, -160}, {200, 0, 0}, 20, 10,
                    64.0f, 80.0f, t3));
    // Slanted panels at many angles.
    for (int i = 0; i < 12; ++i) {
        float z = -15.0f - 25.0f * i;
        float ang = 0.4f * static_cast<float>(i);
        Vec3 dir{std::cos(ang) * 16.0f, 0.0f, std::sin(ang) * 10.0f};
        b.draw(makeGrid({-8.0f + 1.5f * (i % 4), 0, z}, dir,
                        {0, 9, 0}, 4, 3, 12.0f, 6.0f,
                        (i % 2) ? t0 : t2),
               FilterMode::Anisotropic, false);
    }
    b.walkCameras(frames, {0, 0, 10}, 7.0f, 2.2f, 0.3f, 0.6f);
}

} // namespace

const char *
gameAbbr(GameId id)
{
    switch (id) {
      case GameId::HL2:
        return "HL2";
      case GameId::Doom3:
        return "doom3";
      case GameId::Grid:
        return "grid";
      case GameId::Nfs:
        return "nfs";
      case GameId::Stalker:
        return "stal";
      case GameId::Ut3:
        return "ut3";
      case GameId::Wolf:
        return "wolf";
      case GameId::RBench:
        return "R.Bench";
    }
    return "?";
}

GameTrace
buildGameTrace(GameId id, int width, int height, int frames)
{
    if (width <= 0 || height <= 0 || frames <= 0)
        fatal("buildGameTrace: invalid dimensions or frame count");

    Builder b;
    b.trace.id = id;
    b.trace.width = width;
    b.trace.height = height;
    b.trace.name = std::string(gameAbbr(id)) + "-" +
        std::to_string(width) + "x" + std::to_string(height);
    b.trace.scene.name = b.trace.name;

    switch (id) {
      case GameId::HL2:
        buildHl2(b, frames);
        break;
      case GameId::Doom3:
        buildDoom3(b, frames);
        break;
      case GameId::Grid:
        buildRacing(b, frames, false);
        break;
      case GameId::Nfs:
        buildRacing(b, frames, true);
        break;
      case GameId::Stalker:
        buildStalker(b, frames);
        break;
      case GameId::Ut3:
        buildUt3(b, frames);
        break;
      case GameId::Wolf:
        buildWolf(b, frames);
        break;
      case GameId::RBench:
        buildRBench(b, frames);
        break;
    }
    return std::move(b.trace);
}

std::vector<BenchmarkEntry>
paperBenchmarks()
{
    return {
        {GameId::HL2, "HL2", "Half-Life 2", 1600, 1200, "DirectX3D"},
        {GameId::HL2, "HL2", "Half-Life 2", 1280, 1024, "DirectX3D"},
        {GameId::HL2, "HL2", "Half-Life 2", 640, 480, "DirectX3D"},
        {GameId::Doom3, "doom3", "Doom 3", 1600, 1200, "OpenGL"},
        {GameId::Doom3, "doom3", "Doom 3", 1280, 1024, "OpenGL"},
        {GameId::Doom3, "doom3", "Doom 3", 640, 480, "OpenGL"},
        {GameId::Grid, "grid", "GRID", 1280, 1024, "DirectX3D"},
        {GameId::Nfs, "nfs", "Need For Speed", 1280, 1024, "DirectX3D"},
        {GameId::Stalker, "stal", "S.T.A.L.K.E.R.: Call of Pripyat",
         1280, 1024, "DirectX3D"},
        {GameId::Ut3, "ut3", "Unreal Tournament 3", 1280, 1024,
         "DirectX3D"},
        {GameId::Wolf, "wolf", "Wolfenstein", 640, 480, "DirectX3D"},
    };
}

} // namespace pargpu
