/**
 * @file
 * Mesh construction helpers for the procedural game scenes.
 */

#ifndef PARGPU_SCENES_MESHES_HH
#define PARGPU_SCENES_MESHES_HH

#include "sim/geometry.hh"

namespace pargpu
{

/**
 * Build a tessellated parallelogram grid.
 *
 * Vertices span origin + s * eu + t * ev for s, t in [0, 1], subdivided
 * into nu x nv quads (two triangles each). Texture coordinates run from
 * (0, 0) to (u_scale, v_scale), so u_scale/v_scale control texel density.
 *
 * Triangle winding is counter-clockwise when viewed against the grid
 * normal eu x ev.
 */
Mesh makeGrid(const Vec3 &origin, const Vec3 &eu, const Vec3 &ev,
              int nu, int nv, float u_scale, float v_scale, int texture_id);

/**
 * Append an axis-aligned box (6 faces, outward-facing) to @p mesh.
 *
 * @param mesh      Destination mesh.
 * @param center    Box center.
 * @param half      Half extents.
 * @param uv_scale  Texture repeats per face.
 */
void appendBox(Mesh &mesh, const Vec3 &center, const Vec3 &half,
               float uv_scale);

/** Merge @p src into @p dst (rebasing indices). */
void appendMesh(Mesh &dst, const Mesh &src);

} // namespace pargpu

#endif // PARGPU_SCENES_MESHES_HH
