/**
 * @file
 * The top-level GPU simulator: the paper's Fig. 2 rendering architecture.
 *
 * A frame flows through vertex processing, primitive assembly with
 * near-plane clipping and back-face culling, the tiling engine (16x16
 * tiles scheduled round-robin across shader clusters), rasterization into
 * 2x2 quads, early depth test, and fragment processing with texture
 * filtering through the (PATU-extended) texture units. Timing is
 * cycle-approximate: each cluster owns a cycle counter advanced by the
 * slower of shader and texture work per quad, and the frame time is the
 * geometry front-end plus the slowest cluster.
 */

#ifndef PARGPU_SIM_PIPELINE_HH
#define PARGPU_SIM_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/image.hh"
#include "common/types.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/geometry.hh"
#include "sim/raster.hh"
#include "sim/texunit.hh"

namespace pargpu
{

/**
 * One cluster's shard of a frame's fragment-phase work. Filled by both
 * the serial and the tile-parallel path (the static `tile % clusters`
 * assignment is the same either way), so the per-cluster metrics and the
 * imbalance scalar are comparable across execution modes.
 */
struct ClusterStats
{
    std::uint64_t tiles = 0;  ///< Non-empty tiles processed (per draw).
    std::uint64_t quads = 0;  ///< Quads filtered by this cluster's TU.
    std::uint64_t pixels = 0; ///< Pixels filtered.
    std::uint64_t texels = 0; ///< Texels requested.
    Cycle cycles = 0;         ///< Cluster cycle counter at frame end.
    Cycle filter_busy = 0;    ///< TU busy cycles.
    Cycle mem_stall = 0;      ///< TU exposed texel-fetch stall.
};

/** Aggregated per-frame measurements. */
struct FrameStats
{
    // --- Time ---------------------------------------------------------
    Cycle total_cycles = 0;          ///< Frame render time.
    Cycle geometry_cycles = 0;       ///< Front-end (vertex/setup/binning).
    Cycle fragment_cycles = 0;       ///< Slowest cluster's fragment phase.
    Cycle texture_filter_cycles = 0; ///< Total TU busy time (Fig. 18).
    Cycle texture_mem_stall = 0;     ///< Exposed texel-fetch stall.
    Cycle shader_busy_cycles = 0;    ///< Shader ALU time (energy input).

    // --- Work ----------------------------------------------------------
    std::uint64_t triangles_in = 0;    ///< Submitted triangles.
    std::uint64_t triangles_setup = 0; ///< Survived clip/cull.
    std::uint64_t earlyz_tested = 0;   ///< Covered pixels depth-tested.
    std::uint64_t earlyz_killed = 0;   ///< ... rejected by early-Z.
    std::uint64_t quads = 0;
    std::uint64_t pixels_shaded = 0;
    std::uint64_t trilinear_samples = 0;
    std::uint64_t texels = 0;
    std::uint64_t addr_ops = 0;
    std::uint64_t table_accesses = 0;
    std::uint64_t tex_lines = 0;     ///< Distinct lines fetched per quad,
                                     ///< summed over quads.
    std::uint64_t memo_lookups = 0;  ///< Footprint-memo probes.
    std::uint64_t memo_hits = 0;     ///< ... served from the memo.
    std::uint64_t simd_batches = 0;  ///< Batched SoA filter invocations.
    std::uint64_t raster_simd_quads = 0; ///< Quads through edge_quad.
    std::uint64_t fb_simd_fills = 0; ///< Framebuffer kernel invocations.

    // --- Arena scratch (bytes; zero when PARGPU_ARENA=0) -----------------
    std::uint64_t arena_frame_bytes = 0; ///< Scratch handed out this frame.
    std::uint64_t arena_high_water = 0;  ///< Peak live scratch this frame.

    // --- PATU decisions --------------------------------------------------
    std::uint64_t af_candidate_pixels = 0;
    std::uint64_t approx_stage1 = 0;
    std::uint64_t approx_stage2 = 0;
    std::uint64_t full_af = 0;
    std::uint64_t trivial_tf = 0;
    std::uint64_t af_input_samples = 0;
    std::uint64_t shared_samples = 0;
    std::uint64_t divergent_quads = 0;
    std::uint64_t af_quads = 0;

    // --- FilterPolicy activity (docs/FILTERING.md) -----------------------
    std::uint64_t filter_policy = 0; ///< FilterPolicyId the TUs ran.
    std::uint64_t stf_samples = 0; ///< Single-texel stochastic fetches.
    std::uint64_t fas_quads = 0;   ///< Quads filtered after shading.

    // --- Memory ----------------------------------------------------------
    Bytes traffic_texture = 0;
    Bytes traffic_colordepth = 0;
    Bytes traffic_geometry = 0;
    std::uint64_t l1_hits = 0, l1_misses = 0;
    std::uint64_t llc_hits = 0, llc_misses = 0;
    std::uint64_t dram_reads = 0, dram_row_hits = 0;

    // --- Per-cluster shards ----------------------------------------------
    std::vector<ClusterStats> clusters; ///< One entry per shader cluster.

    /** Frames per second at @p freq_ghz, from total_cycles. */
    double
    fps(double freq_ghz = 1.0) const
    {
        return total_cycles == 0
            ? 0.0
            : freq_ghz * 1e9 / static_cast<double>(total_cycles);
    }

    /** Total DRAM traffic in bytes. */
    Bytes
    totalTraffic() const
    {
        return traffic_texture + traffic_colordepth + traffic_geometry;
    }
};

/** A rendered frame plus its measurements. */
struct FrameOutput
{
    Image image;
    FrameStats stats;
};

/**
 * True when PARGPU_TILE_PARALLEL=1 forces intra-frame tile parallelism
 * on for every simulator in the process, regardless of
 * GpuConfig::tile_parallel. This is the hook scripts/check.sh's TSAN
 * stage uses to run the whole threading-focused test subset with the
 * sharded fragment phase enabled, without touching each test's
 * configuration. Results are bit-identical either way. Cached on first
 * call; envOverrides() (harness/session.hh) snapshots it up front.
 */
bool tileParallelForced();

/**
 * True (the default) when per-frame render scratch — framebuffer planes,
 * triangle bins, setup-triangle storage, per-cluster accumulators — comes
 * from the simulator's BumpArenas, so steady-state frames perform zero
 * heap allocations. PARGPU_ARENA=0 switches every consumer to plain
 * heap vectors instead; results are bit-identical either way (only the
 * arena.* counters change, reporting zero when off). Cached on first
 * call, like tileParallelForced().
 */
bool arenaScratchEnabled();

/**
 * Test hook: override arenaScratchEnabled() — 0 = off, 1 = on, -1 =
 * back to the environment. Lets the determinism matrix exercise both
 * storage modes inside one process; not thread-safe against concurrent
 * renderFrame() calls.
 */
void setArenaScratchForTesting(int mode);

namespace detail
{

/**
 * Pass-A record of one surviving quad under tile-parallel execution.
 * pre_cycles carries the rasterizer cost accumulated since the previous
 * surviving quad (killed quads included), so the commit pass can
 * reconstruct the exact serial issue cycle without revisiting them.
 */
struct QuadLog
{
    Cycle pre_cycles = 0;         ///< Raster cycles up to and incl. self.
    Cycle work = 0;               ///< TU address + filter cycles.
    std::uint32_t miss_begin = 0; ///< L1-miss slice in the cluster front.
    std::uint32_t miss_end = 0;
    bool any_line = false;
};

/** Pass-A record of one non-empty tile. */
struct TileLog
{
    std::size_t index = 0;         ///< Linear tile index (row-major).
    std::uint32_t quad_begin = 0;  ///< Range into ClusterLog::quads.
    std::uint32_t quad_end = 0;
    Cycle tail_cycles = 0;         ///< Raster cycles after the last
                                   ///< surviving quad.
    std::uint64_t pixels = 0;      ///< Pixels written (flush size).
    Addr flush_addr = 0;           ///< Tile-origin framebuffer address.
};

/**
 * Everything one cluster produces during pass A of a draw call. Owned
 * by the simulator (not the frame) so the quad/tile vectors reach a
 * steady-state capacity and stop allocating.
 */
struct ClusterLog
{
    std::vector<QuadLog> quads;
    std::vector<TileLog> tiles;
    std::uint64_t earlyz_tested = 0;
    std::uint64_t earlyz_killed = 0;
    std::uint64_t simd_quads = 0; ///< raster.simd_quads shard.
    std::uint64_t fb_fills = 0;   ///< fb.simd_fills shard.
    Cycle shader_busy = 0;

    void
    clearDraw()
    {
        quads.clear();
        tiles.clear();
        earlyz_tested = 0;
        earlyz_killed = 0;
        simd_quads = 0;
        fb_fills = 0;
        shader_busy = 0;
    }
};

} // namespace detail

/**
 * The simulator. Construct once per configuration; renderFrame() may be
 * called repeatedly (caches and DRAM state are reset per frame so every
 * frame is measured independently).
 */
class GpuSimulator
{
  public:
    explicit GpuSimulator(const GpuConfig &config);

    /**
     * Render @p scene from @p camera into a width x height frame.
     *
     * Acquires the memory system's serial-phase capability internally
     * (per phase), so the caller must not already hold it — e.g. a
     * FilterPolicy callback running inside a frame must never re-enter
     * the simulator.
     */
    FrameOutput renderFrame(const Scene &scene, const Camera &camera,
                            int width, int height)
        PARGPU_EXCLUDES(mem_->serial_phase);

    const GpuConfig &config() const { return config_; }
    const MemorySystem &mem() const { return *mem_; }

  private:
    GpuConfig config_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<TextureUnit>> tus_;
    /**
     * Per-frame scratch: framebuffer planes. Reset at the top of
     * renderFrame(), so consecutive frames re-render into the same
     * blocks instead of re-allocating multi-MB vectors.
     */
    BumpArena frame_arena_;
    /**
     * Per-draw scratch: the tiling engine's CSR triangle bins and the
     * post-setup triangle array (reset at the top of each draw).
     */
    BumpArena bin_arena_;
    std::vector<SetupTriangle> tris_; ///< PARGPU_ARENA=0 fallback only.
    /**
     * Tile-parallel pass-A scratch, persistent across frames so the
     * per-cluster vectors keep their steady-state capacity. Sized
     * lazily on the first tile-parallel frame; never arena-backed
     * (these exist only in one execution mode, and the arena.* counters
     * must be identical across modes).
     */
    std::vector<detail::ClusterLog> logs_;
    std::vector<ClusterMemFront> fronts_;
    std::vector<std::size_t> cursor_; ///< Pass-B per-cluster tile cursor.
};

} // namespace pargpu

#endif // PARGPU_SIM_PIPELINE_HH
