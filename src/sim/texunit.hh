/**
 * @file
 * The texture unit: the blue block of the paper's Fig. 2 extended with the
 * PATU components of Fig. 14.
 *
 * Per quad (the SIMD processing unit), each covered pixel flows through:
 *   Texel Generation (anisotropy/sample size) -> [PATU stage 1] ->
 *   Texture Quality Selection (LOD) -> Texel Address Calculation ->
 *   [PATU hash table + stage 2] -> Texel Fetching (caches/DRAM) ->
 *   Filtering (2 cycles per trilinear sample).
 *
 * Timing: the four filtering pipelines operate in lockstep, so per-quad
 * busy time is the max over pixels of address + filter cycles; texel-fetch
 * latency beyond the unit's in-flight window is exposed as stall.
 */

#ifndef PARGPU_SIM_TEXUNIT_HH
#define PARGPU_SIM_TEXUNIT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.hh"
#include "common/arena.hh"
#include "common/types.hh"
#include "core/patu.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/raster.hh"
#include "simd/filter.hh"

namespace pargpu
{

/** Per-frame activity counters of one texture unit. */
struct TexUnitStats
{
    std::uint64_t pixels = 0;           ///< Pixels filtered.
    std::uint64_t quads = 0;            ///< Quads processed.
    std::uint64_t trilinear_samples = 0;///< Trilinear samples filtered.
    std::uint64_t texels = 0;           ///< Texels requested (8/sample).
    std::uint64_t addr_ops = 0;         ///< Address calculations (texels).
    std::uint64_t table_accesses = 0;   ///< Hash-table insert operations.
    std::uint64_t lines = 0;            ///< Distinct cache lines per quad,
                                        ///< summed (batched fetch size).
    std::uint64_t memo_lookups = 0;     ///< Footprint-memo probes.
    std::uint64_t memo_hits = 0;        ///< ... that found the footprint.
    std::uint64_t simd_batches = 0;     ///< SoA kernel invocations.
    Cycle filter_busy = 0;              ///< TU busy cycles (Fig. 18 metric).
    Cycle mem_stall = 0;                ///< Exposed texel-fetch stall.

    // PATU decision counters.
    std::uint64_t af_candidate_pixels = 0; ///< Pixels with N > 1.
    std::uint64_t approx_stage1 = 0;
    std::uint64_t approx_stage2 = 0;
    std::uint64_t full_af = 0;
    std::uint64_t trivial_tf = 0;

    // Section V-C / Fig. 12 statistics.
    std::uint64_t af_input_samples = 0; ///< AF samples inspected (N > 1).
    std::uint64_t shared_samples = 0;   ///< ... that share a texel set.
    std::uint64_t divergent_quads = 0;  ///< Quads with mixed decisions.
    std::uint64_t af_quads = 0;         ///< Quads with any N > 1 pixel.

    // FilterPolicy counters (docs/FILTERING.md). Zero under Patu.
    std::uint64_t stf_samples = 0;      ///< Single-texel stochastic fetches.
    std::uint64_t fas_quads = 0;        ///< Quads filtered after shading.
};

/** Result of filtering one quad. */
struct QuadFilterResult
{
    Color4f color[4]; ///< Filtered texture color per pixel.
    Cycle busy = 0;   ///< TU cycles consumed by this quad.
};

/**
 * Result of the timing-independent part of one quad under tile-parallel
 * execution. Colors and ALU cycles are final; the memory stall is
 * resolved later by the serial commit pass, which replays the staged
 * L1-miss lines through MemorySystem::commitBatch() and completes the
 * accounting via TextureUnit::accountDeferredStall().
 */
struct DeferredQuadResult
{
    Color4f color[4];             ///< Filtered texture color per pixel.
    Cycle work = 0;               ///< Address + filter cycles (no stall).
    std::uint32_t miss_begin = 0; ///< L1-miss range in the front's log.
    std::uint32_t miss_end = 0;
    bool any_line = false;        ///< Quad touched at least one line.
};

/**
 * One texture unit instance (one per shader cluster). Holds the PATU
 * decision pipelines and issues timed reads into the memory system.
 */
class TextureUnit
{
  public:
    /**
     * @param config   GPU configuration (timing + PATU knobs).
     * @param cluster  Owning cluster index (selects the texture L1).
     * @param mem      Shared memory system.
     */
    TextureUnit(const GpuConfig &config, unsigned cluster,
                MemorySystem &mem);

    /**
     * Filter all covered pixels of @p quad against @p tex.
     *
     * @param quad  Rasterizer output (uv + derivatives).
     * @param tex   Bound texture.
     * @param mode  Draw call's filter mode.
     * @param now   TU-local current cycle (for memory timing).
     * @return Per-pixel colors and consumed cycles.
     */
    QuadFilterResult processQuad(const QuadFragment &quad,
                                 const TextureMap &tex, FilterMode mode,
                                 Cycle now)
        PARGPU_REQUIRES(mem_->serial_phase);

    /**
     * Tile-parallel variant of processQuad(): identical filtering math
     * and per-cluster L1 behavior, but instead of walking the shared
     * LLC/DRAM it stages the quad's L1 misses into @p front. The caller
     * replays them in canonical order (MemorySystem::commitBatch) and
     * reports the resolved stall via accountDeferredStall(); after that
     * the unit's stats equal what processQuad() would have recorded.
     */
    DeferredQuadResult processQuadDeferred(const QuadFragment &quad,
                                           const TextureMap &tex,
                                           FilterMode mode,
                                           ClusterMemFront &front)
        PARGPU_EXCLUDES(mem_->serial_phase);

    /**
     * Declare (to the thread-safety analysis only; zero runtime cost)
     * that this unit's memory system is in its serial phase. Callers
     * that hold the phase through their own MemorySystem reference use
     * this to restate the fact in terms of the unit's private pointer —
     * the analysis cannot alias the two expressions on its own.
     */
    void
    assertSerialPhase() const PARGPU_ASSERT_CAPABILITY(mem_->serial_phase)
    {
    }

    /** Commit-pass completion of a deferred quad's stall accounting. */
    void
    accountDeferredStall(Cycle stall)
    {
        stats_.mem_stall += stall;
        stats_.filter_busy += stall;
    }

    const TexUnitStats &stats() const { return stats_; }

    /** Zero the per-frame counters. */
    void resetStats() { stats_ = TexUnitStats{}; }

    /**
     * Install the frame's noise seed (a pure function of the camera,
     * hashed by the pipeline) for the stochastic filter policies. Pure
     * state: safe to call from any execution mode before rendering.
     */
    void beginFrame(std::uint32_t frame_seed) { frame_seed_ = frame_seed; }

  private:
    /** Per-pixel outcome inside a quad. */
    struct PixelPlan
    {
        bool active = false;
        bool approximate = false;
        DecisionStage stage = DecisionStage::FullAf;
        int fetch_samples = 0; ///< Trilinear samples actually fetched.
        int addr_samples = 0;  ///< Samples whose addresses were computed.
        /**
         * Texels blended by the filtering ALUs for this pixel — the unit
         * of filter timing (8 per full trilinear sample, 1 per STF
         * texel). The 8 filter ALUs retire 8 texels per
         * cycles_per_trilinear.
         */
        int filter_texels = 0;
        Color4f color;
    };

    /**
     * Deduplicating collector of the cache lines one quad touches.
     *
     * Lines are recorded in first-touch order (the order the seed issued
     * them in) and fetched with a single batched memory-system call per
     * quad, so each distinct line pays exactly one tag lookup. Worst case
     * is bounded: 4 pixels x 16 AF samples x 8 texels = 512 lines, so the
     * half-loaded 1024-slot open-addressed table never fills.
     */
    class QuadLineSet
    {
      public:
        QuadLineSet();

        /** Forget all lines (start of a quad). */
        void reset();

        /** Record the line containing @p addr if not yet seen. */
        void insertLine(Addr line_addr);

        const std::vector<Addr> &order() const { return order_; }

      private:
        static constexpr std::uint32_t kSlots = 1024;

        Addr slot_addr_[kSlots];
        std::uint32_t slot_gen_[kSlots];
        std::uint32_t gen_ = 0;   ///< Current quad's generation stamp.
        std::vector<Addr> order_; ///< Distinct lines, first-touch order.
    };

    /**
     * Record a sample's lines into the quad batch (no memory access).
     * Inline: this is the hottest per-sample call in the frame (one per
     * trilinear sample), and the loop is eight mask-compare-maybe-insert
     * steps against the cached line mask.
     *
     * Texels within a sample frequently share cache lines (tiled
     * layout), and samples across the quad share whole footprints; the
     * fetch unit coalesces all of it, so record each distinct line once
     * for the quad-level batched read. Tracking the last line per level
     * half (slots 0-3 = finer level, 4-7 = coarser) across the quad's
     * samples only skips probes of lines already recorded — first-touch
     * order is unchanged.
     */
    void
    queueSample(const TexelAddrSet &addrs)
    {
        for (int k = 0; k < 8; ++k) {
            Addr la = addrs[static_cast<std::size_t>(k)] & line_mask_;
            Addr &prev = prev_line_[k >> 2];
            if (la != prev) {
                lines_.insertLine(la);
                prev = la;
            }
        }
        stats_.texels += 8;
        ++stats_.trilinear_samples;
    }

    /**
     * Single-texel variant of queueSample() for the stochastic
     * policies: one address, one texel, no trilinear op. STF draws
     * within a pixel walk the footprint's AF line, so the same
     * last-line hint applies (slot 0: STF fetches all land on the
     * decision LOD's level pair).
     */
    void
    queueTexel(Addr addr)
    {
        Addr la = addr & line_mask_;
        Addr &prev = prev_line_[0];
        if (la != prev) {
            lines_.insertLine(la);
            prev = la;
        }
        stats_.texels += 1;
        ++stats_.stf_samples;
    }

    /**
     * Everything about a quad that does not depend on memory timing:
     * filtering decisions, colors, line collection (left in lines_) and
     * all counters except mem_stall/filter_busy. Returns the quad's
     * address + filter cycles; both public entry points layer their
     * memory handling on top of this.
     */
    Cycle processQuadWork(const QuadFragment &quad, const TextureMap &tex,
                          FilterMode mode, Color4f out_color[4]);

    /**
     * Anisotropic-path FilterPolicy bodies, dispatched by
     * processQuadWork() on config_.filter_policy after the shared
     * coverage prolog; each fills the covered pixels' plans and queues
     * the lines it fetches. anisoQuadPatu() is the paper's decision flow
     * (Fig. 13) verbatim; the others are documented in docs/FILTERING.md.
     */
    void anisoQuadPatu(const QuadFragment &quad,
                       const TextureSampler &sampler,
                       const AnisotropyInfo &info, PixelPlan plans[4],
                       std::span<TexelAddrSet> footprints[4],
                       const int act[4], int n_act, bool &any_approx,
                       bool &any_keep);
    void anisoQuadStf(const QuadFragment &quad,
                      const TextureSampler &sampler,
                      const AnisotropyInfo &info, PixelPlan plans[4],
                      const int act[4], int n_act);
    void anisoQuadFas(const QuadFragment &quad,
                      const TextureSampler &sampler,
                      const AnisotropyInfo &info, PixelPlan plans[4],
                      const int act[4], int n_act);

    GpuConfig config_;
    unsigned cluster_;
    MemorySystem *mem_;
    PatuUnit patu_;
    TexUnitStats stats_;
    FootprintMemo memo_;   ///< Per-quad footprint cache.
    QuadLineSet lines_;    ///< Per-quad batched line requests.
    /**
     * Last line queued per level half (slot 0-3 / 4-7) of the current
     * quad — a probe-skipping hint for queueSample(); reset per quad.
     */
    Addr prev_line_[2] = {~static_cast<Addr>(0), ~static_cast<Addr>(0)};
    /** Cache-line mask (~(line_bytes - 1)), hoisted from the config. */
    Addr line_mask_ = 0;
    BumpArena arena_;      ///< Per-quad AF footprint storage.
    /**
     * Reusable batch scratch for the anisotropic paths. Color4f/Vec2
     * carry default member initializers, so declaring these as locals
     * value-initializes ~1.5 KB per quad — hot enough to show in
     * profiles. Contents are dead between calls; single-threaded like
     * the rest of the unit.
     */
    Color4f scratch_cols_[simd::kMaxLanes];
    Vec2 scratch_uvs_[simd::kMaxLanes];
    simd::QuadFilter qfilter_; ///< SoA batch filter (see src/simd/).
    std::uint32_t frame_seed_ = 0; ///< Camera-derived STF noise seed.
};

} // namespace pargpu

#endif // PARGPU_SIM_TEXUNIT_HH
