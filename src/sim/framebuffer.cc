#include "sim/framebuffer.hh"

#include <limits>

#include "common/contract.hh"
#include "sim/config.hh"

namespace pargpu
{

Framebuffer::Framebuffer(int width, int height)
    : color_(width, height),
      depth_(static_cast<std::size_t>(width) * height,
             std::numeric_limits<float>::infinity())
{
}

void
Framebuffer::clear(const Color4f &c)
{
    for (Color4f &px : color_.pixels())
        px = c;
    for (float &d : depth_)
        d = std::numeric_limits<float>::infinity();
}

bool
Framebuffer::depthTest(int x, int y, float depth)
{
    PARGPU_CHECK_RANGE(x, 0, width() - 1, "depth test x");
    PARGPU_CHECK_RANGE(y, 0, height() - 1, "depth test y");
    float &stored = depth_[static_cast<std::size_t>(y) * width() + x];
    if (depth < stored) {
        stored = depth;
        return true;
    }
    return false;
}

float
Framebuffer::depthAt(int x, int y) const
{
    return depth_[static_cast<std::size_t>(y) * width() + x];
}

Addr
Framebuffer::pixelAddr(int x, int y) const
{
    return AddressMap::kFramebufferBase +
        (static_cast<Addr>(y) * width() + x) * 4;
}

} // namespace pargpu
