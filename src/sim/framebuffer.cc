#include "sim/framebuffer.hh"

#include <algorithm>
#include <limits>

#include "common/contract.hh"
#include "sim/config.hh"
#include "simd/kernels.hh"

namespace pargpu
{

Framebuffer::Framebuffer(int width, int height)
    : width_(width), height_(height),
      own_color_(static_cast<std::size_t>(width) * height),
      own_depth_(static_cast<std::size_t>(width) * height,
                 std::numeric_limits<float>::infinity()),
      color_(own_color_), depth_(own_depth_)
{
}

Framebuffer::Framebuffer(int width, int height, BumpArena &arena)
    : width_(width), height_(height),
      color_(arena.allocSpanUninit<Color4f>(
          static_cast<std::size_t>(width) * height)),
      depth_(arena.allocSpanUninit<float>(
          static_cast<std::size_t>(width) * height))
{
}

int
Framebuffer::clear(const Color4f &c)
{
    const simd::KernelOps &ops = simd::activeKernels();
    const float rgba[4] = {c.r, c.g, c.b, c.a};
    const int pixels = static_cast<int>(color_.size());
    ops.fill_color(reinterpret_cast<float *>(color_.data()), pixels, rgba);
    ops.fill_depth(depth_.data(), pixels,
                   std::numeric_limits<float>::infinity());
    return 2;
}

unsigned
Framebuffer::depthTestQuad(int x, int y, const float depth[4])
{
    PARGPU_CHECK_RANGE(x, 0, width() - 2, "depth quad x");
    PARGPU_CHECK_RANGE(y, 0, height() - 2, "depth quad y");
    float *row0 = depth_.data() + static_cast<std::size_t>(y) * width() + x;
    return simd::activeKernels().depth_quad(row0, row0 + width(), depth);
}

void
Framebuffer::scatterQuad(int x, int y, const float rgba[16], unsigned mask)
{
    float *row0 = reinterpret_cast<float *>(
        color_.data() + static_cast<std::size_t>(y) * width() + x);
    // The bottom row may fall off the viewport on odd heights; it is
    // only reachable when a mask bit selects it, so alias it to the top
    // row otherwise rather than form an out-of-range pointer.
    float *row1 = (mask & 0xCu) != 0
        ? reinterpret_cast<float *>(
              color_.data() + static_cast<std::size_t>(y + 1) * width() + x)
        : row0;
    simd::activeKernels().scatter_quad(row0, row1, rgba, mask);
}

bool
Framebuffer::depthTest(int x, int y, float depth)
{
    PARGPU_CHECK_RANGE(x, 0, width() - 1, "depth test x");
    PARGPU_CHECK_RANGE(y, 0, height() - 1, "depth test y");
    float &stored = depth_[static_cast<std::size_t>(y) * width() + x];
    if (depth < stored) {
        stored = depth;
        return true;
    }
    return false;
}

float
Framebuffer::depthAt(int x, int y) const
{
    return depth_[static_cast<std::size_t>(y) * width() + x];
}

Image
Framebuffer::toImage() const
{
    Image img(width_, height_);
    std::copy(color_.begin(), color_.end(), img.pixels().begin());
    return img;
}

Addr
Framebuffer::pixelAddr(int x, int y) const
{
    return AddressMap::kFramebufferBase +
        (static_cast<Addr>(y) * width() + x) * 4;
}

} // namespace pargpu
