#include "sim/framebuffer.hh"

#include <algorithm>
#include <limits>

#include "common/contract.hh"
#include "sim/config.hh"

namespace pargpu
{

Framebuffer::Framebuffer(int width, int height)
    : width_(width), height_(height),
      own_color_(static_cast<std::size_t>(width) * height),
      own_depth_(static_cast<std::size_t>(width) * height,
                 std::numeric_limits<float>::infinity()),
      color_(own_color_), depth_(own_depth_)
{
}

Framebuffer::Framebuffer(int width, int height, BumpArena &arena)
    : width_(width), height_(height),
      color_(arena.allocSpanUninit<Color4f>(
          static_cast<std::size_t>(width) * height)),
      depth_(arena.allocSpanUninit<float>(
          static_cast<std::size_t>(width) * height))
{
}

void
Framebuffer::clear(const Color4f &c)
{
    for (Color4f &px : color_)
        px = c;
    for (float &d : depth_)
        d = std::numeric_limits<float>::infinity();
}

bool
Framebuffer::depthTest(int x, int y, float depth)
{
    PARGPU_CHECK_RANGE(x, 0, width() - 1, "depth test x");
    PARGPU_CHECK_RANGE(y, 0, height() - 1, "depth test y");
    float &stored = depth_[static_cast<std::size_t>(y) * width() + x];
    if (depth < stored) {
        stored = depth;
        return true;
    }
    return false;
}

float
Framebuffer::depthAt(int x, int y) const
{
    return depth_[static_cast<std::size_t>(y) * width() + x];
}

Image
Framebuffer::toImage() const
{
    Image img(width_, height_);
    std::copy(color_.begin(), color_.end(), img.pixels().begin());
    return img;
}

Addr
Framebuffer::pixelAddr(int x, int y) const
{
    return AddressMap::kFramebufferBase +
        (static_cast<Addr>(y) * width() + x) * 4;
}

} // namespace pargpu
