/**
 * @file
 * Baseline GPU configuration (the paper's Table I) plus the timing
 * parameters of the cycle-approximate model.
 *
 * The baseline references the PowerVR Rogue-class mobile part the paper
 * models: 1 GHz, 4 unified-shader clusters of 16 SIMD4 shaders, one texture
 * unit per cluster with 4 address ALUs and 8 filtering ALUs at 2 cycles per
 * trilinear sample, 16 KB 4-way texture L1, 128 KB 8-way L2, and 8-channel
 * / 8-bank DRAM moving 16 bytes per cycle.
 */

#ifndef PARGPU_SIM_CONFIG_HH
#define PARGPU_SIM_CONFIG_HH

#include "common/types.hh"
#include "core/patu.hh"
#include "mem/memsys.hh"
#include "texture/filter_policy.hh"

namespace pargpu
{

/** Full simulator configuration. */
struct GpuConfig
{
    // --- Table I fixed parameters -------------------------------------
    double frequency_ghz = 1.0;       ///< Core clock.
    unsigned clusters = 4;            ///< Unified-shader clusters.
    unsigned shaders_per_cluster = 16;///< Shaders per cluster.
    unsigned simd_width = 4;          ///< SIMD4-scale ALUs.
    unsigned tile_size = 16;          ///< Tiling-engine tile edge (16x16).
    unsigned texture_units = 1;       ///< Per cluster.
    unsigned addr_alus = 4;           ///< Texel address ALUs per TU.
    unsigned filter_alus = 8;         ///< Filtering ALUs per TU.
    Cycle cycles_per_trilinear = 2;   ///< TU filtering throughput.
    int max_aniso = 16;               ///< Max AF level.

    // --- Cycle-approximate timing knobs --------------------------------
    Cycle vertex_cycles = 12;     ///< Vertex-shader cost per vertex.
    Cycle tri_setup_cycles = 8;   ///< Setup/binning cost per triangle.
    /**
     * Non-texture shader ALU work per quad, expressed as cluster-level
     * throughput cost (16 shaders hide most of the per-quad instruction
     * latency, leaving the issue cost). Calibrated so texture filtering
     * accounts for roughly 60 % of the fragment phase under 16x AF, the
     * ratio implied by the paper's Fig. 5 / Fig. 18 pairing.
     */
    Cycle frag_quad_cycles = 19;

    /**
     * Fraction of the shorter of {shader work, texture work} hidden by
     * overlapping the two per quad. 1.0 would be perfect overlap (quad
     * costs the max of the two); 0.0 fully serial (texture results sit on
     * the shader's critical path). Real shaders hide texture time only
     * partially — they block on the filtered result midway through the
     * fragment program.
     */
    double tex_overlap = 0.5;
    Cycle raster_quad_cycles = 1; ///< Rasterizer/early-Z cost per quad.
    /**
     * Texture-fetch latency the TU hides per quad via its in-flight
     * texel FIFO. GPUs hide the full uncontended DRAM latency this way;
     * only queueing delay beyond it — i.e., genuine bandwidth saturation
     * in the DRAM model's busy-until timestamps — stalls the pipeline.
     */
    Cycle mem_overlap_credit = 320;

    /**
     * Render each frame's fragment phase tile-parallel across clusters:
     * pass A runs the clusters' statically assigned tiles concurrently
     * on the shared thread pool (per-cluster texture unit, L1 and stats;
     * L1 misses logged), pass B replays the logged misses serially in
     * canonical tile order so shared LLC/DRAM state, counters and cycle
     * timing stay bit-identical to the serial path. Off by default;
     * PARGPU_TILE_PARALLEL=1 forces it on process-wide.
     */
    bool tile_parallel = false;

    /**
     * Texture-unit filtering strategy for anisotropic draws
     * (docs/FILTERING.md). Patu is the paper's predictor-gated AF->TF
     * downgrade; the stochastic and filter-after-shading policies replace
     * the anisotropic loop wholesale and ignore the PATU predictor.
     */
    FilterPolicyId filter_policy = FilterPolicyId::Patu;

    // --- Subsystem configurations --------------------------------------
    MemSysConfig mem;   ///< Caches + DRAM (Table I defaults).
    PatuConfig patu;    ///< Design scenario + threshold.
};

/** Simulated GPU address-space map. */
struct AddressMap
{
    static constexpr Addr kVertexBase = 0x0400'0000;
    static constexpr Addr kTextureBase = 0x1000'0000;
    static constexpr Addr kFramebufferBase = 0x8000'0000;
};

} // namespace pargpu

#endif // PARGPU_SIM_CONFIG_HH
