/**
 * @file
 * Multi-view (stereo VR) rendering support.
 *
 * The paper's simulation layer extends ATTILA with multi-view VR (Section
 * VI); this module provides the same capability for pargpu: one logical
 * frame is rendered once per eye from laterally-offset cameras, and the
 * per-eye measurements are combined. VR doubles the fragment and texture
 * workload for the same scene, which is exactly the regime where PATU's
 * texel savings matter most.
 */

#ifndef PARGPU_SIM_STEREO_HH
#define PARGPU_SIM_STEREO_HH

#include "sim/pipeline.hh"

namespace pargpu
{

/** Stereo camera-rig parameters. */
struct StereoConfig
{
    float ipd = 0.064f; ///< Inter-pupillary distance in world units.
};

/** Both eyes of one stereo frame. */
struct StereoFrame
{
    FrameOutput left;
    FrameOutput right;

    /** Combined frame time: the eyes render back-to-back on one GPU. */
    Cycle
    totalCycles() const
    {
        return left.stats.total_cycles + right.stats.total_cycles;
    }

    /** Sum of both eyes' DRAM traffic. */
    Bytes
    totalTraffic() const
    {
        return left.stats.totalTraffic() + right.stats.totalTraffic();
    }
};

/**
 * Derive the per-eye camera from a center camera by shifting the eye
 * position along the view-space x axis by +-ipd/2.
 *
 * @param center     The mono camera.
 * @param eye_index  0 = left, 1 = right.
 * @param config     Rig parameters.
 */
Camera stereoEye(const Camera &center, int eye_index,
                 const StereoConfig &config = {});

/**
 * Render both eyes of @p scene through @p sim at width x height per eye.
 *
 * Thread-safety: annotated with the common/annotations.hh vocabulary —
 * each eye's renderFrame() acquires the simulator's serial memory phase
 * itself, so the caller must not hold it.
 */
StereoFrame renderStereo(GpuSimulator &sim, const Scene &scene,
                         const Camera &center, int width, int height,
                         const StereoConfig &config = {})
    PARGPU_EXCLUDES(sim.mem().serial_phase);

} // namespace pargpu

#endif // PARGPU_SIM_STEREO_HH
