#include "sim/stereo.hh"

namespace pargpu
{

Camera
stereoEye(const Camera &center, int eye_index, const StereoConfig &config)
{
    Camera eye = center;
    float offset = (eye_index == 0 ? -0.5f : 0.5f) * config.ipd;
    // The view matrix maps world to view space; shifting the eye right by
    // `offset` along the camera's x axis equals translating view space by
    // -offset in x, i.e., adding it to the view matrix's x translation.
    eye.view.m[3][0] -= offset;
    // Track the world-space eye position for consumers that use it: the
    // camera's world x axis is the first row of the rotation part.
    eye.eye.x += offset * center.view.m[0][0];
    eye.eye.y += offset * center.view.m[1][0];
    eye.eye.z += offset * center.view.m[2][0];
    return eye;
}

StereoFrame
renderStereo(GpuSimulator &sim, const Scene &scene, const Camera &center,
             int width, int height, const StereoConfig &config)
{
    StereoFrame frame;
    frame.left = sim.renderFrame(scene, stereoEye(center, 0, config),
                                 width, height);
    frame.right = sim.renderFrame(scene, stereoEye(center, 1, config),
                                  width, height);
    return frame;
}

} // namespace pargpu
