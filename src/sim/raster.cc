#include "sim/raster.hh"

#include <cmath>

#include "common/contract.hh"

namespace pargpu
{

namespace
{

/** A clip-space vertex with its attributes, used during near clipping. */
struct ClipVertex
{
    Vec4 pos;
    Vec2 uv;
};

// Interpolate between two clip vertices at parameter t.
ClipVertex
lerpClip(const ClipVertex &a, const ClipVertex &b, float t)
{
    ClipVertex r;
    r.pos = a.pos + (b.pos - a.pos) * t;
    r.uv = a.uv + (b.uv - a.uv) * t;
    return r;
}

// Sutherland-Hodgman clip of a polygon against the near plane z + w >= 0.
// Returns the clipped polygon (0..n+1 vertices).
std::vector<ClipVertex>
clipNear(const std::vector<ClipVertex> &poly)
{
    std::vector<ClipVertex> out;
    const std::size_t n = poly.size();
    for (std::size_t i = 0; i < n; ++i) {
        const ClipVertex &cur = poly[i];
        const ClipVertex &nxt = poly[(i + 1) % n];
        float dc = cur.pos.z + cur.pos.w;
        float dn = nxt.pos.z + nxt.pos.w;
        bool cin = dc >= 0.0f;
        bool nin = dn >= 0.0f;
        if (cin)
            out.push_back(cur);
        if (cin != nin) {
            float t = dc / (dc - dn);
            out.push_back(lerpClip(cur, nxt, t));
        }
    }
    return out;
}

// Project a clip vertex to screen space.
ScreenVertex
project(const ClipVertex &cv, int vp_w, int vp_h)
{
    ScreenVertex s;
    float inv_w = 1.0f / cv.pos.w;
    float ndc_x = cv.pos.x * inv_w;
    float ndc_y = cv.pos.y * inv_w;
    float ndc_z = cv.pos.z * inv_w;
    s.x = (ndc_x * 0.5f + 0.5f) * static_cast<float>(vp_w);
    s.y = (0.5f - ndc_y * 0.5f) * static_cast<float>(vp_h);
    s.z = ndc_z * 0.5f + 0.5f;
    s.inv_w = inv_w;
    s.u_w = cv.uv.x * inv_w;
    s.v_w = cv.uv.y * inv_w;
    return s;
}

// Finish setup of one screen triangle; returns false if degenerate,
// culled, or outside the viewport.
bool
finishSetup(ScreenVertex sv[3], float shade, int texture_id,
            FilterMode filter, bool cull, bool specular,
            int vp_w, int vp_h, SetupTriangle &out)
{
    float area2 = edgeFunction(sv[0].x, sv[0].y, sv[1].x, sv[1].y,
                               sv[2].x, sv[2].y);
    // Screen-space winding: our projection flips y, so a counter-clockwise
    // (front-facing) triangle has positive area here.
    if (cull && area2 <= 0.0f)
        return false;
    // Exact-zero test: a degenerate triangle produces exactly 0 from the
    // edge function; near-zero slivers must still rasterize.
    if (area2 == 0.0f) // pargpu-lint: allow(float-eq)
        return false;
    if (area2 < 0.0f) {
        std::swap(sv[1], sv[2]);
        area2 = -area2;
    }
    PARGPU_ASSERT(area2 > 0.0f && std::isfinite(1.0f / area2),
                  "degenerate triangle escaped the area test: area2=",
                  area2);

    out.v[0] = sv[0];
    out.v[1] = sv[1];
    out.v[2] = sv[2];
    out.inv_area = 1.0f / area2;
    out.shade = shade;
    out.texture_id = texture_id;
    out.filter = filter;
    out.specular = specular;

    float min_xf = std::min({sv[0].x, sv[1].x, sv[2].x});
    float max_xf = std::max({sv[0].x, sv[1].x, sv[2].x});
    float min_yf = std::min({sv[0].y, sv[1].y, sv[2].y});
    float max_yf = std::max({sv[0].y, sv[1].y, sv[2].y});
    out.min_x = std::max(0, static_cast<int>(std::floor(min_xf)));
    out.min_y = std::max(0, static_cast<int>(std::floor(min_yf)));
    out.max_x = std::min(vp_w - 1, static_cast<int>(std::ceil(max_xf)));
    out.max_y = std::min(vp_h - 1, static_cast<int>(std::ceil(max_yf)));
    return out.min_x <= out.max_x && out.min_y <= out.max_y;
}

} // namespace

int
setupTriangles(const Vertex tri[3], const Mat4 &mvp, float shade,
               int texture_id, FilterMode filter, bool cull,
               int vp_w, int vp_h, SetupTriangle *out, bool specular)
{
    std::vector<ClipVertex> poly;
    poly.reserve(4);
    for (int i = 0; i < 3; ++i)
        poly.push_back({mvp * Vec4{tri[i].pos, 1.0f}, tri[i].uv});

    // Fast path: fully in front of the near plane.
    bool all_in = true;
    for (const ClipVertex &cv : poly)
        all_in &= (cv.pos.z + cv.pos.w) >= 0.0f;
    if (!all_in) {
        poly = clipNear(poly);
        if (poly.size() < 3)
            return 0;
    }

    int added = 0;
    // Fan-triangulate the clipped polygon (3 or 4 vertices).
    for (std::size_t i = 1; i + 1 < poly.size(); ++i) {
        ScreenVertex sv[3] = {
            project(poly[0], vp_w, vp_h),
            project(poly[i], vp_w, vp_h),
            project(poly[i + 1], vp_w, vp_h),
        };
        SetupTriangle st;
        if (finishSetup(sv, shade, texture_id, filter, cull, specular,
                        vp_w, vp_h, st)) {
            out[added] = st;
            ++added;
        }
    }
    return added;
}

int
setupTriangles(const Vertex tri[3], const Mat4 &mvp, float shade,
               int texture_id, FilterMode filter, bool cull,
               int vp_w, int vp_h, std::vector<SetupTriangle> &out,
               bool specular)
{
    SetupTriangle buf[2];
    const int n = setupTriangles(tri, mvp, shade, texture_id, filter,
                                 cull, vp_w, vp_h, buf, specular);
    for (int i = 0; i < n; ++i)
        out.push_back(buf[i]);
    return n;
}

} // namespace pargpu
