/**
 * @file
 * Scene description consumed by the GPU simulator: vertices, meshes, draw
 * calls, cameras and textures bound into the simulated address space.
 */

#ifndef PARGPU_SIM_GEOMETRY_HH
#define PARGPU_SIM_GEOMETRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/color.hh"
#include "common/vec.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace pargpu
{

/** One vertex: object-space position + texture coordinate. */
struct Vertex
{
    Vec3 pos;
    Vec2 uv;
};

/** Size of a vertex as fetched from GPU memory (pos + uv floats). */
inline constexpr unsigned kVertexBytes = 5 * sizeof(float);

/** An indexed triangle mesh bound to one texture. */
struct Mesh
{
    std::vector<Vertex> vertices;
    std::vector<std::uint32_t> indices; ///< 3 per triangle.
    int texture_id = 0;                 ///< Index into Scene::textures.

    std::size_t numTriangles() const { return indices.size() / 3; }
};

/** A draw call: a mesh, its model transform and filtering request. */
struct DrawCall
{
    Mesh mesh;
    Mat4 model = Mat4::identity();
    FilterMode filter = FilterMode::Anisotropic;
    bool backface_cull = true;
    /**
     * Specular-glint pass: adds a highlight that is a steep nonlinear
     * function of the filtered texture luma (water ripple / glossy track
     * reflections). Such effects amplify filtering differences — blurring
     * the texture pushes luma below the glint threshold and the effect
     * disappears, exactly the artifact the paper's Fig. 8 calls out.
     */
    bool specular = false;
};

/** View + projection pair. */
struct Camera
{
    Mat4 view = Mat4::identity();
    Mat4 proj = Mat4::identity();
    Vec3 eye;
};

/**
 * A renderable scene: an owned texture set (stable addresses) and the draw
 * list. Scenes are built by src/scenes generators or loaded from traces.
 */
struct Scene
{
    std::string name;
    std::vector<std::unique_ptr<TextureMap>> textures;
    std::vector<DrawCall> draws;
    Color4f clear_color{0.05f, 0.07f, 0.12f, 1.0f};

    /**
     * Add a texture and bind it at the next free address.
     * @return Its texture id.
     */
    int
    addTexture(std::unique_ptr<TextureMap> tex)
    {
        Addr base = next_texture_addr_;
        tex->setBaseAddr(base);
        next_texture_addr_ = base + tex->sizeBytes();
        // Keep successive textures line-aligned.
        next_texture_addr_ = (next_texture_addr_ + 63) & ~Addr{63};
        textures.push_back(std::move(tex));
        return static_cast<int>(textures.size()) - 1;
    }

    /** Total vertices across all draw calls. */
    std::size_t
    numVertices() const
    {
        std::size_t n = 0;
        for (const DrawCall &d : draws)
            n += d.mesh.vertices.size();
        return n;
    }

    /** Total triangles across all draw calls. */
    std::size_t
    numTriangles() const
    {
        std::size_t n = 0;
        for (const DrawCall &d : draws)
            n += d.mesh.numTriangles();
        return n;
    }

  private:
    Addr next_texture_addr_ = 0x1000'0000; // AddressMap::kTextureBase
};

} // namespace pargpu

#endif // PARGPU_SIM_GEOMETRY_HH
