#include "sim/pipeline.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <span>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "common/tracing.hh"
#include "sim/framebuffer.hh"
#include "sim/raster.hh"

namespace pargpu
{

namespace
{

/** Fixed directional light used for flat face shading. */
const Vec3 kLightDir = Vec3{0.4f, 0.8f, 0.45f}.normalized();

using detail::ClusterLog;
using detail::QuadLog;
using detail::TileLog;

// arenaScratchEnabled() override: -1 = follow the environment. Set-once
// test hook in the same spirit as the SIMD tier override — written only
// between frames by setArenaScratchForTesting(), never concurrently
// with renderFrame().
int arena_override = -1; // pargpu-analyze: allow(global-state)

/** Per-face lighting factor from the world-space normal. */
float
faceShade(const Vec3 &p0, const Vec3 &p1, const Vec3 &p2)
{
    Vec3 n = (p1 - p0).cross(p2 - p0).normalized();
    float d = std::fabs(n.dot(kLightDir));
    return 0.35f + 0.65f * d;
}

} // namespace

bool
tileParallelForced()
{
    static const bool forced = [] {
        const char *v = std::getenv("PARGPU_TILE_PARALLEL");
        return v != nullptr && v[0] == '1';
    }();
    return forced;
}

bool
arenaScratchEnabled()
{
    if (arena_override >= 0)
        return arena_override != 0;
    static const bool enabled = [] {
        const char *v = std::getenv("PARGPU_ARENA");
        return v == nullptr || v[0] != '0';
    }();
    return enabled;
}

void
setArenaScratchForTesting(int mode)
{
    arena_override = mode;
}

GpuSimulator::GpuSimulator(const GpuConfig &config)
    : config_(config)
{
    MemSysConfig mc = config_.mem;
    mc.clusters = config_.clusters;
    mem_ = std::make_unique<MemorySystem>(mc);
    for (unsigned c = 0; c < config_.clusters; ++c)
        tus_.push_back(std::make_unique<TextureUnit>(config_, c, *mem_));
}

FrameOutput
GpuSimulator::renderFrame(const Scene &scene, const Camera &camera,
                          int width, int height)
{
    if (width <= 0 || height <= 0)
        fatal("renderFrame: viewport must be positive");

    PARGPU_TRACE_SCOPE("sim", "frame");
    {
        PhaseGuard serial(mem_->serial_phase);
        mem_->reset();
    }
    // Per-frame noise seed for the stochastic filter policies: a pure
    // function of the camera (the per-frame input that actually changes),
    // hashed through the counter-based discipline. Frame-parallel
    // partitions and any thread count therefore derive the same seed for
    // the same frame, keeping STF output bit-identical across execution
    // modes — a per-simulator frame counter would not survive frame
    // partitioning.
    std::uint32_t frame_seed = 0x9E3779B9u;
    const auto mix_mat = [&frame_seed](const Mat4 &m) {
        for (const auto &row : m.m)
            for (float v : row)
                frame_seed = hashCombine(
                    std::bit_cast<std::uint32_t>(v), frame_seed,
                    0x85EBCA6Bu);
    };
    mix_mat(camera.view);
    mix_mat(camera.proj);

    for (auto &tu : tus_) {
        tu->resetStats();
        tu->beginFrame(frame_seed);
    }

    // Cache and DRAM hit/miss counters are cumulative across flushes
    // (their units keep lifetime stats); snapshot them here so the frame
    // reports deltas and every frame is measured independently — which
    // also makes renderFrame() results invariant to what the simulator
    // rendered before (the parallel harness relies on this).
    struct MemCounters
    {
        std::uint64_t l1_hits = 0, l1_misses = 0;
        std::uint64_t llc_hits = 0, llc_misses = 0;
        std::uint64_t dram_reads = 0, dram_row_hits = 0;
    } base;
    for (unsigned c = 0; c < config_.clusters; ++c) {
        base.l1_hits += mem_->textureL1(c).hits();
        base.l1_misses += mem_->textureL1(c).misses();
    }
    base.llc_hits = mem_->llc().hits();
    base.llc_misses = mem_->llc().misses();
    base.dram_reads = mem_->dram().reads();
    base.dram_row_hits = mem_->dram().rowHits();

    // All per-frame scratch that exists in every execution mode comes
    // from the two arenas (or from plain vectors under PARGPU_ARENA=0);
    // the lifetime delta around the frame is the arena.frame_bytes
    // counter, robust to bin_arena_ being reset once per draw.
    const bool use_arena = arenaScratchEnabled();
    const std::size_t arena_base =
        frame_arena_.lifetimeBytes() + bin_arena_.lifetimeBytes();

    FrameStats fs;

    frame_arena_.reset();
    // High-water marks restart per frame: the exported arena.high_water
    // must describe this frame alone, whichever simulator instance (and
    // prior frame history) renders it.
    bin_arena_.reset();
    frame_arena_.resetHighWater();
    bin_arena_.resetHighWater();
    std::optional<Framebuffer> fb_store;
    if (use_arena)
        fb_store.emplace(width, height, frame_arena_);
    else
        fb_store.emplace(width, height);
    Framebuffer &fb = *fb_store;
    fs.fb_simd_fills +=
        static_cast<std::uint64_t>(fb.clear(scene.clear_color));

    const unsigned tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;
    const std::size_t n_tiles = static_cast<std::size_t>(tiles_x) * tiles_y;
    const unsigned shader_parallelism =
        config_.clusters * config_.shaders_per_cluster;

    std::vector<Cycle> cc_heap;
    std::vector<std::uint64_t> tpc_heap;
    std::span<Cycle> cluster_cycles;
    std::span<std::uint64_t> tiles_per_cluster;
    if (use_arena) {
        cluster_cycles = frame_arena_.allocSpan<Cycle>(config_.clusters);
        tiles_per_cluster =
            frame_arena_.allocSpan<std::uint64_t>(config_.clusters);
    } else {
        cc_heap.assign(config_.clusters, 0);
        tpc_heap.assign(config_.clusters, 0);
        cluster_cycles = cc_heap;
        tiles_per_cluster = tpc_heap;
    }
    Cycle geometry_cycles = 0;

    // Early depth test over a quad's covered pixels; returns the
    // surviving coverage mask. Fully covered quads take the 4-lane
    // depth_quad kernel (one compare-and-select per quad, counted in
    // fb.simd_fills); partial quads keep the per-pixel path. Both paths
    // test the same pixels against the same values, so tested/killed and
    // the surviving mask are identical either way. The counters are
    // passed in so the tile-parallel path can shard them per cluster.
    auto depthTestQuad = [&fb](QuadFragment &q, std::uint64_t &tested,
                               std::uint64_t &killed,
                               std::uint64_t &fills) -> unsigned {
        if (q.coverage == 0xFu) {
            // Full coverage implies all four pixels are inside the walk
            // window (and thus the viewport), so this cluster owns the
            // whole quad and the kernel's fail-lane rewrites are safe.
            unsigned surv = fb.depthTestQuad(q.x, q.y, q.depth);
            ++fills;
            tested += 4;
            killed += 4u - static_cast<unsigned>(std::popcount(surv));
            return surv;
        }
        unsigned surv = 0;
        for (int i = 0; i < 4; ++i) {
            if (!(q.coverage & (1u << i)))
                continue;
            int px = q.x + (i & 1);
            int py = q.y + (i >> 1);
            ++tested;
            if (fb.depthTest(px, py, q.depth[i]))
                surv |= 1u << i;
            else
                ++killed;
        }
        return surv;
    };

    // Shade one surviving pixel from its filtered texture color; the
    // caller stages the quad's colors and scatters them in one masked
    // kernel store.
    auto shadeFragment = [](const SetupTriangle &st,
                            const Color4f &texc) -> Color4f {
        Color4f c = texc * st.shade;
        if (st.specular) {
            // Glint: steep nonlinear response to the filtered luma
            // (ripple/gloss highlights). The threshold sits above the
            // texture mean, so only sharply-filtered peaks fire — mip
            // blur pushes the luma below it and the effect disappears
            // (Fig. 8's lost water rippling).
            float l = texc.luma();
            float g = std::clamp((l - 0.70f) / 0.08f, 0.0f, 1.0f);
            g = g * g * (3.0f - 2.0f * g);
            c += Color4f{0.95f, 0.95f, 0.85f, 0} * (0.9f * g);
        }
        c.a = 1.0f;
        return c.clamped();
    };

    // Tile-parallel state: per-cluster pass-A logs and memory fronts.
    // Persistent members (sized on first use) so their vectors keep a
    // steady-state capacity across frames; cleared after each draw's
    // commit pass.
    const bool tile_par = config_.tile_parallel || tileParallelForced();
    if (tile_par) {
        if (logs_.size() < config_.clusters)
            logs_.resize(config_.clusters);
        if (fronts_.size() < config_.clusters) {
            fronts_.clear();
            fronts_.reserve(config_.clusters);
            for (unsigned c = 0; c < config_.clusters; ++c)
                fronts_.emplace_back(*mem_, c);
        }
        if (cursor_.size() < config_.clusters)
            cursor_.resize(config_.clusters);
    }

    // Scratch bins: triangle indices per tile in CSR form (counts, start
    // offsets, one flat item array), rebuilt per draw call so draw order
    // (and therefore depth-test order) is preserved. Arena-backed: one
    // vector-of-vectors here used to cost a heap allocation per touched
    // tile per draw. The *_heap vectors are the PARGPU_ARENA=0 fallback
    // (reused across draws, so the values written are identical).
    std::span<std::uint32_t> bin_count;
    std::span<std::uint32_t> bin_start;
    std::span<std::uint32_t> bin_items;
    std::vector<std::uint32_t> bc_heap, bs_heap, bi_heap, cur_heap;

    Addr vertex_addr = AddressMap::kVertexBase;

    std::uint32_t draw_index = 0;
    for (const DrawCall &draw : scene.draws) {
        PARGPU_TRACE_SCOPE_F("sim", "draw", draw_index);
        ++draw_index;
        const Mesh &mesh = draw.mesh;
        const TextureMap &tex = *scene.textures[mesh.texture_id];
        const Mat4 mvp = camera.proj * camera.view * draw.model;
        std::span<const SetupTriangle> tris;

        {
        PARGPU_TRACE_SCOPE("sim", "geometry");
        // The geometry engine is the only agent in the memory system
        // during this block (fragment work has not started).
        PhaseGuard serial(mem_->serial_phase);

        // --- Vertex processing ------------------------------------------
        // Fetch vertex data (geometry traffic) and charge shader time.
        Bytes vbytes = mesh.vertices.size() * kVertexBytes;
        const Bytes line = mem_->config().line_bytes;
        for (Bytes off = 0; off < vbytes; off += line) {
            mem_->read(0, vertex_addr + off, geometry_cycles,
                       TrafficClass::Geometry);
        }
        vertex_addr += (vbytes + line - 1) / line * line;
        geometry_cycles += mesh.vertices.size() * config_.vertex_cycles /
            std::max(1u, shader_parallelism) + 1;

        // --- Primitive assembly / clip / cull ----------------------------
        // Setup triangles land in bin_arena_ scratch (near clipping can
        // split a triangle in two, so capacity is 2x the input count);
        // the arena is reset here and the bins below are carved from the
        // same arena afterwards, so both live until the next draw.
        bin_arena_.reset();
        const std::size_t max_setup = (mesh.indices.size() / 3) * 2;
        std::span<SetupTriangle> tri_scratch;
        if (use_arena) {
            tri_scratch =
                bin_arena_.allocSpanUninit<SetupTriangle>(max_setup);
        } else {
            tris_.resize(max_setup);
            tri_scratch = tris_;
        }
        std::size_t n_tris = 0;
        for (std::size_t t = 0; t + 2 < mesh.indices.size(); t += 3) {
            Vertex tv[3];
            Vec3 wp[3];
            for (int k = 0; k < 3; ++k) {
                tv[k] = mesh.vertices[mesh.indices[t + k]];
                Vec4 w = draw.model * Vec4{tv[k].pos, 1.0f};
                wp[k] = w.xyz();
            }
            ++fs.triangles_in;
            float shade = faceShade(wp[0], wp[1], wp[2]);
            n_tris += static_cast<std::size_t>(setupTriangles(
                tv, mvp, shade, mesh.texture_id, draw.filter,
                draw.backface_cull, width, height,
                tri_scratch.data() + n_tris, draw.specular));
        }
        tris = tri_scratch.first(n_tris);
        fs.triangles_setup += tris.size();
        geometry_cycles += (mesh.indices.size() / 3) *
            config_.tri_setup_cycles / std::max(1u, config_.clusters) + 1;

        // --- Tiling engine ------------------------------------------------
        // Two passes over the triangle/tile overlaps: count, then fill at
        // prefix-summed offsets. Items land grouped by tile, triangles in
        // submission order within each tile — the same traversal order
        // the per-tile vectors produced.
        if (use_arena) {
            bin_count = bin_arena_.allocSpan<std::uint32_t>(n_tiles);
        } else {
            bc_heap.assign(n_tiles, 0);
            bin_count = bc_heap;
        }
        for (const SetupTriangle &st : tris) {
            int tx0 = st.min_x / static_cast<int>(tile);
            int tx1 = st.max_x / static_cast<int>(tile);
            int ty0 = st.min_y / static_cast<int>(tile);
            int ty1 = st.max_y / static_cast<int>(tile);
            for (int ty = ty0; ty <= ty1; ++ty)
                for (int tx = tx0; tx <= tx1; ++tx)
                    ++bin_count[static_cast<std::size_t>(ty) * tiles_x +
                                tx];
        }
        if (use_arena) {
            bin_start =
                bin_arena_.allocSpanUninit<std::uint32_t>(n_tiles + 1);
        } else {
            bs_heap.resize(n_tiles + 1);
            bin_start = bs_heap;
        }
        std::uint32_t running = 0;
        for (std::size_t t = 0; t < n_tiles; ++t) {
            bin_start[t] = running;
            running += bin_count[t];
        }
        bin_start[n_tiles] = running;
        std::span<std::uint32_t> bin_cursor;
        if (use_arena) {
            bin_items = bin_arena_.allocSpanUninit<std::uint32_t>(running);
            bin_cursor = bin_arena_.allocSpanUninit<std::uint32_t>(n_tiles);
        } else {
            bi_heap.resize(running);
            bin_items = bi_heap;
            cur_heap.resize(n_tiles);
            bin_cursor = cur_heap;
        }
        std::copy(bin_start.begin(), bin_start.end() - 1,
                  bin_cursor.begin());
        for (std::uint32_t ti = 0; ti < tris.size(); ++ti) {
            const SetupTriangle &st = tris[ti];
            int tx0 = st.min_x / static_cast<int>(tile);
            int tx1 = st.max_x / static_cast<int>(tile);
            int ty0 = st.min_y / static_cast<int>(tile);
            int ty1 = st.max_y / static_cast<int>(tile);
            for (int ty = ty0; ty <= ty1; ++ty)
                for (int tx = tx0; tx <= tx1; ++tx)
                    bin_items[bin_cursor[static_cast<std::size_t>(ty) *
                                         tiles_x + tx]++] = ti;
        }
        } // geometry span

        // --- Fragment phase ----------------------------------------------
        PARGPU_TRACE_SCOPE("sim", "fragment");
        if (!tile_par) {
        // Serial rendering: one thread owns the whole hierarchy.
        PhaseGuard serial(mem_->serial_phase);
        for (int ty = 0; ty < tiles_y; ++ty) {
            for (int tx = 0; tx < tiles_x; ++tx) {
                const std::size_t t =
                    static_cast<std::size_t>(ty) * tiles_x + tx;
                if (bin_count[t] == 0)
                    continue;
                const std::span<const std::uint32_t> bin =
                    bin_items.subspan(bin_start[t], bin_count[t]);
                unsigned cl = static_cast<unsigned>(ty * tiles_x + tx) %
                    config_.clusters;
                Cycle &cc = cluster_cycles[cl];
                TextureUnit &tu = *tus_[cl];
                ++tiles_per_cluster[cl];

                int px0 = tx * static_cast<int>(tile);
                int py0 = ty * static_cast<int>(tile);
                int px1 = std::min(width - 1,
                                   px0 + static_cast<int>(tile) - 1);
                int py1 = std::min(height - 1,
                                   py0 + static_cast<int>(tile) - 1);

                std::uint64_t tile_pixels = 0;

                for (std::uint32_t ti : bin) {
                    const SetupTriangle &st = tris[ti];
                    int wx0 = std::max(px0, st.min_x);
                    int wy0 = std::max(py0, st.min_y);
                    int wx1 = std::min(px1, st.max_x);
                    int wy1 = std::min(py1, st.max_y);
                    if (wx0 > wx1 || wy0 > wy1)
                        continue;

                    fs.raster_simd_quads += rasterizeTriangle(
                        st, wx0, wy0, wx1, wy1,
                        [&](const QuadFragment &quad) {
                            // Runs inline under the serial PhaseGuard
                            // above; restate that for the analysis,
                            // which checks lambda bodies as separate
                            // functions and cannot alias tu's private
                            // memory-system pointer with mem_.
                            mem_->serial_phase.assertHeld();
                            tu.assertSerialPhase();
                            // Early depth test per covered pixel.
                            QuadFragment q = quad;
                            unsigned surv = depthTestQuad(
                                q, fs.earlyz_tested, fs.earlyz_killed,
                                fs.fb_simd_fills);
                            cc += config_.raster_quad_cycles;
                            if (surv == 0)
                                return;
                            q.coverage = surv;

                            QuadFilterResult qr = tu.processQuad(
                                q, tex, st.filter, cc);

                            // Shader and texture work overlap partially:
                            // the quad costs the longer of the two plus
                            // the unhidden part of the shorter.
                            Cycle shader_c = config_.frag_quad_cycles;
                            Cycle lo = std::min(shader_c, qr.busy);
                            Cycle hi = std::max(shader_c, qr.busy);
                            cc += hi + static_cast<Cycle>(
                                (1.0 - config_.tex_overlap) *
                                static_cast<double>(lo));
                            fs.shader_busy_cycles += shader_c;

                            float rgba[16];
                            for (int i = 0; i < 4; ++i) {
                                if (!(surv & (1u << i)))
                                    continue;
                                const Color4f c =
                                    shadeFragment(st, qr.color[i]);
                                rgba[4 * i + 0] = c.r;
                                rgba[4 * i + 1] = c.g;
                                rgba[4 * i + 2] = c.b;
                                rgba[4 * i + 3] = c.a;
                                ++tile_pixels;
                            }
                            fb.scatterQuad(q.x, q.y, rgba, surv);
                            ++fs.fb_simd_fills;
                        });
                }

                // Tile flush: color (4 B/pixel) once per tile per draw.
                if (tile_pixels > 0) {
                    mem_->write(fb.pixelAddr(px0, py0), tile_pixels * 4,
                                cc, TrafficClass::ColorDepth);
                }
            }
        }
        } else {
            // Two-phase tile-parallel execution (docs/ARCHITECTURE.md,
            // "Threading model").
            //
            // Pass A — parallel: each cluster walks its statically
            // assigned tiles (linear index % clusters, the serial path's
            // assignment) in row-major order, doing rasterization,
            // early-Z, filtering arithmetic and its own L1 lookups.
            // Tiles are pixel-disjoint and every mutable structure here
            // is per-cluster (texture unit, L1, log, stats shard), so
            // the pass is race-free, and each cluster's L1 access stream
            // is exactly the serial one. Shared LLC/DRAM are not touched:
            // L1 misses land in the cluster front's log instead.
            ThreadPool::run(config_.clusters, 1, [&](std::size_t c) {
                PARGPU_TRACE_SCOPE_F("sim", "cluster", c);
                ClusterLog &log = logs_[c];
                ClusterMemFront &front = fronts_[c];
                TextureUnit &tu = *tus_[c];
                for (std::size_t t = c; t < n_tiles;
                     t += config_.clusters) {
                    if (bin_count[t] == 0)
                        continue;
                    const std::span<const std::uint32_t> bin =
                        bin_items.subspan(bin_start[t], bin_count[t]);
                    const int ty = static_cast<int>(t) / tiles_x;
                    const int tx = static_cast<int>(t) % tiles_x;
                    int px0 = tx * static_cast<int>(tile);
                    int py0 = ty * static_cast<int>(tile);
                    int px1 = std::min(width - 1,
                                       px0 + static_cast<int>(tile) - 1);
                    int py1 = std::min(height - 1,
                                       py0 + static_cast<int>(tile) - 1);

                    TileLog tl;
                    tl.index = t;
                    tl.quad_begin =
                        static_cast<std::uint32_t>(log.quads.size());
                    tl.flush_addr = fb.pixelAddr(px0, py0);
                    Cycle pending = 0;
                    std::uint64_t tile_pixels = 0;

                    for (std::uint32_t ti : bin) {
                        const SetupTriangle &st = tris[ti];
                        int wx0 = std::max(px0, st.min_x);
                        int wy0 = std::max(py0, st.min_y);
                        int wx1 = std::min(px1, st.max_x);
                        int wy1 = std::min(py1, st.max_y);
                        if (wx0 > wx1 || wy0 > wy1)
                            continue;

                        log.simd_quads += rasterizeTriangle(
                            st, wx0, wy0, wx1, wy1,
                            [&](const QuadFragment &quad) {
                                QuadFragment q = quad;
                                unsigned surv = depthTestQuad(
                                    q, log.earlyz_tested,
                                    log.earlyz_killed, log.fb_fills);
                                pending += config_.raster_quad_cycles;
                                if (surv == 0)
                                    return;
                                q.coverage = surv;

                                DeferredQuadResult dq =
                                    tu.processQuadDeferred(q, tex,
                                                           st.filter,
                                                           front);
                                QuadLog ql;
                                ql.pre_cycles = pending;
                                ql.work = dq.work;
                                ql.miss_begin = dq.miss_begin;
                                ql.miss_end = dq.miss_end;
                                ql.any_line = dq.any_line;
                                log.quads.push_back(ql);
                                pending = 0;
                                log.shader_busy +=
                                    config_.frag_quad_cycles;

                                float rgba[16];
                                for (int i = 0; i < 4; ++i) {
                                    if (!(surv & (1u << i)))
                                        continue;
                                    const Color4f c =
                                        shadeFragment(st, dq.color[i]);
                                    rgba[4 * i + 0] = c.r;
                                    rgba[4 * i + 1] = c.g;
                                    rgba[4 * i + 2] = c.b;
                                    rgba[4 * i + 3] = c.a;
                                    ++tile_pixels;
                                }
                                fb.scatterQuad(q.x, q.y, rgba, surv);
                                ++log.fb_fills;
                            });
                    }

                    tl.quad_end =
                        static_cast<std::uint32_t>(log.quads.size());
                    tl.tail_cycles = pending;
                    tl.pixels = tile_pixels;
                    log.tiles.push_back(tl);
                }
            });

            // Pass B — serial commit: replay every logged quad in
            // canonical row-major tile order against the shared LLC and
            // DRAM. The cluster cycle recurrence below is the serial
            // loop's, so each quad's reconstructed issue cycle, stall
            // and tile-flush cycle are exactly the values the serial
            // path would have used — which makes every cache, DRAM and
            // timing counter bit-identical.
            PARGPU_TRACE_SCOPE("sim", "commit");
            // Workers have joined (ThreadPool::run is a barrier); this
            // thread is again the only agent in the memory system.
            PhaseGuard serial(mem_->serial_phase);
            std::fill(cursor_.begin(), cursor_.end(), std::size_t{0});
            for (std::size_t t = 0; t < n_tiles; ++t) {
                if (bin_count[t] == 0)
                    continue;
                const unsigned cl =
                    static_cast<unsigned>(t) % config_.clusters;
                ClusterLog &log = logs_[cl];
                PARGPU_INVARIANT(cursor_[cl] < log.tiles.size() &&
                                     log.tiles[cursor_[cl]].index == t,
                                 "tile log out of order at tile ", t);
                const TileLog &tl = log.tiles[cursor_[cl]++];
                Cycle &cc = cluster_cycles[cl];
                TextureUnit &tu = *tus_[cl];
                const std::vector<Addr> &miss = fronts_[cl].missLines();

                for (std::uint32_t qi = tl.quad_begin; qi < tl.quad_end;
                     ++qi) {
                    const QuadLog &ql = log.quads[qi];
                    cc += ql.pre_cycles;
                    const Cycle now = cc;
                    Cycle fetch_done = mem_->commitBatch(
                        cl,
                        std::span<const Addr>(miss).subspan(
                            ql.miss_begin, ql.miss_end - ql.miss_begin),
                        now, ql.any_line, TrafficClass::Texture);
                    PARGPU_INVARIANT(fetch_done >= now,
                                     "memory time ran backwards: now=",
                                     now, " done=", fetch_done);
                    Cycle raw_latency = fetch_done - now;
                    Cycle stall =
                        raw_latency > config_.mem_overlap_credit
                        ? raw_latency - config_.mem_overlap_credit : 0;
                    tu.accountDeferredStall(stall);

                    const Cycle busy = ql.work + stall;
                    const Cycle shader_c = config_.frag_quad_cycles;
                    const Cycle lo = std::min(shader_c, busy);
                    const Cycle hi = std::max(shader_c, busy);
                    cc += hi + static_cast<Cycle>(
                        (1.0 - config_.tex_overlap) *
                        static_cast<double>(lo));
                }

                cc += tl.tail_cycles;
                if (tl.pixels > 0) {
                    mem_->write(tl.flush_addr, tl.pixels * 4, cc,
                                TrafficClass::ColorDepth);
                }
            }

            // Fold the per-cluster shards (fixed cluster order, so the
            // sums match the serial accumulation) and reset the per-draw
            // logs.
            for (unsigned c = 0; c < config_.clusters; ++c) {
                fs.earlyz_tested += logs_[c].earlyz_tested;
                fs.earlyz_killed += logs_[c].earlyz_killed;
                fs.raster_simd_quads += logs_[c].simd_quads;
                fs.fb_simd_fills += logs_[c].fb_fills;
                fs.shader_busy_cycles += logs_[c].shader_busy;
                tiles_per_cluster[c] += logs_[c].tiles.size();
                logs_[c].clearDraw();
                fronts_[c].clear();
            }
        }
    }

    // --- Collect statistics -----------------------------------------------
    fs.geometry_cycles = geometry_cycles;
    fs.fragment_cycles =
        *std::max_element(cluster_cycles.begin(), cluster_cycles.end());
    fs.total_cycles = fs.geometry_cycles + fs.fragment_cycles;
    fs.shader_busy_cycles += geometry_cycles;

    fs.filter_policy = static_cast<std::uint64_t>(config_.filter_policy);
    for (const auto &tu : tus_) {
        const TexUnitStats &ts = tu->stats();
        fs.texture_filter_cycles += ts.filter_busy;
        fs.texture_mem_stall += ts.mem_stall;
        fs.quads += ts.quads;
        fs.pixels_shaded += ts.pixels;
        fs.trilinear_samples += ts.trilinear_samples;
        fs.texels += ts.texels;
        fs.addr_ops += ts.addr_ops;
        fs.table_accesses += ts.table_accesses;
        fs.tex_lines += ts.lines;
        fs.memo_lookups += ts.memo_lookups;
        fs.memo_hits += ts.memo_hits;
        fs.simd_batches += ts.simd_batches;
        fs.af_candidate_pixels += ts.af_candidate_pixels;
        fs.approx_stage1 += ts.approx_stage1;
        fs.approx_stage2 += ts.approx_stage2;
        fs.full_af += ts.full_af;
        fs.trivial_tf += ts.trivial_tf;
        fs.af_input_samples += ts.af_input_samples;
        fs.shared_samples += ts.shared_samples;
        fs.divergent_quads += ts.divergent_quads;
        fs.af_quads += ts.af_quads;
        fs.stf_samples += ts.stf_samples;
        fs.fas_quads += ts.fas_quads;
    }

    // Per-cluster shards: identical between the serial and tile-parallel
    // paths (same static tile assignment, same per-cluster texture
    // units), so the cluster.* metrics never depend on execution mode.
    fs.clusters.resize(config_.clusters);
    for (unsigned c = 0; c < config_.clusters; ++c) {
        ClusterStats &cs = fs.clusters[c];
        const TexUnitStats &ts = tus_[c]->stats();
        cs.tiles = tiles_per_cluster[c];
        cs.quads = ts.quads;
        cs.pixels = ts.pixels;
        cs.texels = ts.texels;
        cs.cycles = cluster_cycles[c];
        cs.filter_busy = ts.filter_busy;
        cs.mem_stall = ts.mem_stall;
    }

    // Arena accounting: lifetime deltas survive the per-draw bin_arena_
    // resets; the high-water mark is the peak live scratch either arena
    // held during this frame (restarted above, so it is identical for
    // every execution mode and simulator instance).
    fs.arena_frame_bytes =
        frame_arena_.lifetimeBytes() + bin_arena_.lifetimeBytes() -
        arena_base;
    fs.arena_high_water =
        frame_arena_.highWaterBytes() + bin_arena_.highWaterBytes();

    fs.traffic_texture = mem_->trafficBytes(TrafficClass::Texture);
    fs.traffic_colordepth = mem_->trafficBytes(TrafficClass::ColorDepth);
    fs.traffic_geometry = mem_->trafficBytes(TrafficClass::Geometry);
    for (unsigned c = 0; c < config_.clusters; ++c) {
        fs.l1_hits += mem_->textureL1(c).hits();
        fs.l1_misses += mem_->textureL1(c).misses();
    }
    // Lifetime counters only grow, so all per-frame deltas must come out
    // non-negative; a violation means the snapshot/delta pairing broke
    // (the bug class PR 1 fixed) and the frame's stats are invalid.
    PARGPU_INVARIANT(fs.l1_hits >= base.l1_hits &&
                         fs.l1_misses >= base.l1_misses,
                     "L1 counters regressed within a frame");
    fs.l1_hits -= base.l1_hits;
    fs.l1_misses -= base.l1_misses;
    PARGPU_INVARIANT(mem_->llc().hits() >= base.llc_hits &&
                         mem_->llc().misses() >= base.llc_misses &&
                         mem_->dram().reads() >= base.dram_reads &&
                         mem_->dram().rowHits() >= base.dram_row_hits,
                     "LLC/DRAM counters regressed within a frame");
    fs.llc_hits = mem_->llc().hits() - base.llc_hits;
    fs.llc_misses = mem_->llc().misses() - base.llc_misses;
    fs.dram_reads = mem_->dram().reads() - base.dram_reads;
    fs.dram_row_hits = mem_->dram().rowHits() - base.dram_row_hits;
    PARGPU_INVARIANT(fs.dram_row_hits <= fs.dram_reads,
                     "row hits exceed DRAM reads: ", fs.dram_row_hits,
                     " > ", fs.dram_reads);
    PARGPU_INVARIANT(fs.total_cycles >= fs.fragment_cycles,
                     "total cycles below the fragment phase");

    // Memory-system activity of this frame, as chrome-trace counter
    // tracks (no effect on the simulation; see common/tracing.hh).
    PARGPU_TRACE_COUNTER("mem", "dram.bytes", fs.totalTraffic());
    PARGPU_TRACE_COUNTER("mem", "dram.reads", fs.dram_reads);
    PARGPU_TRACE_COUNTER("mem", "l1.misses", fs.l1_misses);
    PARGPU_TRACE_COUNTER("mem", "llc.misses", fs.llc_misses);
    PARGPU_TRACE_COUNTER("sim", "frame.cycles", fs.total_cycles);

    FrameOutput out;
    out.image = fb.toImage();
    out.stats = fs;
    return out;
}

} // namespace pargpu
