/**
 * @file
 * Triangle setup and rasterization.
 *
 * The rasterizer walks 2x2 pixel quads (the texture unit's basic processing
 * unit, Section V-B) inside the intersection of a triangle's bounding box
 * and the current tile. All four pixels of a quad receive perspective-
 * correct texture coordinates — including uncovered "helper" pixels — so
 * per-quad screen-space derivatives can be formed by differencing, exactly
 * as hardware derives them for LOD/anisotropy computation.
 */

#ifndef PARGPU_SIM_RASTER_HH
#define PARGPU_SIM_RASTER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/vec.hh"
#include "sim/geometry.hh"
#include "simd/kernels.hh"

namespace pargpu
{

/** A post-projection vertex ready for rasterization. */
struct ScreenVertex
{
    float x = 0.0f;     ///< Screen-space x (pixels).
    float y = 0.0f;     ///< Screen-space y (pixels, top-down).
    float z = 0.0f;     ///< Depth in [0, 1] (0 = near).
    float inv_w = 0.0f; ///< 1 / clip-space w.
    float u_w = 0.0f;   ///< u * inv_w (perspective-correct numerator).
    float v_w = 0.0f;   ///< v * inv_w.
};

/** A triangle after setup: screen vertices + interpolation constants. */
struct SetupTriangle
{
    ScreenVertex v[3];
    float inv_area = 0.0f; ///< 1 / twice the signed screen area.
    float shade = 1.0f;    ///< Per-face lighting factor.
    int texture_id = 0;
    FilterMode filter = FilterMode::Anisotropic;
    bool specular = false; ///< Glint pass (see DrawCall::specular).
    int min_x = 0, min_y = 0, max_x = 0, max_y = 0; ///< Inclusive bbox.
};

/** One 2x2 quad of fragments emitted by the rasterizer. */
struct QuadFragment
{
    int x = 0;             ///< Top-left pixel x (even).
    int y = 0;             ///< Top-left pixel y (even).
    unsigned coverage = 0; ///< Bits 0..3: (+0,+0) (+1,+0) (+0,+1) (+1,+1).
    Vec2 uv[4];            ///< Perspective-correct uv at all 4 centers.
    float depth[4] = {0, 0, 0, 0};
    Vec2 duvdx;            ///< Per-quad derivative d(uv)/dx.
    Vec2 duvdy;            ///< Per-quad derivative d(uv)/dy.
};

/**
 * Transform, near-clip, cull and set up one object-space triangle.
 *
 * @param tri         The three vertices.
 * @param mvp         Combined model-view-projection matrix.
 * @param shade       Face lighting factor to carry through.
 * @param texture_id  Texture binding.
 * @param filter      Filtering mode of the draw call.
 * @param cull        Enable back-face culling.
 * @param vp_w        Viewport width (pixels).
 * @param vp_h        Viewport height (pixels).
 * @param out         Receives 0..2 setup triangles (near clip can split).
 * @param specular    Glint-pass flag carried to the fragment shader.
 * @return Number of triangles appended.
 */
int setupTriangles(const Vertex tri[3], const Mat4 &mvp, float shade,
                   int texture_id, FilterMode filter, bool cull,
                   int vp_w, int vp_h, std::vector<SetupTriangle> &out,
                   bool specular = false);

/**
 * Span-destination overload: writes up to 2 triangles at @p out (the
 * caller guarantees that much capacity — arena scratch in the render
 * loop). Same results as the vector overload.
 */
int setupTriangles(const Vertex tri[3], const Mat4 &mvp, float shade,
                   int texture_id, FilterMode filter, bool cull,
                   int vp_w, int vp_h, SetupTriangle *out,
                   bool specular = false);

/** Edge function: twice the signed area of (a, b, p). */
inline float
edgeFunction(float ax, float ay, float bx, float by, float px, float py)
{
    return (px - ax) * (by - ay) - (py - ay) * (bx - ax);
}

/**
 * Rasterize @p tri over pixels [x0, x1] x [y0, y1] (inclusive, normally a
 * tile clipped to the triangle bbox), invoking @p emit for every 2x2 quad
 * with at least one covered pixel.
 *
 * Each quad is evaluated by the active dispatch tier's 4-lane edge_quad
 * kernel (one lane per pixel); the scalar tier carries the reference FP
 * chain, so coverage, uv and depth are bit-identical on every tier.
 *
 * @tparam EmitFn  Callable taking (const QuadFragment &).
 * @return Number of quads evaluated (covered or not) — the
 *         raster.simd_quads counter, identical across tiers and
 *         execution modes because the walk itself never changes.
 */
template <typename EmitFn>
std::uint64_t
rasterizeTriangle(const SetupTriangle &tri, int x0, int y0, int x1, int y1,
                  EmitFn &&emit)
{
    // Quad-align the walk window.
    int qx0 = x0 & ~1;
    int qy0 = y0 & ~1;

    const ScreenVertex &a = tri.v[0];
    const ScreenVertex &b = tri.v[1];
    const ScreenVertex &c = tri.v[2];

    const simd::KernelOps &ops = simd::activeKernels();
    simd::EdgeTri et;
    et.ax = a.x;
    et.ay = a.y;
    et.bx = b.x;
    et.by = b.y;
    et.cx = c.x;
    et.cy = c.y;
    et.inv_area = tri.inv_area;
    et.z0 = a.z;
    et.z1 = b.z;
    et.z2 = c.z;
    et.iw0 = a.inv_w;
    et.iw1 = b.inv_w;
    et.iw2 = c.inv_w;
    et.uw0 = a.u_w;
    et.uw1 = b.u_w;
    et.uw2 = c.u_w;
    et.vw0 = a.v_w;
    et.vw1 = b.v_w;
    et.vw2 = c.v_w;

    std::uint64_t visited = 0;
    for (int qy = qy0; qy <= y1; qy += 2) {
        for (int qx = qx0; qx <= x1; qx += 2) {
            ++visited;
            simd::EdgeQuadOut eq;
            ops.edge_quad(et, qx, qy, x0, y0, x1, y1, eq);
            if (eq.coverage == 0)
                continue;

            QuadFragment quad;
            quad.x = qx;
            quad.y = qy;
            quad.coverage = eq.coverage;
            for (int i = 0; i < 4; ++i) {
                quad.uv[i] = Vec2{eq.u[i], eq.v[i]};
                quad.depth[i] = eq.depth[i];
            }
            quad.duvdx = quad.uv[1] - quad.uv[0];
            quad.duvdy = quad.uv[2] - quad.uv[0];
            emit(quad);
        }
    }
    return visited;
}

} // namespace pargpu

#endif // PARGPU_SIM_RASTER_HH
