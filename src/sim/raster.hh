/**
 * @file
 * Triangle setup and rasterization.
 *
 * The rasterizer walks 2x2 pixel quads (the texture unit's basic processing
 * unit, Section V-B) inside the intersection of a triangle's bounding box
 * and the current tile. All four pixels of a quad receive perspective-
 * correct texture coordinates — including uncovered "helper" pixels — so
 * per-quad screen-space derivatives can be formed by differencing, exactly
 * as hardware derives them for LOD/anisotropy computation.
 */

#ifndef PARGPU_SIM_RASTER_HH
#define PARGPU_SIM_RASTER_HH

#include <algorithm>
#include <vector>

#include "common/vec.hh"
#include "sim/geometry.hh"

namespace pargpu
{

/** A post-projection vertex ready for rasterization. */
struct ScreenVertex
{
    float x = 0.0f;     ///< Screen-space x (pixels).
    float y = 0.0f;     ///< Screen-space y (pixels, top-down).
    float z = 0.0f;     ///< Depth in [0, 1] (0 = near).
    float inv_w = 0.0f; ///< 1 / clip-space w.
    float u_w = 0.0f;   ///< u * inv_w (perspective-correct numerator).
    float v_w = 0.0f;   ///< v * inv_w.
};

/** A triangle after setup: screen vertices + interpolation constants. */
struct SetupTriangle
{
    ScreenVertex v[3];
    float inv_area = 0.0f; ///< 1 / twice the signed screen area.
    float shade = 1.0f;    ///< Per-face lighting factor.
    int texture_id = 0;
    FilterMode filter = FilterMode::Anisotropic;
    bool specular = false; ///< Glint pass (see DrawCall::specular).
    int min_x = 0, min_y = 0, max_x = 0, max_y = 0; ///< Inclusive bbox.
};

/** One 2x2 quad of fragments emitted by the rasterizer. */
struct QuadFragment
{
    int x = 0;             ///< Top-left pixel x (even).
    int y = 0;             ///< Top-left pixel y (even).
    unsigned coverage = 0; ///< Bits 0..3: (+0,+0) (+1,+0) (+0,+1) (+1,+1).
    Vec2 uv[4];            ///< Perspective-correct uv at all 4 centers.
    float depth[4] = {0, 0, 0, 0};
    Vec2 duvdx;            ///< Per-quad derivative d(uv)/dx.
    Vec2 duvdy;            ///< Per-quad derivative d(uv)/dy.
};

/**
 * Transform, near-clip, cull and set up one object-space triangle.
 *
 * @param tri         The three vertices.
 * @param mvp         Combined model-view-projection matrix.
 * @param shade       Face lighting factor to carry through.
 * @param texture_id  Texture binding.
 * @param filter      Filtering mode of the draw call.
 * @param cull        Enable back-face culling.
 * @param vp_w        Viewport width (pixels).
 * @param vp_h        Viewport height (pixels).
 * @param out         Receives 0..2 setup triangles (near clip can split).
 * @param specular    Glint-pass flag carried to the fragment shader.
 * @return Number of triangles appended.
 */
int setupTriangles(const Vertex tri[3], const Mat4 &mvp, float shade,
                   int texture_id, FilterMode filter, bool cull,
                   int vp_w, int vp_h, std::vector<SetupTriangle> &out,
                   bool specular = false);

/** Edge function: twice the signed area of (a, b, p). */
inline float
edgeFunction(float ax, float ay, float bx, float by, float px, float py)
{
    return (px - ax) * (by - ay) - (py - ay) * (bx - ax);
}

/**
 * Rasterize @p tri over pixels [x0, x1] x [y0, y1] (inclusive, normally a
 * tile clipped to the triangle bbox), invoking @p emit for every 2x2 quad
 * with at least one covered pixel.
 *
 * @tparam EmitFn  Callable taking (const QuadFragment &).
 */
template <typename EmitFn>
void
rasterizeTriangle(const SetupTriangle &tri, int x0, int y0, int x1, int y1,
                  EmitFn &&emit)
{
    // Quad-align the walk window.
    int qx0 = x0 & ~1;
    int qy0 = y0 & ~1;

    const ScreenVertex &a = tri.v[0];
    const ScreenVertex &b = tri.v[1];
    const ScreenVertex &c = tri.v[2];

    for (int qy = qy0; qy <= y1; qy += 2) {
        for (int qx = qx0; qx <= x1; qx += 2) {
            QuadFragment quad;
            quad.x = qx;
            quad.y = qy;

            bool any = false;
            for (int i = 0; i < 4; ++i) {
                int px = qx + (i & 1);
                int py = qy + (i >> 1);
                float cx = px + 0.5f;
                float cy = py + 0.5f;

                float e0 = edgeFunction(b.x, b.y, c.x, c.y, cx, cy);
                float e1 = edgeFunction(c.x, c.y, a.x, a.y, cx, cy);
                float w0 = e0 * tri.inv_area;
                float w1 = e1 * tri.inv_area;
                float w2 = 1.0f - w0 - w1;

                // Attributes are evaluated for every pixel of the quad
                // (extrapolated outside the triangle) so derivatives exist
                // even at partially-covered quads.
                float inv_w = w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w;
                float u_w = w0 * a.u_w + w1 * b.u_w + w2 * c.u_w;
                float v_w = w0 * a.v_w + w1 * b.v_w + w2 * c.v_w;
                // Exact-zero guard against dividing by an extrapolated
                // 1/w of 0; near-zero values are valid and must divide.
                float rcp = // pargpu-lint: allow(float-eq)
                    inv_w != 0.0f ? 1.0f / inv_w : 0.0f;
                quad.uv[i] = Vec2{u_w * rcp, v_w * rcp};
                quad.depth[i] = w0 * a.z + w1 * b.z + w2 * c.z;

                bool inside = w0 >= 0.0f && w1 >= 0.0f && w2 >= 0.0f;
                bool in_window = px >= x0 && px <= x1 &&
                    py >= y0 && py <= y1;
                if (inside && in_window) {
                    quad.coverage |= 1u << i;
                    any = true;
                }
            }
            if (!any)
                continue;

            quad.duvdx = quad.uv[1] - quad.uv[0];
            quad.duvdy = quad.uv[2] - quad.uv[0];
            emit(quad);
        }
    }
}

} // namespace pargpu

#endif // PARGPU_SIM_RASTER_HH
