/**
 * @file
 * Color + depth framebuffer for the simulated GPU.
 *
 * The pixel and depth planes are plain spans so the render loop can back
 * them with per-frame BumpArena scratch (GpuSimulator re-renders into the
 * same blocks every frame instead of re-allocating ~5 MB of vectors); the
 * owning constructor keeps standalone use (tests, tools) trivial.
 */

#ifndef PARGPU_SIM_FRAMEBUFFER_HH
#define PARGPU_SIM_FRAMEBUFFER_HH

#include <span>
#include <vector>

#include "common/arena.hh"
#include "common/image.hh"
#include "common/types.hh"

namespace pargpu
{

/**
 * A width x height color raster plus a float depth buffer (smaller value =
 * nearer; cleared to +inf). Planes are uninitialized until clear().
 */
class Framebuffer
{
  public:
    /** Self-owning planes (heap vectors). */
    Framebuffer(int width, int height);

    /**
     * Arena-backed planes: storage comes from @p arena and is recycled by
     * the arena's next reset(), which must outlive this framebuffer.
     */
    Framebuffer(int width, int height, BumpArena &arena);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Clear color to @p c and depth to the far value. */
    void clear(const Color4f &c);

    /**
     * Depth-test-and-set: returns true (and stores @p depth) if @p depth is
     * nearer than the stored value.
     */
    bool depthTest(int x, int y, float depth);

    /** Read-only depth value at (x, y). */
    float depthAt(int x, int y) const;

    /** Write a shaded pixel. */
    void
    writeColor(int x, int y, const Color4f &c)
    {
        color_[static_cast<std::size_t>(y) * width_ + x] = c;
    }

    /** Read-only color at (x, y). */
    const Color4f &
    colorAt(int x, int y) const
    {
        return color_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Copy the color plane out as an Image (end-of-frame snapshot). */
    Image toImage() const;

    /** Byte address of pixel (x, y) in the simulated framebuffer region. */
    Addr pixelAddr(int x, int y) const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Color4f> own_color_; ///< Owning mode only.
    std::vector<float> own_depth_;   ///< Owning mode only.
    std::span<Color4f> color_;
    std::span<float> depth_;
};

} // namespace pargpu

#endif // PARGPU_SIM_FRAMEBUFFER_HH
