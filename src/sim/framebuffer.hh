/**
 * @file
 * Color + depth framebuffer for the simulated GPU.
 *
 * The pixel and depth planes are plain spans so the render loop can back
 * them with per-frame BumpArena scratch (GpuSimulator re-renders into the
 * same blocks every frame instead of re-allocating ~5 MB of vectors); the
 * owning constructor keeps standalone use (tests, tools) trivial.
 */

#ifndef PARGPU_SIM_FRAMEBUFFER_HH
#define PARGPU_SIM_FRAMEBUFFER_HH

#include <span>
#include <vector>

#include "common/arena.hh"
#include "common/image.hh"
#include "common/types.hh"

namespace pargpu
{

/**
 * A width x height color raster plus a float depth buffer (smaller value =
 * nearer; cleared to +inf). Planes are uninitialized until clear().
 */
class Framebuffer
{
  public:
    /** Self-owning planes (heap vectors). */
    Framebuffer(int width, int height);

    /**
     * Arena-backed planes: storage comes from @p arena and is recycled by
     * the arena's next reset(), which must outlive this framebuffer.
     */
    Framebuffer(int width, int height, BumpArena &arena);

    int width() const { return width_; }
    int height() const { return height_; }

    /**
     * Clear color to @p c and depth to the far value, through the active
     * dispatch tier's fill kernels (pure stores, so every tier writes
     * identical planes).
     *
     * @return Number of SIMD fill-kernel invocations (the fb.simd_fills
     *         counter's clear contribution).
     */
    int clear(const Color4f &c);

    /**
     * Depth-test-and-set: returns true (and stores @p depth) if @p depth is
     * nearer than the stored value.
     */
    bool depthTest(int x, int y, float depth);

    /**
     * Depth-test-and-write all four pixels of the fully in-bounds 2x2
     * quad at even (x, y) in one kernel call; depth[i] maps to pixel
     * (x + (i & 1), y + (i >> 1)). Returns the pass mask. Lane-wise the
     * exact depthTest() compare-and-store; fail lanes rewrite their
     * original bits, so the caller must own the whole quad (true under
     * tile-parallel execution only when the quad is fully inside the
     * walk window — the caller checks coverage == 0xF first).
     */
    unsigned depthTestQuad(int x, int y, const float depth[4]);

    /**
     * Write the shaded quad colors rgba[4*i .. 4*i+3] to each pixel
     * (x + (i & 1), y + (i >> 1)) whose @p mask bit i is set, in one
     * kernel call. Lanes with a clear bit are never touched, so partial
     * quads at the viewport edge are safe.
     */
    void scatterQuad(int x, int y, const float rgba[16], unsigned mask);

    /** Read-only depth value at (x, y). */
    float depthAt(int x, int y) const;

    /** Write a shaded pixel. */
    void
    writeColor(int x, int y, const Color4f &c)
    {
        color_[static_cast<std::size_t>(y) * width_ + x] = c;
    }

    /** Read-only color at (x, y). */
    const Color4f &
    colorAt(int x, int y) const
    {
        return color_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Copy the color plane out as an Image (end-of-frame snapshot). */
    Image toImage() const;

    /** Byte address of pixel (x, y) in the simulated framebuffer region. */
    Addr pixelAddr(int x, int y) const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Color4f> own_color_; ///< Owning mode only.
    std::vector<float> own_depth_;   ///< Owning mode only.
    std::span<Color4f> color_;
    std::span<float> depth_;
};

} // namespace pargpu

#endif // PARGPU_SIM_FRAMEBUFFER_HH
