/**
 * @file
 * Color + depth framebuffer for the simulated GPU.
 */

#ifndef PARGPU_SIM_FRAMEBUFFER_HH
#define PARGPU_SIM_FRAMEBUFFER_HH

#include <vector>

#include "common/image.hh"
#include "common/types.hh"

namespace pargpu
{

/**
 * A width x height color image plus a float depth buffer (smaller value =
 * nearer; cleared to +inf equivalent).
 */
class Framebuffer
{
  public:
    Framebuffer(int width, int height);

    int width() const { return color_.width(); }
    int height() const { return color_.height(); }

    /** Clear color to @p c and depth to the far value. */
    void clear(const Color4f &c);

    /**
     * Depth-test-and-set: returns true (and stores @p depth) if @p depth is
     * nearer than the stored value.
     */
    bool depthTest(int x, int y, float depth);

    /** Read-only depth value at (x, y). */
    float depthAt(int x, int y) const;

    /** Write a shaded pixel. */
    void writeColor(int x, int y, const Color4f &c) { color_.at(x, y) = c; }

    const Image &color() const { return color_; }
    Image &color() { return color_; }

    /** Byte address of pixel (x, y) in the simulated framebuffer region. */
    Addr pixelAddr(int x, int y) const;

  private:
    Image color_;
    std::vector<float> depth_;
};

} // namespace pargpu

#endif // PARGPU_SIM_FRAMEBUFFER_HH
