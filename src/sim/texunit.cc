#include "sim/texunit.hh"

#include <algorithm>

#include "common/contract.hh"

namespace pargpu
{

TextureUnit::TextureUnit(const GpuConfig &config, unsigned cluster,
                         MemorySystem &mem)
    : config_(config), cluster_(cluster), mem_(&mem), patu_(config.patu)
{
    PARGPU_ASSERT(config.addr_alus >= 1 && config.addr_alus <= 8,
                  "address ALU count must divide the 8-texel footprint: ",
                  config.addr_alus);
    PARGPU_ASSERT(config.max_aniso >= 1,
                  "max_aniso must be positive: ", config.max_aniso);
}

TextureUnit::QuadLineSet::QuadLineSet()
{
    std::fill(std::begin(slot_gen_), std::end(slot_gen_), 0u);
    order_.reserve(512);
}

void
TextureUnit::QuadLineSet::reset()
{
    // Generation stamping invalidates every slot without touching the
    // table; on the (rare) wraparound the stamps are cleared for real.
    if (++gen_ == 0) {
        std::fill(std::begin(slot_gen_), std::end(slot_gen_), 0u);
        gen_ = 1;
    }
    order_.clear();
}

void
TextureUnit::QuadLineSet::insertLine(Addr line_addr)
{
    std::uint64_t z = line_addr * 0x9E3779B97F4A7C15ull;
    std::uint32_t slot = static_cast<std::uint32_t>(z >> 32) & (kSlots - 1);
    for (std::uint32_t probes = 0; probes < kSlots;
         ++probes, slot = (slot + 1) & (kSlots - 1)) {
        if (slot_gen_[slot] != gen_) {
            slot_gen_[slot] = gen_;
            slot_addr_[slot] = line_addr;
            order_.push_back(line_addr);
            return;
        }
        if (slot_addr_[slot] == line_addr)
            return;
    }
    PARGPU_INVARIANT(false, "quad line set overflow: a quad touches at "
                            "most 512 lines");
}

void
TextureUnit::queueSample(const TrilinearSample &s)
{
    // Texels within a sample frequently share cache lines (tiled layout),
    // and samples across the quad share whole footprints; the fetch unit
    // coalesces all of it, so record each distinct line once for the
    // quad-level batched read.
    const Bytes line = mem_->config().line_bytes;
    for (const TexelRef &t : s.texels)
        lines_.insertLine(t.addr / line * line);
    stats_.texels += 8;
    ++stats_.trilinear_samples;
}

Cycle
TextureUnit::processQuadWork(const QuadFragment &quad,
                             const TextureMap &tex, FilterMode mode,
                             Color4f out_color[4])
{
    ++stats_.quads;

    TextureSampler sampler(tex);
    AnisotropyInfo info = sampler.computeAnisotropy(
        quad.duvdx, quad.duvdy, config_.max_aniso);

    memo_.reset();
    lines_.reset();
    arena_.reset();

    PixelPlan plans[4];
    // Stored AF footprints per pixel, when the decision requires them
    // (arena-backed: recycled wholesale at the next quad).
    std::span<TrilinearSample> footprints[4];

    bool any_af_pixel = false;
    bool any_approx = false;
    bool any_keep = false;

    for (int i = 0; i < 4; ++i) {
        if (!(quad.coverage & (1u << i)))
            continue;
        PixelPlan &plan = plans[i];
        plan.active = true;
        ++stats_.pixels;

        if (mode != FilterMode::Anisotropic) {
            // Isotropic draw calls: one trilinear sample (bilinear uses
            // LOD 0, which degenerates to a single-level footprint).
            float lod = mode == FilterMode::Bilinear ? 0.0f : info.lodTF;
            std::span<TrilinearSample> s =
                arena_.allocSpan<TrilinearSample>(1);
            plan.color = sampler.filterTrilinearInto(quad.uv[i], lod,
                                                     s[0], &memo_);
            plan.fetch_samples = 1;
            plan.addr_samples = 1;
            queueSample(s[0]);
            continue;
        }

        // Anisotropic path with the PATU decision flow (Fig. 13).
        PARGPU_ASSERT(info.sampleSize >= 1,
                      "anisotropy N must be >= 1: ", info.sampleSize);
        if (info.sampleSize > 1) {
            ++stats_.af_candidate_pixels;
            any_af_pixel = true;
        }

        PixelDecision d = patu_.preDecide(info);

        Color4f af_color;
        if (d.need_distribution) {
            // Texel Address Calculation for all N samples, fed into the
            // hash table as each sample's addresses complete (overlapped
            // with address calculation, Section V-B).
            footprints[i] = arena_.allocSpan<TrilinearSample>(
                static_cast<std::size_t>(info.sampleSize));
            af_color = sampler.filterAnisotropicInto(
                quad.uv[i], info, footprints[i].data(), &memo_);
            plan.addr_samples = static_cast<int>(footprints[i].size());
            stats_.table_accesses += footprints[i].size();
            patu_.finishDistribution(d, info, footprints[i]);
        }

        plan.approximate = d.approximate;
        plan.stage = d.stage;

        switch (d.stage) {
          case DecisionStage::TrivialTf:
            ++stats_.trivial_tf;
            break;
          case DecisionStage::SampleArea:
            ++stats_.approx_stage1;
            break;
          case DecisionStage::Distribution:
            ++stats_.approx_stage2;
            break;
          case DecisionStage::FullAf:
            ++stats_.full_af;
            break;
          case DecisionStage::Forced:
            if (d.approximate)
                ++stats_.trivial_tf;
            else
                ++stats_.full_af;
            break;
        }

        if (d.approximate) {
            any_approx = any_approx || info.sampleSize > 1;
            // The decision LOD must be a usable mip coordinate: finite
            // and not below the base level (trilinearInto() clamps the
            // top end against the actual chain length).
            PARGPU_ASSERT(d.lod >= 0.0f && d.lod <= 32.0f,
                          "decision LOD out of mip-chain bounds: ", d.lod);
            // TF at the decision's LOD. Stage-2 approximations pay one
            // extra address-recalculation loop (Section V-B).
            std::span<TrilinearSample> s =
                arena_.allocSpan<TrilinearSample>(1);
            plan.color = sampler.filterTrilinearInto(quad.uv[i], d.lod,
                                                     s[0], &memo_);
            plan.fetch_samples = 1;
            plan.addr_samples += 1;
            queueSample(s[0]);
        } else {
            any_keep = any_keep || info.sampleSize > 1;
            if (footprints[i].empty()) {
                // Baseline / AF-SSIM(N) kept AF without running the
                // distribution stage: compute the footprints now.
                footprints[i] = arena_.allocSpan<TrilinearSample>(
                    static_cast<std::size_t>(info.sampleSize));
                plan.color = sampler.filterAnisotropicInto(
                    quad.uv[i], info, footprints[i].data(), &memo_);
                plan.addr_samples =
                    static_cast<int>(footprints[i].size());
            } else {
                // Reuse the footprints (and color) from the distribution
                // check.
                plan.color = af_color;
            }
            plan.fetch_samples = static_cast<int>(footprints[i].size());
            for (const TrilinearSample &s : footprints[i])
                queueSample(s);
        }
    }

    stats_.lines += lines_.order().size();
    stats_.memo_lookups += memo_.lookups();
    stats_.memo_hits += memo_.hits();

    // --- Timing -----------------------------------------------------
    // Address ALUs: 8 addresses per trilinear sample over addr_alus ALUs
    // per pixel pipeline; the four pipelines run in lockstep so the quad
    // pays the slowest pixel. Filtering likewise at 2 cycles per sample.
    Cycle addr_cycles = 0, filter_cycles = 0;
    for (const PixelPlan &plan : plans) {
        if (!plan.active)
            continue;
        Cycle a = static_cast<Cycle>(plan.addr_samples) *
            (8 / config_.addr_alus);
        Cycle f = static_cast<Cycle>(plan.fetch_samples) *
            config_.cycles_per_trilinear;
        addr_cycles = std::max(addr_cycles, a);
        filter_cycles = std::max(filter_cycles, f);
        stats_.addr_ops +=
            static_cast<std::uint64_t>(plan.addr_samples) * 8;
    }

    // Divergence accounting (Section V-C(1)).
    if (any_af_pixel) {
        ++stats_.af_quads;
        if (any_approx && any_keep)
            ++stats_.divergent_quads;
    }

    // Fig. 12 statistic: how many AF input samples share texel sets,
    // measured on the pixels whose footprints were materialized.
    for (int i = 0; i < 4; ++i) {
        if (footprints[i].size() > 1) {
            stats_.af_input_samples += footprints[i].size();
            stats_.shared_samples += static_cast<std::uint64_t>(
                patu_.countSharedSamples(footprints[i]));
        }
    }

    for (int i = 0; i < 4; ++i)
        out_color[i] = plans[i].color;
    return addr_cycles + filter_cycles;
}

QuadFilterResult
TextureUnit::processQuad(const QuadFragment &quad, const TextureMap &tex,
                         FilterMode mode, Cycle now)
{
    QuadFilterResult result;
    Cycle work = processQuadWork(quad, tex, mode, result.color);

    // One batched memory-system call for every distinct line the quad
    // touched, in first-touch order: a single tag lookup per line. All
    // sample fetches of a quad issue at the same cycle (as in the seed),
    // so the furthest completion is the max over the distinct lines.
    Cycle fetch_done = mem_->readLines(cluster_, lines_.order(), now,
                                       TrafficClass::Texture);
    PARGPU_INVARIANT(fetch_done >= now,
                     "memory time ran backwards: now=", now,
                     " done=", fetch_done);

    // Fetch latency beyond the TU's in-flight window stalls the pipeline.
    Cycle raw_latency = fetch_done - now;
    Cycle stall = raw_latency > config_.mem_overlap_credit
        ? raw_latency - config_.mem_overlap_credit : 0;
    stats_.mem_stall += stall;

    result.busy = work + stall;
    stats_.filter_busy += result.busy;
    return result;
}

DeferredQuadResult
TextureUnit::processQuadDeferred(const QuadFragment &quad,
                                 const TextureMap &tex, FilterMode mode,
                                 ClusterMemFront &front)
{
    PARGPU_ASSERT(front.cluster() == cluster_,
                  "front/cluster mismatch: ", front.cluster(), " vs ",
                  cluster_);
    DeferredQuadResult result;
    result.work = processQuadWork(quad, tex, mode, result.color);

    // Same per-cluster L1 lookups and first-touch line order as the
    // serial path; only the shared-level walk is deferred to the commit
    // pass. The stall part of filter_busy lands in
    // accountDeferredStall() once that pass resolves the fetch time.
    ClusterMemFront::Batch b = front.stageLines(lines_.order());
    result.miss_begin = b.miss_begin;
    result.miss_end = b.miss_end;
    result.any_line = b.any_line;
    stats_.filter_busy += result.work;
    return result;
}

} // namespace pargpu
