#include "sim/texunit.hh"

#include <algorithm>

#include "common/contract.hh"

namespace pargpu
{

TextureUnit::TextureUnit(const GpuConfig &config, unsigned cluster,
                         MemorySystem &mem)
    : config_(config), cluster_(cluster), mem_(&mem), patu_(config.patu)
{
    PARGPU_ASSERT(config.addr_alus >= 1 && config.addr_alus <= 8,
                  "address ALU count must divide the 8-texel footprint: ",
                  config.addr_alus);
    PARGPU_ASSERT(config.max_aniso >= 1,
                  "max_aniso must be positive: ", config.max_aniso);
}

Cycle
TextureUnit::fetchSample(const TrilinearSample &s, Cycle now)
{
    // Texels within a sample frequently share cache lines (tiled layout);
    // the fetch unit coalesces them, so issue one timed read per unique
    // line address in the footprint.
    const Bytes line = mem_->config().line_bytes;
    Addr lines[8];
    int n_lines = 0;
    for (const TexelRef &t : s.texels) {
        Addr la = t.addr / line * line;
        bool seen = false;
        for (int i = 0; i < n_lines; ++i)
            seen |= lines[i] == la;
        if (!seen)
            lines[n_lines++] = la;
    }
    // A trilinear footprint is exactly 8 texels, so line coalescing can
    // produce between 1 and 8 unique lines.
    PARGPU_CHECK_RANGE(n_lines, 1, 8, "footprint line coalescing");
    Cycle done = now;
    for (int i = 0; i < n_lines; ++i) {
        Cycle c = mem_->read(cluster_, lines[i], now,
                             TrafficClass::Texture);
        done = std::max(done, c);
    }
    stats_.texels += 8;
    ++stats_.trilinear_samples;
    PARGPU_INVARIANT(done >= now,
                     "memory time ran backwards: now=", now,
                     " done=", done);
    return done;
}

QuadFilterResult
TextureUnit::processQuad(const QuadFragment &quad, const TextureMap &tex,
                         FilterMode mode, Cycle now)
{
    QuadFilterResult result;
    ++stats_.quads;

    TextureSampler sampler(tex);
    AnisotropyInfo info = sampler.computeAnisotropy(
        quad.duvdx, quad.duvdy, config_.max_aniso);

    PixelPlan plans[4];
    // Stored AF footprints per pixel, when the decision requires them.
    std::vector<TrilinearSample> footprints[4];

    bool any_af_pixel = false;
    bool any_approx = false;
    bool any_keep = false;
    Cycle fetch_done = now; ///< Furthest fetch completion in the quad.

    for (int i = 0; i < 4; ++i) {
        if (!(quad.coverage & (1u << i)))
            continue;
        PixelPlan &plan = plans[i];
        plan.active = true;
        ++stats_.pixels;

        if (mode != FilterMode::Anisotropic) {
            // Isotropic draw calls: one trilinear sample (bilinear uses
            // LOD 0, which degenerates to a single-level footprint).
            float lod = mode == FilterMode::Bilinear ? 0.0f : info.lodTF;
            FilterResult fr = sampler.filterTrilinear(quad.uv[i], lod);
            plan.color = fr.color;
            plan.fetch_samples = 1;
            plan.addr_samples = 1;
            fetch_done = std::max(fetch_done,
                                  fetchSample(fr.samples[0], now));
            continue;
        }

        // Anisotropic path with the PATU decision flow (Fig. 13).
        PARGPU_ASSERT(info.sampleSize >= 1,
                      "anisotropy N must be >= 1: ", info.sampleSize);
        if (info.sampleSize > 1) {
            ++stats_.af_candidate_pixels;
            any_af_pixel = true;
        }

        PixelDecision d = patu_.preDecide(info);

        if (d.need_distribution) {
            // Texel Address Calculation for all N samples, fed into the
            // hash table as each sample's addresses complete (overlapped
            // with address calculation, Section V-B).
            footprints[i] =
                sampler.filterAnisotropic(quad.uv[i], info).samples;
            plan.addr_samples = static_cast<int>(footprints[i].size());
            stats_.table_accesses += footprints[i].size();
            patu_.finishDistribution(d, info, footprints[i]);
        }

        plan.approximate = d.approximate;
        plan.stage = d.stage;

        switch (d.stage) {
          case DecisionStage::TrivialTf:
            ++stats_.trivial_tf;
            break;
          case DecisionStage::SampleArea:
            ++stats_.approx_stage1;
            break;
          case DecisionStage::Distribution:
            ++stats_.approx_stage2;
            break;
          case DecisionStage::FullAf:
            ++stats_.full_af;
            break;
          case DecisionStage::Forced:
            if (d.approximate)
                ++stats_.trivial_tf;
            else
                ++stats_.full_af;
            break;
        }

        if (d.approximate) {
            any_approx = any_approx || info.sampleSize > 1;
            // The decision LOD must be a usable mip coordinate: finite
            // and not below the base level (trilinear() clamps the top
            // end against the actual chain length).
            PARGPU_ASSERT(d.lod >= 0.0f && d.lod <= 32.0f,
                          "decision LOD out of mip-chain bounds: ", d.lod);
            // TF at the decision's LOD. Stage-2 approximations pay one
            // extra address-recalculation loop (Section V-B).
            FilterResult fr = sampler.filterTrilinear(quad.uv[i], d.lod);
            plan.color = fr.color;
            plan.fetch_samples = 1;
            plan.addr_samples += 1;
            fetch_done = std::max(fetch_done,
                                  fetchSample(fr.samples[0], now));
        } else {
            any_keep = any_keep || info.sampleSize > 1;
            if (footprints[i].empty()) {
                // Baseline / AF-SSIM(N) kept AF without running the
                // distribution stage: compute the footprints now.
                FilterResult fr =
                    sampler.filterAnisotropic(quad.uv[i], info);
                plan.color = fr.color;
                footprints[i] = std::move(fr.samples);
                plan.addr_samples =
                    static_cast<int>(footprints[i].size());
            } else {
                // Reuse the footprints from the distribution check.
                Color4f acc{0, 0, 0, 0};
                float inv =
                    1.0f / static_cast<float>(footprints[i].size());
                for (const TrilinearSample &s : footprints[i])
                    acc += s.color * inv;
                plan.color = acc;
            }
            plan.fetch_samples = static_cast<int>(footprints[i].size());
            for (const TrilinearSample &s : footprints[i])
                fetch_done = std::max(fetch_done, fetchSample(s, now));
        }
    }

    // --- Timing -----------------------------------------------------
    // Address ALUs: 8 addresses per trilinear sample over addr_alus ALUs
    // per pixel pipeline; the four pipelines run in lockstep so the quad
    // pays the slowest pixel. Filtering likewise at 2 cycles per sample.
    Cycle addr_cycles = 0, filter_cycles = 0;
    for (const PixelPlan &plan : plans) {
        if (!plan.active)
            continue;
        Cycle a = static_cast<Cycle>(plan.addr_samples) *
            (8 / config_.addr_alus);
        Cycle f = static_cast<Cycle>(plan.fetch_samples) *
            config_.cycles_per_trilinear;
        addr_cycles = std::max(addr_cycles, a);
        filter_cycles = std::max(filter_cycles, f);
        stats_.addr_ops +=
            static_cast<std::uint64_t>(plan.addr_samples) * 8;
    }

    // Fetch latency beyond the TU's in-flight window stalls the pipeline.
    Cycle raw_latency = fetch_done - now;
    Cycle stall = raw_latency > config_.mem_overlap_credit
        ? raw_latency - config_.mem_overlap_credit : 0;
    stats_.mem_stall += stall;

    Cycle busy = addr_cycles + filter_cycles + stall;

    // Divergence accounting (Section V-C(1)).
    if (any_af_pixel) {
        ++stats_.af_quads;
        if (any_approx && any_keep)
            ++stats_.divergent_quads;
    }

    // Fig. 12 statistic: how many AF input samples share texel sets,
    // measured on the pixels whose footprints were materialized.
    for (int i = 0; i < 4; ++i) {
        if (footprints[i].size() > 1) {
            stats_.af_input_samples += footprints[i].size();
            stats_.shared_samples += static_cast<std::uint64_t>(
                patu_.countSharedSamples(footprints[i]));
        }
    }

    stats_.filter_busy += busy;
    result.busy = busy;
    for (int i = 0; i < 4; ++i)
        result.color[i] = plans[i].color;
    return result;
}

} // namespace pargpu
