#include "sim/texunit.hh"

#include <algorithm>

#include "common/contract.hh"

namespace pargpu
{

TextureUnit::TextureUnit(const GpuConfig &config, unsigned cluster,
                         MemorySystem &mem)
    : config_(config), cluster_(cluster), mem_(&mem), patu_(config.patu)
{
    // line_bytes is validated power-of-two by the cache constructors
    // (SetAssocCache), so line-aligning is a mask, not a divide; hoist
    // it once — queueSample() runs per trilinear sample.
    line_mask_ = ~(static_cast<Addr>(mem.config().line_bytes) - 1);
    PARGPU_ASSERT(config.addr_alus >= 1 && config.addr_alus <= 8,
                  "address ALU count must divide the 8-texel footprint: ",
                  config.addr_alus);
    PARGPU_ASSERT(config.max_aniso >= 1,
                  "max_aniso must be positive: ", config.max_aniso);
}

TextureUnit::QuadLineSet::QuadLineSet()
{
    std::fill(std::begin(slot_gen_), std::end(slot_gen_), 0u);
    order_.reserve(512);
}

void
TextureUnit::QuadLineSet::reset()
{
    // Generation stamping invalidates every slot without touching the
    // table; on the (rare) wraparound the stamps are cleared for real.
    if (++gen_ == 0) {
        std::fill(std::begin(slot_gen_), std::end(slot_gen_), 0u);
        gen_ = 1;
    }
    order_.clear();
}

void
TextureUnit::QuadLineSet::insertLine(Addr line_addr)
{
    std::uint64_t z = line_addr * 0x9E3779B97F4A7C15ull;
    std::uint32_t slot = static_cast<std::uint32_t>(z >> 32) & (kSlots - 1);
    for (std::uint32_t probes = 0; probes < kSlots;
         ++probes, slot = (slot + 1) & (kSlots - 1)) {
        if (slot_gen_[slot] != gen_) {
            slot_gen_[slot] = gen_;
            slot_addr_[slot] = line_addr;
            order_.push_back(line_addr);
            return;
        }
        if (slot_addr_[slot] == line_addr)
            return;
    }
    PARGPU_INVARIANT(false, "quad line set overflow: a quad touches at "
                            "most 512 lines");
}

Cycle
TextureUnit::processQuadWork(const QuadFragment &quad,
                             const TextureMap &tex, FilterMode mode,
                             Color4f out_color[4])
{
    ++stats_.quads;

    TextureSampler sampler(tex);
    AnisotropyInfo info = sampler.computeAnisotropy(
        quad.duvdx, quad.duvdy, config_.max_aniso);

    memo_.reset();
    lines_.reset();
    arena_.reset();
    prev_line_[0] = prev_line_[1] = ~static_cast<Addr>(0);

    PixelPlan plans[4];
    // Stored AF sample address sets per pixel, when the decision requires
    // them (arena-backed: recycled wholesale at the next quad).
    std::span<TexelAddrSet> footprints[4];

    bool any_af_pixel = false;
    bool any_approx = false;
    bool any_keep = false;

    if (mode != FilterMode::Anisotropic) {
        // Isotropic draw calls: one trilinear sample per covered pixel
        // (bilinear uses LOD 0, which degenerates to a single-level
        // footprint). The LOD — and hence the level selection — is
        // quad-wide, so the covered pixels batch into one SoA kernel
        // call. Memo probes run in pixel order and line collection
        // follows in the same pixel order, exactly as the per-pixel
        // loop issued them.
        const float lod = mode == FilterMode::Bilinear ? 0.0f : info.lodTF;
        const LodSelect sel = sampler.selectLod(lod);
        Vec2 uvs[4];
        int px[4];
        int n = 0;
        for (int i = 0; i < 4; ++i) {
            if (!(quad.coverage & (1u << i)))
                continue;
            plans[i].active = true;
            ++stats_.pixels;
            uvs[n] = quad.uv[i];
            px[n] = i;
            ++n;
        }
        if (n > 0) {
            TexelAddrSet aset[4];
            Color4f cols[4];
            qfilter_.filterSamplesAddrs(sampler, uvs, n, sel, memo_, aset,
                                        cols);
            for (int k = 0; k < n; ++k) {
                PixelPlan &plan = plans[px[k]];
                plan.color = cols[k];
                plan.fetch_samples = 1;
                plan.addr_samples = 1;
                plan.filter_texels = 8;
                queueSample(aset[k]);
            }
        }
    } else {
        // Anisotropic path with the PATU decision flow (Fig. 13). The
        // pre-decision is a pure function of the quad-wide
        // AnisotropyInfo, so every covered pixel reaches the same
        // PixelDecision; preDecide() still runs once per pixel because
        // its counters are per-pixel statistics. When no distribution
        // check is needed, the quad therefore takes one uniform branch
        // and the pixels' sample batches concatenate — in pixel order,
        // preserving the memo probe and line first-touch sequences — into
        // a single SoA kernel call.
        PARGPU_ASSERT(info.sampleSize >= 1,
                      "anisotropy N must be >= 1: ", info.sampleSize);
        int act[4];
        int n_act = 0;
        for (int i = 0; i < 4; ++i) {
            if (!(quad.coverage & (1u << i)))
                continue;
            plans[i].active = true;
            ++stats_.pixels;
            if (info.sampleSize > 1) {
                ++stats_.af_candidate_pixels;
                any_af_pixel = true;
            }
            act[n_act++] = i;
        }
        // FilterPolicy dispatch (docs/FILTERING.md): the coverage prolog
        // above and the divergence/Fig. 12 epilog below are shared; only
        // the filtering strategy in between is policy-specific.
        switch (config_.filter_policy) {
          case FilterPolicyId::Patu:
            anisoQuadPatu(quad, sampler, info, plans, footprints, act,
                          n_act, any_approx, any_keep);
            break;
          case FilterPolicyId::StfUniform:
          case FilterPolicyId::StfBlue:
          case FilterPolicyId::StfWeighted:
            anisoQuadStf(quad, sampler, info, plans, act, n_act);
            break;
          case FilterPolicyId::FilterAfterShading:
            anisoQuadFas(quad, sampler, info, plans, act, n_act);
            break;
        }
    }

    stats_.lines += lines_.order().size();
    stats_.memo_lookups += memo_.lookups();
    stats_.memo_hits += memo_.hits();
    stats_.simd_batches += qfilter_.takeBatches();

    // --- Timing -----------------------------------------------------
    // Address ALUs: 8 addresses per trilinear sample over addr_alus ALUs
    // per pixel pipeline; the four pipelines run in lockstep so the quad
    // pays the slowest pixel. The 8 filtering ALUs blend 8 texels per
    // cycles_per_trilinear, rounded up per pixel — exactly
    // fetch_samples * cycles_per_trilinear for full 8-texel samples, and
    // proportionally less for the single-texel STF policies.
    Cycle addr_cycles = 0, filter_cycles = 0;
    for (const PixelPlan &plan : plans) {
        if (!plan.active)
            continue;
        Cycle a = static_cast<Cycle>(plan.addr_samples) *
            (8 / config_.addr_alus);
        Cycle f = (static_cast<Cycle>(plan.filter_texels) *
                       config_.cycles_per_trilinear + 7) / 8;
        addr_cycles = std::max(addr_cycles, a);
        filter_cycles = std::max(filter_cycles, f);
        stats_.addr_ops +=
            static_cast<std::uint64_t>(plan.addr_samples) * 8;
    }

    // Divergence accounting (Section V-C(1)).
    if (any_af_pixel) {
        ++stats_.af_quads;
        if (any_approx && any_keep)
            ++stats_.divergent_quads;
    }

    // Fig. 12 statistic: how many AF input samples share texel sets,
    // measured on the pixels whose footprints were materialized.
    for (int i = 0; i < 4; ++i) {
        if (footprints[i].size() > 1) {
            stats_.af_input_samples += footprints[i].size();
            stats_.shared_samples += static_cast<std::uint64_t>(
                patu_.countSharedSamples(footprints[i]));
        }
    }

    for (int i = 0; i < 4; ++i)
        out_color[i] = plans[i].color;
    return addr_cycles + filter_cycles;
}

void
TextureUnit::anisoQuadPatu(const QuadFragment &quad,
                           const TextureSampler &sampler,
                           const AnisotropyInfo &info, PixelPlan plans[4],
                           std::span<TexelAddrSet> footprints[4],
                           const int act[4], int n_act, bool &any_approx,
                           bool &any_keep)
{
    // One evaluation covers the quad (the info is quad-wide and the
    // pre-decision is a pure function of it); the per-pixel decision
    // counters advance as if each pixel had decided for itself.
    PixelDecision d = patu_.preDecideN(info, n_act);

    if (n_act > 0 && d.need_distribution) {
        // Stage-2 scenarios interleave footprint generation, the
        // hash-table check and a possible TF recalculation per pixel,
        // and the decision can diverge across the quad: stay
        // per-pixel.
        for (int a = 0; a < n_act; ++a) {
            const int i = act[a];
            PixelPlan &plan = plans[i];
            PixelDecision di = d; // Identical for every pixel.

            // Texel Address Calculation for all N samples, fed into
            // the hash table as each sample's addresses complete
            // (overlapped with address calculation, Section V-B).
            footprints[i] = arena_.allocSpanUninit<TexelAddrSet>(
                static_cast<std::size_t>(info.sampleSize));
            Color4f *sample_cols = scratch_cols_;
            Color4f af_color = qfilter_.filterAnisotropicAddrs(
                sampler, quad.uv[i], info, memo_, footprints[i].data(),
                sample_cols);
            plan.addr_samples = static_cast<int>(footprints[i].size());
            stats_.table_accesses += footprints[i].size();
            patu_.finishDistribution(di, info, footprints[i]);

            plan.approximate = di.approximate;
            plan.stage = di.stage;
            switch (di.stage) {
              case DecisionStage::Distribution:
                ++stats_.approx_stage2;
                break;
              case DecisionStage::FullAf:
                ++stats_.full_af;
                break;
              default:
                PARGPU_INVARIANT(false, "distribution check returned "
                                        "a non-stage-2 decision");
            }

            if (di.approximate) {
                any_approx = any_approx || info.sampleSize > 1;
                // The decision LOD must be a usable mip coordinate
                // (trilinearInto() clamps the top end against the
                // actual chain length).
                PARGPU_ASSERT(di.lod >= 0.0f && di.lod <= 32.0f,
                              "decision LOD out of mip-chain bounds: ",
                              di.lod);
                // TF at the decision's LOD. Stage-2 approximations
                // pay one extra address-recalculation loop
                // (Section V-B).
                TexelAddrSet tf_addrs;
                plan.color = qfilter_.filterTrilinearAddrs(
                    sampler, quad.uv[i], di.lod, memo_, tf_addrs);
                plan.fetch_samples = 1;
                plan.filter_texels = 8;
                plan.addr_samples += 1;
                queueSample(tf_addrs);
            } else {
                any_keep = any_keep || info.sampleSize > 1;
                // Reuse the footprints (and color) from the
                // distribution check.
                plan.color = af_color;
                plan.fetch_samples =
                    static_cast<int>(footprints[i].size());
                plan.filter_texels = 8 * plan.fetch_samples;
                for (const TexelAddrSet &s : footprints[i])
                    queueSample(s);
            }
        }
    } else if (n_act > 0) {
        for (int a = 0; a < n_act; ++a) {
            plans[act[a]].approximate = d.approximate;
            plans[act[a]].stage = d.stage;
            switch (d.stage) {
              case DecisionStage::TrivialTf:
                ++stats_.trivial_tf;
                break;
              case DecisionStage::SampleArea:
                ++stats_.approx_stage1;
                break;
              case DecisionStage::FullAf:
                ++stats_.full_af;
                break;
              case DecisionStage::Forced:
                if (d.approximate)
                    ++stats_.trivial_tf;
                else
                    ++stats_.full_af;
                break;
              case DecisionStage::Distribution:
                PARGPU_INVARIANT(false, "stage-2 decision without a "
                                        "distribution check");
            }
        }

        if (d.approximate) {
            any_approx = any_approx || info.sampleSize > 1;
            PARGPU_ASSERT(d.lod >= 0.0f && d.lod <= 32.0f,
                          "decision LOD out of mip-chain bounds: ",
                          d.lod);
            // TF at the decision's LOD: one sample per covered
            // pixel, all at the same level selection — one batch.
            TexelAddrSet aset[4];
            Color4f cols[4];
            Vec2 uvs[4];
            for (int a = 0; a < n_act; ++a)
                uvs[a] = quad.uv[act[a]];
            qfilter_.filterSamplesAddrs(sampler, uvs, n_act,
                                        sampler.selectLod(d.lod),
                                        memo_, aset, cols);
            for (int a = 0; a < n_act; ++a) {
                PixelPlan &plan = plans[act[a]];
                plan.color = cols[a];
                plan.fetch_samples = 1;
                plan.filter_texels = 8;
                plan.addr_samples += 1;
                queueSample(aset[a]);
            }
        } else {
            // Baseline / AF-SSIM(N) kept AF without the distribution
            // stage: every covered pixel issues the same N samples
            // at AF's level selection — one batch for the quad.
            any_keep = any_keep || info.sampleSize > 1;
            const int n = info.sampleSize;
            PARGPU_ASSERT(n_act * n <= simd::kMaxLanes,
                          "quad AF batch exceeds the SoA lane count: ",
                          n_act * n);
            std::span<TexelAddrSet> s =
                arena_.allocSpanUninit<TexelAddrSet>(
                    static_cast<std::size_t>(n_act) * n);
            Color4f *cols = scratch_cols_;
            Vec2 *uvs = scratch_uvs_;
            for (int a = 0; a < n_act; ++a)
                qfilter_.anisoUvs(quad.uv[act[a]], info,
                                  uvs + a * static_cast<std::size_t>(n));
            qfilter_.filterSamplesAddrs(sampler, uvs, n_act * n,
                                        sampler.selectLod(info.lodAF),
                                        memo_, s.data(), cols);
            for (int a = 0; a < n_act; ++a) {
                const int i = act[a];
                footprints[i] =
                    s.subspan(static_cast<std::size_t>(a) * n,
                              static_cast<std::size_t>(n));
                PixelPlan &plan = plans[i];
                plan.color = simd::QuadFilter::averageColors(
                    cols + static_cast<std::size_t>(a) * n, n);
                plan.addr_samples = n;
                plan.fetch_samples = n;
                plan.filter_texels = 8 * n;
                for (const TexelAddrSet &smp : footprints[i])
                    queueSample(smp);
            }
        }
    }
}

void
TextureUnit::anisoQuadStf(const QuadFragment &quad,
                          const TextureSampler &sampler,
                          const AnisotropyInfo &info, PixelPlan plans[4],
                          const int act[4], int n_act)
{
    // Stochastic texture filtering (docs/FILTERING.md): every AF sample
    // position still computes its footprint's addresses (the address
    // pipeline is unchanged), but only ONE stochastically chosen texel
    // per sample is fetched and blended — 1/8 of the texel traffic of
    // full AF, with noise instead of blur as the error term. The PATU
    // predictor is bypassed entirely.
    if (n_act == 0)
        return;
    const TextureMap &tex = sampler.texture();
    const LodSelect sel = sampler.selectLod(info.lodAF);
    const int n = info.sampleSize;
    const bool weighted =
        config_.filter_policy == FilterPolicyId::StfWeighted;
    const float inv_n = 1.0f / static_cast<float>(n);
    Vec2 *uvs = scratch_uvs_;
    for (int a = 0; a < n_act; ++a) {
        const int i = act[a];
        PixelPlan &plan = plans[i];
        const int px = quad.x + (i & 1);
        const int py = quad.y + (i >> 1);
        // Same sample placement along the anisotropy's major axis as the
        // exact path (the SoA kernel layer's helper).
        simd::QuadFilter::anisoUvs(quad.uv[i], info, uvs);
        Color4f acc{0.0f, 0.0f, 0.0f, 0.0f};
        for (int smp = 0; smp < n; ++smp) {
            const float u = stfSampleU(config_.filter_policy, px, py, smp,
                                       frame_seed_);
            StfTexelChoice c = stfSelectTexel(tex, uvs[smp], sel, weighted,
                                              u);
            queueTexel(c.addr);
            acc += c.estimator * inv_n;
        }
        plan.color = acc;
        plan.fetch_samples = n;
        plan.addr_samples = n;
        plan.filter_texels = n; // One texel blended per sample.
    }
}

void
TextureUnit::anisoQuadFas(const QuadFragment &quad,
                          const TextureSampler &sampler,
                          const AnisotropyInfo &info, PixelPlan plans[4],
                          const int act[4], int n_act)
{
    // Filtering after shading (docs/FILTERING.md): each covered pixel
    // takes ONE sharp trilinear sample at its footprint centroid at AF's
    // LOD (no blur from TF's coarser level), and the filtering moves
    // downstream of sampling — the quad's results are blended with a
    // tent kernel over the 2x2. In this pipeline the downstream shader
    // is an affine modulation, so filtering the sampled colors across
    // the quad is exactly filtering the shaded results, minus any
    // shader nonlinearity.
    if (n_act == 0)
        return;
    TexelAddrSet aset[4];
    Color4f cols[4];
    Vec2 uvs[4];
    for (int a = 0; a < n_act; ++a)
        uvs[a] = quad.uv[act[a]];
    qfilter_.filterSamplesAddrs(sampler, uvs, n_act,
                                sampler.selectLod(info.lodAF), memo_, aset,
                                cols);
    const Color4f mean = simd::QuadFilter::averageColors(cols, n_act);
    for (int a = 0; a < n_act; ++a) {
        PixelPlan &plan = plans[act[a]];
        plan.color = (cols[a] + mean) * 0.5f;
        plan.fetch_samples = 1;
        plan.addr_samples = 1;
        plan.filter_texels = 12; // 8-texel trilinear + 4-color quad blend.
        queueSample(aset[a]);
    }
    ++stats_.fas_quads;
}

QuadFilterResult
TextureUnit::processQuad(const QuadFragment &quad, const TextureMap &tex,
                         FilterMode mode, Cycle now)
{
    QuadFilterResult result;
    Cycle work = processQuadWork(quad, tex, mode, result.color);

    // One batched memory-system call for every distinct line the quad
    // touched, in first-touch order: a single tag lookup per line. All
    // sample fetches of a quad issue at the same cycle (as in the seed),
    // so the furthest completion is the max over the distinct lines.
    Cycle fetch_done = mem_->readLines(cluster_, lines_.order(), now,
                                       TrafficClass::Texture);
    PARGPU_INVARIANT(fetch_done >= now,
                     "memory time ran backwards: now=", now,
                     " done=", fetch_done);

    // Fetch latency beyond the TU's in-flight window stalls the pipeline.
    Cycle raw_latency = fetch_done - now;
    Cycle stall = raw_latency > config_.mem_overlap_credit
        ? raw_latency - config_.mem_overlap_credit : 0;
    stats_.mem_stall += stall;

    result.busy = work + stall;
    stats_.filter_busy += result.busy;
    return result;
}

DeferredQuadResult
TextureUnit::processQuadDeferred(const QuadFragment &quad,
                                 const TextureMap &tex, FilterMode mode,
                                 ClusterMemFront &front)
{
    PARGPU_ASSERT(front.cluster() == cluster_,
                  "front/cluster mismatch: ", front.cluster(), " vs ",
                  cluster_);
    DeferredQuadResult result;
    result.work = processQuadWork(quad, tex, mode, result.color);

    // Same per-cluster L1 lookups and first-touch line order as the
    // serial path; only the shared-level walk is deferred to the commit
    // pass. The stall part of filter_busy lands in
    // accountDeferredStall() once that pass resolves the fetch time.
    ClusterMemFront::Batch b = front.stageLines(lines_.order());
    result.miss_begin = b.miss_begin;
    result.miss_end = b.miss_end;
    result.any_line = b.any_line;
    stats_.filter_busy += result.work;
    return result;
}

} // namespace pargpu
