#include "power/energy.hh"

#include "common/contract.hh"

namespace pargpu
{

EnergyBreakdown
computeEnergy(const FrameStats &stats, const EnergyParams &params)
{
    EnergyBreakdown e;
    auto nj = [](double pj) { return pj * 1e-3; };

    e.shader_nj = nj(static_cast<double>(stats.shader_busy_cycles) *
                     params.shader_cycle_pj);
    e.filter_nj = nj(static_cast<double>(stats.trilinear_samples) *
                         params.trilinear_pj +
                     static_cast<double>(stats.stf_samples) *
                         params.stf_texel_pj +
                     static_cast<double>(stats.addr_ops) *
                         params.addr_op_pj);
    e.table_nj = nj(static_cast<double>(stats.table_accesses) *
                    params.table_access_pj);

    double l1_accesses =
        static_cast<double>(stats.l1_hits) + stats.l1_misses;
    double llc_accesses =
        static_cast<double>(stats.llc_hits) + stats.llc_misses;
    e.cache_nj = nj(l1_accesses * params.l1_access_pj +
                    llc_accesses * params.llc_access_pj);

    double dram_bytes = static_cast<double>(stats.totalTraffic());
    double row_misses =
        static_cast<double>(stats.dram_reads) - stats.dram_row_hits;
    // Every row hit is a read, so the miss count cannot go negative; a
    // violation here means per-frame stat deltas were mis-accumulated.
    PARGPU_INVARIANT(row_misses >= 0.0,
                     "dram_row_hits=", stats.dram_row_hits,
                     " exceeds dram_reads=", stats.dram_reads);
    e.dram_nj = nj(dram_bytes * params.dram_byte_pj +
                   row_misses * params.dram_row_act_pj);

    e.static_nj = nj(static_cast<double>(stats.total_cycles) *
                     (params.gpu_leak_pj_per_cycle +
                      params.dram_back_pj_per_cycle));
    PARGPU_INVARIANT(e.shader_nj >= 0.0 && e.filter_nj >= 0.0 &&
                         e.table_nj >= 0.0 && e.cache_nj >= 0.0 &&
                         e.dram_nj >= 0.0 && e.static_nj >= 0.0,
                     "negative energy component; total=", e.total_nj());
    return e;
}

double
averagePowerW(const EnergyBreakdown &e, const FrameStats &stats,
              double freq_ghz)
{
    if (stats.total_cycles == 0)
        return 0.0;
    PARGPU_ASSERT(freq_ghz > 0.0, "frequency must be positive: ", freq_ghz);
    double seconds =
        static_cast<double>(stats.total_cycles) / (freq_ghz * 1e9);
    return e.total_nj() * 1e-9 / seconds;
}

} // namespace pargpu
