/**
 * @file
 * GPU + DRAM energy model, the analysis-layer counterpart of the paper's
 * McPAT/Micron-based flow.
 *
 * The model is activity-based: per-event dynamic energies (28 nm ballpark
 * figures in picojoules) applied to the simulator's FrameStats counters,
 * plus leakage/background power proportional to frame time. Fig. 20's
 * result — PATU cuts total energy mainly by finishing frames sooner, with a
 * small dynamic-power increase from higher texel throughput — falls out of
 * exactly this structure.
 */

#ifndef PARGPU_POWER_ENERGY_HH
#define PARGPU_POWER_ENERGY_HH

#include "sim/pipeline.hh"

namespace pargpu
{

/** Per-event dynamic energies (pJ) and static power (pJ/cycle). */
struct EnergyParams
{
    // Dynamic, per event.
    double shader_cycle_pj = 260.0;  ///< Active shader-cluster cycle.
    double trilinear_pj = 42.0;      ///< One trilinear filter operation.
    /**
     * One single-texel stochastic filter step (STF policies): a fetch
     * plus one weight multiply-accumulate — about 1/8 of a full 8-texel
     * trilinear op plus the per-sample setup.
     */
    double stf_texel_pj = 6.0;
    double addr_op_pj = 3.0;         ///< One texel-address calculation.
    double table_access_pj = 9.0;    ///< PATU hash-table insert (2 KB SRAM).
    double l1_access_pj = 11.0;      ///< Texture L1 access (16 KB).
    double llc_access_pj = 40.0;     ///< L2/LLC access (128 KB).
    double dram_byte_pj = 16.0;      ///< DRAM read/write per byte.
    double dram_row_act_pj = 1500.0; ///< Row activation (per row miss).

    // Static / background, per cycle at 1 GHz.
    double gpu_leak_pj_per_cycle = 900.0;   ///< Core + cache leakage.
    double dram_back_pj_per_cycle = 320.0;  ///< DRAM background/refresh.
};

/** Energy breakdown for one frame (nanojoules). */
struct EnergyBreakdown
{
    double shader_nj = 0.0;
    double filter_nj = 0.0;   ///< Texture filtering + address ALUs.
    double table_nj = 0.0;    ///< PATU hash table.
    double cache_nj = 0.0;    ///< L1 + LLC.
    double dram_nj = 0.0;     ///< DRAM dynamic.
    double static_nj = 0.0;   ///< GPU leakage + DRAM background.

    double
    total_nj() const
    {
        return shader_nj + filter_nj + table_nj + cache_nj + dram_nj +
            static_nj;
    }
};

/**
 * Compute the energy of one rendered frame from its statistics.
 */
EnergyBreakdown computeEnergy(const FrameStats &stats,
                              const EnergyParams &params = {});

/** Average power in watts for a frame at @p freq_ghz. */
double averagePowerW(const EnergyBreakdown &e, const FrameStats &stats,
                     double freq_ghz = 1.0);

} // namespace pargpu

#endif // PARGPU_POWER_ENERGY_HH
