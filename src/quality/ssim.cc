#include "quality/ssim.hh"

#include <cmath>
#include <limits>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "simd/kernels.hh"

namespace pargpu
{

namespace
{

// Normalized 1-D Gaussian kernel of odd diameter.
std::vector<float>
gaussianKernel(int window, float sigma)
{
    std::vector<float> k(window);
    int half = window / 2;
    float sum = 0.0f;
    for (int i = 0; i < window; ++i) {
        float d = static_cast<float>(i - half);
        k[i] = std::exp(-(d * d) / (2.0f * sigma * sigma));
        sum += k[i];
    }
    for (float &v : k)
        v /= sum;
    return k;
}

/** Rows per parallel chunk: amortizes dispatch without hurting balance. */
constexpr std::size_t kRowChunk = 16;

/**
 * Truncated-kernel weight sum for taps [lo, hi]: the ascending-d
 * accumulation order of the original per-pixel loop, so the value is
 * bit-identical to what that loop computed for every pixel sharing the
 * same truncation.
 */
float
truncatedWsum(const std::vector<float> &kernel, int half, int lo, int hi)
{
    float wsum = 0.0f;
    for (int d = lo; d <= hi; ++d)
        wsum += kernel[d + half];
    return wsum;
}

// Separable Gaussian blur with edge truncation + renormalization. Because
// the 2-D kernel is a separable product, renormalizing each axis
// independently equals renormalizing the truncated 2-D kernel.
//
// Both passes parallelize over output rows: each row is computed by one
// thread with the exact serial per-pixel arithmetic and written to a
// disjoint slice, so the result is bit-identical at any thread count.
// The vertical pass only begins once the horizontal pass has fully
// completed (parallelFor is a barrier).
//
// The inner reductions run through the dispatched ssim_row kernel: the
// truncation bounds are uniform over a horizontal row's interior and
// over an entire vertical row, so each uniform run is one kernel call
// (ascending-tap chain + one divide per pixel — the original loop's
// arithmetic, vectorized across pixels). Horizontal edge pixels keep the
// scalar loop, whose chain the scalar kernel tier mirrors exactly.
void
blur(const std::vector<float> &src, int w, int h,
     const std::vector<float> &kernel, std::vector<float> &tmp,
     std::vector<float> &dst)
{
    const int window = static_cast<int>(kernel.size());
    const int half = window / 2;
    const simd::KernelOps &ops = simd::activeKernels();
    const float full_wsum = truncatedWsum(kernel, half, -half, half);
    // Interior pixels of a horizontal row: full kernel support.
    const int ix0 = std::min(half, w);
    const int ix1 = std::max(ix0, w - half);

    // Horizontal pass.
    ThreadPool::run(static_cast<std::size_t>(h), kRowChunk,
                    [&](std::size_t yy) {
        const int y = static_cast<int>(yy);
        const float *row = &src[static_cast<std::size_t>(y) * w];
        float *out = &tmp[static_cast<std::size_t>(y) * w];
        auto edge = [&](int x) {
            float acc = 0.0f, wsum = 0.0f;
            int lo = x - half < 0 ? -x : -half;
            int hi = x + half >= w ? w - 1 - x : half;
            for (int d = lo; d <= hi; ++d) {
                float kv = kernel[d + half];
                acc += kv * row[x + d];
                wsum += kv;
            }
            out[x] = acc / wsum;
        };
        for (int x = 0; x < ix0; ++x)
            edge(x);
        if (ix1 > ix0)
            ops.ssim_row(row + ix0 - half, out + ix0, ix1 - ix0, 1,
                         kernel.data(), window, full_wsum);
        for (int x = ix1; x < w; ++x)
            edge(x);
    });

    // Vertical pass: the truncation is uniform across a row, so the
    // whole row is one kernel call over the surviving tap slice.
    ThreadPool::run(static_cast<std::size_t>(h), kRowChunk,
                    [&](std::size_t yy) {
        const int y = static_cast<int>(yy);
        float *out = &dst[static_cast<std::size_t>(y) * w];
        int lo = y - half < 0 ? -y : -half;
        int hi = y + half >= h ? h - 1 - y : half;
        const float wsum = lo == -half && hi == half
            ? full_wsum : truncatedWsum(kernel, half, lo, hi);
        ops.ssim_row(&tmp[static_cast<std::size_t>(y + lo) * w], out, w, w,
                     kernel.data() + (lo + half), hi - lo + 1, wsum);
    });
}

} // namespace

std::vector<float>
ssimMap(const Image &x, const Image &y, const SsimParams &params)
{
    if (x.width() != y.width() || x.height() != y.height())
        fatal("ssimMap: image dimensions differ");
    if (params.window < 1 || params.window % 2 == 0)
        fatal("ssimMap: window must be odd and positive");

    const int w = x.width();
    const int h = x.height();
    const std::size_t n = static_cast<std::size_t>(w) * h;

    std::vector<float> lx = x.lumaPlane();
    std::vector<float> ly = y.lumaPlane();

    std::vector<float> xx(n), yy(n), xy(n);
    ThreadPool::run(static_cast<std::size_t>(h), kRowChunk,
                    [&](std::size_t row) {
        const std::size_t lo = row * w, hi = lo + w;
        for (std::size_t i = lo; i < hi; ++i) {
            xx[i] = lx[i] * lx[i];
            yy[i] = ly[i] * ly[i];
            xy[i] = lx[i] * ly[i];
        }
    });

    PARGPU_ASSERT(params.sigma > 0.0f,
                  "Gaussian sigma must be positive: ", params.sigma);
    std::vector<float> kernel = gaussianKernel(params.window, params.sigma);
    std::vector<float> tmp(n);
    std::vector<float> mu_x(n), mu_y(n), m_xx(n), m_yy(n), m_xy(n);
    blur(lx, w, h, kernel, tmp, mu_x);
    blur(ly, w, h, kernel, tmp, mu_y);
    blur(xx, w, h, kernel, tmp, m_xx);
    blur(yy, w, h, kernel, tmp, m_yy);
    blur(xy, w, h, kernel, tmp, m_xy);

    const float c1 = (params.k1 * params.range) * (params.k1 * params.range);
    const float c2 = (params.k2 * params.range) * (params.k2 * params.range);

    std::vector<float> map(n);
    ThreadPool::run(static_cast<std::size_t>(h), kRowChunk,
                    [&](std::size_t row) {
        const std::size_t lo = row * w, hi = lo + w;
        for (std::size_t i = lo; i < hi; ++i) {
            float mx = mu_x[i], my = mu_y[i];
            float var_x = m_xx[i] - mx * mx;
            float var_y = m_yy[i] - my * my;
            float cov = m_xy[i] - mx * my;
            float num = (2.0f * mx * my + c1) * (2.0f * cov + c2);
            float den = (mx * mx + my * my + c1) * (var_x + var_y + c2);
            map[i] = num / den;
        }
    });
    return map;
}

double
mssim(const Image &x, const Image &y, const SsimParams &params)
{
    return mssimOfMap(ssimMap(x, y, params));
}

double
mssimOfMap(const std::vector<float> &map)
{
    if (map.empty())
        return 0.0;
    double sum = 0.0;
    for (float v : map)
        sum += v;
    double m = sum / static_cast<double>(map.size());
    // SSIM of real image pairs is bounded by [-1, 1]; our rendered pairs
    // stay non-negative but anticorrelated windows are legal, so contract
    // the mathematical bound (with one ulp of slack for the summation).
    PARGPU_CHECK_RANGE(m, -1.0 - 1e-6, 1.0 + 1e-6, "MSSIM bound");
    return m;
}

Image
ssimMapImage(const std::vector<float> &map, int width, int height)
{
    if (map.size() != static_cast<std::size_t>(width) * height)
        fatal("ssimMapImage: map size does not match dimensions");
    Image img(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float v = map[static_cast<std::size_t>(y) * width + x];
            float g = v < 0.0f ? 0.0f : v;
            img.at(x, y) = Color4f{g, g, g, 1.0f};
        }
    }
    return img;
}

double
mse(const Image &x, const Image &y)
{
    if (x.width() != y.width() || x.height() != y.height())
        fatal("mse: image dimensions differ");
    std::vector<float> lx = x.lumaPlane();
    std::vector<float> ly = y.lumaPlane();
    double acc = 0.0;
    for (std::size_t i = 0; i < lx.size(); ++i) {
        double d = static_cast<double>(lx[i]) - ly[i];
        acc += d * d;
    }
    return lx.empty() ? 0.0 : acc / static_cast<double>(lx.size());
}

double
psnr(const Image &x, const Image &y)
{
    double m = mse(x, y);
    if (m <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / m);
}

} // namespace pargpu
