/**
 * @file
 * Structural Similarity (SSIM) image-quality metrics — the paper's
 * analysis-layer perception measure (Eq. 1 and 2), following Wang et al.,
 * "Image quality assessment: from error visibility to structural
 * similarity", IEEE TIP 2004.
 *
 * SSIM is computed on the luma plane with an 11x11 Gaussian window
 * (sigma = 1.5) and the standard stability constants C1 = (0.01 L)^2,
 * C2 = (0.03 L)^2 on a dynamic range L = 1.
 */

#ifndef PARGPU_QUALITY_SSIM_HH
#define PARGPU_QUALITY_SSIM_HH

#include <vector>

#include "common/image.hh"

namespace pargpu
{

/** SSIM computation parameters. */
struct SsimParams
{
    int window = 11;      ///< Gaussian window diameter (odd).
    float sigma = 1.5f;   ///< Gaussian standard deviation.
    float k1 = 0.01f;     ///< C1 = (k1 * L)^2.
    float k2 = 0.03f;     ///< C2 = (k2 * L)^2.
    float range = 1.0f;   ///< Dynamic range L of the luma plane.
};

/**
 * Per-pixel SSIM index map between two images of identical dimensions.
 *
 * @param x       Reference image (the paper's AF-disabled X).
 * @param y       Distorted/compared image (the paper's AF-enabled Y).
 * @param params  Window/constant parameters.
 * @return Row-major SSIM values, one per pixel, each in [-1, 1].
 */
std::vector<float> ssimMap(const Image &x, const Image &y,
                           const SsimParams &params = {});

/** Mean SSIM (Eq. 2) between two images. */
double mssim(const Image &x, const Image &y, const SsimParams &params = {});

/** Mean of an SSIM map previously computed with ssimMap(). */
double mssimOfMap(const std::vector<float> &map);

/**
 * Render an SSIM map as a grayscale image (lighter = more similar),
 * the visualization used in the paper's Fig. 8.
 */
Image ssimMapImage(const std::vector<float> &map, int width, int height);

/** Mean squared error between luma planes. */
double mse(const Image &x, const Image &y);

/** Peak signal-to-noise ratio (dB) between luma planes; inf if identical. */
double psnr(const Image &x, const Image &y);

} // namespace pargpu

#endif // PARGPU_QUALITY_SSIM_HH
