#include "texture/mipmap.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/logging.hh"

namespace pargpu
{

std::vector<MipLevel>
buildMipPyramid(int width, int height, std::vector<RGBA8> base,
                TexelStorage storage)
{
    if (!isPowerOfTwo(width) || !isPowerOfTwo(height))
        fatal("texture dimensions must be powers of two");
    if (base.size() != static_cast<std::size_t>(width) * height)
        fatal("texel count does not match texture dimensions");

    std::vector<MipLevel> levels;
    MipLevel l0;
    l0.width = width;
    l0.height = height;
    l0.storage = storage;
    if (storage == TexelStorage::Linear) {
        l0.texels = std::move(base);
    } else {
        // The input raster is row-major by contract; swizzle it into the
        // requested storage order. Pure reordering — values are untouched.
        l0.texels.resize(base.size());
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                l0.at(x, y) = base[static_cast<std::size_t>(y) * width + x];
    }
    levels.push_back(std::move(l0));

    while (levels.back().width > 1 || levels.back().height > 1) {
        const MipLevel &src = levels.back();
        MipLevel dst;
        dst.width = std::max(1, src.width / 2);
        dst.height = std::max(1, src.height / 2);
        dst.storage = storage;
        dst.texels.resize(static_cast<std::size_t>(dst.width) * dst.height);
        for (int y = 0; y < dst.height; ++y) {
            for (int x = 0; x < dst.width; ++x) {
                // Box filter over the (up to) 2x2 source footprint; for
                // non-square pyramids the collapsed axis contributes one
                // sample.
                int sx0 = std::min(2 * x, src.width - 1);
                int sx1 = std::min(2 * x + 1, src.width - 1);
                int sy0 = std::min(2 * y, src.height - 1);
                int sy1 = std::min(2 * y + 1, src.height - 1);
                Color4f acc = unpackRGBA8(src.at(sx0, sy0));
                acc += unpackRGBA8(src.at(sx1, sy0));
                acc += unpackRGBA8(src.at(sx0, sy1));
                acc += unpackRGBA8(src.at(sx1, sy1));
                dst.at(x, y) = packRGBA8(acc * 0.25f);
            }
        }
        levels.push_back(std::move(dst));
    }
    // A power-of-two pyramid always terminates at 1x1 after exactly
    // log2(max(w, h)) + 1 levels; the texel addressing relies on it.
    PARGPU_INVARIANT(levels.back().width == 1 && levels.back().height == 1,
                     "pyramid apex is ", levels.back().width, "x",
                     levels.back().height);
    return levels;
}

} // namespace pargpu
