/**
 * @file
 * Texture maps with full mipmap pyramids and hardware texel addressing.
 *
 * Texels are packed RGBA8 (4 bytes). Each texture occupies a contiguous
 * region of the simulated GPU address space; texelAddr() reproduces the
 * address a hardware texel-address calculator would emit, which is what the
 * texture caches and PATU's texel-address hash table consume.
 */

#ifndef PARGPU_TEXTURE_TEXTURE_HH
#define PARGPU_TEXTURE_TEXTURE_HH

#include <cstdint>
#include <vector>

#include "common/color.hh"
#include "common/types.hh"
#include "texture/compress.hh"

namespace pargpu
{

/** Texture coordinate wrap mode. */
enum class WrapMode
{
    Repeat,      ///< Fractional repeat (floors/walls tiling).
    ClampToEdge, ///< Clamp texel coordinates to the level border.
};

/** In-memory texel layout within a mip level. */
enum class TexelLayout
{
    Linear,   ///< Row-major.
    Tiled4x4, ///< 4x4 texel tiles, row-major tiles (GPU-typical locality).
};

/** On-memory storage format of the texture data. */
enum class StorageFormat
{
    RGBA8, ///< Uncompressed 4 bytes/texel.
    BC1,   ///< Block-compressed, 8 bytes per 4x4 block (8:1).
};

/** One mip level: a levelWidth x levelHeight raster of RGBA8 texels. */
struct MipLevel
{
    int width = 0;
    int height = 0;
    std::vector<RGBA8> texels; ///< Row-major logical storage.

    const RGBA8 &
    at(int x, int y) const
    {
        return texels[static_cast<std::size_t>(y) * width + x];
    }

    RGBA8 &
    at(int x, int y)
    {
        return texels[static_cast<std::size_t>(y) * width + x];
    }
};

/**
 * A 2D mipmapped texture bound into the simulated GPU address space.
 *
 * The pyramid always extends down to 1x1. Level 0 dimensions must be powers
 * of two (as required by the tiling-friendly address math).
 */
class TextureMap
{
  public:
    /**
     * Build a texture from level-0 texels; generates the mip pyramid with a
     * 2x2 box filter.
     *
     * @param width   Level-0 width (power of two).
     * @param height  Level-0 height (power of two).
     * @param texels  Row-major level-0 texels (width * height entries).
     * @param wrap    Coordinate wrap mode.
     * @param layout  Memory layout for texel addresses.
     */
    TextureMap(int width, int height, std::vector<RGBA8> texels,
               WrapMode wrap = WrapMode::Repeat,
               TexelLayout layout = TexelLayout::Tiled4x4,
               StorageFormat format = StorageFormat::RGBA8);

    int width() const { return levels_.front().width; }
    int height() const { return levels_.front().height; }
    int numLevels() const { return static_cast<int>(levels_.size()); }
    WrapMode wrap() const { return wrap_; }
    TexelLayout layout() const { return layout_; }
    StorageFormat format() const { return format_; }

    const MipLevel &level(int l) const { return levels_[l]; }

    /** Total bytes the texture occupies (all levels). */
    Bytes sizeBytes() const { return sizeBytes_; }

    /** Base address in the simulated GPU address space. */
    Addr baseAddr() const { return baseAddr_; }

    /** Bind the texture at @p base in the GPU address space. */
    void setBaseAddr(Addr base) { baseAddr_ = base; }

    /**
     * Wrap a texel coordinate into [0, extent) per the wrap mode.
     * @param c       Possibly out-of-range texel coordinate.
     * @param extent  Level width or height.
     */
    static int wrapCoord(int c, int extent, WrapMode mode);

    /**
     * Address of texel (x, y) at mip level @p level, after wrapping.
     * Reproduces the hardware address calculation including tiling.
     */
    Addr texelAddr(int level, int x, int y) const;

    /** Fetch a texel color (functional path) with wrapping applied. */
    Color4f fetchTexel(int level, int x, int y) const;

  private:
    std::vector<MipLevel> levels_;
    std::vector<Bytes> levelOffset_; ///< Byte offset of each level.
    /** Compressed blocks per level (BC1 format only). */
    std::vector<std::vector<Bc1Block>> bc1_levels_;
    WrapMode wrap_;
    TexelLayout layout_;
    StorageFormat format_;
    Addr baseAddr_ = 0;
    Bytes sizeBytes_ = 0;
};

} // namespace pargpu

#endif // PARGPU_TEXTURE_TEXTURE_HH
