/**
 * @file
 * Texture maps with full mipmap pyramids and hardware texel addressing.
 *
 * Texels are packed RGBA8 (4 bytes). Each texture occupies a contiguous
 * region of the simulated GPU address space; texelAddr() reproduces the
 * address a hardware texel-address calculator would emit, which is what the
 * texture caches and PATU's texel-address hash table consume.
 *
 * Two layout notions are deliberately separate:
 *  - TexelLayout is the *simulated* address layout: it decides which
 *    addresses the hardware would emit and therefore shapes cache behavior
 *    and PATU's hash-table contents. It is part of the modeled machine.
 *  - TexelStorage is the *host-side* storage order of MipLevel::texels: it
 *    only affects how fast this process can fetch texel colors. Morton
 *    storage keeps a 4x4 tile (one 64-byte simulated cache line) contiguous
 *    in host memory so a 2x2 bilinear footprint lands in one or two host
 *    cache lines. Rendered output is bit-identical across storage modes.
 */

#ifndef PARGPU_TEXTURE_TEXTURE_HH
#define PARGPU_TEXTURE_TEXTURE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/color.hh"
#include "common/contract.hh"
#include "common/types.hh"
#include "texture/compress.hh"

namespace pargpu
{

/** Texture coordinate wrap mode. */
enum class WrapMode
{
    Repeat,      ///< Fractional repeat (floors/walls tiling).
    ClampToEdge, ///< Clamp texel coordinates to the level border.
};

/** Simulated texel-address layout within a mip level. */
enum class TexelLayout
{
    Linear,   ///< Row-major.
    Tiled4x4, ///< 4x4 texel tiles, row-major tiles (GPU-typical locality).
};

/** Host-side storage order of a mip level's texel array. */
enum class TexelStorage
{
    Linear, ///< Row-major (the seed layout).
    Morton, ///< 4x4 tiles, Z-order within each tile, tiles row-major.
};

/** On-memory storage format of the texture data. */
enum class StorageFormat
{
    RGBA8, ///< Uncompressed 4 bytes/texel.
    BC1,   ///< Block-compressed, 8 bytes per 4x4 block (8:1).
};

/**
 * Z-order of texel (x, y) within a 4x4 tile: bits of x and y interleaved
 * x0 y0 x1 y1 (x least significant). Indexed by (y << 2) | x.
 */
inline constexpr std::uint8_t kMortonInTile4x4[16] = {
    0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15,
};

/** One mip level: a levelWidth x levelHeight raster of RGBA8 texels. */
struct MipLevel
{
    int width = 0;
    int height = 0;
    std::vector<RGBA8> texels; ///< Order given by storage.
    TexelStorage storage = TexelStorage::Linear;

    /** Host array index of texel (x, y) under the storage order. */
    std::size_t
    index(int x, int y) const
    {
        if (storage == TexelStorage::Morton && width >= 4 && height >= 4) {
            // Levels narrower than a tile in either dimension fall back to
            // row-major (a tile would not be full).
            std::size_t tile = static_cast<std::size_t>(y >> 2) *
                    static_cast<std::size_t>(width >> 2) +
                static_cast<std::size_t>(x >> 2);
            return tile * 16 + kMortonInTile4x4[((y & 3) << 2) | (x & 3)];
        }
        return static_cast<std::size_t>(y) * width + x;
    }

    const RGBA8 &
    at(int x, int y) const
    {
        return texels[index(x, y)];
    }

    RGBA8 &
    at(int x, int y)
    {
        return texels[index(x, y)];
    }
};

/**
 * A 2D mipmapped texture bound into the simulated GPU address space.
 *
 * The pyramid always extends down to 1x1. Level 0 dimensions must be powers
 * of two (as required by the tiling-friendly address math).
 */
class TextureMap
{
  public:
    /**
     * Build a texture from level-0 texels; generates the mip pyramid with a
     * 2x2 box filter.
     *
     * @param width   Level-0 width (power of two).
     * @param height  Level-0 height (power of two).
     * @param texels  Row-major level-0 texels (width * height entries).
     * @param wrap    Coordinate wrap mode.
     * @param layout  Simulated memory layout for texel addresses.
     * @param format  Simulated storage format (BC1 pins host storage to
     *                Linear: the raster is only kept as compression input).
     * @param storage Host-side storage order; defaults to the process-wide
     *                defaultStorage(). Does not affect rendered output.
     */
    TextureMap(int width, int height, std::vector<RGBA8> texels,
               WrapMode wrap = WrapMode::Repeat,
               TexelLayout layout = TexelLayout::Tiled4x4,
               StorageFormat format = StorageFormat::RGBA8,
               std::optional<TexelStorage> storage = std::nullopt);

    int width() const { return levels_.front().width; }
    int height() const { return levels_.front().height; }
    int numLevels() const { return static_cast<int>(levels_.size()); }
    WrapMode wrap() const { return wrap_; }
    TexelLayout layout() const { return layout_; }
    StorageFormat format() const { return format_; }
    TexelStorage storage() const { return storage_; }

    const MipLevel &level(int l) const { return levels_[l]; }

    /** Total bytes the texture occupies (all levels). */
    Bytes sizeBytes() const { return sizeBytes_; }

    /** Base address in the simulated GPU address space. */
    Addr baseAddr() const { return baseAddr_; }

    /** Bind the texture at @p base in the GPU address space. */
    void setBaseAddr(Addr base) { baseAddr_ = base; }

    /**
     * Process-wide host storage order for new textures. Reads
     * PARGPU_TEXEL_STORAGE (linear|morton) on first use; defaults to
     * Morton. setDefaultStorage() is not thread-safe: call it before
     * building scenes.
     */
    static TexelStorage defaultStorage();
    static void setDefaultStorage(TexelStorage s);

    /**
     * Wrap a texel coordinate into [0, extent) per the wrap mode.
     * @param c       Possibly out-of-range texel coordinate.
     * @param extent  Level width or height (power of two).
     */
    static int wrapCoord(int c, int extent, WrapMode mode);

    /**
     * Address of texel (x, y) at mip level @p level, after wrapping.
     * Reproduces the hardware address calculation including tiling.
     */
    Addr texelAddr(int level, int x, int y) const;

    /** Fetch a texel color (functional path) with wrapping applied. */
    Color4f fetchTexel(int level, int x, int y) const;

    /**
     * Fetch the 2x2 bilinear footprint with corner (x0, y0) at @p level:
     * colors and simulated addresses of (x0, y0), (x0+1, y0), (x0, y0+1),
     * (x0+1, y0+1) — the slot order trilinear filtering consumes. Wraps
     * each coordinate once instead of once per texel; colors and addresses
     * are exactly those of fetchTexel()/texelAddr().
     */
    void fetchFootprint(int level, int x0, int y0, Color4f color[4],
                        Addr addr[4]) const;

  private:
    /** Precomputed per-level address math (all extents are powers of two). */
    struct LevelGeom
    {
        int wmask = 0;              ///< width - 1 (wrap mask / clamp max).
        int hmask = 0;              ///< height - 1.
        std::uint32_t row_shift = 0;///< log2(width), linear addressing.
        std::uint32_t tpr_shift = 0;///< log2(width / 4), tiled addressing.
        std::uint32_t blk_shift = 0;///< log2(BC1 blocks per row).
        bool tiled = false;         ///< Tiled4x4 applies at this level.
        Bytes offset = 0;           ///< Byte offset of the level.
    };

    /** fetchFootprint() general case: wraps, clamps, BC1, narrow levels. */
    void fetchFootprintSlow(const LevelGeom &g, int level, const int wx[2],
                            const int wy[2], Color4f color[4],
                            Addr addr[4]) const;

    /** Wrap a coordinate with the precomputed mask (Repeat) or clamp. */
    int
    wrapFast(int c, int mask) const
    {
        if (wrap_ == WrapMode::Repeat)
            return c & mask; // Power-of-two extent: equals mod semantics.
        return c < 0 ? 0 : (c > mask ? mask : c);
    }

    /** Level-relative byte offset of wrapped texel (wx, wy). */
    Bytes
    texelOffset(const LevelGeom &g, int wx, int wy) const
    {
        if (format_ == StorageFormat::BC1) {
            // Compressed storage is addressed at block granularity: all 16
            // texels of a 4x4 block live in one 8-byte record.
            Bytes block = (static_cast<Bytes>(wy >> 2) << g.blk_shift) +
                static_cast<Bytes>(wx >> 2);
            return g.offset + block * Bc1Block::kBytes;
        }
        // 4x4 texel tiles, tiles stored row-major; texels within a tile
        // stored row-major. Matches the block layouts real texture units
        // use to keep a bilinear footprint in one or two cache lines.
        Bytes linear = g.tiled
            ? (((static_cast<Bytes>(wy >> 2) << g.tpr_shift) +
                static_cast<Bytes>(wx >> 2))
               << 4) +
                static_cast<Bytes>(((wy & 3) << 2) + (wx & 3))
            : (static_cast<Bytes>(wy) << g.row_shift) +
                static_cast<Bytes>(wx);
        return g.offset + linear * RGBA8::kBytes;
    }

    /** Color of wrapped texel (wx, wy) — fetchTexel after wrapping. */
    Color4f texelColor(int level, const MipLevel &lv, int wx, int wy) const;

    std::vector<MipLevel> levels_;
    std::vector<LevelGeom> geom_;    ///< Per-level address precomputation.
    std::vector<Bytes> levelOffset_; ///< Byte offset of each level.
    /** Compressed blocks per level (BC1 format only). */
    std::vector<std::vector<Bc1Block>> bc1_levels_;
    WrapMode wrap_;
    TexelLayout layout_;
    StorageFormat format_;
    TexelStorage storage_;
    Addr baseAddr_ = 0;
    Bytes sizeBytes_ = 0;
};

inline void
TextureMap::fetchFootprint(int level, int x0, int y0, Color4f color[4],
                           Addr addr[4]) const
{
    PARGPU_CHECK_RANGE(level, 0, numLevels() - 1, "fetchFootprint level");
    const LevelGeom &g = geom_[static_cast<std::size_t>(level)];
    const MipLevel &lv = levels_[static_cast<std::size_t>(level)];
    // Wrap the two columns and two rows once; the four texels are every
    // (column, row) combination in the trilinear slot order.
    const int wx[2] = {wrapFast(x0, g.wmask), wrapFast(x0 + 1, g.wmask)};
    const int wy[2] = {wrapFast(y0, g.hmask), wrapFast(y0 + 1, g.hmask)};
    // Fast path, inline so the SoA gather loop can fold it in: a footprint
    // that neither wraps nor clamps and stays inside one 4x4 Morton tile
    // ((x0 & 3) < 3 in both axes — 9/16 of corner positions). All four
    // host texels then live in the corner's tile at Z-indices read from
    // kMortonInTile4x4, so one tile-base computation serves all four
    // colors; the simulated addresses are the corner's plus fixed layout
    // deltas (the Tiled4x4 sim layout is row-major within a tile, so
    // (x+1, y) is +1 texel and (x, y+1) is +4). Colors and addresses are
    // bit-identical to the general path.
    if (format_ == StorageFormat::RGBA8 &&
        lv.storage == TexelStorage::Morton && lv.width >= 4 &&
        lv.height >= 4 && (wx[0] & 3) < 3 && (wy[0] & 3) < 3 &&
        wx[1] == wx[0] + 1 && wy[1] == wy[0] + 1) {
        const std::size_t tile_base =
            (static_cast<std::size_t>(wy[0] >> 2) *
                 static_cast<std::size_t>(lv.width >> 2) +
             static_cast<std::size_t>(wx[0] >> 2)) *
            16;
        const RGBA8 *tile = &lv.texels[tile_base];
        const int sub = ((wy[0] & 3) << 2) | (wx[0] & 3);
        color[0] = unpackRGBA8(tile[kMortonInTile4x4[sub]]);
        color[1] = unpackRGBA8(tile[kMortonInTile4x4[sub + 1]]);
        color[2] = unpackRGBA8(tile[kMortonInTile4x4[sub + 4]]);
        color[3] = unpackRGBA8(tile[kMortonInTile4x4[sub + 5]]);
        const Addr a0 = baseAddr_ + texelOffset(g, wx[0], wy[0]);
        if (g.tiled) {
            addr[0] = a0;
            addr[1] = a0 + RGBA8::kBytes;
            addr[2] = a0 + 4 * RGBA8::kBytes;
            addr[3] = a0 + 5 * RGBA8::kBytes;
        } else {
            const Bytes row = static_cast<Bytes>(RGBA8::kBytes)
                << g.row_shift;
            addr[0] = a0;
            addr[1] = a0 + RGBA8::kBytes;
            addr[2] = a0 + row;
            addr[3] = a0 + row + RGBA8::kBytes;
        }
        return;
    }
    fetchFootprintSlow(g, level, wx, wy, color, addr);
}

} // namespace pargpu

#endif // PARGPU_TEXTURE_TEXTURE_HH
