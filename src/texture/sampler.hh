/**
 * @file
 * Hardware-style texture sampling: bilinear, trilinear and anisotropic
 * filtering with explicit texel footprints.
 *
 * This module reproduces the filtering dataflow of Section IV-A of the
 * paper. A trilinear sample touches exactly 8 texels (a 2x2 bilinear
 * footprint at each of two adjacent mip levels); an anisotropic lookup takes
 * N trilinear samples spaced along the major axis of the projected pixel
 * footprint (Eq. 3), where N is the ratio of the major to the minor axis,
 * clamped to the texture unit's maximum anisotropy (16 in the baseline).
 *
 * Every sample carries the texel addresses the hardware would fetch, so the
 * cache model and PATU's texel-address hash table see the exact stream a
 * real texture unit would generate.
 */

#ifndef PARGPU_TEXTURE_SAMPLER_HH
#define PARGPU_TEXTURE_SAMPLER_HH

#include <array>
#include <vector>

#include "common/color.hh"
#include "common/types.hh"
#include "common/vec.hh"
#include "texture/texture.hh"

namespace pargpu
{

/** User-selected filtering method for a draw call. */
enum class FilterMode
{
    Bilinear,    ///< Single-level 2x2 filter.
    Trilinear,   ///< Two-level 2x2 filter (TF in the paper).
    Anisotropic, ///< N trilinear samples along the major axis (AF).
};

/** One texel the hardware fetches: location, blend weight and address. */
struct TexelRef
{
    int level = 0;      ///< Mip level.
    int x = 0;          ///< Texel column (pre-wrap).
    int y = 0;          ///< Texel row (pre-wrap).
    float weight = 0.0f;///< Contribution to the filtered color.
    Addr addr = 0;      ///< Simulated memory address (post-wrap).
};

/** A trilinear sample: 8 texels across two adjacent mip levels. */
struct TrilinearSample
{
    Vec2 uv;            ///< Normalized sample center.
    int level0 = 0;     ///< Finer level.
    int level1 = 0;     ///< Coarser level (== level0 when clamped).
    float frac = 0.0f;  ///< Blend toward level1.
    std::array<TexelRef, 8> texels; ///< [0..3] level0, [4..7] level1.
    Color4f color;      ///< Filtered result of this sample.
};

/**
 * Anisotropy parameters derived from screen-space texture-coordinate
 * derivatives — available right after Texel Generation in the pipeline
 * (Fig. 2), before any texel is fetched.
 */
struct AnisotropyInfo
{
    float pMax = 1.0f;  ///< Major-axis footprint length (texels).
    float pMin = 1.0f;  ///< Minor-axis footprint length (texels).
    /**
     * Anisotropy degree N = clamp(ceil(pMax / pMin), 1, maxAniso) — the
     * paper's sample size, which drives the AF-SSIM(N) prediction.
     */
    int anisoDegree = 1;
    /**
     * Trilinear samples the filtering pipelines actually issue: the
     * anisotropy degree rounded up to a power of two (hardware processes
     * 2/4/8/16-sample groups).
     */
    int sampleSize = 1;
    float lodTF = 0.0f; ///< Isotropic LOD: log2(pMax) (square diagonal).
    float lodAF = 0.0f; ///< Anisotropic LOD: log2(pMin) (minor axis).
    Vec2 majorUv;       ///< Major-axis step in normalized uv space.
};

/** The complete result of filtering one pixel. */
struct FilterResult
{
    Color4f color;      ///< Final filtered texture color.
    std::vector<TrilinearSample> samples; ///< N samples (1 for TF).
};

/**
 * Sampler bound to a single TextureMap. Stateless between lookups; all
 * methods are const.
 */
class TextureSampler
{
  public:
    /** Default maximum anisotropy of the baseline texture unit. */
    static constexpr int kMaxAniso = 16;

    explicit TextureSampler(const TextureMap &tex) : tex_(&tex) {}

    const TextureMap &texture() const { return *tex_; }

    /**
     * Derive anisotropy parameters from normalized-uv screen derivatives.
     *
     * @param duvdx     d(u,v)/dx across one pixel.
     * @param duvdy     d(u,v)/dy across one pixel.
     * @param max_aniso Texture-unit anisotropy cap (>= 1).
     */
    AnisotropyInfo computeAnisotropy(const Vec2 &duvdx, const Vec2 &duvdy,
                                     int max_aniso = kMaxAniso) const;

    /** Single bilinear sample at @p uv on mip level @p level. */
    Color4f bilinear(const Vec2 &uv, int level) const;

    /**
     * One trilinear sample at @p uv with level of detail @p lod.
     * Produces the full 8-texel footprint.
     */
    TrilinearSample trilinear(const Vec2 &uv, float lod) const;

    /**
     * Trilinear filter of a pixel (the paper's TF): one trilinear sample at
     * the pixel center using the given LOD.
     */
    FilterResult filterTrilinear(const Vec2 &uv, float lod) const;

    /**
     * Anisotropic filter of a pixel (the paper's AF): @p info.sampleSize
     * trilinear samples spaced along the major axis at lodAF, averaged with
     * equal weights (Eq. 3).
     */
    FilterResult filterAnisotropic(const Vec2 &uv,
                                   const AnisotropyInfo &info) const;

  private:
    const TextureMap *tex_;
};

} // namespace pargpu

#endif // PARGPU_TEXTURE_SAMPLER_HH
