/**
 * @file
 * Hardware-style texture sampling: bilinear, trilinear and anisotropic
 * filtering with explicit texel footprints.
 *
 * This module reproduces the filtering dataflow of Section IV-A of the
 * paper. A trilinear sample touches exactly 8 texels (a 2x2 bilinear
 * footprint at each of two adjacent mip levels); an anisotropic lookup takes
 * N trilinear samples spaced along the major axis of the projected pixel
 * footprint (Eq. 3), where N is the ratio of the major to the minor axis,
 * clamped to the texture unit's maximum anisotropy (16 in the baseline).
 *
 * Every sample carries the texel addresses the hardware would fetch, so the
 * cache model and PATU's texel-address hash table see the exact stream a
 * real texture unit would generate.
 */

#ifndef PARGPU_TEXTURE_SAMPLER_HH
#define PARGPU_TEXTURE_SAMPLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/color.hh"
#include "common/types.hh"
#include "common/vec.hh"
#include "texture/texture.hh"

namespace pargpu
{

/** User-selected filtering method for a draw call. */
enum class FilterMode
{
    Bilinear,    ///< Single-level 2x2 filter.
    Trilinear,   ///< Two-level 2x2 filter (TF in the paper).
    Anisotropic, ///< N trilinear samples along the major axis (AF).
};

/** One texel the hardware fetches: location, blend weight and address. */
struct TexelRef
{
    int level = 0;      ///< Mip level.
    int x = 0;          ///< Texel column (pre-wrap).
    int y = 0;          ///< Texel row (pre-wrap).
    float weight = 0.0f;///< Contribution to the filtered color.
    Addr addr = 0;      ///< Simulated memory address (post-wrap).
};

/** A trilinear sample: 8 texels across two adjacent mip levels. */
struct TrilinearSample
{
    Vec2 uv;            ///< Normalized sample center.
    int level0 = 0;     ///< Finer level.
    int level1 = 0;     ///< Coarser level (== level0 when clamped).
    float frac = 0.0f;  ///< Blend toward level1.
    std::array<TexelRef, 8> texels; ///< [0..3] level0, [4..7] level1.
    Color4f color;      ///< Filtered result of this sample.
};

/**
 * Anisotropy parameters derived from screen-space texture-coordinate
 * derivatives — available right after Texel Generation in the pipeline
 * (Fig. 2), before any texel is fetched.
 */
struct AnisotropyInfo
{
    float pMax = 1.0f;  ///< Major-axis footprint length (texels).
    float pMin = 1.0f;  ///< Minor-axis footprint length (texels).
    /**
     * Anisotropy degree N = clamp(ceil(pMax / pMin), 1, maxAniso) — the
     * paper's sample size, which drives the AF-SSIM(N) prediction.
     */
    int anisoDegree = 1;
    /**
     * Trilinear samples the filtering pipelines actually issue: the
     * anisotropy degree rounded up to a power of two (hardware processes
     * 2/4/8/16-sample groups).
     */
    int sampleSize = 1;
    float lodTF = 0.0f; ///< Isotropic LOD: log2(pMax) (square diagonal).
    float lodAF = 0.0f; ///< Anisotropic LOD: log2(pMin) (minor axis).
    Vec2 majorUv;       ///< Major-axis step in normalized uv space.
};

/** The complete result of filtering one pixel. */
struct FilterResult
{
    Color4f color;      ///< Final filtered texture color.
    std::vector<TrilinearSample> samples; ///< N samples (1 for TF).
};

/** Mip levels and blend fraction selected for a LOD value. */
struct LodSelect
{
    int level0 = 0;    ///< Finer level.
    int level1 = 0;    ///< Coarser level (== level0 when clamped).
    float frac = 0.0f; ///< Blend toward level1.
};

/**
 * Per-quad cache of 2x2 bilinear footprints keyed by (level, x0, y0).
 *
 * Successive AF samples of a pixel — and the pixels of a quad — land on
 * overlapping footprints (the same redundancy PATU's Txds table measures,
 * Fig. 12). The memo stores each footprint's four texel colors and
 * simulated addresses so shared footprints are fetched from the texture
 * raster once per quad. Hits return the exact values a fresh fetch would
 * produce, so filtering output is bit-identical; only host work is saved.
 * Divergent footprints (different level or corner) never match: the full
 * key is compared, not just the hash.
 *
 * Direct-mapped; a colliding footprint simply evicts (correctness never
 * depends on residency). reset() is called per quad and also clears the
 * hit/lookup counters so the texture unit can drain them into its stats.
 */
class FootprintMemo
{
  public:
    static constexpr int kSlots = 128; ///< >= footprints of a 16x AF quad.

    /**
     * One cached footprint: key plus the four texel colors/addresses.
     * Cache-line aligned: the 112-byte payload would otherwise straddle
     * up to three lines at varying offsets; at 128 bytes each probe
     * touches the key's line and a hit reads exactly one more.
     */
    struct alignas(64) Entry
    {
        std::uint32_t gen = 0; ///< Valid iff equal to the memo's stamp.
        int level = 0;
        int x0 = 0;
        int y0 = 0;
        Color4f color[4];
        Addr addr[4];
    };

    /** Forget all entries and zero the counters (start of a quad). */
    void
    reset()
    {
        // Bumping the generation stamp invalidates all slots in O(1)
        // instead of walking ~14 KB of entries; on the (rare) wraparound
        // the stamps are cleared for real.
        if (++gen_ == 0) {
            for (Entry &e : slots_)
                e.gen = 0;
            gen_ = 1;
        }
        lookups_ = 0;
        hits_ = 0;
    }

    /**
     * By-reference lookup: counts the probe and, on a hit, the hit, and
     * returns the resident entry — valid until the next insert() or
     * reset(). Returns nullptr on a miss. Avoids the 2x2 copies of
     * lookup()/store() for callers that read the footprint in place.
     */
    const Entry *
    find(int level, int x0, int y0)
    {
        ++lookups_;
        const Entry &e = slots_[slotOf(level, x0, y0)];
        if (e.gen != gen_ || e.level != level || e.x0 != x0 || e.y0 != y0)
            return nullptr;
        ++hits_;
        return &e;
    }

    /**
     * Claim the slot for a missed footprint (evicting any collision) and
     * return it with the key set; the caller fills color/addr in place.
     */
    Entry &
    insert(int level, int x0, int y0)
    {
        Entry &e = slots_[slotOf(level, x0, y0)];
        e.gen = gen_;
        e.level = level;
        e.x0 = x0;
        e.y0 = y0;
        return e;
    }

    /**
     * Combined find()+insert(): one hash probe either way. Sets @p hit
     * and counts the probe (and the hit) exactly as find() followed by
     * insert() on a miss would; on a miss the returned entry has the key
     * set and the caller fills color/addr in place.
     */
    Entry &
    acquire(int level, int x0, int y0, bool &hit)
    {
        ++lookups_;
        Entry &e = slots_[slotOf(level, x0, y0)];
        hit = e.gen == gen_ && e.level == level && e.x0 == x0 &&
            e.y0 == y0;
        if (hit) {
            ++hits_;
        } else {
            e.gen = gen_;
            e.level = level;
            e.x0 = x0;
            e.y0 = y0;
        }
        return e;
    }

    /**
     * Look the footprint up; on a hit copy the stored colors/addresses
     * into @p color / @p addr and return true.
     */
    bool
    lookup(int level, int x0, int y0, Color4f color[4], Addr addr[4])
    {
        const Entry *e = find(level, x0, y0);
        if (e == nullptr)
            return false;
        for (int i = 0; i < 4; ++i) {
            color[i] = e->color[i];
            addr[i] = e->addr[i];
        }
        return true;
    }

    /** Store a freshly fetched footprint (evicts any slot collision). */
    void
    store(int level, int x0, int y0, const Color4f color[4],
          const Addr addr[4])
    {
        Entry &e = insert(level, x0, y0);
        for (int i = 0; i < 4; ++i) {
            e.color[i] = color[i];
            e.addr[i] = addr[i];
        }
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

  private:
    static std::size_t
    slotOf(int level, int x0, int y0)
    {
        std::uint32_t h = static_cast<std::uint32_t>(x0) * 0x9E3779B1u ^
            static_cast<std::uint32_t>(y0) * 0x85EBCA77u ^
            static_cast<std::uint32_t>(level) * 0xC2B2AE3Du;
        return h & (kSlots - 1);
    }

    Entry slots_[kSlots];
    std::uint32_t gen_ = 1; ///< Current generation stamp (0 = never valid).
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

/**
 * Sampler bound to a single TextureMap. Stateless between lookups; all
 * methods are const.
 */
class TextureSampler
{
  public:
    /** Default maximum anisotropy of the baseline texture unit. */
    static constexpr int kMaxAniso = 16;

    explicit TextureSampler(const TextureMap &tex) : tex_(&tex) {}

    const TextureMap &texture() const { return *tex_; }

    /**
     * Derive anisotropy parameters from normalized-uv screen derivatives.
     *
     * @param duvdx     d(u,v)/dx across one pixel.
     * @param duvdy     d(u,v)/dy across one pixel.
     * @param max_aniso Texture-unit anisotropy cap (>= 1).
     */
    AnisotropyInfo computeAnisotropy(const Vec2 &duvdx, const Vec2 &duvdy,
                                     int max_aniso = kMaxAniso) const;

    /** Single bilinear sample at @p uv on mip level @p level. */
    Color4f bilinear(const Vec2 &uv, int level) const;

    /**
     * Select the mip levels and blend fraction for @p lod, clamped to the
     * bound texture's chain. Shared by every trilinear sample at the same
     * LOD, so callers filtering a whole quad compute it once.
     */
    LodSelect selectLod(float lod) const;

    /**
     * One trilinear sample at @p uv with level of detail @p lod.
     * Produces the full 8-texel footprint.
     */
    TrilinearSample trilinear(const Vec2 &uv, float lod) const;

    /**
     * Fill @p out with the trilinear sample at @p uv under a precomputed
     * level selection, fetching footprints through @p memo when provided.
     * Bit-identical to trilinear(uv, lod) for sel == selectLod(lod).
     */
    void trilinearInto(const Vec2 &uv, const LodSelect &sel,
                       TrilinearSample &out, FootprintMemo *memo) const;

    /**
     * Trilinear filter of a pixel (the paper's TF): one trilinear sample at
     * the pixel center using the given LOD.
     */
    FilterResult filterTrilinear(const Vec2 &uv, float lod) const;

    /**
     * Allocation-free trilinear filter: writes the single sample into
     * @p out and returns its color. Equals filterTrilinear().
     */
    Color4f filterTrilinearInto(const Vec2 &uv, float lod,
                                TrilinearSample &out,
                                FootprintMemo *memo) const;

    /**
     * Anisotropic filter of a pixel (the paper's AF): @p info.sampleSize
     * trilinear samples spaced along the major axis at lodAF, averaged with
     * equal weights (Eq. 3).
     */
    FilterResult filterAnisotropic(const Vec2 &uv,
                                   const AnisotropyInfo &info) const;

    /**
     * Allocation-free anisotropic filter: writes info.sampleSize samples
     * into @p out (caller-provided storage of at least that many slots)
     * and returns the averaged color. Equals filterAnisotropic().
     */
    Color4f filterAnisotropicInto(const Vec2 &uv,
                                  const AnisotropyInfo &info,
                                  TrilinearSample *out,
                                  FootprintMemo *memo) const;

  private:
    const TextureMap *tex_;
};

} // namespace pargpu

#endif // PARGPU_TEXTURE_SAMPLER_HH
