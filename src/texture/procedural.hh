/**
 * @file
 * Procedural texture generators.
 *
 * The paper renders commercial game traces whose texture assets we cannot
 * redistribute; these generators produce deterministic stand-ins with the
 * properties that matter for the experiments — high-frequency detail (so AF
 * vs TF differences are visible in SSIM), a range of contrast levels, and
 * distinct per-game looks (see DESIGN.md substitution table).
 */

#ifndef PARGPU_TEXTURE_PROCEDURAL_HH
#define PARGPU_TEXTURE_PROCEDURAL_HH

#include <cstdint>
#include <vector>

#include "common/color.hh"

namespace pargpu
{

/** Families of procedural texture content. */
enum class TextureKind
{
    Checker,  ///< Two-tone checkerboard (sharp edges, worst-case aliasing).
    Bricks,   ///< Brick courses with mortar lines.
    Noise,    ///< Fractal value noise (natural surfaces: rock, ground).
    Grass,    ///< Green-band noise with blade streaks.
    Marble,   ///< Sine-warped noise veins.
    Wood,     ///< Concentric ring pattern.
    Stripes,  ///< Fine directional stripes (racing-track style).
    Panels,   ///< Rectangular tech panels with seams (sci-fi interiors).
};

/**
 * Generate a square procedural texture's level-0 texels.
 *
 * @param kind  Content family.
 * @param size  Width == height (power of two).
 * @param seed  Deterministic variation seed.
 * @return Row-major RGBA8 texels, size * size entries.
 */
std::vector<RGBA8> generateTexture(TextureKind kind, int size,
                                   std::uint32_t seed);

/**
 * Fractal value noise in [0, 1] at normalized coordinates (u, v), with
 * @p octaves octaves of lattice value noise.
 */
float fractalNoise(float u, float v, int octaves, std::uint32_t seed);

} // namespace pargpu

#endif // PARGPU_TEXTURE_PROCEDURAL_HH
