/**
 * @file
 * Mipmap pyramid construction.
 */

#ifndef PARGPU_TEXTURE_MIPMAP_HH
#define PARGPU_TEXTURE_MIPMAP_HH

#include <vector>

#include "texture/texture.hh"

namespace pargpu
{

/**
 * Build a full mip pyramid from a level-0 raster using a 2x2 box filter,
 * halving each dimension (minimum 1) until reaching 1x1.
 *
 * @param width   Level-0 width (power of two).
 * @param height  Level-0 height (power of two).
 * @param base    Row-major level-0 texels.
 * @param storage Host storage order of the produced levels; @p base is
 *                reordered for level 0 when it differs. The texel values
 *                are identical either way.
 * @return Levels from 0 (full resolution) to log2(max(w, h)) (1x1).
 */
std::vector<MipLevel>
buildMipPyramid(int width, int height, std::vector<RGBA8> base,
                TexelStorage storage = TexelStorage::Linear);

/** True if @p v is a positive power of two. */
constexpr bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace pargpu

#endif // PARGPU_TEXTURE_MIPMAP_HH
