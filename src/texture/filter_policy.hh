/**
 * @file
 * The FilterPolicy family: pluggable strategies for approximating texture
 * filtering in the sampling path (docs/FILTERING.md).
 *
 * PATU's AF->TF downgrade (predictor + threshold) is one point in a wider
 * design space mapped by the related work: Stochastic Texture Filtering
 * (Fajardo et al.) trades texel fetches for noise, and Filtering After
 * Shading (Pharr et al.) moves the filter across the shading boundary.
 * Each policy here is a drop-in replacement for the texture unit's
 * anisotropic filtering loop, selected by RunConfig::filter_policy
 * (--run-filter-policy / PARGPU_FILTER_POLICY) and reported through the
 * same texunit.* counters so quality-vs-fetches comparisons are apples to
 * apples (bench/fig_policies, pargpu_report.py --compare-policies).
 *
 * Stochastic policies draw every random variate from the counter-based
 * hash discipline enforced by pargpu_analyze: pixel coordinates, sample
 * index and a per-frame camera-derived seed, never wall clocks, thread
 * ids or addresses — so results are bit-identical across thread counts
 * and tile/frame-parallel execution modes.
 */

#ifndef PARGPU_TEXTURE_FILTER_POLICY_HH
#define PARGPU_TEXTURE_FILTER_POLICY_HH

#include <cstdint>
#include <span>
#include <string_view>

#include "common/color.hh"
#include "common/types.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace pargpu
{

/**
 * Filtering strategy of the texture unit's anisotropic path. Orthogonal
 * to DesignScenario: the scenario picks which PATU predictor stages run,
 * and only the Patu policy consults the predictor at all.
 */
enum class FilterPolicyId
{
    Patu = 0,           ///< Paper flow: predictor-gated AF->TF downgrade.
    StfUniform,         ///< One white-noise texel per AF sample.
    StfBlue,            ///< One texel per sample, IGN screen-space noise.
    StfWeighted,        ///< One weight-importance-sampled texel per sample.
    FilterAfterShading, ///< Sharp centroid sample + cross-quad filter.
};

/** Registry row describing one selectable policy. */
struct FilterPolicyDesc
{
    FilterPolicyId id;
    const char *name;    ///< CLI / env / metrics spelling.
    const char *summary; ///< One-line description for --help and docs.
};

/** All registered policies (pargpu_lint's policy-doc rule scans this). */
std::span<const FilterPolicyDesc> filterPolicyRegistry();

/** Canonical name of @p id ("patu", "stf_uniform", ...). */
const char *filterPolicyName(FilterPolicyId id);

/** True iff @p id is one of the registered policies. */
bool isKnownFilterPolicy(FilterPolicyId id);

/** Parse a policy name; returns false (out untouched) when unknown. */
bool parseFilterPolicy(std::string_view name, FilterPolicyId &out);

/**
 * Session default: PARGPU_FILTER_POLICY when set (fatal on an unknown
 * value), else FilterPolicyId::Patu. Read once and cached, like the
 * PARGPU_TILE_PARALLEL force in the pipeline.
 */
FilterPolicyId defaultFilterPolicy();

/**
 * Per-sample uniform variate in [0, 1) for the stochastic policies.
 *
 * White-noise policies hash (px, py, sample, frame_seed) through the
 * common counter-based avalanche; StfBlue evaluates interleaved gradient
 * noise at (px, py) — screen-space blue-noise-ish — and decorrelates
 * samples and frames with a hashed Cranley-Patterson rotation.
 */
float stfSampleU(FilterPolicyId id, int px, int py, int sample,
                 std::uint32_t frame_seed);

/** One stochastically selected texel standing in for a trilinear sample. */
struct StfTexelChoice
{
    Addr addr = kInvalidAddr; ///< Simulated address of the chosen texel.
    Color4f estimator;        ///< Unbiased estimate of the full filter.
};

/**
 * Collapse the 8-texel trilinear footprint of (@p uv, @p sel) to a single
 * texel chosen by variate @p u. Weighted selection picks texel j with
 * probability w_j / W and returns W * c_j; uniform selection picks j
 * uniformly and returns 8 * w_j * c_j. Either way the expectation equals
 * the exact trilinear result; only one texel is fetched.
 */
StfTexelChoice stfSelectTexel(const TextureMap &tex, const Vec2 &uv,
                              const LodSelect &sel, bool weighted, float u);

} // namespace pargpu

#endif // PARGPU_TEXTURE_FILTER_POLICY_HH
