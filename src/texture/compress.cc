#include "texture/compress.hh"

#include <algorithm>
#include <cmath>

namespace pargpu
{

std::uint16_t
packRGB565(const Color4f &c)
{
    Color4f k = c.clamped();
    auto q = [](float v, int bits) {
        int maxv = (1 << bits) - 1;
        return static_cast<std::uint16_t>(v * maxv + 0.5f);
    };
    return static_cast<std::uint16_t>((q(k.r, 5) << 11) | (q(k.g, 6) << 5) |
                                      q(k.b, 5));
}

Color4f
unpackRGB565(std::uint16_t v)
{
    float r = static_cast<float>((v >> 11) & 0x1F) / 31.0f;
    float g = static_cast<float>((v >> 5) & 0x3F) / 63.0f;
    float b = static_cast<float>(v & 0x1F) / 31.0f;
    return {r, g, b, 1.0f};
}

namespace
{

// The 4-entry palette spanned by the endpoints.
void
palette(const Bc1Block &block, Color4f out[4])
{
    out[0] = unpackRGB565(block.c0);
    out[1] = unpackRGB565(block.c1);
    out[2] = lerp(out[0], out[1], 1.0f / 3.0f);
    out[3] = lerp(out[0], out[1], 2.0f / 3.0f);
}

float
dist2(const Color4f &a, const Color4f &b)
{
    float dr = a.r - b.r, dg = a.g - b.g, db = a.b - b.b;
    return dr * dr + dg * dg + db * db;
}

} // namespace

Bc1Block
encodeBc1Block(const RGBA8 texels[16])
{
    // Endpoints: luma extrema of the block.
    int lo = 0, hi = 0;
    float lo_l = 2.0f, hi_l = -1.0f;
    Color4f colors[16];
    for (int i = 0; i < 16; ++i) {
        colors[i] = unpackRGBA8(texels[i]);
        float l = colors[i].luma();
        if (l < lo_l) {
            lo_l = l;
            lo = i;
        }
        if (l > hi_l) {
            hi_l = l;
            hi = i;
        }
    }

    Bc1Block block;
    block.c0 = packRGB565(colors[lo]);
    block.c1 = packRGB565(colors[hi]);

    Color4f pal[4];
    palette(block, pal);
    for (int i = 0; i < 16; ++i) {
        int best = 0;
        float best_d = dist2(colors[i], pal[0]);
        for (int p = 1; p < 4; ++p) {
            float d = dist2(colors[i], pal[p]);
            if (d < best_d) {
                best_d = d;
                best = p;
            }
        }
        block.indices |= static_cast<std::uint32_t>(best) << (2 * i);
    }
    return block;
}

Color4f
decodeBc1Texel(const Bc1Block &block, int x, int y)
{
    Color4f pal[4];
    palette(block, pal);
    int i = y * 4 + x;
    return pal[(block.indices >> (2 * i)) & 0x3];
}

std::vector<Bc1Block>
compressLevel(int width, int height, const std::vector<RGBA8> &texels)
{
    int bw = (width + 3) / 4;
    int bh = (height + 3) / 4;
    std::vector<Bc1Block> blocks;
    blocks.reserve(static_cast<std::size_t>(bw) * bh);
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            RGBA8 tile[16];
            for (int y = 0; y < 4; ++y) {
                for (int x = 0; x < 4; ++x) {
                    int sx = std::min(bx * 4 + x, width - 1);
                    int sy = std::min(by * 4 + y, height - 1);
                    tile[y * 4 + x] =
                        texels[static_cast<std::size_t>(sy) * width + sx];
                }
            }
            blocks.push_back(encodeBc1Block(tile));
        }
    }
    return blocks;
}

} // namespace pargpu
