/**
 * @file
 * Block texture compression (BC1/DXT1-class).
 *
 * The paper positions PATU as orthogonal to texture compression (Section
 * VIII); this module provides a compressed texture storage mode so the
 * claim can be demonstrated: 4x4 texel blocks are stored as two RGB565
 * endpoints plus sixteen 2-bit palette indices (8 bytes per block — 8:1
 * against RGBA8), cutting texture footprint and traffic at a small,
 * measurable quality cost.
 */

#ifndef PARGPU_TEXTURE_COMPRESS_HH
#define PARGPU_TEXTURE_COMPRESS_HH

#include <cstdint>
#include <vector>

#include "common/color.hh"

namespace pargpu
{

/** One compressed 4x4 block: endpoints + 2-bit selectors. */
struct Bc1Block
{
    std::uint16_t c0 = 0;      ///< Endpoint 0 (RGB565).
    std::uint16_t c1 = 0;      ///< Endpoint 1 (RGB565).
    std::uint32_t indices = 0; ///< 16 x 2-bit palette selectors.

    /** Stored size: the defining 8 bytes of the format. */
    static constexpr unsigned kBytes = 8;
};

/** Pack a float color to RGB565. */
std::uint16_t packRGB565(const Color4f &c);

/** Expand RGB565 back to float (alpha = 1). */
Color4f unpackRGB565(std::uint16_t v);

/**
 * Encode one 4x4 texel block.
 *
 * Endpoints are chosen as the luma extrema of the block; the remaining
 * texels select the nearest of the 4 palette entries (the two endpoints
 * and their 1/3, 2/3 blends). Simple but representative of hardware-class
 * encoders.
 *
 * @param texels  16 texels, row-major.
 */
Bc1Block encodeBc1Block(const RGBA8 texels[16]);

/**
 * Decode texel (x, y) of a block (0 <= x, y < 4).
 */
Color4f decodeBc1Texel(const Bc1Block &block, int x, int y);

/**
 * Compress a full mip level.
 *
 * @param width   Level width (multiple of 4, or it is padded by clamping).
 * @param height  Level height.
 * @param texels  Row-major RGBA8 texels.
 * @return Blocks in block-row-major order, ceil(w/4) * ceil(h/4) entries.
 */
std::vector<Bc1Block> compressLevel(int width, int height,
                                    const std::vector<RGBA8> &texels);

} // namespace pargpu

#endif // PARGPU_TEXTURE_COMPRESS_HH
