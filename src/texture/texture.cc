#include "texture/texture.hh"

#include "common/contract.hh"
#include "common/logging.hh"
#include "texture/mipmap.hh"

namespace pargpu
{

TextureMap::TextureMap(int width, int height, std::vector<RGBA8> texels,
                       WrapMode wrap, TexelLayout layout,
                       StorageFormat format)
    : levels_(buildMipPyramid(width, height, std::move(texels))),
      wrap_(wrap), layout_(layout), format_(format)
{
    Bytes offset = 0;
    levelOffset_.reserve(levels_.size());
    if (format_ == StorageFormat::BC1)
        bc1_levels_.reserve(levels_.size());
    for (const MipLevel &lv : levels_) {
        levelOffset_.push_back(offset);
        if (format_ == StorageFormat::BC1) {
            bc1_levels_.push_back(
                compressLevel(lv.width, lv.height, lv.texels));
            offset += static_cast<Bytes>(bc1_levels_.back().size()) *
                Bc1Block::kBytes;
        } else {
            offset += static_cast<Bytes>(lv.width) * lv.height *
                RGBA8::kBytes;
        }
    }
    sizeBytes_ = offset;
}

int
TextureMap::wrapCoord(int c, int extent, WrapMode mode)
{
    if (mode == WrapMode::Repeat) {
        int m = c % extent;
        return m < 0 ? m + extent : m;
    }
    if (c < 0)
        return 0;
    if (c >= extent)
        return extent - 1;
    return c;
}

Addr
TextureMap::texelAddr(int level, int x, int y) const
{
    PARGPU_CHECK_RANGE(level, 0, numLevels() - 1, "texelAddr level");
    const MipLevel &lv = levels_[static_cast<std::size_t>(level)];
    int wx = wrapCoord(x, lv.width, wrap_);
    int wy = wrapCoord(y, lv.height, wrap_);
    PARGPU_INVARIANT(wx >= 0 && wx < lv.width && wy >= 0 && wy < lv.height,
                     "wrapCoord escaped the level: (", wx, ", ", wy,
                     ") in ", lv.width, "x", lv.height);
    if (format_ == StorageFormat::BC1) {
        // Compressed storage is addressed at block granularity: all 16
        // texels of a 4x4 block live in one 8-byte record.
        int bw = (lv.width + 3) / 4;
        Bytes block = static_cast<Bytes>(wy / 4) * bw + (wx / 4);
        return baseAddr_ + levelOffset_[level] + block * Bc1Block::kBytes;
    }
    Bytes linear;
    if (layout_ == TexelLayout::Tiled4x4 && lv.width >= 4 && lv.height >= 4) {
        // 4x4 texel tiles, tiles stored row-major; texels within a tile
        // stored row-major. Matches the block layouts real texture units
        // use to keep a bilinear footprint in one or two cache lines.
        int tiles_per_row = lv.width / 4;
        int tile = (wy / 4) * tiles_per_row + (wx / 4);
        int in_tile = (wy % 4) * 4 + (wx % 4);
        linear = static_cast<Bytes>(tile) * 16 + in_tile;
    } else {
        linear = static_cast<Bytes>(wy) * lv.width + wx;
    }
    return baseAddr_ + levelOffset_[level] + linear * RGBA8::kBytes;
}

Color4f
TextureMap::fetchTexel(int level, int x, int y) const
{
    PARGPU_CHECK_RANGE(level, 0, numLevels() - 1, "fetchTexel level");
    const MipLevel &lv = levels_[static_cast<std::size_t>(level)];
    int wx = wrapCoord(x, lv.width, wrap_);
    int wy = wrapCoord(y, lv.height, wrap_);
    if (format_ == StorageFormat::BC1) {
        int bw = (lv.width + 3) / 4;
        const Bc1Block &block =
            bc1_levels_[level][static_cast<std::size_t>(wy / 4) * bw +
                               (wx / 4)];
        return decodeBc1Texel(block, wx % 4, wy % 4);
    }
    return unpackRGBA8(lv.at(wx, wy));
}

} // namespace pargpu
