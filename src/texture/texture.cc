#include "texture/texture.hh"

#include <cstdlib>
#include <cstring>

#include "common/contract.hh"
#include "common/logging.hh"
#include "texture/mipmap.hh"

namespace pargpu
{

namespace
{

// Set once from the environment before main() and read-only after;
// deterministic per run by construction. pargpu-analyze: allow(global-state)
TexelStorage g_default_storage = [] {
    const char *v = std::getenv("PARGPU_TEXEL_STORAGE");
    if (v != nullptr && std::strcmp(v, "linear") == 0)
        return TexelStorage::Linear;
    if (v != nullptr && v[0] != '\0' && std::strcmp(v, "morton") != 0)
        fatal("PARGPU_TEXEL_STORAGE must be 'linear' or 'morton'");
    return TexelStorage::Morton;
}();

/** log2 of a power of two. */
std::uint32_t
log2Pow2(int v)
{
    std::uint32_t s = 0;
    while ((1 << s) < v)
        ++s;
    return s;
}

} // namespace

TexelStorage
TextureMap::defaultStorage()
{
    return g_default_storage;
}

void
TextureMap::setDefaultStorage(TexelStorage s)
{
    g_default_storage = s;
}

TextureMap::TextureMap(int width, int height, std::vector<RGBA8> texels,
                       WrapMode wrap, TexelLayout layout,
                       StorageFormat format,
                       std::optional<TexelStorage> storage)
    : wrap_(wrap), layout_(layout), format_(format),
      // BC1 keeps the raster row-major: MipLevel::texels is only the
      // compression input there (compressLevel consumes row-major), and
      // every fetch goes through the BC1 blocks.
      storage_(format == StorageFormat::BC1
                   ? TexelStorage::Linear
                   : storage.value_or(defaultStorage()))
{
    levels_ = buildMipPyramid(width, height, std::move(texels), storage_);
    Bytes offset = 0;
    levelOffset_.reserve(levels_.size());
    geom_.reserve(levels_.size());
    if (format_ == StorageFormat::BC1)
        bc1_levels_.reserve(levels_.size());
    for (const MipLevel &lv : levels_) {
        levelOffset_.push_back(offset);
        LevelGeom g;
        g.wmask = lv.width - 1;
        g.hmask = lv.height - 1;
        g.row_shift = log2Pow2(lv.width);
        g.tiled = layout_ == TexelLayout::Tiled4x4 && lv.width >= 4 &&
            lv.height >= 4;
        g.tpr_shift = g.tiled ? log2Pow2(lv.width / 4) : 0;
        g.blk_shift = log2Pow2((lv.width + 3) / 4);
        g.offset = offset;
        geom_.push_back(g);
        if (format_ == StorageFormat::BC1) {
            bc1_levels_.push_back(
                compressLevel(lv.width, lv.height, lv.texels));
            offset += static_cast<Bytes>(bc1_levels_.back().size()) *
                Bc1Block::kBytes;
        } else {
            offset += static_cast<Bytes>(lv.width) * lv.height *
                RGBA8::kBytes;
        }
    }
    sizeBytes_ = offset;
}

int
TextureMap::wrapCoord(int c, int extent, WrapMode mode)
{
    if (mode == WrapMode::Repeat) {
        int m = c % extent;
        return m < 0 ? m + extent : m;
    }
    if (c < 0)
        return 0;
    if (c >= extent)
        return extent - 1;
    return c;
}

Addr
TextureMap::texelAddr(int level, int x, int y) const
{
    PARGPU_CHECK_RANGE(level, 0, numLevels() - 1, "texelAddr level");
    const LevelGeom &g = geom_[static_cast<std::size_t>(level)];
    int wx = wrapFast(x, g.wmask);
    int wy = wrapFast(y, g.hmask);
    PARGPU_INVARIANT(wx >= 0 && wx <= g.wmask && wy >= 0 && wy <= g.hmask,
                     "wrapFast escaped the level: (", wx, ", ", wy,
                     ") in ", g.wmask + 1, "x", g.hmask + 1);
    return baseAddr_ + texelOffset(g, wx, wy);
}

Color4f
TextureMap::texelColor(int level, const MipLevel &lv, int wx, int wy) const
{
    if (format_ == StorageFormat::BC1) {
        int bw = (lv.width + 3) / 4;
        const Bc1Block &block =
            bc1_levels_[level][static_cast<std::size_t>(wy / 4) * bw +
                               (wx / 4)];
        return decodeBc1Texel(block, wx % 4, wy % 4);
    }
    return unpackRGBA8(lv.at(wx, wy));
}

Color4f
TextureMap::fetchTexel(int level, int x, int y) const
{
    PARGPU_CHECK_RANGE(level, 0, numLevels() - 1, "fetchTexel level");
    const LevelGeom &g = geom_[static_cast<std::size_t>(level)];
    const MipLevel &lv = levels_[static_cast<std::size_t>(level)];
    int wx = wrapFast(x, g.wmask);
    int wy = wrapFast(y, g.hmask);
    return texelColor(level, lv, wx, wy);
}

void
TextureMap::fetchFootprintSlow(const LevelGeom &g, int level,
                               const int wx[2], const int wy[2],
                               Color4f color[4], Addr addr[4]) const
{
    const MipLevel &lv = levels_[static_cast<std::size_t>(level)];
    if (format_ == StorageFormat::RGBA8) {
        // Same math as texelOffset()/texelColor(), with the format and
        // storage dispatch hoisted out of the four-texel loop.
        const bool morton = lv.storage == TexelStorage::Morton &&
            lv.width >= 4 && lv.height >= 4;
        const RGBA8 *texels = lv.texels.data();
        for (int i = 0; i < 4; ++i) {
            int cx = wx[i & 1];
            int cy = wy[i >> 1];
            addr[i] = baseAddr_ + texelOffset(g, cx, cy);
            std::size_t idx;
            if (morton) {
                std::size_t tile = static_cast<std::size_t>(cy >> 2) *
                        static_cast<std::size_t>(lv.width >> 2) +
                    static_cast<std::size_t>(cx >> 2);
                idx = tile * 16 +
                    kMortonInTile4x4[((cy & 3) << 2) | (cx & 3)];
            } else {
                idx = static_cast<std::size_t>(cy) * lv.width + cx;
            }
            color[i] = unpackRGBA8(texels[idx]);
        }
        return;
    }
    for (int i = 0; i < 4; ++i) {
        int cx = wx[i & 1];
        int cy = wy[i >> 1];
        addr[i] = baseAddr_ + texelOffset(g, cx, cy);
        color[i] = texelColor(level, lv, cx, cy);
    }
}

} // namespace pargpu
