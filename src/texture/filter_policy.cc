#include "texture/filter_policy.hh"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace pargpu
{

namespace
{

// Per-policy hash salts: distinct streams so two stochastic policies run
// on the same trace never share noise patterns.
constexpr std::uint32_t kSaltUniform = 0xB5297A4Du;
constexpr std::uint32_t kSaltWeighted = 0x68E31DA4u;
constexpr std::uint32_t kSaltBlueRot = 0x1B56C4E9u;

/** Hash bits -> float in [0, 1): 24 high bits, exactly representable. */
float
bitsToUnit(std::uint32_t bits)
{
    return static_cast<float>(bits >> 8) * 0x1p-24f;
}

/**
 * Interleaved gradient noise (Jimenez): a cheap screen-space pattern
 * whose spectrum is blue-noise-ish — neighbouring pixels get widely
 * separated values, which pushes STF error to high spatial frequencies.
 */
float
ign(int px, int py)
{
    float v = 0.06711056f * static_cast<float>(px) +
        0.00583715f * static_cast<float>(py);
    v -= std::floor(v);
    float w = 52.9829189f * v;
    return w - std::floor(w);
}

} // namespace

std::span<const FilterPolicyDesc>
filterPolicyRegistry()
{
    static const FilterPolicyDesc kPolicies[] = {
        {FilterPolicyId::Patu, "patu",
         "predictor-gated AF->TF downgrade (the paper's flow; default)"},
        {FilterPolicyId::StfUniform, "stf_uniform",
         "one white-noise texel per AF sample, uniform over the footprint"},
        {FilterPolicyId::StfBlue, "stf_blue",
         "one texel per AF sample, IGN blue-noise-ish screen-space pattern"},
        {FilterPolicyId::StfWeighted, "stf_weighted",
         "one texel per AF sample, importance-sampled by filter weight"},
        {FilterPolicyId::FilterAfterShading, "filter_after_shading",
         "sharp centroid sample per pixel, filtered across the quad"},
    };
    return kPolicies;
}

const char *
filterPolicyName(FilterPolicyId id)
{
    for (const FilterPolicyDesc &d : filterPolicyRegistry())
        if (d.id == id)
            return d.name;
    PARGPU_INVARIANT(false, "unregistered FilterPolicyId: ",
                     static_cast<int>(id));
    return "?";
}

bool
isKnownFilterPolicy(FilterPolicyId id)
{
    for (const FilterPolicyDesc &d : filterPolicyRegistry())
        if (d.id == id)
            return true;
    return false;
}

bool
parseFilterPolicy(std::string_view name, FilterPolicyId &out)
{
    for (const FilterPolicyDesc &d : filterPolicyRegistry()) {
        if (name == d.name) {
            out = d.id;
            return true;
        }
    }
    return false;
}

FilterPolicyId
defaultFilterPolicy()
{
    // Read once and cached for the process, like PARGPU_TILE_PARALLEL;
    // deterministic per run by construction.
    static const FilterPolicyId def = [] {
        const char *v = std::getenv("PARGPU_FILTER_POLICY");
        if (v == nullptr || v[0] == '\0')
            return FilterPolicyId::Patu;
        FilterPolicyId id;
        if (!parseFilterPolicy(v, id)) {
            std::string names;
            for (const FilterPolicyDesc &d : filterPolicyRegistry()) {
                if (!names.empty())
                    names += "|";
                names += d.name;
            }
            fatal("PARGPU_FILTER_POLICY must be one of " + names);
        }
        return id;
    }();
    return def;
}

float
stfSampleU(FilterPolicyId id, int px, int py, int sample,
           std::uint32_t frame_seed)
{
    const std::uint32_t ux = static_cast<std::uint32_t>(px);
    const std::uint32_t uy = static_cast<std::uint32_t>(py);
    const std::uint32_t us = static_cast<std::uint32_t>(sample);
    switch (id) {
      case FilterPolicyId::StfUniform:
      case FilterPolicyId::StfWeighted: {
        const std::uint32_t salt =
            id == FilterPolicyId::StfUniform ? kSaltUniform : kSaltWeighted;
        std::uint32_t bits =
            hashCombine(hashCombine(ux, uy, salt), us, frame_seed);
        return bitsToUnit(bits);
      }
      case FilterPolicyId::StfBlue: {
        // Cranley-Patterson rotation of the screen-space IGN value: the
        // per-(sample, frame) offset decorrelates AF samples within a
        // pixel and re-seeds the pattern every frame, while the IGN base
        // keeps the error blue-noise-ish across neighbouring pixels.
        float u = ign(px, py) +
            bitsToUnit(hashCombine(us, kSaltBlueRot, frame_seed));
        u -= std::floor(u);
        return u;
      }
      default:
        PARGPU_INVARIANT(false, "stfSampleU() on a non-stochastic policy: ",
                         static_cast<int>(id));
        return 0.0f;
    }
}

StfTexelChoice
stfSelectTexel(const TextureMap &tex, const Vec2 &uv, const LodSelect &sel,
               bool weighted, float u)
{
    PARGPU_ASSERT(u >= 0.0f && u < 1.0f, "STF variate out of [0,1): ", u);

    // The 8 candidate texels and their trilinear weights — the same
    // footprint math as TextureSampler::trilinearInto(), evaluated
    // arithmetically (no texel fetch, no address issued) because only one
    // of the eight will actually be touched.
    float w[8];
    int tx[8];
    int ty[8];
    int tl[8];
    int slot = 0;
    for (int li = 0; li < 2; ++li) {
        int level = li == 0 ? sel.level0 : sel.level1;
        float level_w = li == 0 ? 1.0f - sel.frac : sel.frac;
        const MipLevel &lv = tex.level(level);
        float tu = uv.x * static_cast<float>(lv.width) - 0.5f;
        float tv = uv.y * static_cast<float>(lv.height) - 0.5f;
        int x0 = static_cast<int>(std::floor(tu));
        int y0 = static_cast<int>(std::floor(tv));
        float fu = tu - static_cast<float>(x0);
        float fv = tv - static_cast<float>(y0);
        const float bw[4] = {
            (1.0f - fu) * (1.0f - fv),
            fu * (1.0f - fv),
            (1.0f - fu) * fv,
            fu * fv,
        };
        const int dx[4] = {0, 1, 0, 1};
        const int dy[4] = {0, 0, 1, 1};
        for (int i = 0; i < 4; ++i, ++slot) {
            tl[slot] = level;
            tx[slot] = x0 + dx[i];
            ty[slot] = y0 + dy[i];
            w[slot] = bw[i] * level_w;
        }
    }

    int j;
    float scale;
    if (weighted) {
        // Pick texel j with probability w_j / W; the estimator W * c_j
        // then has expectation sum(w_j * c_j) — the exact filter result.
        // The bilinear weights of each level sum to 1 and the level
        // weights to 1, so W is 1 up to rounding; zero-weight texels
        // (e.g. the duplicated level when LOD clamps) are never chosen.
        float total = 0.0f;
        for (float wk : w)
            total += wk;
        const float target = u * total;
        float cum = 0.0f;
        j = 7;
        for (int k = 0; k < 8; ++k) {
            cum += w[k];
            if (target < cum) {
                j = k;
                break;
            }
        }
        scale = total;
    } else {
        // Uniform over the 8 candidates: estimator 8 * w_j * c_j. Same
        // expectation, higher variance (zero-weight texels waste draws).
        j = static_cast<int>(u * 8.0f);
        j = j > 7 ? 7 : j;
        scale = 8.0f * w[j];
    }

    StfTexelChoice choice;
    // fetchTexel()/texelAddr() wrap out-of-range coordinates internally,
    // matching the footprint fetches of the exact path.
    choice.addr = tex.texelAddr(tl[j], tx[j], ty[j]);
    choice.estimator = tex.fetchTexel(tl[j], tx[j], ty[j]) * scale;
    return choice;
}

} // namespace pargpu
