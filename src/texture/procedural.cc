#include "texture/procedural.hh"

#include <cmath>

#include "common/rng.hh"

namespace pargpu
{

namespace
{

// Value at integer lattice point, in [0, 1].
float
latticeValue(int x, int y, std::uint32_t seed)
{
    return static_cast<float>(hashCombine(static_cast<std::uint32_t>(x),
                                          static_cast<std::uint32_t>(y),
                                          seed) & 0xFFFFFF) /
        static_cast<float>(0xFFFFFF);
}

// Smoothstep-interpolated lattice noise at (u, v) with period cells.
float
valueNoise(float u, float v, int cells, std::uint32_t seed)
{
    float fu = u * cells;
    float fv = v * cells;
    int x0 = static_cast<int>(std::floor(fu));
    int y0 = static_cast<int>(std::floor(fv));
    float tx = fu - x0;
    float ty = fv - y0;
    tx = tx * tx * (3.0f - 2.0f * tx);
    ty = ty * ty * (3.0f - 2.0f * ty);

    auto wrapped = [cells](int c) {
        int m = c % cells;
        return m < 0 ? m + cells : m;
    };
    float v00 = latticeValue(wrapped(x0), wrapped(y0), seed);
    float v10 = latticeValue(wrapped(x0 + 1), wrapped(y0), seed);
    float v01 = latticeValue(wrapped(x0), wrapped(y0 + 1), seed);
    float v11 = latticeValue(wrapped(x0 + 1), wrapped(y0 + 1), seed);
    float a = v00 + (v10 - v00) * tx;
    float b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

RGBA8
shade(float t, const Color4f &lo, const Color4f &hi)
{
    return packRGBA8(lerp(lo, hi, t));
}

} // namespace

float
fractalNoise(float u, float v, int octaves, std::uint32_t seed)
{
    float acc = 0.0f;
    float amp = 0.5f;
    int cells = 8;
    for (int o = 0; o < octaves; ++o) {
        acc += amp * valueNoise(u, v, cells, seed + o * 101u);
        amp *= 0.5f;
        cells *= 2;
    }
    return acc;
}

std::vector<RGBA8>
generateTexture(TextureKind kind, int size, std::uint32_t seed)
{
    std::vector<RGBA8> out(static_cast<std::size_t>(size) * size);
    SplitMix64 rng(seed);
    // Per-texture tint variation so two textures of the same kind differ.
    float tint = 0.85f + 0.3f * rng.nextFloat();

    // Per-texel detail noise: real game assets carry energy near the
    // texel Nyquist rate (surface grain, photographic detail). This is
    // the content mip-level blur destroys, so without it the AF-vs-TF
    // perceptual difference the paper measures would vanish.
    auto detail = [seed, size](int x, int y) {
        float n = static_cast<float>(
            hashCombine(static_cast<std::uint32_t>(x),
                        static_cast<std::uint32_t>(y),
                        seed ^ 0xD37A11u) & 0xFFFF) / 65535.0f;
        // Coarser 3-texel-period component adds just-below-Nyquist energy.
        float m = static_cast<float>(
            hashCombine(static_cast<std::uint32_t>(x / 3),
                        static_cast<std::uint32_t>(y / 3),
                        seed ^ 0x5EAF00u) & 0xFFFF) / 65535.0f;
        (void)size;
        return 0.52f + 0.48f * n + 0.48f * m;
    };

    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            float u = (x + 0.5f) / size;
            float v = (y + 0.5f) / size;
            RGBA8 px;
            switch (kind) {
              case TextureKind::Checker: {
                int cx = x * 16 / size;
                int cy = y * 16 / size;
                bool on = ((cx + cy) & 1) != 0;
                float n = 0.1f * fractalNoise(u, v, 3, seed);
                px = on ? shade(n, {0.9f, 0.9f, 0.88f}, {1, 1, 1})
                        : shade(n, {0.08f, 0.08f, 0.1f}, {0.2f, 0.2f, 0.22f});
                break;
              }
              case TextureKind::Bricks: {
                float row = v * 16.0f;
                int row_i = static_cast<int>(row);
                float col = u * 8.0f + ((row_i & 1) ? 0.5f : 0.0f);
                float fy = row - row_i;
                float fx = col - std::floor(col);
                bool mortar = fy < 0.12f || fx < 0.06f;
                float n = fractalNoise(u, v, 4, seed);
                if (mortar) {
                    px = shade(n, {0.6f, 0.58f, 0.55f},
                               {0.85f, 0.83f, 0.8f});
                } else {
                    px = shade(n, Color4f{0.4f, 0.12f, 0.08f} * tint,
                               Color4f{0.95f, 0.4f, 0.25f} * tint);
                }
                break;
              }
              case TextureKind::Noise: {
                float n = fractalNoise(u, v, 5, seed);
                px = shade(n, Color4f{0.22f, 0.2f, 0.18f} * tint,
                           Color4f{0.98f, 0.92f, 0.82f} * tint);
                break;
              }
              case TextureKind::Grass: {
                float n = fractalNoise(u, v, 5, seed);
                float blades =
                    0.5f + 0.5f * std::sin(v * 400.0f + n * 20.0f);
                float t = 0.6f * n + 0.4f * blades;
                px = shade(t, Color4f{0.08f, 0.3f, 0.08f} * tint,
                           Color4f{0.65f, 0.95f, 0.4f} * tint);
                break;
              }
              case TextureKind::Marble: {
                float n = fractalNoise(u, v, 5, seed);
                float veins =
                    0.5f + 0.5f * std::sin((u + v) * 40.0f + n * 12.0f);
                px = shade(veins, Color4f{0.35f, 0.33f, 0.38f} * tint,
                           {0.95f, 0.95f, 0.97f});
                break;
              }
              case TextureKind::Wood: {
                float cx = u - 0.5f, cy = v - 0.5f;
                float r = std::sqrt(cx * cx + cy * cy);
                float n = fractalNoise(u, v, 4, seed);
                float rings = 0.5f + 0.5f * std::sin(r * 120.0f + n * 6.0f);
                px = shade(rings, Color4f{0.35f, 0.2f, 0.08f} * tint,
                           Color4f{0.65f, 0.45f, 0.25f} * tint);
                break;
              }
              case TextureKind::Stripes: {
                // 60 stripes: fine directional detail that never lands on
                // an exact multiple of a power-of-two sampling rate.
                float s = 0.5f + 0.5f * std::sin(u * 60.0f * 6.28318f);
                float n = 0.15f * fractalNoise(u, v, 3, seed);
                px = shade(std::min(1.0f, s + n),
                           Color4f{0.15f, 0.15f, 0.18f} * tint,
                           Color4f{0.85f, 0.82f, 0.1f} * tint);
                break;
              }
              case TextureKind::Panels: {
                float gx = u * 8.0f, gy = v * 8.0f;
                float fx = gx - std::floor(gx);
                float fy = gy - std::floor(gy);
                bool seam = fx < 0.05f || fy < 0.05f;
                std::uint32_t cell = hashCombine(
                    static_cast<std::uint32_t>(gx),
                    static_cast<std::uint32_t>(gy), seed);
                // Kept dim: sci-fi interiors read darker than the other
                // families, which drives doom3's low perception penalty.
                float shade_v = 0.22f + 0.34f * ((cell & 0xFF) / 255.0f);
                float n = 0.1f * fractalNoise(u, v, 4, seed);
                if (seam) {
                    px = packRGBA8({0.05f, 0.05f, 0.07f, 1.0f});
                } else {
                    px = packRGBA8(Color4f{shade_v + n, shade_v + n,
                                           shade_v + 0.1f + n, 1.0f} * tint);
                }
                break;
              }
            }
            Color4f c = unpackRGBA8(px) * detail(x, y);
            c.a = 1.0f;
            out[static_cast<std::size_t>(y) * size + x] = packRGBA8(c);
        }
    }
    return out;
}

} // namespace pargpu
