#include "texture/sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/contract.hh"

namespace pargpu
{

AnisotropyInfo
TextureSampler::computeAnisotropy(const Vec2 &duvdx, const Vec2 &duvdy,
                                  int max_aniso) const
{
    AnisotropyInfo info;
    const float w = static_cast<float>(tex_->width());
    const float h = static_cast<float>(tex_->height());

    // Footprint extents in level-0 texel units along each screen axis.
    Vec2 tx{duvdx.x * w, duvdx.y * h};
    Vec2 ty{duvdy.x * w, duvdy.y * h};
    float px = tx.length();
    float py = ty.length();

    constexpr float kMinExtent = 1e-6f;
    px = std::max(px, kMinExtent);
    py = std::max(py, kMinExtent);

    if (px >= py) {
        info.pMax = px;
        info.pMin = py;
        info.majorUv = duvdx;
    } else {
        info.pMax = py;
        info.pMin = px;
        info.majorUv = duvdy;
    }

    // The anisotropy degree is the axis ratio (Section IV-C(A)), rounded
    // up so the sample footprints always cover the ellipse. The filtering
    // pipelines further round the issued sample count up to a power of
    // two (2/4/8/16-sample groups); the over-sampling packs successive
    // samples less than a texel apart, which is the root of the texel-set
    // sharing Fig. 12 measures.
    float ratio = info.pMax / info.pMin;
    info.anisoDegree = std::clamp(
        static_cast<int>(std::ceil(ratio - 1e-4f)), 1, max_aniso);
    int pow2 = 1;
    while (pow2 < info.anisoDegree)
        pow2 *= 2;
    info.sampleSize = std::min(pow2, max_aniso);

    // TF samples an isotropic square sized by the major extent (the square
    // with equivalent diagonals, Section IV-A); AF's LOD follows the minor
    // axis so each of the N samples stays sharp (Section V-C(2)).
    info.lodTF = std::log2(std::max(info.pMax, 1.0f));
    info.lodAF = std::log2(std::max(info.pMin, 1.0f));
    PARGPU_CHECK_RANGE(info.anisoDegree, 1, max_aniso,
                       "anisotropy degree escaped the clamp");
    PARGPU_CHECK_RANGE(info.sampleSize, 1, max_aniso,
                       "issued sample count escaped the clamp");
    PARGPU_INVARIANT(info.lodAF <= info.lodTF,
                     "AF LOD coarser than TF LOD: lodAF=", info.lodAF,
                     " lodTF=", info.lodTF);
    PARGPU_ASSERT(std::isfinite(info.lodTF) && std::isfinite(info.lodAF),
                  "non-finite LOD from derivatives: lodTF=", info.lodTF,
                  " lodAF=", info.lodAF);
    return info;
}

Color4f
TextureSampler::bilinear(const Vec2 &uv, int level) const
{
    const MipLevel &lv = tex_->level(level);
    float tu = uv.x * lv.width - 0.5f;
    float tv = uv.y * lv.height - 0.5f;
    int x0 = static_cast<int>(std::floor(tu));
    int y0 = static_cast<int>(std::floor(tv));
    float fu = tu - x0;
    float fv = tv - y0;

    Color4f c00 = tex_->fetchTexel(level, x0, y0);
    Color4f c10 = tex_->fetchTexel(level, x0 + 1, y0);
    Color4f c01 = tex_->fetchTexel(level, x0, y0 + 1);
    Color4f c11 = tex_->fetchTexel(level, x0 + 1, y0 + 1);
    return lerp(lerp(c00, c10, fu), lerp(c01, c11, fu), fv);
}

LodSelect
TextureSampler::selectLod(float lod) const
{
    LodSelect sel;
    const int max_level = tex_->numLevels() - 1;
    if (lod <= 0.0f) {
        sel.level0 = sel.level1 = 0;
        sel.frac = 0.0f;
    } else if (lod >= static_cast<float>(max_level)) {
        sel.level0 = sel.level1 = max_level;
        sel.frac = 0.0f;
    } else {
        sel.level0 = static_cast<int>(std::floor(lod));
        sel.level1 = sel.level0 + 1;
        sel.frac = lod - static_cast<float>(sel.level0);
    }
    // The selected levels must land inside the mip chain (the clamps
    // above guarantee it for any finite lod, including negatives).
    PARGPU_CHECK_RANGE(sel.level0, 0, max_level, "lod=", lod);
    PARGPU_CHECK_RANGE(sel.level1, sel.level0, max_level, "lod=", lod);
    PARGPU_CHECK_RANGE(sel.frac, 0.0f, 1.0f, "lod=", lod);
    return sel;
}

void
TextureSampler::trilinearInto(const Vec2 &uv, const LodSelect &sel,
                              TrilinearSample &out,
                              FootprintMemo *memo) const
{
    out.uv = uv;
    out.level0 = sel.level0;
    out.level1 = sel.level1;
    out.frac = sel.frac;

    Color4f acc{0, 0, 0, 0};
    int slot = 0;
    for (int li = 0; li < 2; ++li) {
        int level = li == 0 ? sel.level0 : sel.level1;
        float level_w = li == 0 ? 1.0f - sel.frac : sel.frac;
        const MipLevel &lv = tex_->level(level);
        float tu = uv.x * lv.width - 0.5f;
        float tv = uv.y * lv.height - 0.5f;
        int x0 = static_cast<int>(std::floor(tu));
        int y0 = static_cast<int>(std::floor(tv));
        float fu = tu - x0;
        float fv = tv - y0;
        const float bw[4] = {
            (1.0f - fu) * (1.0f - fv),
            fu * (1.0f - fv),
            (1.0f - fu) * fv,
            fu * fv,
        };
        // The 2x2 footprint's colors and addresses, through the per-quad
        // memo when available. A memo hit returns the exact values a
        // fresh fetch would, so the blend below is unchanged.
        Color4f fc[4];
        Addr fa[4];
        if (memo == nullptr || !memo->lookup(level, x0, y0, fc, fa)) {
            tex_->fetchFootprint(level, x0, y0, fc, fa);
            if (memo != nullptr)
                memo->store(level, x0, y0, fc, fa);
        }
        const int dx[4] = {0, 1, 0, 1};
        const int dy[4] = {0, 0, 1, 1};
        for (int i = 0; i < 4; ++i, ++slot) {
            TexelRef &t = out.texels[slot];
            t.level = level;
            t.x = x0 + dx[i];
            t.y = y0 + dy[i];
            t.weight = bw[i] * level_w;
            t.addr = fa[i];
            // When level0 == level1 (LOD clamped) the second level's weight
            // is zero and its texels duplicate the first; the color math is
            // unaffected and the address stream matches a hardware unit that
            // always issues both level fetches.
            acc += fc[i] * t.weight;
        }
    }
    out.color = acc;
}

TrilinearSample
TextureSampler::trilinear(const Vec2 &uv, float lod) const
{
    TrilinearSample s;
    trilinearInto(uv, selectLod(lod), s, nullptr);
    return s;
}

FilterResult
TextureSampler::filterTrilinear(const Vec2 &uv, float lod) const
{
    FilterResult r;
    r.samples.push_back(trilinear(uv, lod));
    r.color = r.samples.front().color;
    return r;
}

Color4f
TextureSampler::filterTrilinearInto(const Vec2 &uv, float lod,
                                    TrilinearSample &out,
                                    FootprintMemo *memo) const
{
    trilinearInto(uv, selectLod(lod), out, memo);
    return out.color;
}

Color4f
TextureSampler::filterAnisotropicInto(const Vec2 &uv,
                                      const AnisotropyInfo &info,
                                      TrilinearSample *out,
                                      FootprintMemo *memo) const
{
    const int n = info.sampleSize;
    PARGPU_ASSERT(n >= 1, "anisotropic filter needs n >= 1, got ", n);
    const LodSelect sel = selectLod(info.lodAF);
    Color4f acc{0, 0, 0, 0};
    // Sample centers span only the ellipse interior: each trilinear
    // sample has an isotropic footprint of diameter pMin, so centers are
    // confined to the major extent minus one footprint ((pMax - pMin) /
    // pMax of the derivative vector). This keeps the union of footprints
    // inside the ellipse and — for small axis ratios — places successive
    // samples within a texel of each other, which is exactly the texel-
    // set sharing the paper measures in Fig. 12 and what the footprint
    // memo exploits.
    float span = info.pMax > 0.0f
        ? std::max(0.0f, 1.0f - info.pMin / info.pMax) : 0.0f;
    for (int i = 0; i < n; ++i) {
        // Offsets centered on the pixel: t_i in (-span/2, span/2); for
        // n == 1 this degenerates to the TF center.
        float t = span * (2.0f * i - n + 1.0f) / (2.0f * n);
        Vec2 sample_uv{uv.x + info.majorUv.x * t, uv.y + info.majorUv.y * t};
        trilinearInto(sample_uv, sel, out[i], memo);
        acc += out[i].color * (1.0f / static_cast<float>(n));
    }
    return acc;
}

FilterResult
TextureSampler::filterAnisotropic(const Vec2 &uv,
                                  const AnisotropyInfo &info) const
{
    FilterResult r;
    r.samples.resize(static_cast<std::size_t>(info.sampleSize));
    r.color = filterAnisotropicInto(uv, info, r.samples.data(), nullptr);
    return r;
}

} // namespace pargpu
