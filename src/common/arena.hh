/**
 * @file
 * Bump-pointer arena for hot-path scratch allocations.
 *
 * The texture unit materializes up to 64 trilinear samples per quad; going
 * through the heap for those (the seed's vector-per-pixel FilterResult) costs
 * more than the filtering math itself. A BumpArena hands out monotonically
 * increasing slices of a few large blocks and recycles everything with an
 * O(1) reset() per quad. Arenas are owned per worker (one per TextureUnit),
 * so no locking is needed.
 *
 * Only trivially destructible element types are supported: reset() never
 * runs destructors.
 */

#ifndef PARGPU_COMMON_ARENA_HH
#define PARGPU_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/contract.hh"

namespace pargpu
{

/** A growable bump allocator; see the file comment. */
class BumpArena
{
  public:
    /** @param block_bytes  Granularity of the backing blocks. */
    explicit BumpArena(std::size_t block_bytes = 64 * 1024)
        : block_bytes_(block_bytes)
    {
        PARGPU_ASSERT(block_bytes_ >= 1024,
                      "arena block too small: ", block_bytes_);
    }

    /**
     * Allocate a default-constructed span of @p n elements. The span is
     * valid until the next reset().
     */
    template <typename T>
    std::span<T>
    allocSpan(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena reset() never runs destructors");
        if (n == 0)
            return {};
        T *p = static_cast<T *>(allocBytes(n * sizeof(T), alignof(T)));
        for (std::size_t i = 0; i < n; ++i)
            new (p + i) T(); // pargpu-lint: allow(raw-new)
        return {p, n};
    }

    /**
     * Allocate a span of @p n elements with NO construction: the storage
     * is uninitialized (or holds stale bytes from before the last
     * reset()). Only for trivially copyable types, and only for callers
     * that overwrite every field before reading any — the texture unit's
     * per-quad sample scratch, where value-initializing hundreds of bytes
     * per sample is measurable.
     */
    template <typename T>
    std::span<T>
    allocSpanUninit(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "uninitialized spans need trivial lifetimes");
        if (n == 0)
            return {};
        T *p = static_cast<T *>(allocBytes(n * sizeof(T), alignof(T)));
        return {p, n};
    }

    /** Recycle every allocation; keeps the backing blocks for reuse. */
    void
    reset()
    {
        cur_block_ = 0;
        offset_ = 0;
        used_bytes_ = 0;
    }

    /** Bytes of backing storage currently reserved. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        return total;
    }

    /** Payload bytes handed out since the last reset() (pre-alignment). */
    std::size_t
    usedBytes() const
    {
        return used_bytes_;
    }

    /** Maximum usedBytes() reached since the last resetHighWater(). */
    std::size_t
    highWaterBytes() const
    {
        return high_water_;
    }

    /**
     * Restart high-water tracking at the current live usage. The
     * simulator calls this per frame so arena.high_water is a per-frame
     * peak — a lifetime peak would depend on which frames this
     * simulator instance happened to render (frame-parallel runs shard
     * frames across instances) and break cross-mode determinism.
     */
    void
    resetHighWater()
    {
        high_water_ = used_bytes_;
    }

    /**
     * Payload bytes handed out over the arena's lifetime; never reset, so
     * callers can difference it around a frame to get per-frame usage even
     * when the arena is reset several times inside the frame.
     */
    std::size_t
    lifetimeBytes() const
    {
        return lifetime_bytes_;
    }

    /**
     * Backing blocks allocated from the heap over the arena's lifetime.
     * Steady state is reached when this stops growing: every later
     * allocSpan*() is served from recycled blocks without touching the
     * heap (the zero-per-frame-allocation guard in tests/arena_test.cc).
     */
    std::size_t
    blockAllocs() const
    {
        return blocks_.size();
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    void *
    allocBytes(std::size_t bytes, std::size_t align)
    {
        PARGPU_ASSERT((align & (align - 1)) == 0,
                      "alignment must be a power of two: ", align);
        while (true) {
            if (cur_block_ < blocks_.size()) {
                Block &b = blocks_[cur_block_];
                // Align the actual address, not the block offset: the
                // backing new[] only guarantees
                // __STDCPP_DEFAULT_NEW_ALIGNMENT__, so offset math alone
                // under-aligns any stricter type (e.g. alignas(64)).
                // The address feeds only this padding computation — for
                // align <= that guarantee the padding is address-invariant,
                // and spans are value-initialized — so no result ever
                // depends on it. pargpu-analyze: allow(addr-hash)
                auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
                std::size_t aligned =
                    (((base + offset_ + align - 1) & ~(align - 1)) - base);
                if (aligned + bytes <= b.size) {
                    offset_ = aligned + bytes;
                    used_bytes_ += bytes;
                    lifetime_bytes_ += bytes;
                    if (used_bytes_ > high_water_)
                        high_water_ = used_bytes_;
                    return b.data.get() + aligned;
                }
                // Block exhausted: move on (leftover bytes are recycled at
                // the next reset()).
                ++cur_block_;
                offset_ = 0;
                continue;
            }
            std::size_t size = std::max(block_bytes_, bytes + align);
            blocks_.push_back(
                {std::make_unique<std::byte[]>(size), size});
        }
    }

    std::size_t block_bytes_;
    std::vector<Block> blocks_;
    std::size_t cur_block_ = 0; ///< Block currently bumped into.
    std::size_t offset_ = 0;    ///< Bump offset within the current block.
    std::size_t used_bytes_ = 0;     ///< Payload bytes since last reset().
    std::size_t high_water_ = 0;     ///< Max used_bytes_ ever reached.
    std::size_t lifetime_bytes_ = 0; ///< Payload bytes, never reset.
};

} // namespace pargpu

#endif // PARGPU_COMMON_ARENA_HH
