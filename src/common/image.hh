/**
 * @file
 * CPU-side RGBA float image: the framebuffer contents after a simulated
 * render, and the input to the quality (SSIM) layer. Includes binary PPM
 * import/export so frames can be inspected with standard viewers.
 */

#ifndef PARGPU_COMMON_IMAGE_HH
#define PARGPU_COMMON_IMAGE_HH

#include <string>
#include <vector>

#include "common/color.hh"

namespace pargpu
{

/** A width x height raster of Color4f pixels, row-major, origin top-left. */
class Image
{
  public:
    Image() = default;

    /** Allocate a @p width x @p height image filled with @p fill. */
    Image(int width, int height, const Color4f &fill = Color4f{0, 0, 0, 1});

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return pixels_.empty(); }

    /** Pixel accessor. @pre 0 <= x < width(), 0 <= y < height(). */
    Color4f &at(int x, int y) { return pixels_[idx(x, y)]; }
    const Color4f &at(int x, int y) const { return pixels_[idx(x, y)]; }

    /** Raw pixel storage (row-major). */
    const std::vector<Color4f> &pixels() const { return pixels_; }
    std::vector<Color4f> &pixels() { return pixels_; }

    /** Luma plane of the image (Rec.601, clamped), for SSIM. */
    std::vector<float> lumaPlane() const;

    /**
     * Write as binary PPM (P6), 8 bits/channel.
     * @return true on success.
     */
    bool writePPM(const std::string &path) const;

    /**
     * Read a binary PPM (P6) image.
     * @return an empty Image on failure.
     */
    static Image readPPM(const std::string &path);

  private:
    std::size_t
    idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * width_ + x;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<Color4f> pixels_;
};

} // namespace pargpu

#endif // PARGPU_COMMON_IMAGE_HH
