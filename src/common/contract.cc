#include "common/contract.hh"

#include <cstdio>
#include <cstdlib>
#include <algorithm>

#include "common/annotations.hh"

namespace pargpu
{
namespace contract
{

namespace
{

/**
 * Global site registry. Sites are function-local statics registered on
 * first execution; the registry never removes entries (sites live for the
 * whole process), so a snapshot can safely read counters without holding
 * the registration mutex.
 */
struct Registry
{
    Mutex mu;
    std::vector<Site *> sites PARGPU_GUARDED_BY(mu);
    std::atomic<std::uint64_t> violations{0};
    std::atomic<FailHandler> handler{nullptr};
};

Registry &
registry()
{
    static Registry r;
    return r;
}

[[noreturn]] void
defaultFail(const Site &site, const std::string &msg)
{
    std::fprintf(stderr,
                 "contract violation (%s) at %s:%d: %s\n",
                 kindName(site.kind()), site.file(), site.line(),
                 site.expr());
    if (!msg.empty())
        std::fprintf(stderr, "  %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] void
throwingFail(const Site &site, const std::string &msg)
{
    std::string what = std::string("contract violation (") +
        kindName(site.kind()) + ") at " + site.file() + ":" +
        std::to_string(site.line()) + ": " + site.expr();
    if (!msg.empty())
        what += " [" + msg + "]";
    throw ContractViolation(what);
}

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Assert:
        return "assert";
      case Kind::Invariant:
        return "invariant";
      case Kind::Range:
        return "range";
    }
    return "?";
}

Site::Site(Kind kind, const char *file, int line, const char *expr)
    : kind_(kind), file_(file), line_(line), expr_(expr)
{
    Registry &r = registry();
    MutexLock lk(r.mu);
    r.sites.push_back(this);
}

ContractStats
stats()
{
    Registry &r = registry();
    ContractStats s;
    std::vector<Site *> sites;
    {
        MutexLock lk(r.mu);
        sites = r.sites;
    }
    s.sites = sites.size();
    s.violations = r.violations.load(std::memory_order_relaxed);
    s.rows.reserve(sites.size());
    for (const Site *site : sites) {
        std::uint64_t c = site->checks();
        s.checks += c;
        s.rows.push_back({site->kind(), site->file(), site->line(),
                          site->expr(), c});
    }
    std::sort(s.rows.begin(), s.rows.end(),
              [](const ContractStats::Row &a, const ContractStats::Row &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  return a.line < b.line;
              });
    return s;
}

void
resetStats()
{
    Registry &r = registry();
    MutexLock lk(r.mu);
    for (Site *site : r.sites)
        site->resetCount();
    r.violations.store(0, std::memory_order_relaxed);
}

void
statsReport(std::ostream &os)
{
    ContractStats s = stats();
    os << "contract stats: " << s.sites << " sites, " << s.checks
       << " checks, " << s.violations << " violations\n";
    std::size_t silent = 0;
    for (const ContractStats::Row &row : s.rows) {
        if (row.checks == 0) {
            ++silent;
            continue;
        }
        os << "  " << row.file << ":" << row.line << " ["
           << kindName(row.kind) << "] " << row.expr << " = " << row.checks
           << "\n";
    }
    if (silent > 0)
        os << "  (" << silent << " sites never evaluated)\n";
}

FailHandler
setFailHandler(FailHandler handler)
{
    Registry &r = registry();
    FailHandler prev = r.handler.exchange(handler);
    return prev;
}

ScopedFailHandler::ScopedFailHandler()
    : prev_(setFailHandler(&throwingFail))
{
}

ScopedFailHandler::~ScopedFailHandler()
{
    setFailHandler(prev_);
}

void
fail(Site &site, const std::string &msg)
{
    Registry &r = registry();
    r.violations.fetch_add(1, std::memory_order_relaxed);
    FailHandler handler = r.handler.load();
    if (handler != nullptr)
        handler(site, msg);
    // A custom handler that returns (or none installed) must not let
    // execution continue past a violated contract.
    defaultFail(site, msg);
}

} // namespace contract
} // namespace pargpu
