/**
 * @file
 * Deterministic fixed-size thread pool shared by the harness, the quality
 * layer and the benches.
 *
 * Design rules that make parallel runs bit-identical to serial ones:
 *
 *  - parallelFor() hands out contiguous index chunks; callers write results
 *    into pre-sized, index-addressed slots, so the output never depends on
 *    which worker ran which chunk or in what order chunks finished.
 *  - There is no work stealing and no shared mutable state beyond the
 *    chunk counter; any cross-item reduction is the caller's job and must
 *    be done serially in index order after the loop returns.
 *  - A parallelFor() issued from inside a worker runs inline (serially) on
 *    that worker, so nested parallelism can never deadlock and never
 *    changes results.
 *
 * The default concurrency comes from the PARGPU_THREADS environment
 * variable, falling back to std::thread::hardware_concurrency(); benches
 * and the CLI can override it per process (setDefaultThreads) or per call.
 */

#ifndef PARGPU_COMMON_THREADPOOL_HH
#define PARGPU_COMMON_THREADPOOL_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace pargpu
{

/**
 * A fixed set of worker threads executing chunked index ranges.
 *
 * Construct with the number of *extra* threads to spawn; the thread that
 * calls parallelFor() always participates as well, so a pool with W
 * workers gives W+1-way concurrency. A pool with 0 workers degenerates to
 * plain serial loops (useful for tests and single-core hosts).
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of spawned worker threads (excluding callers). */
    unsigned workerCount() const;

    /** Spawn additional workers so workerCount() >= @p workers. */
    void ensureWorkers(unsigned workers);

    /**
     * Run fn(i) for every i in [0, n), in chunks of @p chunk consecutive
     * indices. Blocks until all indices completed. The calling thread
     * participates. If any invocation throws, the exception raised by the
     * lowest-numbered faulting chunk is rethrown here after the loop has
     * drained (remaining chunks still run).
     *
     * @param max_threads  Cap on total concurrency for this call
     *                     (workers used + caller). 0 = no cap.
     */
    void parallelFor(std::size_t n, std::size_t chunk,
                     const std::function<void(std::size_t)> &fn,
                     unsigned max_threads = 0);

    // --- Process-wide default pool --------------------------------------

    /**
     * Default concurrency: setDefaultThreads() override if set, else
     * PARGPU_THREADS, else hardware_concurrency(); always >= 1.
     */
    static unsigned defaultThreads();

    /** Override defaultThreads() for this process (0 = back to env/hw). */
    static void setDefaultThreads(unsigned n);

    /** Lazily-created shared pool (grows on demand, never shrinks). */
    static ThreadPool &global();

    /** True when the current thread is a pool worker. */
    static bool inWorker();

    /**
     * Convenience: run a parallelFor on the global pool with @p threads
     * total concurrency (0 = defaultThreads()), growing the pool as
     * needed. Falls back to an inline serial loop when threads <= 1, when
     * called from a worker, or when there is a single chunk.
     */
    static void run(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)> &fn,
                    unsigned threads = 0);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_; ///< Out-of-line dtor sees the full Impl.
};

} // namespace pargpu

#endif // PARGPU_COMMON_THREADPOOL_HH
