#include "common/tracing.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/json.hh"

namespace pargpu::trace
{

std::atomic<bool> Tracing::enabled_{false};

namespace
{

/** Collector state shared by every recording thread. */
struct Collector
{
    Mutex mutex;
    std::vector<TraceEvent> events PARGPU_GUARDED_BY(mutex);
    std::map<std::thread::id, std::uint32_t> tids PARGPU_GUARDED_BY(mutex);
    // Written only by enable() (which holds the mutex) and read without
    // it by nowUs() on the recording fast path; recording while enable()
    // is concurrently resetting the epoch is a caller error, so the
    // unguarded read is accepted by design rather than annotated.
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    std::uint32_t
    tidLocked() PARGPU_REQUIRES(mutex)
    {
        auto id = std::this_thread::get_id();
        auto it = tids.find(id);
        if (it != tids.end())
            return it->second;
        std::uint32_t tid = static_cast<std::uint32_t>(tids.size());
        tids.emplace(id, tid);
        return tid;
    }
};

Collector &
collector()
{
    static Collector c;
    return c;
}

} // namespace

void
Tracing::enable()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    c.events.clear();
    c.tids.clear();
    c.epoch = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracing::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracing::clear()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    c.events.clear();
    c.tids.clear();
}

std::size_t
Tracing::eventCount()
{
    Collector &c = collector();
    MutexLock lock(c.mutex);
    return c.events.size();
}

double
Tracing::nowUs()
{
    Collector &c = collector();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - c.epoch)
        .count();
}

void
Tracing::recordComplete(const char *cat, const char *name, double ts_us,
                        double dur_us, bool has_arg, const char *arg_name,
                        double arg_value)
{
    if (!enabled())
        return;
    Collector &c = collector();
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.has_arg = has_arg;
    if (has_arg) {
        e.arg_name = arg_name;
        e.arg_value = arg_value;
    }
    MutexLock lock(c.mutex);
    e.tid = c.tidLocked();
    c.events.push_back(std::move(e));
}

void
Tracing::recordCounter(const char *cat, const char *name, double value)
{
    if (!enabled())
        return;
    Collector &c = collector();
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'C';
    e.ts_us = nowUs();
    e.has_arg = true;
    e.arg_name = "value";
    e.arg_value = value;
    MutexLock lock(c.mutex);
    e.tid = c.tidLocked();
    c.events.push_back(std::move(e));
}

void
Tracing::recordInstant(const char *cat, const char *name)
{
    if (!enabled())
        return;
    Collector &c = collector();
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.ts_us = nowUs();
    MutexLock lock(c.mutex);
    e.tid = c.tidLocked();
    c.events.push_back(std::move(e));
}

void
Tracing::writeJson(std::ostream &os)
{
    Collector &c = collector();
    std::vector<TraceEvent> events;
    {
        MutexLock lock(c.mutex);
        events = c.events;
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });

    Json arr = Json::array();
    for (const TraceEvent &e : events) {
        Json j = Json::object();
        j.set("name", Json{e.name});
        j.set("cat", Json{e.cat});
        j.set("ph", Json{std::string(1, e.ph)});
        j.set("ts", Json{e.ts_us});
        if (e.ph == 'X')
            j.set("dur", Json{e.dur_us});
        if (e.ph == 'i')
            j.set("s", Json{"t"}); // Thread-scoped instant.
        j.set("pid", Json{1});
        j.set("tid", Json{static_cast<std::uint64_t>(e.tid)});
        if (e.has_arg) {
            Json args = Json::object();
            args.set(e.arg_name, Json{e.arg_value});
            j.set("args", std::move(args));
        }
        arr.push(std::move(j));
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(arr));
    root.set("displayTimeUnit", Json{"ms"});
    os << root.dump(1) << "\n";
}

bool
Tracing::writeFile(const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f);
    return static_cast<bool>(f);
}

} // namespace pargpu::trace
