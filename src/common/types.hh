/**
 * @file
 * Fundamental scalar types shared by every pargpu subsystem.
 */

#ifndef PARGPU_COMMON_TYPES_HH
#define PARGPU_COMMON_TYPES_HH

#include <array>
#include <cstdint>

namespace pargpu
{

/** Simulated clock cycle count (1 GHz baseline clock, Table I). */
using Cycle = std::uint64_t;

/** Simulated physical byte address in GPU memory space. */
using Addr = std::uint64_t;

/** Number of bytes moved across an interface. */
using Bytes = std::uint64_t;

/** Invalid / sentinel address. */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/**
 * The eight texel addresses of one trilinear sample, in slot order
 * ([0..3] finer level, [4..7] coarser). The compact currency between the
 * filtering layer and the PATU hash table / fetch bookkeeping, which
 * consume only addresses.
 */
using TexelAddrSet = std::array<Addr, 8>;

} // namespace pargpu

#endif // PARGPU_COMMON_TYPES_HH
