/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal(): the simulation cannot continue because of a user error (bad
 * configuration, invalid arguments) — exits with status 1.
 * panic(): an internal invariant was violated (a pargpu bug) — aborts.
 * warn()/inform(): non-fatal status messages on stderr.
 */

#ifndef PARGPU_COMMON_LOGGING_HH
#define PARGPU_COMMON_LOGGING_HH

#include <string>

namespace pargpu
{

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal bug and abort(). */
[[noreturn]] void panic(const std::string &msg);

} // namespace pargpu

#endif // PARGPU_COMMON_LOGGING_HH
