/**
 * @file
 * Lightweight named-statistics registry, modelled on simulator stats
 * packages: components register counters under hierarchical dotted names and
 * a harness can dump or query them after a run.
 */

#ifndef PARGPU_COMMON_STATS_HH
#define PARGPU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace pargpu
{

/**
 * A flat registry of named 64-bit counters and double-valued scalars.
 *
 * Components hold a reference to the registry that owns their stats; tests
 * and benches read values back by name. Not thread-safe by design: the
 * simulator is single-threaded.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero if absent). */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set scalar @p name to @p value. */
    void
    set(const std::string &name, double value)
    {
        scalars_[name] = value;
    }

    /** Current value of counter @p name (0 if never incremented). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Current value of scalar @p name (0.0 if never set). */
    double
    scalar(const std::string &name) const
    {
        auto it = scalars_.find(name);
        return it == scalars_.end() ? 0.0 : it->second;
    }

    /** True if a counter with this exact name exists. */
    bool
    hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    /** Reset every counter and scalar to zero / remove them. */
    void
    reset()
    {
        counters_.clear();
        scalars_.clear();
    }

    /** Dump all stats in "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** All registered counters (sorted by name; for iteration in dumps). */
    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
};

} // namespace pargpu

#endif // PARGPU_COMMON_STATS_HH
