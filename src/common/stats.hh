/**
 * @file
 * Named-statistics registry, modelled on simulator stats packages:
 * components register counters, scalars and histograms under hierarchical
 * dotted names ("mem.dram.reads") and a harness can snapshot, dump or
 * serialize them after a run. docs/METRICS.md is the authoritative list of
 * every name registered in this codebase (enforced by pargpu_lint's
 * metrics-doc rule).
 */

#ifndef PARGPU_COMMON_STATS_HH
#define PARGPU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/annotations.hh"

namespace pargpu
{

class Json;

/**
 * Summary of one histogram's observed samples.
 *
 * Quantiles are exact (nearest-rank over the retained samples) as long as
 * at most Histogram::kMaxRetained samples were observed; beyond that the
 * count/sum/min/max stay exact and quantiles describe the retained prefix.
 */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;   ///< Smallest sample (0 when count == 0).
    double max = 0.0;   ///< Largest sample (0 when count == 0).
    double p50 = 0.0;   ///< Median (nearest-rank).
    double p95 = 0.0;   ///< 95th percentile (nearest-rank).

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/**
 * A distribution of double-valued samples with exact count/sum/min/max
 * and nearest-rank quantiles over the retained samples.
 */
class Histogram
{
  public:
    /** Samples retained for exact quantiles; see HistogramSummary. */
    static constexpr std::size_t kMaxRetained = 1 << 16;

    /** Record one sample. */
    void observe(double value);

    /** Current summary (count, sum, min, max, p50, p95). */
    HistogramSummary summary() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_; ///< First kMaxRetained samples.
};

/**
 * A point-in-time copy of a registry's contents, detached from the live
 * (locked) registry so it can be read, diffed and serialized freely.
 */
struct StatSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
    std::map<std::string, HistogramSummary> histograms;

    /** Serialize as {"counters": {...}, "scalars": {...}, "histograms":
     *  {name: {count,sum,min,max,p50,p95}}}. */
    Json toJson() const;

    /**
     * Rebuild a snapshot from toJson() output. Histogram quantiles are
     * restored from the serialized summary (samples are not serialized).
     */
    static StatSnapshot fromJson(const Json &j);
};

/**
 * A registry of named 64-bit counters, double-valued scalars and sample
 * histograms under hierarchical dotted names.
 *
 * Thread-safe: every member takes an internal mutex, so stages running on
 * pool workers may share one registry (the harness snapshots it between
 * runs). For read-modify-write sequences that must be atomic as a whole,
 * callers still need their own synchronization.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero if absent). */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        MutexLock lock(mutex_);
        counters_[name] += delta;
    }

    /**
     * Stable pointer to the cell of counter @p name (created at zero if
     * absent). The address stays valid for the registry's lifetime (the
     * counter map is node-based), so hot paths may cache it and bump the
     * cell directly — bypassing the per-inc() lock and name lookup. Raw
     * cell updates are NOT synchronized: only a single-writer owner (e.g.
     * a per-cluster unit whose results are read after the frame joins)
     * may use them.
     */
    std::uint64_t *
    counterCell(const std::string &name)
    {
        MutexLock lock(mutex_);
        return &counters_[name];
    }

    /** Set scalar @p name to @p value. */
    void
    set(const std::string &name, double value)
    {
        MutexLock lock(mutex_);
        scalars_[name] = value;
    }

    /** Record @p value into histogram @p name (created if absent). */
    void
    observe(const std::string &name, double value)
    {
        MutexLock lock(mutex_);
        histograms_[name].observe(value);
    }

    /** Current value of counter @p name (0 if never incremented). */
    std::uint64_t
    counter(const std::string &name) const
    {
        MutexLock lock(mutex_);
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Current value of scalar @p name (0.0 if never set). */
    double
    scalar(const std::string &name) const
    {
        MutexLock lock(mutex_);
        auto it = scalars_.find(name);
        return it == scalars_.end() ? 0.0 : it->second;
    }

    /** Summary of histogram @p name (zero summary if never observed). */
    HistogramSummary
    histogram(const std::string &name) const
    {
        MutexLock lock(mutex_);
        auto it = histograms_.find(name);
        return it == histograms_.end() ? HistogramSummary{}
                                       : it->second.summary();
    }

    /** True if a counter with this exact name exists. */
    bool
    hasCounter(const std::string &name) const
    {
        MutexLock lock(mutex_);
        return counters_.count(name) != 0;
    }

    /** Reset every counter, scalar and histogram (remove them). */
    void
    reset()
    {
        MutexLock lock(mutex_);
        counters_.clear();
        scalars_.clear();
        histograms_.clear();
    }

    /** Consistent point-in-time copy of everything registered. */
    StatSnapshot snapshot() const;

    /** Dump all stats in "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Dump as an indented tree, grouping names by their dotted segments:
     *
     *   mem
     *     dram
     *       reads 42
     */
    void dumpTree(std::ostream &os) const;

    /** Copy of all counters, sorted by name (for iteration in dumps). */
    std::map<std::string, std::uint64_t>
    counters() const
    {
        MutexLock lock(mutex_);
        return counters_;
    }

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::uint64_t> counters_ PARGPU_GUARDED_BY(mutex_);
    std::map<std::string, double> scalars_ PARGPU_GUARDED_BY(mutex_);
    std::map<std::string, Histogram> histograms_ PARGPU_GUARDED_BY(mutex_);
};

} // namespace pargpu

#endif // PARGPU_COMMON_STATS_HH
