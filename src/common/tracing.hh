/**
 * @file
 * Chrome-trace-format profiling hooks (chrome://tracing / Perfetto).
 *
 * A process-wide collector records complete ("X"), counter ("C") and
 * instant ("i") events with wall-clock microsecond timestamps; writeFile()
 * emits the JSON object format ({"traceEvents": [...]}) that loads
 * directly into chrome://tracing or ui.perfetto.dev.
 *
 * Instrumentation goes through the PARGPU_TRACE_* macros:
 *
 *   PARGPU_TRACE_SCOPE("sim", "frame");            // RAII span
 *   PARGPU_TRACE_SCOPE_F("sim", "draw", idx);      // span + numeric arg
 *   PARGPU_TRACE_COUNTER("mem", "dram.bytes", b);  // counter sample
 *   PARGPU_TRACE_INSTANT("harness", "flush");      // point event
 *
 * Collection is off by default; Tracing::enable() (the harness does this
 * for --trace-out) turns it on at runtime, and a disabled macro costs one
 * relaxed atomic load. Defining PARGPU_TRACING_DISABLED (CMake:
 * -DPARGPU_TRACING=OFF) compiles every macro to nothing, for zero-cost
 * builds; tests/tracing_test.cc pins both properties down. Tracing never
 * feeds back into the simulation: simulated cycle counts are bit-identical
 * with tracing on, off or compiled out.
 */

#ifndef PARGPU_COMMON_TRACING_HH
#define PARGPU_COMMON_TRACING_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace pargpu::trace
{

/** One recorded trace event (chrome trace-event fields). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X';        ///< 'X' complete, 'C' counter, 'i' instant.
    double ts_us = 0.0;   ///< Start timestamp (us since enable()).
    double dur_us = 0.0;  ///< Duration ('X' only).
    std::uint32_t tid = 0;
    bool has_arg = false;
    std::string arg_name; ///< Single numeric argument (optional).
    double arg_value = 0.0;
};

/**
 * The process-wide trace collector.
 *
 * All recording functions are thread-safe; events carry a small
 * per-thread id assigned on first use. The collector buffers events in
 * memory until writeJson()/writeFile().
 */
class Tracing
{
  public:
    /** True when collection is on (macros record only then). */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Start collecting; clears previously buffered events. */
    static void enable();

    /** Stop collecting (buffered events are kept until clear()). */
    static void disable();

    /** Drop all buffered events. */
    static void clear();

    /** Number of buffered events. */
    static std::size_t eventCount();

    /** Microseconds since enable() (monotonic). */
    static double nowUs();

    /**
     * Emit every buffered event, sorted by timestamp, as a chrome
     * trace-event JSON object ({"traceEvents": [...]}). The buffer is
     * left intact.
     */
    static void writeJson(std::ostream &os);

    /** writeJson() to @p path; returns false if the file can't open. */
    static bool writeFile(const std::string &path);

    /** Record a complete ('X') event. No-op when disabled. */
    static void recordComplete(const char *cat, const char *name,
                               double ts_us, double dur_us, bool has_arg,
                               const char *arg_name, double arg_value);

    /** Record a counter ('C') sample. No-op when disabled. */
    static void recordCounter(const char *cat, const char *name,
                              double value);

    /** Record an instant ('i') event. No-op when disabled. */
    static void recordInstant(const char *cat, const char *name);

  private:
    static std::atomic<bool> enabled_;
};

/**
 * RAII span: records a complete event covering its lifetime. Construct
 * via PARGPU_TRACE_SCOPE so the span disappears entirely in
 * PARGPU_TRACING_DISABLED builds.
 */
class Span
{
  public:
    Span(const char *cat, const char *name)
        : active_(Tracing::enabled()), cat_(cat), name_(name)
    {
        if (active_)
            start_us_ = Tracing::nowUs();
    }

    /** Span with one numeric argument (e.g. a frame or draw index). */
    Span(const char *cat, const char *name, const char *arg_name,
         double arg_value)
        : Span(cat, name)
    {
        has_arg_ = true;
        arg_name_ = arg_name;
        arg_value_ = arg_value;
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (active_)
            Tracing::recordComplete(cat_, name_, start_us_,
                                    Tracing::nowUs() - start_us_, has_arg_,
                                    arg_name_, arg_value_);
    }

  private:
    bool active_;
    const char *cat_;
    const char *name_;
    double start_us_ = 0.0;
    bool has_arg_ = false;
    const char *arg_name_ = "";
    double arg_value_ = 0.0;
};

} // namespace pargpu::trace

// Token-pasting helpers so each PARGPU_TRACE_SCOPE gets a unique local.
#define PARGPU_TRACE_CAT2(a, b) a##b
#define PARGPU_TRACE_CAT(a, b) PARGPU_TRACE_CAT2(a, b)

#ifndef PARGPU_TRACING_DISABLED

/** RAII span for the rest of the enclosing scope. */
#define PARGPU_TRACE_SCOPE(cat, name)                                      \
    ::pargpu::trace::Span PARGPU_TRACE_CAT(pargpu_trace_span_,             \
                                           __LINE__)(cat, name)

/** RAII span carrying one numeric argument. */
#define PARGPU_TRACE_SCOPE_F(cat, name, value)                             \
    ::pargpu::trace::Span PARGPU_TRACE_CAT(pargpu_trace_span_, __LINE__)(  \
        cat, name, "value", static_cast<double>(value))

/** Counter sample (renders as a track in chrome://tracing). */
#define PARGPU_TRACE_COUNTER(cat, name, value)                             \
    do {                                                                   \
        if (::pargpu::trace::Tracing::enabled())                           \
            ::pargpu::trace::Tracing::recordCounter(                       \
                cat, name, static_cast<double>(value));                    \
    } while (0)

/** Zero-duration point event. */
#define PARGPU_TRACE_INSTANT(cat, name)                                    \
    do {                                                                   \
        if (::pargpu::trace::Tracing::enabled())                           \
            ::pargpu::trace::Tracing::recordInstant(cat, name);            \
    } while (0)

#else // PARGPU_TRACING_DISABLED

#define PARGPU_TRACE_SCOPE(cat, name)                                      \
    do {                                                                   \
    } while (0)
#define PARGPU_TRACE_SCOPE_F(cat, name, value)                             \
    do {                                                                   \
    } while (0)
#define PARGPU_TRACE_COUNTER(cat, name, value)                             \
    do {                                                                   \
    } while (0)
#define PARGPU_TRACE_INSTANT(cat, name)                                    \
    do {                                                                   \
    } while (0)

#endif // PARGPU_TRACING_DISABLED

#endif // PARGPU_COMMON_TRACING_HH
