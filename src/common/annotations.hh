/**
 * @file
 * Clang Thread Safety Analysis vocabulary — the one set of annotation
 * macros used across the tree (docs/ANALYSIS.md, "Thread-safety
 * annotations").
 *
 * The macros expand to clang's thread-safety attributes under clang and
 * to nothing elsewhere, so GCC builds are byte-identical with or without
 * them. A clang build configured with `-DPARGPU_TSA=ON` turns the
 * analysis into hard errors (`-Wthread-safety -Werror=thread-safety`);
 * scripts/check.sh runs that build when clang is available and prints a
 * uniform `SKIP:` line when it is not.
 *
 * Three layers live here:
 *
 *  1. Raw attribute macros (PARGPU_CAPABILITY, PARGPU_GUARDED_BY,
 *     PARGPU_REQUIRES, PARGPU_EXCLUDES, ...) for annotating any class or
 *     function.
 *  2. Mutex / MutexLock / UniqueLock — a std::mutex wrapper that *is* a
 *     capability, plus the two RAII shapes the tree needs (plain scope
 *     lock, and a relockable lock for condition_variable_any waits).
 *     libstdc++'s std::mutex carries no capability attributes, so
 *     annotated modules must hold their state behind this wrapper for
 *     the analysis to see acquisitions.
 *  3. PhaseCapability / PhaseGuard — a zero-cost "fake" capability for
 *     execution-phase disciplines that are enforced by structure rather
 *     than by a runtime lock (e.g. the MemorySystem serial commit phase
 *     during tile-parallel rendering). Acquire/release are no-ops; the
 *     value is that clang can prove a worker-thread code path never
 *     reaches a shared-state function that requires the phase.
 */

#ifndef PARGPU_COMMON_ANNOTATIONS_HH
#define PARGPU_COMMON_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define PARGPU_TSA_ATTR_(x) __attribute__((x))
#else
#define PARGPU_TSA_ATTR_(x)
#endif

/** Marks a class as a capability (lock role) named @p name. */
#define PARGPU_CAPABILITY(name) PARGPU_TSA_ATTR_(capability(name))

/** Marks a RAII class that acquires in its ctor and releases in its dtor. */
#define PARGPU_SCOPED_CAPABILITY PARGPU_TSA_ATTR_(scoped_lockable)

/** Data member readable/writable only while holding capability @p x. */
#define PARGPU_GUARDED_BY(x) PARGPU_TSA_ATTR_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by capability @p x. */
#define PARGPU_PT_GUARDED_BY(x) PARGPU_TSA_ATTR_(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define PARGPU_REQUIRES(...) \
    PARGPU_TSA_ATTR_(requires_capability(__VA_ARGS__))

/** Function that must be called with the listed capabilities NOT held. */
#define PARGPU_EXCLUDES(...) PARGPU_TSA_ATTR_(locks_excluded(__VA_ARGS__))

/** Function that acquires the listed capabilities (its own, if empty). */
#define PARGPU_ACQUIRE(...) \
    PARGPU_TSA_ATTR_(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities (its own, if empty). */
#define PARGPU_RELEASE(...) \
    PARGPU_TSA_ATTR_(release_capability(__VA_ARGS__))

/** Function that acquires on the given return value (e.g. true). */
#define PARGPU_TRY_ACQUIRE(...) \
    PARGPU_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))

/** Runtime assertion that capability @p x is held (no acquisition). */
#define PARGPU_ASSERT_CAPABILITY(x) PARGPU_TSA_ATTR_(assert_capability(x))

/** Function returning a reference to capability @p x. */
#define PARGPU_RETURN_CAPABILITY(x) PARGPU_TSA_ATTR_(lock_returned(x))

/** Opts a function out of the analysis (justify at the use site). */
#define PARGPU_NO_TSA PARGPU_TSA_ATTR_(no_thread_safety_analysis)

namespace pargpu
{

/**
 * A std::mutex that clang's thread-safety analysis can track. Drop-in
 * for the modules' internal locks; see MutexLock / UniqueLock for the
 * RAII forms.
 */
class PARGPU_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() PARGPU_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() PARGPU_RELEASE()
    {
        mu_.unlock();
    }

    bool
    try_lock() PARGPU_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    std::mutex mu_;
};

/** std::lock_guard equivalent over Mutex, visible to the analysis. */
class PARGPU_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) PARGPU_ACQUIRE(mu)
        : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() PARGPU_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Relockable scope lock: like MutexLock but with lock()/unlock() so it
 * satisfies BasicLockable — pass it to std::condition_variable_any::wait,
 * which unlocks around the block and returns with the lock re-held (the
 * analysis therefore sees the capability held across the wait, which is
 * the correct model for the waiting code).
 */
class PARGPU_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) PARGPU_ACQUIRE(mu)
        : mu_(mu), held_(true)
    {
        mu_.lock();
    }

    ~UniqueLock() PARGPU_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    void
    lock() PARGPU_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

    void
    unlock() PARGPU_RELEASE()
    {
        held_ = false;
        mu_.unlock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    Mutex &mu_;
    bool held_;
};

/**
 * A capability with no runtime lock behind it, for phase disciplines
 * enforced by program structure: the holder is whichever code runs in
 * the phase, and PhaseGuard marks the phase's extent. acquire()/release()
 * compile to nothing; under clang TSA, functions annotated
 * PARGPU_REQUIRES(phase) are provably unreachable from code that does
 * not sit inside a PhaseGuard (or assertHeld()) scope.
 */
class PARGPU_CAPABILITY("phase") PhaseCapability
{
  public:
    void acquire() PARGPU_ACQUIRE() {}
    void release() PARGPU_RELEASE() {}

    /**
     * Declare (to the analysis only) that the phase is active here — for
     * code such as per-item callbacks that clang analyzes as separate
     * functions but that only ever run inside the guarded phase.
     */
    void assertHeld() const PARGPU_ASSERT_CAPABILITY(this) {}
};

/** RAII extent of a PhaseCapability. Zero runtime cost. */
class PARGPU_SCOPED_CAPABILITY PhaseGuard
{
  public:
    explicit PhaseGuard(PhaseCapability &phase) PARGPU_ACQUIRE(phase)
        : phase_(phase)
    {
        phase_.acquire();
    }

    ~PhaseGuard() PARGPU_RELEASE() { phase_.release(); }

    PhaseGuard(const PhaseGuard &) = delete;
    PhaseGuard &operator=(const PhaseGuard &) = delete;

  private:
    PhaseCapability &phase_;
};

} // namespace pargpu

#endif // PARGPU_COMMON_ANNOTATIONS_HH
