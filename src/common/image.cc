#include "common/image.hh"

#include <cstdio>
#include <cstring>

namespace pargpu
{

Image::Image(int width, int height, const Color4f &fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
}

std::vector<float>
Image::lumaPlane() const
{
    std::vector<float> luma(pixels_.size());
    for (std::size_t i = 0; i < pixels_.size(); ++i)
        luma[i] = pixels_[i].luma();
    return luma;
}

bool
Image::writePPM(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            RGBA8 p = packRGBA8(at(x, y));
            row[x * 3 + 0] = p.r;
            row[x * 3 + 1] = p.g;
            row[x * 3 + 2] = p.b;
        }
        if (std::fwrite(row.data(), 1, row.size(), f) != row.size()) {
            std::fclose(f);
            return false;
        }
    }
    std::fclose(f);
    return true;
}

namespace
{

// Skip PPM whitespace and '#' comments; returns the next token in buf.
bool
readToken(std::FILE *f, char *buf, std::size_t cap)
{
    int c;
    do {
        c = std::fgetc(f);
        if (c == '#') {
            while (c != EOF && c != '\n')
                c = std::fgetc(f);
        }
    } while (c == ' ' || c == '\t' || c == '\n' || c == '\r');
    if (c == EOF)
        return false;
    std::size_t n = 0;
    while (c != EOF && c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        if (n + 1 < cap)
            buf[n++] = static_cast<char>(c);
        c = std::fgetc(f);
    }
    buf[n] = '\0';
    return n > 0;
}

} // namespace

Image
Image::readPPM(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char tok[32];
    if (!readToken(f, tok, sizeof(tok)) || std::strcmp(tok, "P6") != 0) {
        std::fclose(f);
        return {};
    }
    int w = 0, h = 0, maxval = 0;
    if (!readToken(f, tok, sizeof(tok))) { std::fclose(f); return {}; }
    w = std::atoi(tok);
    if (!readToken(f, tok, sizeof(tok))) { std::fclose(f); return {}; }
    h = std::atoi(tok);
    if (!readToken(f, tok, sizeof(tok))) { std::fclose(f); return {}; }
    maxval = std::atoi(tok);
    if (w <= 0 || h <= 0 || maxval != 255) {
        std::fclose(f);
        return {};
    }
    Image img(w, h);
    std::vector<unsigned char> row(static_cast<std::size_t>(w) * 3);
    for (int y = 0; y < h; ++y) {
        if (std::fread(row.data(), 1, row.size(), f) != row.size()) {
            std::fclose(f);
            return {};
        }
        for (int x = 0; x < w; ++x) {
            img.at(x, y) = unpackRGBA8(
                {row[x * 3 + 0], row[x * 3 + 1], row[x * 3 + 2], 255});
        }
    }
    std::fclose(f);
    return img;
}

} // namespace pargpu
