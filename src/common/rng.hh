/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element in the repository (procedural textures, scene
 * jitter, simulated user-study raters) draws from these generators with an
 * explicit seed so results reproduce bit-exactly across runs and machines.
 */

#ifndef PARGPU_COMMON_RNG_HH
#define PARGPU_COMMON_RNG_HH

#include <cstdint>

namespace pargpu
{

/**
 * SplitMix64: tiny, high-quality 64-bit generator.
 *
 * Chosen over std::mt19937 because its output is specified by construction
 * (no library-dependent state layout) and it seeds well from small integers.
 */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    constexpr std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform float in [0, 1). */
    constexpr float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) * (1.0f / (1 << 24));
    }

    /** Uniform float in [lo, hi). */
    constexpr float
    nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    constexpr std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /**
     * Approximately standard-normal deviate (sum of 4 uniforms, variance
     * corrected). Adequate for rater-noise modelling; avoids libm calls.
     */
    constexpr float
    nextGaussian()
    {
        float s = 0.0f;
        for (int i = 0; i < 4; ++i)
            s += nextFloat();
        // Sum of 4 U(0,1): mean 2, variance 4/12.
        return (s - 2.0f) * 1.7320508f;
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless integer hash (Wang-style avalanche). Used for value noise where
 * a reproducible pseudo-random value per lattice point is needed.
 */
constexpr std::uint32_t
hashCombine(std::uint32_t x, std::uint32_t y, std::uint32_t seed)
{
    std::uint32_t h = seed;
    h ^= x * 0x85EBCA6Bu;
    h = (h << 13) | (h >> 19);
    h = h * 5u + 0xE6546B64u;
    h ^= y * 0xC2B2AE35u;
    h ^= h >> 16;
    h *= 0x7FEB352Du;
    h ^= h >> 15;
    h *= 0x846CA68Bu;
    h ^= h >> 16;
    return h;
}

} // namespace pargpu

#endif // PARGPU_COMMON_RNG_HH
