#include "common/threadpool.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "common/annotations.hh"

namespace pargpu
{

namespace
{

thread_local bool tl_in_worker = false;

std::atomic<unsigned> g_default_override{0};

} // namespace

/** One parallelFor() invocation: a chunk counter shared by all runners. */
struct ForJob
{
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t n_chunks = 0;
    const std::function<void(std::size_t)> *fn = nullptr;

    std::atomic<std::size_t> next{0};      ///< Next chunk to claim.
    std::atomic<std::size_t> completed{0}; ///< Chunks fully executed.
    std::vector<std::exception_ptr> errors;

    Mutex done_mu;
    std::condition_variable_any done_cv; ///< Waits on the annotated Mutex.

    /**
     * Claim and run chunks until the counter is exhausted. Safe to call
     * from any number of threads; a runner arriving after exhaustion
     * returns immediately without touching fn (which may be gone by then).
     */
    void
    drain()
    {
        for (;;) {
            std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= n_chunks)
                return;
            try {
                std::size_t lo = c * chunk;
                std::size_t hi = std::min(n, lo + chunk);
                for (std::size_t i = lo; i < hi; ++i)
                    (*fn)(i);
            } catch (...) {
                errors[c] = std::current_exception();
            }
            if (completed.fetch_add(1) + 1 == n_chunks) {
                MutexLock lk(done_mu);
                done_cv.notify_all();
            }
        }
    }
};

struct ThreadPool::Impl
{
    mutable Mutex mu;
    std::condition_variable_any cv; ///< Waits on the annotated Mutex.
    std::deque<std::shared_ptr<ForJob>> queue PARGPU_GUARDED_BY(mu);
    std::vector<std::thread> workers PARGPU_GUARDED_BY(mu);
    bool stop PARGPU_GUARDED_BY(mu) = false;

    void
    workerLoop()
    {
        tl_in_worker = true;
        for (;;) {
            std::shared_ptr<ForJob> job;
            {
                UniqueLock lk(mu);
                // Explicit wait loop (not the predicate overload) so the
                // guarded reads of stop/queue sit visibly under the lock.
                while (!stop && queue.empty())
                    cv.wait(lk);
                if (stop && queue.empty())
                    return;
                job = std::move(queue.front());
                queue.pop_front();
            }
            job->drain();
        }
    }

    void
    spawn(unsigned count) PARGPU_REQUIRES(mu)
    {
        for (unsigned i = 0; i < count; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }
};

ThreadPool::ThreadPool(unsigned workers)
    : impl_(std::make_unique<Impl>())
{
    MutexLock lk(impl_->mu);
    impl_->spawn(workers);
}

ThreadPool::~ThreadPool()
{
    // Swap the worker list out under the lock, then join without it: a
    // worker draining the queue needs the mutex to observe stop, so
    // joining while holding it would deadlock.
    std::vector<std::thread> workers;
    {
        MutexLock lk(impl_->mu);
        impl_->stop = true;
        workers.swap(impl_->workers);
    }
    impl_->cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

unsigned
ThreadPool::workerCount() const
{
    MutexLock lk(impl_->mu);
    return static_cast<unsigned>(impl_->workers.size());
}

void
ThreadPool::ensureWorkers(unsigned workers)
{
    MutexLock lk(impl_->mu);
    if (impl_->workers.size() < workers)
        impl_->spawn(workers - static_cast<unsigned>(impl_->workers.size()));
}

void
ThreadPool::parallelFor(std::size_t n, std::size_t chunk,
                        const std::function<void(std::size_t)> &fn,
                        unsigned max_threads)
{
    if (n == 0)
        return;
    if (chunk == 0)
        chunk = 1;
    const std::size_t n_chunks = (n + chunk - 1) / chunk;

    // Serial fallbacks: nested call on a worker, no workers, a cap of one
    // thread, or nothing to hand out. Exceptions propagate directly.
    if (tl_in_worker || n_chunks <= 1 || max_threads == 1 ||
        workerCount() == 0) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->n = n;
    job->chunk = chunk;
    job->n_chunks = n_chunks;
    job->fn = &fn;
    job->errors.resize(n_chunks);

    // Helpers beyond the caller, bounded by the cap, the pool size, and
    // the number of chunks someone other than the caller could run.
    unsigned helpers = workerCount();
    if (max_threads != 0)
        helpers = std::min(helpers, max_threads - 1);
    helpers = std::min<std::size_t>(helpers, n_chunks - 1);

    {
        MutexLock lk(impl_->mu);
        for (unsigned i = 0; i < helpers; ++i)
            impl_->queue.push_back(job);
    }
    if (helpers == 1)
        impl_->cv.notify_one();
    else
        impl_->cv.notify_all();

    job->drain(); // Caller participates.

    {
        UniqueLock lk(job->done_mu);
        while (job->completed.load() < job->n_chunks)
            job->done_cv.wait(lk);
    }

    for (std::exception_ptr &e : job->errors)
        if (e)
            std::rethrow_exception(e);
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned o = g_default_override.load(std::memory_order_relaxed);
    if (o > 0)
        return o;
    static const unsigned env_threads = [] {
        const char *v = std::getenv("PARGPU_THREADS");
        if (v) {
            int n = std::atoi(v);
            if (n > 0)
                return static_cast<unsigned>(n);
        }
        return 0u;
    }();
    if (env_threads > 0)
        return env_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ThreadPool::setDefaultThreads(unsigned n)
{
    g_default_override.store(n, std::memory_order_relaxed);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreads() - 1);
    return pool;
}

bool
ThreadPool::inWorker()
{
    return tl_in_worker;
}

void
ThreadPool::run(std::size_t n, std::size_t chunk,
                const std::function<void(std::size_t)> &fn,
                unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    if (n == 0)
        return;
    if (threads <= 1 || tl_in_worker || n <= std::max<std::size_t>(chunk, 1)) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool &pool = global();
    pool.ensureWorkers(threads - 1);
    pool.parallelFor(n, chunk, fn, threads);
}

} // namespace pargpu
