/**
 * @file
 * Minimal JSON value type with a writer and a strict parser.
 *
 * Backs the observability layer: the metrics exporter and the stats
 * registry serialize through Json::dump(), and tests round-trip emitted
 * files through Json::parse() to validate structure (chrome-trace events,
 * metrics schema). Numbers are stored as doubles, which is exact for the
 * integer counters the simulator produces up to 2^53 — far beyond any
 * realistic run.
 */

#ifndef PARGPU_COMMON_JSON_HH
#define PARGPU_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pargpu
{

/**
 * A JSON value: null, bool, number, string, array or object.
 *
 * Objects keep their members sorted by key (std::map), so dumps are
 * deterministic regardless of insertion order.
 */
class Json
{
  public:
    /** The JSON value kinds. */
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(int n) : type_(Type::Number), num_(n) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array value. */
    static Json array();
    /** An empty object value. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isBool() const { return type_ == Type::Bool; }

    /** Numeric value (0.0 unless isNumber()). */
    double number() const { return num_; }
    /** Boolean value (false unless isBool()). */
    bool boolean() const { return bool_; }
    /** String value (empty unless isString()). */
    const std::string &str() const { return str_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Json> &items() const { return arr_; }
    /** Object members (empty unless isObject()). */
    const std::map<std::string, Json> &members() const { return obj_; }

    /** Append @p v to an array (converts a null value to an array). */
    void push(Json v);

    /** Set object member @p key (converts a null value to an object). */
    void set(const std::string &key, Json v);

    /** True if this object has member @p key. */
    bool has(const std::string &key) const;

    /**
     * Member lookup; returns a shared null value when absent or when this
     * is not an object, so lookups chain without exceptions.
     */
    const Json &operator[](const std::string &key) const;

    /** Element lookup; shared null value when out of range. */
    const Json &operator[](std::size_t i) const;

    /**
     * Serialize. @p indent < 0 gives the compact single-line form;
     * otherwise members/elements are newline-separated with @p indent
     * spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text as a single JSON document.
     *
     * On failure returns a null value and, when @p error is non-null,
     * stores a short description with the byte offset. Trailing
     * non-whitespace after the document is an error.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace pargpu

#endif // PARGPU_COMMON_JSON_HH
