#include "common/stats.hh"

#include <algorithm>

#include "common/json.hh"

namespace pargpu
{

namespace
{

/** Nearest-rank percentile of an ascending-sorted sample vector. */
double
percentileSorted(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    // Nearest-rank: the smallest value with at least pct of the mass at
    // or below it; rank ceil(pct/100 * n), 1-based.
    double rank_f = pct / 100.0 * static_cast<double>(sorted.size());
    std::size_t rank = static_cast<std::size_t>(rank_f);
    if (static_cast<double>(rank) < rank_f)
        ++rank;
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

/**
 * Emit one tree level: all names sharing the segment prefix [begin, end).
 * Names are already sorted, so equal segments are adjacent.
 */
template <typename Map>
void
dumpTreeLevel(std::ostream &os, const Map &values,
              typename Map::const_iterator begin,
              typename Map::const_iterator end, std::size_t seg_start,
              int depth)
{
    auto it = begin;
    while (it != end) {
        const std::string &name = it->first;
        std::size_t dot = name.find('.', seg_start);
        std::string seg = name.substr(
            seg_start,
            dot == std::string::npos ? std::string::npos : dot - seg_start);

        // Range of names sharing this segment at this level.
        auto last = it;
        while (last != end) {
            const std::string &n = last->first;
            std::size_t d = n.find('.', seg_start);
            std::string s = n.substr(
                seg_start,
                d == std::string::npos ? std::string::npos : d - seg_start);
            if (s != seg)
                break;
            ++last;
        }

        for (int i = 0; i < depth; ++i)
            os << "  ";
        if (dot == std::string::npos && std::next(it) == last) {
            os << seg << " " << it->second << "\n";
        } else {
            os << seg << "\n";
            dumpTreeLevel(os, values, it, last, seg_start + seg.size() + 1,
                          depth + 1);
        }
        it = last;
    }
}

} // namespace

void
Histogram::observe(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (samples_.size() < kMaxRetained)
        samples_.push_back(value);
}

HistogramSummary
Histogram::summary() const
{
    HistogramSummary s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.p50 = percentileSorted(sorted, 50.0);
    s.p95 = percentileSorted(sorted, 95.0);
    return s;
}

Json
StatSnapshot::toJson() const
{
    Json counters_j = Json::object();
    for (const auto &[name, value] : counters)
        counters_j.set(name, Json{value});

    Json scalars_j = Json::object();
    for (const auto &[name, value] : scalars)
        scalars_j.set(name, Json{value});

    Json hists_j = Json::object();
    for (const auto &[name, h] : histograms) {
        Json hj = Json::object();
        hj.set("count", Json{h.count});
        hj.set("sum", Json{h.sum});
        hj.set("min", Json{h.min});
        hj.set("max", Json{h.max});
        hj.set("p50", Json{h.p50});
        hj.set("p95", Json{h.p95});
        hists_j.set(name, std::move(hj));
    }

    Json out = Json::object();
    out.set("counters", std::move(counters_j));
    out.set("scalars", std::move(scalars_j));
    out.set("histograms", std::move(hists_j));
    return out;
}

StatSnapshot
StatSnapshot::fromJson(const Json &j)
{
    StatSnapshot s;
    for (const auto &[name, v] : j["counters"].members())
        s.counters[name] = static_cast<std::uint64_t>(v.number());
    for (const auto &[name, v] : j["scalars"].members())
        s.scalars[name] = v.number();
    for (const auto &[name, v] : j["histograms"].members()) {
        HistogramSummary h;
        h.count = static_cast<std::uint64_t>(v["count"].number());
        h.sum = v["sum"].number();
        h.min = v["min"].number();
        h.max = v["max"].number();
        h.p50 = v["p50"].number();
        h.p95 = v["p95"].number();
        s.histograms[name] = h;
    }
    return s;
}

StatSnapshot
StatRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    StatSnapshot s;
    s.counters = counters_;
    s.scalars = scalars_;
    for (const auto &[name, h] : histograms_)
        s.histograms[name] = h.summary();
    return s;
}

void
StatRegistry::dump(std::ostream &os) const
{
    StatSnapshot s = snapshot();
    for (const auto &[name, value] : s.counters)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : s.scalars)
        os << name << " " << value << "\n";
    for (const auto &[name, h] : s.histograms) {
        os << name << " count=" << h.count << " mean=" << h.mean()
           << " p50=" << h.p50 << " p95=" << h.p95 << " max=" << h.max
           << "\n";
    }
}

void
StatRegistry::dumpTree(std::ostream &os) const
{
    StatSnapshot s = snapshot();
    // Merge counters and scalars into one printable map; histograms print
    // as their summary line under their own name.
    std::map<std::string, std::string> flat;
    for (const auto &[name, value] : s.counters)
        flat[name] = std::to_string(value);
    for (const auto &[name, value] : s.scalars)
        flat[name] = std::to_string(value);
    for (const auto &[name, h] : s.histograms)
        flat[name] = "count=" + std::to_string(h.count) +
            " p50=" + std::to_string(h.p50) +
            " p95=" + std::to_string(h.p95) +
            " max=" + std::to_string(h.max);
    dumpTreeLevel(os, flat, flat.begin(), flat.end(), 0, 0);
}

} // namespace pargpu
