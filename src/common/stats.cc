#include "common/stats.hh"

namespace pargpu
{

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalars_)
        os << name << " " << value << "\n";
}

} // namespace pargpu
