/**
 * @file
 * Runtime contract (invariant) subsystem.
 *
 * Three statement macros guard the pipeline's internal state:
 *
 *  - PARGPU_ASSERT(cond, ...)      — a local precondition on one call.
 *  - PARGPU_INVARIANT(cond, ...)   — a structural property of component
 *                                    state that must hold across calls.
 *  - PARGPU_CHECK_RANGE(v, lo, hi, ...) — inclusive-range shorthand.
 *
 * The trailing arguments are streamed into the violation message
 * (`PARGPU_ASSERT(n >= 1, "n=", n)`), so diagnostics carry the live
 * values without any formatting cost on the non-failing path.
 *
 * Every macro expansion owns one registered ContractSite whose evaluation
 * count feeds the ContractStats report (see statsReport()); the harness
 * dumps it at exit when PARGPU_CONTRACT_REPORT is set in the environment.
 *
 * Checks are compiled in when PARGPU_CHECKS is defined (the
 * -DPARGPU_CHECKS=ON CMake option) or in Debug builds (NDEBUG unset), and
 * compile to true no-ops otherwise: the condition and message operands
 * are parsed but never evaluated, so a plain Release build pays zero
 * cycles and zero code size. Per-TU overrides PARGPU_FORCE_CHECKED /
 * PARGPU_FORCE_UNCHECKED exist so the contract tests can exercise both
 * behaviors inside a single build configuration.
 *
 * A violation formats the message and calls the installed failure
 * handler, which by default prints the site and aborts (a contract
 * violation is a pargpu bug, never a user error). Tests install a
 * throwing handler via ScopedFailHandler to observe violations
 * in-process.
 */

#ifndef PARGPU_COMMON_CONTRACT_HH
#define PARGPU_COMMON_CONTRACT_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(PARGPU_FORCE_CHECKED)
#define PARGPU_CHECKS_ACTIVE 1
#elif defined(PARGPU_FORCE_UNCHECKED)
#define PARGPU_CHECKS_ACTIVE 0
#elif defined(PARGPU_CHECKS) || !defined(NDEBUG)
#define PARGPU_CHECKS_ACTIVE 1
#else
#define PARGPU_CHECKS_ACTIVE 0
#endif

namespace pargpu
{
namespace contract
{

/** What kind of contract a site expresses (affects only reporting). */
enum class Kind
{
    Assert,
    Invariant,
    Range,
};

/** Printable name of a contract kind. */
const char *kindName(Kind kind);

/**
 * One static macro-expansion site. Registered with the global registry on
 * first execution; the evaluation counter is relaxed-atomic so checked
 * builds stay thread-safe on the pool without serializing the hot path.
 */
class Site
{
  public:
    Site(Kind kind, const char *file, int line, const char *expr);

    Kind kind() const { return kind_; }
    const char *file() const { return file_; }
    int line() const { return line_; }
    const char *expr() const { return expr_; }

    /** Times the contract was evaluated (pass or fail). */
    std::uint64_t
    checks() const
    {
        return checks_.load(std::memory_order_relaxed);
    }

    /** Count one evaluation (called by the macros). */
    void
    countCheck()
    {
        checks_.fetch_add(1, std::memory_order_relaxed);
    }

    void resetCount() { checks_.store(0, std::memory_order_relaxed); }

  private:
    Kind kind_;
    const char *file_;
    int line_;
    const char *expr_;
    std::atomic<std::uint64_t> checks_{0};
};

/** Aggregate view of every registered contract site. */
struct ContractStats
{
    std::size_t sites = 0;            ///< Registered macro sites.
    std::uint64_t checks = 0;         ///< Total evaluations across sites.
    std::uint64_t violations = 0;     ///< Contracts that fired.

    /** Per-site rows, ordered by (file, line). */
    struct Row
    {
        Kind kind;
        std::string file;
        int line;
        std::string expr;
        std::uint64_t checks;
    };
    std::vector<Row> rows;
};

/** Snapshot the current contract statistics. */
ContractStats stats();

/** Zero every site's evaluation counter and the violation count. */
void resetStats();

/**
 * Write a human-readable ContractStats table to @p os (sites that never
 * evaluated are summarized, not listed). Used by the harness's
 * PARGPU_CONTRACT_REPORT hook and by scripts/check.sh.
 */
void statsReport(std::ostream &os);

/** Thrown by the ScopedFailHandler installed in tests. */
class ContractViolation : public std::logic_error
{
  public:
    explicit ContractViolation(const std::string &what)
        : std::logic_error(what)
    {
    }
};

/** Failure handler: receives the site and the formatted message. */
using FailHandler = void (*)(const Site &site, const std::string &msg);

/**
 * Install @p handler for subsequent violations; returns the previous
 * handler. Passing nullptr restores the default print-and-abort handler.
 */
FailHandler setFailHandler(FailHandler handler);

/**
 * RAII: route violations into ContractViolation exceptions for the
 * lifetime of the object (tests only — production code never catches
 * contract failures).
 */
class ScopedFailHandler
{
  public:
    ScopedFailHandler();
    ~ScopedFailHandler();

    ScopedFailHandler(const ScopedFailHandler &) = delete;
    ScopedFailHandler &operator=(const ScopedFailHandler &) = delete;

  private:
    FailHandler prev_;
};

/** Count and dispatch a violation at @p site (called by the macros). */
[[noreturn]] void fail(Site &site, const std::string &msg);

namespace detail
{

/** Stream every message operand into one string (no-args → empty). */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string();
    } else {
        std::ostringstream os;
        (os << ... << args);
        return os.str();
    }
}

/**
 * Swallow operands unevaluated in unchecked builds: the call sits behind
 * `if (false)`, keeping names ODR-used (no -Wunused warnings, operands
 * still type-checked) while the optimizer deletes it entirely.
 */
template <typename... Args>
inline void
ignore(const Args &...)
{
}

} // namespace detail
} // namespace contract
} // namespace pargpu

#if PARGPU_CHECKS_ACTIVE

/*
 * -Wtype-limits is suppressed around the condition so that range checks
 * against an unsigned zero lower bound (always-true subexpression) stay
 * expressible; the check's other half still does the work.
 */
#define PARGPU_CONTRACT_IMPL_(kind, cond, ...)                               \
    do {                                                                     \
        /* Paren-init: a brace-init's commas would split the argument    */  \
        /* lists of wrapping macros (e.g. GTest's EXPECT_THROW).         */  \
        static ::pargpu::contract::Site pargpu_contract_site_(               \
            kind, __FILE__, __LINE__, #cond);                                \
        pargpu_contract_site_.countCheck();                                  \
        _Pragma("GCC diagnostic push")                                       \
        _Pragma("GCC diagnostic ignored \"-Wtype-limits\"")                  \
        const bool pargpu_contract_ok_ = static_cast<bool>(cond);            \
        _Pragma("GCC diagnostic pop")                                        \
        if (!pargpu_contract_ok_) {                                          \
            ::pargpu::contract::fail(                                        \
                pargpu_contract_site_,                                       \
                ::pargpu::contract::detail::formatMessage(__VA_ARGS__));     \
        }                                                                    \
    } while (0)

/** Precondition check; extra args are streamed into the message. */
#define PARGPU_ASSERT(cond, ...)                                             \
    PARGPU_CONTRACT_IMPL_(::pargpu::contract::Kind::Assert, cond,            \
                          __VA_ARGS__)

/** Structural state invariant; extra args are streamed into the message. */
#define PARGPU_INVARIANT(cond, ...)                                          \
    PARGPU_CONTRACT_IMPL_(::pargpu::contract::Kind::Invariant, cond,         \
                          __VA_ARGS__)

/** Inclusive range check lo <= value <= hi. */
#define PARGPU_CHECK_RANGE(value, lo, hi, ...)                               \
    PARGPU_CONTRACT_IMPL_(::pargpu::contract::Kind::Range,                   \
                          (value) >= (lo) && (value) <= (hi),                \
                          "value=", (value), " range=[", (lo), ", ", (hi),   \
                          "] ", ::pargpu::contract::detail::formatMessage(   \
                                    __VA_ARGS__))

#else // !PARGPU_CHECKS_ACTIVE

#define PARGPU_CONTRACT_NOOP_(cond, ...)                                     \
    do {                                                                     \
        _Pragma("GCC diagnostic push")                                       \
        _Pragma("GCC diagnostic ignored \"-Wtype-limits\"")                  \
        if (false) {                                                         \
            ::pargpu::contract::detail::ignore(                              \
                (cond)__VA_OPT__(, ) __VA_ARGS__);                           \
        }                                                                    \
        _Pragma("GCC diagnostic pop")                                        \
    } while (0)

#define PARGPU_ASSERT(cond, ...)                                             \
    PARGPU_CONTRACT_NOOP_(cond __VA_OPT__(, ) __VA_ARGS__)
#define PARGPU_INVARIANT(cond, ...)                                          \
    PARGPU_CONTRACT_NOOP_(cond __VA_OPT__(, ) __VA_ARGS__)
#define PARGPU_CHECK_RANGE(value, lo, hi, ...)                               \
    PARGPU_CONTRACT_NOOP_((value) >= (lo) &&                                 \
                          (value) <= (hi)__VA_OPT__(, ) __VA_ARGS__)

#endif // PARGPU_CHECKS_ACTIVE

#endif // PARGPU_COMMON_CONTRACT_HH
