/**
 * @file
 * RGBA color representations used across the texture and raster pipelines.
 *
 * The functional pipeline filters in float; texture memory stores packed
 * 8-bit RGBA texels (4 bytes/texel), which is what the address calculators
 * and caches operate on.
 */

#ifndef PARGPU_COMMON_COLOR_HH
#define PARGPU_COMMON_COLOR_HH

#include <algorithm>
#include <cstdint>

namespace pargpu
{

/** Four-component floating-point color, each channel nominally in [0, 1]. */
struct Color4f
{
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;
    float a = 1.0f;

    constexpr Color4f() = default;
    constexpr Color4f(float rv, float gv, float bv, float av = 1.0f)
        : r(rv), g(gv), b(bv), a(av) {}

    constexpr Color4f operator+(const Color4f &o) const
    { return {r + o.r, g + o.g, b + o.b, a + o.a}; }
    constexpr Color4f operator-(const Color4f &o) const
    { return {r - o.r, g - o.g, b - o.b, a - o.a}; }
    constexpr Color4f operator*(float s) const
    { return {r * s, g * s, b * s, a * s}; }
    constexpr Color4f operator*(const Color4f &o) const
    { return {r * o.r, g * o.g, b * o.b, a * o.a}; }
    constexpr Color4f &operator+=(const Color4f &o)
    { r += o.r; g += o.g; b += o.b; a += o.a; return *this; }

    /** Clamp all channels into [0, 1]. */
    Color4f
    clamped() const
    {
        auto c = [](float v) { return std::clamp(v, 0.0f, 1.0f); };
        return {c(r), c(g), c(b), c(a)};
    }

    /**
     * Rec.601 luma of the clamped color; the quality layer computes SSIM on
     * this channel, matching common SSIM practice.
     */
    float
    luma() const
    {
        Color4f c = clamped();
        return 0.299f * c.r + 0.587f * c.g + 0.114f * c.b;
    }
};

/** Packed 8-bit-per-channel RGBA texel as stored in texture memory. */
struct RGBA8
{
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;
    std::uint8_t a = 255;

    /** Bytes per packed texel; drives texel address arithmetic. */
    static constexpr unsigned kBytes = 4;
};

/** Quantize a float color to packed RGBA8 (round-to-nearest). */
inline RGBA8
packRGBA8(const Color4f &c)
{
    auto q = [](float v) {
        return static_cast<std::uint8_t>(
            std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
    };
    return {q(c.r), q(c.g), q(c.b), q(c.a)};
}

/** Expand a packed RGBA8 texel back to float. */
inline constexpr Color4f
unpackRGBA8(const RGBA8 &p)
{
    constexpr float inv = 1.0f / 255.0f;
    return {p.r * inv, p.g * inv, p.b * inv, p.a * inv};
}

/** Linear interpolation between two colors. */
inline constexpr Color4f
lerp(const Color4f &a, const Color4f &b, float t)
{
    return a * (1.0f - t) + b * t;
}

} // namespace pargpu

#endif // PARGPU_COMMON_COLOR_HH
