#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pargpu
{

namespace
{

const Json kNull{};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null like most tolerant writers.
        out += "null";
        return;
    }
    // Integers (the common case: counters, cycles) print without a
    // fraction; everything else with enough digits to round-trip.
    double ip;
    // modf returns exactly 0.0 for integral values. pargpu-lint: allow(float-eq)
    if (std::modf(v, &ip) == 0.0 && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out += buf;
    }
}

/** Recursive-descent parser over a byte string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Json
    run()
    {
        Json v = parseValue();
        if (failed_)
            return Json{};
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters");
            return Json{};
        }
        return v;
    }

  private:
    void
    fail(const char *msg)
    {
        if (!failed_ && error_ != nullptr)
            *error_ = std::string(msg) + " at offset " +
                std::to_string(pos_);
        failed_ = true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json{};
        }
        char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json{parseString()};
        if (c == 't') {
            if (literal("true"))
                return Json{true};
            fail("bad literal");
            return Json{};
        }
        if (c == 'f') {
            if (literal("false"))
                return Json{false};
            fail("bad literal");
            return Json{};
        }
        if (c == 'n') {
            if (literal("null"))
                return Json{};
            fail("bad literal");
            return Json{};
        }
        return parseNumber();
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("bad \\u escape");
                        return out;
                    }
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return out;
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs in
                    // metric names do not occur; pass them through raw).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    fail("bad escape");
                    return out;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eatDigits();
        }
        if (!digits) {
            fail("expected number");
            return Json{};
        }
        return Json{std::strtod(text_.c_str() + start, nullptr)};
    }

    Json
    parseArray()
    {
        Json out = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        while (!failed_) {
            out.push(parseValue());
            skipWs();
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return out;
            }
        }
        return out;
    }

    Json
    parseObject()
    {
        Json out = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        while (!failed_) {
            skipWs();
            std::string key = parseString();
            if (failed_)
                return out;
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return out;
            }
            out.set(key, parseValue());
            skipWs();
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return out;
            }
        }
        return out;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    arr_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    obj_[key] = std::move(v);
}

bool
Json::has(const std::string &key) const
{
    return obj_.count(key) != 0;
}

const Json &
Json::operator[](const std::string &key) const
{
    auto it = obj_.find(key);
    return it == obj_.end() ? kNull : it->second;
}

const Json &
Json::operator[](std::size_t i) const
{
    return i < arr_.size() ? arr_[i] : kNull;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: appendNumber(out, num_); break;
    case Type::String: appendEscaped(out, str_); break;
    case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
    case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            appendEscaped(out, k);
            out += pretty ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
    }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text, error).run();
}

} // namespace pargpu
