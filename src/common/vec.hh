/**
 * @file
 * Minimal dense vector / matrix math used by the rendering pipeline.
 *
 * Only the operations the simulator actually needs are provided: the goal is
 * a small, easily-audited header rather than a general linear-algebra
 * package.
 */

#ifndef PARGPU_COMMON_VEC_HH
#define PARGPU_COMMON_VEC_HH

#include <array>
#include <cmath>

namespace pargpu
{

/** 2-component float vector (texture coordinates, screen positions). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float xv, float yv) : x(xv), y(yv) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
    constexpr Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }

    constexpr float dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    float length() const { return std::sqrt(dot(*this)); }
};

/** 3-component float vector (positions, normals). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }

    constexpr float dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    Vec3 normalized() const
    {
        float len = length();
        return len > 0.0f ? *this / len : Vec3{};
    }
};

/** 4-component float vector (homogeneous clip-space positions). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float xv, float yv, float zv, float wv)
        : x(xv), y(yv), z(zv), w(wv) {}
    constexpr Vec4(const Vec3 &v, float wv) : x(v.x), y(v.y), z(v.z), w(wv) {}

    constexpr Vec4 operator+(const Vec4 &o) const
    { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
    constexpr Vec4 operator-(const Vec4 &o) const
    { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
    constexpr Vec4 operator*(float s) const
    { return {x * s, y * s, z * s, w * s}; }

    constexpr Vec3 xyz() const { return {x, y, z}; }
};

/**
 * Column-major 4x4 float matrix.
 *
 * m[c][r] stores column c, row r, matching OpenGL conventions so that
 * transform pipelines read naturally as projection * view * model.
 */
struct Mat4
{
    std::array<std::array<float, 4>, 4> m{};

    /** Identity matrix. */
    static constexpr Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    /** Uniform translation. */
    static constexpr Mat4
    translate(const Vec3 &t)
    {
        Mat4 r = identity();
        r.m[3][0] = t.x;
        r.m[3][1] = t.y;
        r.m[3][2] = t.z;
        return r;
    }

    /** Non-uniform scale. */
    static constexpr Mat4
    scale(const Vec3 &s)
    {
        Mat4 r;
        r.m[0][0] = s.x;
        r.m[1][1] = s.y;
        r.m[2][2] = s.z;
        r.m[3][3] = 1.0f;
        return r;
    }

    /** Rotation about the Y axis by @p radians. */
    static Mat4
    rotateY(float radians)
    {
        Mat4 r = identity();
        float c = std::cos(radians), s = std::sin(radians);
        r.m[0][0] = c;
        r.m[0][2] = -s;
        r.m[2][0] = s;
        r.m[2][2] = c;
        return r;
    }

    /** Rotation about the X axis by @p radians. */
    static Mat4
    rotateX(float radians)
    {
        Mat4 r = identity();
        float c = std::cos(radians), s = std::sin(radians);
        r.m[1][1] = c;
        r.m[1][2] = s;
        r.m[2][1] = -s;
        r.m[2][2] = c;
        return r;
    }

    /**
     * Right-handed perspective projection.
     *
     * @param fovy_radians  Vertical field of view.
     * @param aspect        Width / height.
     * @param znear         Near plane distance (> 0).
     * @param zfar          Far plane distance (> znear).
     */
    static Mat4
    perspective(float fovy_radians, float aspect, float znear, float zfar)
    {
        Mat4 r;
        float f = 1.0f / std::tan(fovy_radians * 0.5f);
        r.m[0][0] = f / aspect;
        r.m[1][1] = f;
        r.m[2][2] = (zfar + znear) / (znear - zfar);
        r.m[2][3] = -1.0f;
        r.m[3][2] = (2.0f * zfar * znear) / (znear - zfar);
        return r;
    }

    /** Right-handed look-at view matrix. */
    static Mat4
    lookAt(const Vec3 &eye, const Vec3 &center, const Vec3 &up)
    {
        Vec3 fwd = (center - eye).normalized();
        Vec3 side = fwd.cross(up).normalized();
        Vec3 upv = side.cross(fwd);
        Mat4 r = identity();
        r.m[0][0] = side.x; r.m[1][0] = side.y; r.m[2][0] = side.z;
        r.m[0][1] = upv.x;  r.m[1][1] = upv.y;  r.m[2][1] = upv.z;
        r.m[0][2] = -fwd.x; r.m[1][2] = -fwd.y; r.m[2][2] = -fwd.z;
        r.m[3][0] = -side.dot(eye);
        r.m[3][1] = -upv.dot(eye);
        r.m[3][2] = fwd.dot(eye);
        return r;
    }

    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int c = 0; c < 4; ++c) {
            for (int row = 0; row < 4; ++row) {
                float acc = 0.0f;
                for (int k = 0; k < 4; ++k)
                    acc += m[k][row] * o.m[c][k];
                r.m[c][row] = acc;
            }
        }
        return r;
    }

    Vec4
    operator*(const Vec4 &v) const
    {
        return {
            m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z + m[3][0] * v.w,
            m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z + m[3][1] * v.w,
            m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z + m[3][2] * v.w,
            m[0][3] * v.x + m[1][3] * v.y + m[2][3] * v.z + m[3][3] * v.w,
        };
    }
};

} // namespace pargpu

#endif // PARGPU_COMMON_VEC_HH
