/**
 * @file
 * GPU DRAM model: 8 channels x 8 banks, open-row policy, 16 bytes/cycle
 * channel bandwidth (Table I). Latency-and-occupancy model: each bank and
 * channel tracks a busy-until timestamp, giving realistic queueing under
 * texture-fetch bursts without an event-driven core.
 */

#ifndef PARGPU_MEM_DRAM_HH
#define PARGPU_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pargpu
{

/** DRAM organization and timing parameters. */
struct DramConfig
{
    unsigned channels = 8;        ///< Independent channels.
    unsigned banks = 8;           ///< Banks per channel.
    Bytes row_bytes = 2048;       ///< Row-buffer size per bank.
    Bytes line_bytes = 64;        ///< Transfer granularity.
    unsigned bytes_per_cycle = 16;///< Channel data-bus bandwidth.
    Cycle t_cas = 20;             ///< Row-hit access latency.
    Cycle t_row_miss = 44;        ///< Precharge + activate + CAS.
    Cycle t_base = 40;            ///< Controller/interconnect overhead.
};

/** Per-access result from the DRAM model. */
struct DramResult
{
    Cycle complete = 0;  ///< Cycle at which data is returned.
    bool row_hit = false;///< Whether the open row serviced the access.
};

/**
 * The DRAM subsystem. Reads are timed; writes (color/depth buffer flushes)
 * only consume channel bandwidth.
 *
 * Timing views: the cycle-approximate simulator advances one cycle counter
 * per shader cluster, and those counters drift apart with load imbalance.
 * Gating every request on globally shared busy-until timestamps would make
 * a lagging cluster queue behind another cluster's *future* — phantom
 * contention. Each requester therefore owns a private timing view of the
 * banks and buses: self-queueing (burstiness within one correctly-clocked
 * stream) is modelled exactly, while cross-requester bandwidth contention
 * — negligible below saturation — is ignored. Row-buffer state and traffic
 * statistics remain global.
 */
class DramModel
{
  public:
    /**
     * @param config  Organization/timing parameters.
     * @param views   Independent requester timing views (e.g., one per
     *                shader cluster plus one for the geometry engine).
     */
    explicit DramModel(const DramConfig &config, unsigned views = 1);

    /**
     * Timed read of one line containing @p addr, issued at @p now on
     * timing view @p view.
     */
    DramResult read(Addr addr, Cycle now, unsigned view = 0);

    /** Untimed bandwidth-only write of @p bytes starting at @p addr. */
    void write(Addr addr, Bytes bytes, Cycle now, unsigned view = 0);

    /** Reset row-buffer/busy state between frames (stats preserved). */
    void resetState();

    std::uint64_t reads() const { return reads_; }
    std::uint64_t rowHits() const { return row_hits_; }
    Bytes bytesRead() const { return bytes_read_; }
    Bytes bytesWritten() const { return bytes_written_; }

    /** Row-buffer hit rate in [0, 1]. */
    double
    rowHitRate() const
    {
        return reads_ == 0 ? 0.0
                           : static_cast<double>(row_hits_) / reads_;
    }

    const DramConfig &config() const { return config_; }

  private:
    struct Bank
    {
        Addr open_row = kInvalidAddr; ///< Shared row-buffer state.
    };

    unsigned channelOf(Addr addr) const;
    unsigned bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    DramConfig config_;
    unsigned views_;
    std::vector<Bank> banks_;        ///< channels * banks, channel-major.
    std::vector<Cycle> bank_until_;  ///< views * channels * banks.
    std::vector<Cycle> bus_until_;   ///< views * channels.
    std::uint64_t reads_ = 0;
    std::uint64_t row_hits_ = 0;
    Bytes bytes_read_ = 0;
    Bytes bytes_written_ = 0;
};

} // namespace pargpu

#endif // PARGPU_MEM_DRAM_HH
