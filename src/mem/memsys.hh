/**
 * @file
 * The GPU memory system: per-cluster texture L1 caches, a shared L2 (the
 * LLC) and DRAM, with traffic-class accounting so benches can reproduce the
 * paper's bandwidth breakdowns (Fig. 6) and cache-scaling study (Fig. 21).
 */

#ifndef PARGPU_MEM_MEMSYS_HH
#define PARGPU_MEM_MEMSYS_HH

#include <memory>
#include <span>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace pargpu
{

/** Who generated a memory access; drives bandwidth breakdowns. */
enum class TrafficClass
{
    Texture,    ///< Texel fetches from the texture units.
    ColorDepth, ///< Framebuffer color/depth traffic.
    Geometry,   ///< Vertex/index fetches.
};

/** Fixed access latencies of the on-chip hierarchy. */
struct MemLatencies
{
    Cycle l1_hit = 4;   ///< Texture L1 hit.
    Cycle l2_hit = 28;  ///< L2 hit (beyond the L1 lookup).
};

/** Memory-system geometry; scale factors support the Fig. 21 sweep. */
struct MemSysConfig
{
    unsigned clusters = 4;          ///< Texture L1 instances.
    Bytes tc_size = 16 * 1024;      ///< Texture L1 capacity (Table I).
    unsigned tc_assoc = 4;
    Bytes llc_size = 128 * 1024;    ///< Shared L2 capacity (Table I).
    unsigned llc_assoc = 8;
    unsigned line_bytes = 64;
    unsigned tc_scale = 1;          ///< Texture-cache capacity multiplier.
    unsigned llc_scale = 1;         ///< LLC capacity multiplier.
    MemLatencies latencies;
    DramConfig dram;
};

/**
 * The full texture/framebuffer memory hierarchy.
 *
 * Timed reads walk L1 (texture class only) then L2 then DRAM; writes are
 * bandwidth-accounted only. All traffic is tallied per TrafficClass so the
 * analysis layer can split DRAM bandwidth the way Fig. 6 does.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &config);

    /**
     * Timed read of the line containing @p addr.
     *
     * @param cluster  Requesting shader cluster (selects the texture L1).
     * @param addr     Byte address.
     * @param now      Issue cycle.
     * @param cls      Traffic class for accounting.
     * @return Cycle at which the data is available.
     */
    Cycle read(unsigned cluster, Addr addr, Cycle now, TrafficClass cls);

    /**
     * Timed batched read of pre-deduplicated line addresses, all issued
     * at @p now. Each line pays exactly one tag lookup per cache level it
     * reaches; the caller guarantees the addresses are distinct (the
     * texture unit's per-quad coalescing). Walks the hierarchy in order,
     * so it is equivalent to read() per line with the max completion
     * returned.
     *
     * @return The furthest completion cycle (@p now when @p lines is
     *         empty).
     */
    Cycle readLines(unsigned cluster, std::span<const Addr> lines,
                    Cycle now, TrafficClass cls);

    /** Bandwidth-only write (framebuffer flush, etc.). */
    void write(Addr addr, Bytes bytes, Cycle now, TrafficClass cls);

    /** Reset caches, DRAM state and traffic tallies for a fresh run. */
    void reset();

    /** DRAM bytes moved (read + write) for @p cls. */
    Bytes trafficBytes(TrafficClass cls) const;

    /** Total DRAM bytes moved across all classes. */
    Bytes totalTrafficBytes() const;

    const SetAssocCache &textureL1(unsigned cluster) const
    { return *tex_l1_[cluster]; }
    const SetAssocCache &llc() const { return *llc_; }
    const DramModel &dram() const { return *dram_; }
    const MemSysConfig &config() const { return config_; }

    /** Dump cache/DRAM stats into @p stats under @p prefix. */
    void exportStats(StatRegistry &stats, const std::string &prefix) const;

  private:
    MemSysConfig config_;
    std::vector<std::unique_ptr<SetAssocCache>> tex_l1_;
    std::unique_ptr<SetAssocCache> llc_;
    std::unique_ptr<DramModel> dram_;
    Bytes traffic_[3] = {0, 0, 0};
};

} // namespace pargpu

#endif // PARGPU_MEM_MEMSYS_HH
