/**
 * @file
 * The GPU memory system: per-cluster texture L1 caches, a shared L2 (the
 * LLC) and DRAM, with traffic-class accounting so benches can reproduce the
 * paper's bandwidth breakdowns (Fig. 6) and cache-scaling study (Fig. 21).
 */

#ifndef PARGPU_MEM_MEMSYS_HH
#define PARGPU_MEM_MEMSYS_HH

#include <memory>
#include <span>
#include <vector>

#include "common/annotations.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace pargpu
{

/** Who generated a memory access; drives bandwidth breakdowns. */
enum class TrafficClass
{
    Texture,    ///< Texel fetches from the texture units.
    ColorDepth, ///< Framebuffer color/depth traffic.
    Geometry,   ///< Vertex/index fetches.
};

/** Fixed access latencies of the on-chip hierarchy. */
struct MemLatencies
{
    Cycle l1_hit = 4;   ///< Texture L1 hit.
    Cycle l2_hit = 28;  ///< L2 hit (beyond the L1 lookup).
};

/** Memory-system geometry; scale factors support the Fig. 21 sweep. */
struct MemSysConfig
{
    unsigned clusters = 4;          ///< Texture L1 instances.
    Bytes tc_size = 16 * 1024;      ///< Texture L1 capacity (Table I).
    unsigned tc_assoc = 4;
    Bytes llc_size = 128 * 1024;    ///< Shared L2 capacity (Table I).
    unsigned llc_assoc = 8;
    unsigned line_bytes = 64;
    unsigned tc_scale = 1;          ///< Texture-cache capacity multiplier.
    unsigned llc_scale = 1;         ///< LLC capacity multiplier.
    MemLatencies latencies;
    DramConfig dram;
};

/**
 * The full texture/framebuffer memory hierarchy.
 *
 * Timed reads walk L1 (texture class only) then L2 then DRAM; writes are
 * bandwidth-accounted only. All traffic is tallied per TrafficClass so the
 * analysis layer can split DRAM bandwidth the way Fig. 6 does.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &config);

    /**
     * The serial-memory-phase capability (zero runtime cost; see
     * common/annotations.hh). Shared LLC/DRAM state may only move while
     * exactly one thread runs — serial rendering, the geometry phase, or
     * pass B of tile-parallel execution. Every mutating entry point
     * requires this capability; ClusterMemFront::stageLines (pass A, on
     * worker threads) excludes it. GpuSimulator::renderFrame scopes a
     * PhaseGuard around each serial region, so under clang TSA
     * (-DPARGPU_TSA=ON) a future code path that touches shared memory
     * state from inside the parallel pass fails to compile.
     */
    PhaseCapability serial_phase;

    /**
     * Timed read of the line containing @p addr.
     *
     * @param cluster  Requesting shader cluster (selects the texture L1).
     * @param addr     Byte address.
     * @param now      Issue cycle.
     * @param cls      Traffic class for accounting.
     * @return Cycle at which the data is available.
     */
    Cycle read(unsigned cluster, Addr addr, Cycle now, TrafficClass cls)
        PARGPU_REQUIRES(serial_phase);

    /**
     * Timed batched read of pre-deduplicated line addresses, all issued
     * at @p now. Each line pays exactly one tag lookup per cache level it
     * reaches; the caller guarantees the addresses are distinct (the
     * texture unit's per-quad coalescing). Walks the hierarchy in order,
     * so it is equivalent to read() per line with the max completion
     * returned.
     *
     * @return The furthest completion cycle (@p now when @p lines is
     *         empty).
     */
    Cycle readLines(unsigned cluster, std::span<const Addr> lines,
                    Cycle now, TrafficClass cls)
        PARGPU_REQUIRES(serial_phase);

    /** Bandwidth-only write (framebuffer flush, etc.). */
    void write(Addr addr, Bytes bytes, Cycle now, TrafficClass cls)
        PARGPU_REQUIRES(serial_phase);

    /**
     * Tile-parallel commit pass: replay the L1-miss lines one deferred
     * quad staged through a ClusterMemFront against the shared LLC and
     * DRAM, in the caller-chosen (canonical) order.
     *
     * @p miss_lines is the quad's slice of the front's miss log — the
     * lines that missed the cluster's L1 during the parallel pass.
     * @p any_line says whether the quad issued any line at all: a quad
     * whose lines all hit the L1 still completes at now + the L1 hit
     * latency. Given that the L1 lookups already happened (with the
     * identical per-cluster access order the serial path produces), the
     * return value equals what readLines() would have returned for the
     * quad's full line list at @p now.
     */
    Cycle commitBatch(unsigned cluster, std::span<const Addr> miss_lines,
                      Cycle now, bool any_line, TrafficClass cls)
        PARGPU_REQUIRES(serial_phase);

    /** Reset caches, DRAM state and traffic tallies for a fresh run. */
    void reset() PARGPU_REQUIRES(serial_phase);

    /** DRAM bytes moved (read + write) for @p cls. */
    Bytes trafficBytes(TrafficClass cls) const;

    /** Total DRAM bytes moved across all classes. */
    Bytes totalTrafficBytes() const;

    const SetAssocCache &textureL1(unsigned cluster) const
    { return *tex_l1_[cluster]; }
    const SetAssocCache &llc() const { return *llc_; }
    const DramModel &dram() const { return *dram_; }
    const MemSysConfig &config() const { return config_; }

    /** Dump cache/DRAM stats into @p stats under @p prefix. */
    void exportStats(StatRegistry &stats, const std::string &prefix) const;

  private:
    friend class ClusterMemFront;

    MemSysConfig config_;
    std::vector<std::unique_ptr<SetAssocCache>> tex_l1_;
    std::unique_ptr<SetAssocCache> llc_;
    std::unique_ptr<DramModel> dram_;
    Bytes traffic_[3] = {0, 0, 0};
};

/**
 * One cluster's private view of the memory system during tile-parallel
 * execution.
 *
 * The texture L1 is per-cluster already, so a front may probe it from the
 * cluster's worker thread without synchronization — provided the cluster
 * issues the same line sequence it would have issued serially (the tile
 * loop's static `% clusters` assignment guarantees that). Lines that miss
 * are appended to a log instead of touching the shared LLC/DRAM; the
 * serial commit pass replays the log in canonical tile order through
 * MemorySystem::commitBatch(), which reproduces the exact serial LLC and
 * DRAM state, counters and completion cycles.
 */
class ClusterMemFront
{
  public:
    ClusterMemFront(MemorySystem &mem, unsigned cluster);

    /** One staged quad: a slice of the miss log. */
    struct Batch
    {
        std::uint32_t miss_begin = 0; ///< First miss-log index.
        std::uint32_t miss_end = 0;   ///< One past the last index.
        bool any_line = false;        ///< Quad issued at least one line.
    };

    /**
     * Parallel pass: probe the cluster's L1 for each distinct line of a
     * quad (updating the L1 exactly as a timed read would) and log the
     * misses for the later commit pass.
     */
    Batch stageLines(std::span<const Addr> lines)
        PARGPU_EXCLUDES(mem_->serial_phase);

    /** Miss log indexed by the Batch ranges stageLines() returned. */
    const std::vector<Addr> &missLines() const { return miss_lines_; }

    unsigned cluster() const { return cluster_; }

    /** Drop the miss log (after the commit pass consumed it). */
    void clear() { miss_lines_.clear(); }

  private:
    MemorySystem *mem_;
    unsigned cluster_;
    std::vector<Addr> miss_lines_;
};

} // namespace pargpu

#endif // PARGPU_MEM_MEMSYS_HH
