/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Tag-only (no data payload): the functional pipeline already computes
 * colors from texture storage, so the caches exist purely to decide
 * hit/miss and account traffic — exactly the role they play in the paper's
 * timing results.
 */

#ifndef PARGPU_MEM_CACHE_HH
#define PARGPU_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pargpu
{

/** Geometry of a cache. */
struct CacheConfig
{
    Bytes size_bytes = 16 * 1024; ///< Total capacity.
    unsigned assoc = 4;           ///< Ways per set.
    unsigned line_bytes = 64;     ///< Line size.
};

/**
 * A read-only (fill-on-miss) set-associative cache with LRU replacement.
 *
 * Texture data is read-only from the GPU's perspective within a frame, so
 * no dirty/writeback state is modelled.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up @p addr; fills the line on a miss (LRU victim).
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Probe without filling or touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate all lines and reset LRU state (stats preserved). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    /** Hit rate in [0, 1]; 0 if no accesses yet. */
    double
    hitRate() const
    {
        auto total = accesses();
        return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
    }

    const CacheConfig &config() const { return config_; }
    unsigned numSets() const { return num_sets_; }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr;
        std::uint64_t last_use = 0;
        bool valid = false;
    };

    /** Index of the set servicing @p addr. */
    unsigned setIndex(Addr addr) const;
    /** Tag bits of @p addr. */
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    unsigned num_sets_;
    unsigned line_shift_; ///< log2(line_bytes); both are pow2-checked.
    unsigned set_shift_;  ///< log2(num_sets_).
    std::vector<Line> lines_; ///< num_sets_ * assoc, set-major.
    std::uint64_t use_clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace pargpu

#endif // PARGPU_MEM_CACHE_HH
