#include "mem/memsys.hh"

#include <algorithm>
#include <numeric>

#include "common/contract.hh"
#include "common/logging.hh"

namespace pargpu
{

MemorySystem::MemorySystem(const MemSysConfig &config)
    : config_(config)
{
    if (config_.clusters == 0)
        fatal("memory system needs at least one cluster");

    CacheConfig tc;
    tc.size_bytes = config_.tc_size * config_.tc_scale;
    tc.assoc = config_.tc_assoc;
    tc.line_bytes = config_.line_bytes;
    for (unsigned c = 0; c < config_.clusters; ++c)
        tex_l1_.push_back(std::make_unique<SetAssocCache>(tc));

    CacheConfig l2;
    l2.size_bytes = config_.llc_size * config_.llc_scale;
    l2.assoc = config_.llc_assoc;
    l2.line_bytes = config_.line_bytes;
    llc_ = std::make_unique<SetAssocCache>(l2);

    // One DRAM timing view per cluster plus one for the geometry engine
    // (which runs on its own front-end clock).
    dram_ = std::make_unique<DramModel>(config_.dram, config_.clusters + 1);
}

Cycle
MemorySystem::read(unsigned cluster, Addr addr, Cycle now, TrafficClass cls)
{
    PARGPU_ASSERT(cluster < config_.clusters,
                  "read from unknown cluster ", cluster, " of ",
                  config_.clusters);
    // Geometry traffic runs on the front-end clock: give it the extra
    // DRAM timing view so it cannot interfere with cluster timelines.
    unsigned view = cls == TrafficClass::Geometry ? config_.clusters
                                                  : cluster;
    if (cls == TrafficClass::Texture) {
        if (tex_l1_[cluster]->access(addr))
            return now + config_.latencies.l1_hit;
        now += config_.latencies.l1_hit; // L1 lookup before going down.
    }
    if (llc_->access(addr))
        return now + config_.latencies.l2_hit;
    now += config_.latencies.l2_hit; // L2 lookup before DRAM.

    DramResult r = dram_->read(addr, now, view);
    traffic_[static_cast<int>(cls)] += config_.line_bytes;
    return r.complete;
}

Cycle
MemorySystem::readLines(unsigned cluster, std::span<const Addr> lines,
                        Cycle now, TrafficClass cls)
{
    Cycle done = now;
    for (Addr line : lines)
        done = std::max(done, read(cluster, line, now, cls));
    return done;
}

Cycle
MemorySystem::commitBatch(unsigned cluster,
                          std::span<const Addr> miss_lines, Cycle now,
                          bool any_line, TrafficClass cls)
{
    PARGPU_ASSERT(cluster < config_.clusters,
                  "commit from unknown cluster ", cluster, " of ",
                  config_.clusters);
    // All-hit lines complete at now + L1 latency; misses re-enter the
    // hierarchy below the L1 exactly as read() would after its L1 lookup.
    Cycle done = any_line ? now + config_.latencies.l1_hit : now;
    const Cycle miss_issue = now + config_.latencies.l1_hit;
    for (Addr addr : miss_lines) {
        Cycle complete;
        if (llc_->access(addr)) {
            complete = miss_issue + config_.latencies.l2_hit;
        } else {
            DramResult r = dram_->read(
                addr, miss_issue + config_.latencies.l2_hit, cluster);
            traffic_[static_cast<int>(cls)] += config_.line_bytes;
            complete = r.complete;
        }
        done = std::max(done, complete);
    }
    return done;
}

ClusterMemFront::ClusterMemFront(MemorySystem &mem, unsigned cluster)
    : mem_(&mem), cluster_(cluster)
{
    PARGPU_ASSERT(cluster < mem.config().clusters,
                  "front for unknown cluster ", cluster, " of ",
                  mem.config().clusters);
}

ClusterMemFront::Batch
ClusterMemFront::stageLines(std::span<const Addr> lines)
{
    Batch b;
    b.any_line = !lines.empty();
    b.miss_begin = static_cast<std::uint32_t>(miss_lines_.size());
    SetAssocCache &l1 = *mem_->tex_l1_[cluster_];
    for (Addr line : lines) {
        if (!l1.access(line))
            miss_lines_.push_back(line);
    }
    b.miss_end = static_cast<std::uint32_t>(miss_lines_.size());
    return b;
}

void
MemorySystem::write(Addr addr, Bytes bytes, Cycle now, TrafficClass cls)
{
    unsigned view = cls == TrafficClass::Geometry ? config_.clusters : 0;
    dram_->write(addr, bytes, now, view);
    traffic_[static_cast<int>(cls)] += bytes;
}

void
MemorySystem::reset()
{
    for (auto &l1 : tex_l1_)
        l1->flush();
    llc_->flush();
    dram_->resetState();
    traffic_[0] = traffic_[1] = traffic_[2] = 0;
}

Bytes
MemorySystem::trafficBytes(TrafficClass cls) const
{
    return traffic_[static_cast<int>(cls)];
}

Bytes
MemorySystem::totalTrafficBytes() const
{
    return traffic_[0] + traffic_[1] + traffic_[2];
}

void
MemorySystem::exportStats(StatRegistry &stats,
                          const std::string &prefix) const
{
    std::uint64_t l1_hits = 0, l1_misses = 0;
    for (const auto &l1 : tex_l1_) {
        l1_hits += l1->hits();
        l1_misses += l1->misses();
    }
    stats.inc(prefix + ".tex_l1.hits", l1_hits);
    stats.inc(prefix + ".tex_l1.misses", l1_misses);
    stats.inc(prefix + ".llc.hits", llc_->hits());
    stats.inc(prefix + ".llc.misses", llc_->misses());
    stats.inc(prefix + ".dram.reads", dram_->reads());
    stats.inc(prefix + ".dram.row_hits", dram_->rowHits());
    stats.inc(prefix + ".dram.bytes_read", dram_->bytesRead());
    stats.inc(prefix + ".dram.bytes_written", dram_->bytesWritten());
    stats.inc(prefix + ".traffic.texture",
              trafficBytes(TrafficClass::Texture));
    stats.inc(prefix + ".traffic.color_depth",
              trafficBytes(TrafficClass::ColorDepth));
    stats.inc(prefix + ".traffic.geometry",
              trafficBytes(TrafficClass::Geometry));

    auto rate = [](std::uint64_t hits, std::uint64_t misses) {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits)
                                / static_cast<double>(total);
    };
    stats.set(prefix + ".tex_l1.hit_rate", rate(l1_hits, l1_misses));
    stats.set(prefix + ".llc.hit_rate", rate(llc_->hits(), llc_->misses()));
    stats.set(prefix + ".dram.row_hit_rate",
              rate(dram_->rowHits(), dram_->reads() - dram_->rowHits()));
}

} // namespace pargpu
