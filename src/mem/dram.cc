#include "mem/dram.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/logging.hh"

namespace pargpu
{

DramModel::DramModel(const DramConfig &config, unsigned views)
    : config_(config), views_(views),
      banks_(static_cast<std::size_t>(config.channels) * config.banks),
      bank_until_(static_cast<std::size_t>(views) * config.channels *
                      config.banks,
                  0),
      bus_until_(static_cast<std::size_t>(views) * config.channels, 0)
{
    if (config_.channels == 0 || config_.banks == 0)
        fatal("DRAM must have at least one channel and bank");
    if (config_.bytes_per_cycle == 0)
        fatal("DRAM bandwidth must be positive");
    if (views_ == 0)
        fatal("DRAM must have at least one timing view");
}

unsigned
DramModel::channelOf(Addr addr) const
{
    // Line-interleaved across channels for bandwidth spreading.
    return static_cast<unsigned>((addr / config_.line_bytes) %
                                 config_.channels);
}

unsigned
DramModel::bankOf(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / (config_.line_bytes * config_.channels)) % config_.banks);
}

Addr
DramModel::rowOf(Addr addr) const
{
    return addr / (config_.row_bytes * config_.channels * config_.banks);
}

DramResult
DramModel::read(Addr addr, Cycle now, unsigned view)
{
    if (view >= views_)
        panic("DRAM read on unknown timing view");
    unsigned ch = channelOf(addr);
    unsigned bk = bankOf(addr);
    Bank &bank = banks_[static_cast<std::size_t>(ch) * config_.banks + bk];
    Cycle &bank_until =
        bank_until_[(static_cast<std::size_t>(view) * config_.channels +
                     ch) *
                        config_.banks +
                    bk];
    Cycle &bus_until =
        bus_until_[static_cast<std::size_t>(view) * config_.channels + ch];
    Addr row = rowOf(addr);

    DramResult r;
    r.row_hit = bank.open_row == row;

    // The bank is occupied for the row access; the channel data bus only
    // for the burst transfer once the data is ready. Queueing appears
    // only when this requester genuinely oversubscribes a bank or bus.
    Cycle start = std::max(now, bank_until);
    Cycle access = r.row_hit ? config_.t_cas : config_.t_row_miss;
    Cycle transfer = (config_.line_bytes + config_.bytes_per_cycle - 1) /
        config_.bytes_per_cycle;
    Cycle data_ready = start + access;
    Cycle bus_start = std::max(data_ready, bus_until);
    r.complete = config_.t_base + bus_start + transfer;

    // Timestamps only move forward: a request can finish no earlier than
    // it started, and the burst occupies the bus for at least one cycle.
    PARGPU_INVARIANT(transfer >= 1, "zero-cycle burst transfer");
    PARGPU_INVARIANT(r.complete >= now + access,
                     "DRAM completion ran backwards: now=", now,
                     " complete=", r.complete);
    PARGPU_INVARIANT(bus_start + transfer >= bus_until,
                     "channel bus timestamp regressed");

    bank.open_row = row;
    bank_until = data_ready;
    bus_until = bus_start + transfer;

    ++reads_;
    if (r.row_hit)
        ++row_hits_;
    bytes_read_ += config_.line_bytes;
    return r;
}

void
DramModel::write(Addr addr, Bytes bytes, Cycle now, unsigned view)
{
    if (view >= views_)
        panic("DRAM write on unknown timing view");
    // Buffered writes: consume channel bandwidth without stalling the
    // requester. Spread the burst across the addressed channel.
    unsigned ch = channelOf(addr);
    Cycle &bus_until =
        bus_until_[static_cast<std::size_t>(view) * config_.channels + ch];
    Cycle transfer = (bytes + config_.bytes_per_cycle - 1) /
        config_.bytes_per_cycle;
    bus_until = std::max(bus_until, now) + transfer;
    bytes_written_ += bytes;
}

void
DramModel::resetState()
{
    for (Bank &b : banks_)
        b = Bank{};
    std::fill(bank_until_.begin(), bank_until_.end(), Cycle{0});
    std::fill(bus_until_.begin(), bus_until_.end(), Cycle{0});
}

} // namespace pargpu
