#include "mem/cache.hh"

#include <bit>

#include "common/contract.hh"
#include "common/logging.hh"

namespace pargpu
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config)
{
    if (config_.line_bytes == 0 || !isPow2(config_.line_bytes))
        fatal("cache line size must be a power of two");
    if (config_.assoc == 0)
        fatal("cache associativity must be positive");
    Bytes lines = config_.size_bytes / config_.line_bytes;
    if (lines == 0 || lines % config_.assoc != 0)
        fatal("cache size must be a multiple of assoc * line size");
    num_sets_ = static_cast<unsigned>(lines / config_.assoc);
    if (!isPow2(num_sets_))
        fatal("cache set count must be a power of two");
    line_shift_ = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(config_.line_bytes)));
    set_shift_ = static_cast<unsigned>(std::countr_zero(num_sets_));
    lines_.resize(lines);
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    // line_bytes and num_sets_ are power-of-two checked at construction,
    // so the divisions reduce to shifts on this per-texel-line hot path.
    return static_cast<unsigned>((addr >> line_shift_) & (num_sets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> (line_shift_ + set_shift_);
}

bool
SetAssocCache::access(Addr addr)
{
    unsigned set = setIndex(addr);
    Addr tag = tagOf(addr);
    PARGPU_CHECK_RANGE(set, 0u, num_sets_ - 1, "set index mapping");
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    ++use_clock_;

    // Hit scan first: most accesses hit, and the victim selection below
    // is dead work for them. The split changes no outcome — on a miss no
    // tag matches, so the victim scan sees exactly the lines (and LRU
    // stamps) the fused loop would have.
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.last_use = use_clock_;
            ++hits_;
            return true;
        }
    }

    // Victim: the last invalid way if any (same tie-break as the fused
    // loop), else least-recently-used, earliest way on equal stamps.
    Line *victim = base;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.last_use < victim->last_use) {
            victim = &line;
        }
    }

    // Miss: fill into the invalid way if any, else the LRU way.
    victim->valid = true;
    victim->tag = tag;
    victim->last_use = use_clock_;
    ++misses_;
    // The eviction victim must come from the addressed set — anything
    // else silently corrupts another set's contents and the hit-rate
    // stats with it.
    PARGPU_INVARIANT(victim >= base && victim < base + config_.assoc,
                     "victim escaped its set: set=", set);
    PARGPU_INVARIANT(victim->last_use == use_clock_,
                     "filled line missing its LRU touch");
    return false;
}

bool
SetAssocCache::probe(Addr addr) const
{
    unsigned set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (Line &line : lines_)
        line = Line{};
    use_clock_ = 0;
}

} // namespace pargpu
