/**
 * @file
 * Fig. 6 reproduction: memory-bandwidth usage breakdown (texture vs
 * color/depth vs geometry) with AF on and off, plus the Section II-B
 * companion metrics (texture-fetch reduction and filtering-latency
 * reduction from disabling AF). Paper: texture fetching is ~71 % of
 * total bandwidth; disabling AF cuts texture traffic by 28 % on average
 * (up to 51 %) and filtering latency by ~47 %.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 6", "memory bandwidth breakdown, AF on vs off");

    std::printf("%-16s | %21s | %21s | %9s %9s\n", "",
                "AF-on traffic share", "AF-off traffic share", "tex",
                "filt.lat");
    std::printf("%-16s | %6s %7s %6s | %6s %7s %6s | %9s %9s\n", "game",
                "tex", "col/z", "geom", "tex", "col/z", "geom",
                "reduct.", "reduct.");

    std::vector<double> tex_share, tex_reduct, lat_reduct;
    for (const Workload &w : paperWorkloads()) {
        RunConfig on_cfg;
        on_cfg.scenario = DesignScenario::Baseline;
        on_cfg.keep_images = false;
        RunResult on = runTrace(w.trace, on_cfg);

        RunConfig off_cfg = on_cfg;
        off_cfg.scenario = DesignScenario::NoAF;
        RunResult off = runTrace(w.trace, off_cfg);

        auto shares = [](const RunResult &r, double out[3]) {
            double tex = sumOver(r.frames, &FrameStats::traffic_texture);
            double col = sumOver(r.frames,
                                 &FrameStats::traffic_colordepth);
            double geo = sumOver(r.frames, &FrameStats::traffic_geometry);
            double total = tex + col + geo;
            out[0] = tex / total;
            out[1] = col / total;
            out[2] = geo / total;
            return tex;
        };
        double on_s[3], off_s[3];
        double on_tex = shares(on, on_s);
        double off_tex = shares(off, off_s);

        double on_lat =
            sumOver(on.frames, &FrameStats::texture_filter_cycles);
        double off_lat =
            sumOver(off.frames, &FrameStats::texture_filter_cycles);

        tex_share.push_back(on_s[0]);
        tex_reduct.push_back(1.0 - off_tex / on_tex);
        lat_reduct.push_back(1.0 - off_lat / on_lat);

        std::printf("%-16s | %5.1f%% %6.1f%% %5.1f%% | %5.1f%% %6.1f%% "
                    "%5.1f%% | %8.1f%% %8.1f%%\n",
                    w.label.c_str(), 100 * on_s[0], 100 * on_s[1],
                    100 * on_s[2], 100 * off_s[0], 100 * off_s[1],
                    100 * off_s[2], 100 * tex_reduct.back(),
                    100 * lat_reduct.back());
    }

    std::printf("%-16s | %5.1f%% %14s | %21s | %8.1f%% %8.1f%%\n",
                "average", 100 * mean(tex_share), "", "",
                100 * mean(tex_reduct), 100 * mean(lat_reduct));
    std::printf("\npaper: texture ~71%% of bandwidth; AF-off cuts "
                "texture fetch 28%% avg (up to 51%%), filter latency "
                "~47%%.\n");
    return 0;
}
