/**
 * @file
 * Fig. 4 reproduction: R.Bench-style frame rates at 2K and 4K with AF on
 * and off, under the vsync replay model. The paper's observations: most
 * frames miss the 60 fps target with AF on, and disabling AF improves
 * frame rate substantially more at 4K than at 2K.
 */

#include "bench_util.hh"
#include "pargpu/replay.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 4", "R.Bench fps on 2K/4K with AF on vs off");

    struct Res
    {
        const char *label;
        int w, h;
    };
    const Res resolutions[] = {
        {"2K (2560x1440)", 2560, 1440},
        {"4K (3840x2160)", 3840, 2160},
    };

    std::printf("%-18s %12s %12s %12s %10s\n", "resolution",
                "AF-on fps", "AF-off fps", "fps gain", "meets 60?");

    for (const Res &res : resolutions) {
        GameTrace trace = buildGameTrace(GameId::RBench, scaleDim(res.w),
                                         scaleDim(res.h), numFrames());

        RunConfig on_cfg;
        on_cfg.scenario = DesignScenario::Baseline;
        on_cfg.keep_images = false;
        RunResult on = runTrace(trace, on_cfg);

        RunConfig off_cfg = on_cfg;
        off_cfg.scenario = DesignScenario::NoAF;
        RunResult off = runTrace(trace, off_cfg);

        // At reduced bench resolution, scale cycle counts back up so the
        // vsync comparison reflects the paper-native pixel load.
        double scale = fullRes() ? 1.0 : 4.0;
        auto scaled = [scale](const RunResult &r) {
            std::vector<Cycle> c;
            for (const FrameStats &f : r.frames)
                c.push_back(static_cast<Cycle>(
                    static_cast<double>(f.total_cycles) * scale));
            return c;
        };
        ReplayResult ron = simulateReplay(scaled(on));
        ReplayResult roff = simulateReplay(scaled(off));

        std::printf("%-18s %12.1f %12.1f %11.0f%% %10s\n", res.label,
                    ron.avg_fps, roff.avg_fps,
                    100.0 * (roff.avg_fps / ron.avg_fps - 1.0),
                    ron.avg_fps >= 59.9 ? "yes" : "no");
    }

    std::printf("\npaper: AF-off improves fps by 21%% (2K) and 43%% "
                "(4K); most frames below 60 fps with AF on.\n");
    return 0;
}
