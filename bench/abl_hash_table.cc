/**
 * @file
 * Ablation: texel-address hash-table capacity. The baseline provisions 16
 * entries (one per possible AF sample, Section V-A/V-D) so the table can
 * never overflow. Smaller tables shrink the dominant area cost but drop
 * overflowing samples from the distribution, lowering Txds and therefore
 * stage-2 approval rates — a conservative failure mode (quality can only
 * go up, savings down).
 */

#include <iterator>

#include "bench_util.hh"
#include "pargpu/analysis.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Ablation", "PATU hash-table capacity (baseline: 16 entries)");

    GameTrace trace = buildGameTrace(GameId::HL2, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    // Baseline plus one PATU condition per table capacity, in parallel.
    const int capacities[] = {2, 4, 8, 16};
    std::vector<RunConfig> configs;
    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    configs.push_back(base_cfg);
    for (int entries : capacities) {
        RunConfig cfg;
        cfg.scenario = DesignScenario::Patu;
        cfg.threshold = 0.4f;
        cfg.table_entries = entries;
        configs.push_back(cfg);
    }
    std::vector<RunResult> runs = runSweep(trace, configs);
    const RunResult &base = runs[0];

    std::printf("%8s %10s %10s %12s %14s\n", "entries", "speedup",
                "MSSIM", "stage-2 pix", "table bytes/TU");

    for (std::size_t i = 0; i < std::size(capacities); ++i) {
        const int entries = capacities[i];
        const RunResult &r = runs[i + 1];
        double st2 = sumOver(r.frames, &FrameStats::approx_stage2);
        double q = r.mssimAgainst(base.images);

        OverheadConfig oc;
        oc.table_entries = entries;
        OverheadReport rep = computeOverhead(oc);

        std::printf("%8d %9.3fx %10.4f %12.0f %14.0f\n", entries,
                    base.avg_cycles / r.avg_cycles, q, st2,
                    rep.table_bytes_per_tu);
    }

    std::printf("\nsmaller tables trade stage-2 coverage (and speedup) "
                "for area; quality never degrades.\n");
    return 0;
}
