/**
 * @file
 * Ablation: texel-address hash-table capacity. The baseline provisions 16
 * entries (one per possible AF sample, Section V-A/V-D) so the table can
 * never overflow. Smaller tables shrink the dominant area cost but drop
 * overflowing samples from the distribution, lowering Txds and therefore
 * stage-2 approval rates — a conservative failure mode (quality can only
 * go up, savings down).
 */

#include "bench_util.hh"
#include "core/overhead.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Ablation", "PATU hash-table capacity (baseline: 16 entries)");

    GameTrace trace = buildGameTrace(GameId::HL2, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    RunResult base = runTrace(trace, base_cfg);

    std::printf("%8s %10s %10s %12s %14s\n", "entries", "speedup",
                "MSSIM", "stage-2 pix", "table bytes/TU");

    for (int entries : {2, 4, 8, 16}) {
        RunConfig cfg;
        cfg.scenario = DesignScenario::Patu;
        cfg.threshold = 0.4f;
        GpuConfig g = makeGpuConfig(cfg);
        g.patu.table_entries = entries;

        GpuSimulator sim(g);
        double cycles = 0.0, st2 = 0.0;
        std::vector<Image> images;
        for (const Camera &cam : trace.cameras) {
            FrameOutput out = sim.renderFrame(trace.scene, cam,
                                              trace.width, trace.height);
            cycles += static_cast<double>(out.stats.total_cycles);
            st2 += static_cast<double>(out.stats.approx_stage2);
            images.push_back(std::move(out.image));
        }
        cycles /= static_cast<double>(trace.cameras.size());

        double q = 0.0;
        for (std::size_t i = 0; i < images.size(); ++i)
            q += mssim(base.images[i], images[i]);
        q /= static_cast<double>(images.size());

        OverheadConfig oc;
        oc.table_entries = entries;
        OverheadReport rep = computeOverhead(oc);

        std::printf("%8d %9.3fx %10.4f %12.0f %14.0f\n", entries,
                    base.avg_cycles / cycles, q, st2,
                    rep.table_bytes_per_tu);
    }

    std::printf("\nsmaller tables trade stage-2 coverage (and speedup) "
                "for area; quality never degrades.\n");
    return 0;
}
