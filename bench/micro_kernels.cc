/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: texture
 * filtering, the PATU hash table, the cache model and SSIM.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pargpu/analysis.hh"
#include "pargpu/random.hh"
#include "pargpu/mem.hh"
#include "pargpu/quality.hh"
#include "pargpu/simd.hh"
#include "pargpu/texture.hh"

using namespace pargpu;

namespace
{

const TextureMap &
benchTexture()
{
    static TextureMap tex(512, 512,
                          generateTexture(TextureKind::Noise, 512, 1));
    return tex;
}

void
BM_TrilinearSample(benchmark::State &state)
{
    TextureSampler s(benchTexture());
    SplitMix64 rng(1);
    for (auto _ : state) {
        Vec2 uv{rng.nextFloat(), rng.nextFloat()};
        benchmark::DoNotOptimize(s.trilinear(uv, 2.3f));
    }
}
BENCHMARK(BM_TrilinearSample);

void
BM_AnisotropicFilter(benchmark::State &state)
{
    TextureSampler s(benchTexture());
    float px = static_cast<float>(state.range(0));
    AnisotropyInfo info =
        s.computeAnisotropy({px / 512.0f, 0.0f}, {0.0f, 1.0f / 512.0f});
    SplitMix64 rng(2);
    for (auto _ : state) {
        Vec2 uv{rng.nextFloat(), rng.nextFloat()};
        benchmark::DoNotOptimize(s.filterAnisotropic(uv, info));
    }
    state.SetLabel("N=" + std::to_string(info.sampleSize));
}
BENCHMARK(BM_AnisotropicFilter)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/**
 * The SoA weight-accumulation kernel, each dispatch tier head-to-head on
 * an identical full batch (8 slots x kMaxLanes lanes). Arg is the tier
 * (0 scalar, 1 SSE, 2 AVX2); tiers this build or CPU cannot run report
 * an "unavailable" label instead of numbers.
 */
void
BM_KernelAccumulate(benchmark::State &state)
{
    const auto tier = static_cast<simd::SimdTier>(state.range(0));
    if (static_cast<int>(tier) > static_cast<int>(simd::detectTier())) {
        for (auto _ : state) {
        }
        state.SetLabel(std::string(simd::tierName(tier)) +
                       " unavailable");
        return;
    }
    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(tier);
    const simd::KernelOps &ops = simd::activeKernels();

    static simd::TexelBatch tex;
    static simd::WeightBatch wgt;
    SplitMix64 rng(6);
    for (int s = 0; s < simd::kMaxSlots; ++s) {
        for (int j = 0; j < simd::kMaxLanes; ++j) {
            tex.r[s][j] = rng.nextFloat();
            tex.g[s][j] = rng.nextFloat();
            tex.b[s][j] = rng.nextFloat();
            tex.a[s][j] = rng.nextFloat();
            wgt.w[s][j] = rng.nextFloat() * 0.125f;
        }
    }
    alignas(32) float out_r[simd::kMaxLanes];
    alignas(32) float out_g[simd::kMaxLanes];
    alignas(32) float out_b[simd::kMaxLanes];
    alignas(32) float out_a[simd::kMaxLanes];

    for (auto _ : state) {
        ops.accumulate(tex, wgt, simd::kMaxSlots, simd::kMaxLanes, out_r,
                       out_g, out_b, out_a);
        benchmark::DoNotOptimize(out_r[0]);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * simd::kMaxLanes *
                            simd::kMaxSlots);
    state.SetLabel(ops.name);
    simd::setActiveTier(saved);
}
BENCHMARK(BM_KernelAccumulate)->Arg(0)->Arg(1)->Arg(2);

void
BM_HashTableInsert(benchmark::State &state)
{
    SplitMix64 rng(3);
    TexelAddressTable table;
    for (auto _ : state) {
        table.reset();
        for (int i = 0; i < 16; ++i) {
            TexelAddrSet set;
            Addr base = 0x100 * (1 + rng.nextBounded(4));
            for (int k = 0; k < 8; ++k)
                set[k] = base + k * 4;
            benchmark::DoNotOptimize(table.insert(set));
        }
    }
}
BENCHMARK(BM_HashTableInsert);

void
BM_AfSsimPrediction(benchmark::State &state)
{
    std::vector<float> p = {0.6f, 0.2f, 0.2f};
    for (auto _ : state) {
        benchmark::DoNotOptimize(afSsimFromSampleSize(8));
        benchmark::DoNotOptimize(afSsimFromTxds(txds(p, 5)));
    }
}
BENCHMARK(BM_AfSsimPrediction);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.size_bytes = 16 * 1024;
    cfg.assoc = 4;
    SetAssocCache cache(cfg);
    SplitMix64 rng(4);
    for (auto _ : state) {
        Addr a = rng.nextBounded(1 << 20) * 64;
        benchmark::DoNotOptimize(cache.access(a));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SsimMap(benchmark::State &state)
{
    int dim = static_cast<int>(state.range(0));
    Image a(dim, dim), b(dim, dim);
    SplitMix64 rng(5);
    for (int y = 0; y < dim; ++y) {
        for (int x = 0; x < dim; ++x) {
            float v = rng.nextFloat();
            a.at(x, y) = Color4f{v, v, v, 1};
            float w = std::min(1.0f, v + 0.05f * rng.nextFloat());
            b.at(x, y) = Color4f{w, w, w, 1};
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(ssimMap(a, b));
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_SsimMap)->Arg(64)->Arg(256);

/**
 * Tier head-to-head for the 2x2 edge-function kernel: one full
 * triangle's worth of quads per iteration, the per-quad work of the
 * rasterizer inner loop.
 */
void
BM_EdgeQuad(benchmark::State &state)
{
    const auto tier = static_cast<simd::SimdTier>(state.range(0));
    if (static_cast<int>(tier) > static_cast<int>(simd::detectTier())) {
        for (auto _ : state) {
        }
        state.SetLabel(std::string(simd::tierName(tier)) +
                       " unavailable");
        return;
    }
    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(tier);
    const simd::KernelOps &ops = simd::activeKernels();

    constexpr int kW = 64, kH = 64;
    simd::EdgeTri tri{};
    tri.ax = 2.0f;
    tri.ay = 3.0f;
    tri.bx = 61.0f;
    tri.by = 9.0f;
    tri.cx = 24.0f;
    tri.cy = 60.0f;
    float area2 = (tri.bx - tri.ax) * (tri.cy - tri.ay) -
        (tri.by - tri.ay) * (tri.cx - tri.ax);
    tri.inv_area = 1.0f / area2;
    tri.z0 = 0.25f;
    tri.z1 = 0.5f;
    tri.z2 = 0.75f;
    tri.iw0 = 1.0f;
    tri.iw1 = 0.5f;
    tri.iw2 = 0.25f;
    tri.uw0 = 0.0f;
    tri.uw1 = 0.5f;
    tri.uw2 = 0.0f;
    tri.vw0 = 0.0f;
    tri.vw1 = 0.0f;
    tri.vw2 = 0.25f;

    std::uint64_t quads = 0;
    for (auto _ : state) {
        unsigned covered = 0;
        for (int qy = 0; qy < kH; qy += 2)
            for (int qx = 0; qx < kW; qx += 2) {
                simd::EdgeQuadOut out;
                ops.edge_quad(tri, qx, qy, 0, 0, kW - 1, kH - 1, out);
                covered += out.coverage;
            }
        benchmark::DoNotOptimize(covered);
        quads += (kW / 2) * (kH / 2);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(quads));
    state.SetLabel(ops.name);
    simd::setActiveTier(saved);
}
BENCHMARK(BM_EdgeQuad)->Arg(0)->Arg(1)->Arg(2);

/**
 * Tier head-to-head for the framebuffer fill kernels: clear one
 * 256x256 color plane and its depth plane per iteration.
 */
void
BM_FbClear(benchmark::State &state)
{
    const auto tier = static_cast<simd::SimdTier>(state.range(0));
    if (static_cast<int>(tier) > static_cast<int>(simd::detectTier())) {
        for (auto _ : state) {
        }
        state.SetLabel(std::string(simd::tierName(tier)) +
                       " unavailable");
        return;
    }
    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(tier);
    const simd::KernelOps &ops = simd::activeKernels();

    constexpr int kPixels = 256 * 256;
    static std::vector<float> color(static_cast<std::size_t>(kPixels) *
                                    4);
    static std::vector<float> depth(kPixels);
    const float rgba[4] = {0.1f, 0.2f, 0.3f, 1.0f};

    for (auto _ : state) {
        ops.fill_color(color.data(), kPixels, rgba);
        ops.fill_depth(depth.data(), kPixels, 1.0f);
        benchmark::DoNotOptimize(color.data());
        benchmark::DoNotOptimize(depth.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * kPixels);
    state.SetLabel(ops.name);
    simd::setActiveTier(saved);
}
BENCHMARK(BM_FbClear)->Arg(0)->Arg(1)->Arg(2);

/**
 * Tier head-to-head for the SSIM separable-blur row kernel: one
 * 256-wide horizontal pass (the shape the quality gate runs per image
 * row, twice per SSIM map).
 */
void
BM_SsimRow(benchmark::State &state)
{
    const auto tier = static_cast<simd::SimdTier>(state.range(0));
    if (static_cast<int>(tier) > static_cast<int>(simd::detectTier())) {
        for (auto _ : state) {
        }
        state.SetLabel(std::string(simd::tierName(tier)) +
                       " unavailable");
        return;
    }
    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(tier);
    const simd::KernelOps &ops = simd::activeKernels();

    constexpr int kWidth = 256, kTaps = 11;
    static std::vector<float> src(kWidth + kTaps);
    static std::vector<float> out(kWidth);
    SplitMix64 rng(29);
    for (float &v : src)
        v = rng.nextFloat();
    float k[kTaps];
    float wsum = 0.0f;
    for (int t = 0; t < kTaps; ++t) {
        k[t] = 1.0f + 0.1f * t;
        wsum += k[t];
    }

    for (auto _ : state) {
        ops.ssim_row(src.data(), out.data(), kWidth, 1, k, kTaps, wsum);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * kWidth);
    state.SetLabel(ops.name);
    simd::setActiveTier(saved);
}
BENCHMARK(BM_SsimRow)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
