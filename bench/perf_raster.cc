/**
 * @file
 * Raster hot-path perf bench: times a raster-bound scenario — NoAF
 * (trilinear-only filtering, so texel work is light) at high resolution,
 * where triangle setup, the 2x2 edge kernel, early-Z and the framebuffer
 * fills dominate — once per runnable SIMD dispatch tier, checks every
 * tier renders bit-identically, and writes BENCH_raster.json.
 *
 * Single-threaded on a fixed viewport so the numbers are comparable
 * across machines and PRs; wall-clock per tier is informational (machine
 * dependent), while the simulated metrics exported under
 * PARGPU_METRICS_DIR are gated against bench/baselines/ by
 * tools/pargpu_report.py like every other producer.
 *
 * Environment:
 *   PARGPU_FRAMES       frames in the timed trace (default: 4 here)
 *   PARGPU_METRICS_DIR  also export the active-tier run as a standard
 *                       metrics document (schema in docs/METRICS.md)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "pargpu/simd.hh"
#include "pargpu/threading.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
runsIdentical(const RunResult &a, const RunResult &b)
{
    bool same = a.frames.size() == b.frames.size() &&
        a.avg_cycles == b.avg_cycles &&
        a.total_energy_nj == b.total_energy_nj &&
        a.avg_power_w == b.avg_power_w;
    for (std::size_t i = 0; same && i < a.frames.size(); ++i) {
        const FrameStats &fa = a.frames[i];
        const FrameStats &fb = b.frames[i];
        same = fa.total_cycles == fb.total_cycles &&
            fa.fragment_cycles == fb.fragment_cycles &&
            fa.earlyz_tested == fb.earlyz_tested &&
            fa.earlyz_killed == fb.earlyz_killed &&
            fa.raster_simd_quads == fb.raster_simd_quads &&
            fa.fb_simd_fills == fb.fb_simd_fills &&
            fa.arena_frame_bytes == fb.arena_frame_bytes &&
            fa.arena_high_water == fb.arena_high_water &&
            fa.texels == fb.texels &&
            fa.traffic_colordepth == fb.traffic_colordepth;
    }
    return same;
}

} // namespace

int
main()
{
    banner("Perf raster",
           "raster-bound scenario (NoAF), one run per SIMD tier");

    const char *fenv = std::getenv("PARGPU_FRAMES");
    const int frames = fenv ? numFrames() : 4;
    // UT3 arena: the most triangle-dense trace, at paper-native
    // resolution; NoAF keeps the texture units on the cheap trilinear
    // path so rasterization and framebuffer work set the pace.
    GameTrace trace = buildGameTrace(GameId::Ut3, 1280, 1024, frames);

    RunConfig cfg;
    cfg.scenario = DesignScenario::NoAF;
    cfg.keep_images = false;
    cfg.threads = 1;

    const unsigned hw = std::thread::hardware_concurrency();
    const simd::SimdTier saved = simd::activeTier();

    std::vector<simd::SimdTier> tiers{simd::SimdTier::Scalar};
    if (simd::hostHasSse() &&
        static_cast<int>(simd::detectTier()) >=
            static_cast<int>(simd::SimdTier::Sse))
        tiers.push_back(simd::SimdTier::Sse);
    if (simd::hostHasAvx2() &&
        static_cast<int>(simd::detectTier()) >=
            static_cast<int>(simd::SimdTier::Avx2))
        tiers.push_back(simd::SimdTier::Avx2);

    runTrace(trace, cfg); // Warm-up outside every timed region.

    std::vector<double> tier_sec(tiers.size(), 0.0);
    RunResult ref;
    bool identical = true;
    for (std::size_t i = 0; i < tiers.size(); ++i) {
        simd::setActiveTier(tiers[i]);
        auto t0 = std::chrono::steady_clock::now();
        RunResult r = runTrace(trace, cfg);
        auto t1 = std::chrono::steady_clock::now();
        tier_sec[i] = seconds(t0, t1);
        if (i == 0) {
            ref = std::move(r);
        } else {
            const bool same = runsIdentical(ref, r);
            identical = identical && same;
            if (!same)
                std::fprintf(stderr, "tier %s diverged from scalar!\n",
                             simd::tierName(tiers[i]));
        }
    }
    simd::setActiveTier(saved);

    const double quads =
        sumOver(ref.frames, &FrameStats::raster_simd_quads);
    const double fills = sumOver(ref.frames, &FrameStats::fb_simd_fills);
    const double arena_bytes =
        sumOver(ref.frames, &FrameStats::arena_frame_bytes);

    std::printf("%d frames at %dx%d (scenario noaf, 1 thread), "
                "%u hardware cores\n",
                frames, trace.width, trace.height, hw);
    for (std::size_t i = 0; i < tiers.size(); ++i)
        std::printf("  %-6s : %7.2f s  (%.2fx vs scalar)\n",
                    simd::tierName(tiers[i]), tier_sec[i],
                    tier_sec[0] / tier_sec[i]);
    std::printf("  hot path : %.0f simd quads, %.0f fb fills, "
                "%.0f arena bytes/frame\n",
                quads, fills, arena_bytes / frames);
    std::printf("  bit-identical across tiers: %s\n",
                identical ? "yes" : "NO");

    FILE *f = std::fopen("BENCH_raster.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_raster.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_raster\",\n"
                 "  \"workload\": \"ut3\",\n"
                 "  \"scenario\": \"noaf\",\n"
                 "  \"frames\": %d,\n"
                 "  \"width\": %d,\n"
                 "  \"height\": %d,\n"
                 "  \"threads\": 1,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"cpu_sse\": %s,\n"
                 "  \"cpu_avx2\": %s,\n"
                 "  \"raster_simd_quads\": %.0f,\n"
                 "  \"fb_simd_fills\": %.0f,\n"
                 "  \"arena_bytes_per_frame\": %.0f,\n"
                 "  \"tiers\": [\n",
                 frames, trace.width, trace.height, hw,
                 simd::hostHasSse() ? "true" : "false",
                 simd::hostHasAvx2() ? "true" : "false", quads, fills,
                 arena_bytes / frames);
    for (std::size_t i = 0; i < tiers.size(); ++i)
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"seconds\": %.6f, "
                     "\"speedup_vs_scalar\": %.6f}%s\n",
                     simd::tierName(tiers[i]), tier_sec[i],
                     tier_sec[0] / tier_sec[i],
                     i + 1 < tiers.size() ? "," : "");
    std::fprintf(f,
                 "  ],\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_raster.json\n");

    Workload w;
    w.label = "UT3-" + std::to_string(trace.width) + "x" +
        std::to_string(trace.height);
    w.trace = std::move(trace);
    maybeWriteMetrics("perf_raster", w, cfg, ref);

    return identical ? 0 : 1;
}
