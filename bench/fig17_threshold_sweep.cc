/**
 * @file
 * Fig. 17 reproduction: per-game performance-quality trade-off across the
 * unified AF-SSIM threshold (0.0 = no AF, 1.0 = baseline).
 *
 * Two best-point (BP) selections are reported:
 *  - the paper's raw speedup x MSSIM metric;
 *  - a perceptual variant, speedup x perceived-quality, using the same
 *    content-calibrated MSSIM mapping as the user-study model. Our
 *    procedural scenes compress the MSSIM axis relative to the paper's
 *    game traces (see EXPERIMENTS.md), which biases the raw metric toward
 *    threshold 0; the perceptual mapping restores the quality axis the
 *    paper's metric operates on.
 *
 * Paper: X-shaped near-linear tradeoff, most BPs in [0.1, 0.9], higher
 * resolutions prefer smaller BPs, average BP = 0.4.
 */

#include "bench_util.hh"
#include "pargpu/replay.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 17", "threshold sweep: speedup vs MSSIM, per game");

    const int steps = 11;
    std::vector<Workload> games = paperWorkloads();
    std::vector<std::vector<double>> speedup_grid, mssim_grid;
    std::vector<double> bp_perceptual;

    for (const Workload &w : games) {
        // One sweep: the baseline plus every threshold, run in parallel.
        std::vector<RunConfig> configs;
        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        configs.push_back(base_cfg);
        for (int i = 0; i < steps; ++i) {
            RunConfig cfg;
            cfg.scenario = DesignScenario::Patu;
            cfg.threshold = static_cast<float>(i) / (steps - 1);
            configs.push_back(cfg);
        }
        std::vector<RunResult> runs = runSweep(w.trace, configs);
        const RunResult &base = runs[0];
        maybeWriteMetrics("fig17", w, configs[0], base);

        std::vector<double> speeds, quals;
        for (int i = 0; i < steps; ++i) {
            const RunResult &r = runs[i + 1];
            speeds.push_back(base.avg_cycles / r.avg_cycles);
            quals.push_back(r.mssimAgainst(base.images));
        }

        int bp = 0, bpq = 0;
        double best = 0.0, bestq = 0.0;
        for (int i = 0; i < steps; ++i) {
            double metric = speeds[i] * quals[i];
            if (metric > best) {
                best = metric;
                bp = i;
            }
            // Direct substitution of MSSIM by the content-calibrated
            // perceived quality in the paper's metric.
            double pq = speeds[i] * perceivedQuality(quals[i]);
            if (pq > bestq) {
                bestq = pq;
                bpq = i;
            }
        }
        bp_perceptual.push_back(bpq / static_cast<double>(steps - 1));

        std::printf("\n(%s)  BP = %.1f (raw), %.1f (perceptual)\n",
                    w.label.c_str(), bp / static_cast<double>(steps - 1),
                    bpq / static_cast<double>(steps - 1));
        std::printf("  %9s %9s %9s %12s\n", "threshold", "speedup",
                    "MSSIM", "speed*MSSIM");
        for (int i = 0; i < steps; ++i) {
            const char *mark = i == bp && i == bpq ? "  <- BP (both)"
                : i == bp ? "  <- BP (raw)"
                : i == bpq ? "  <- BP (perceptual)"
                           : "";
            std::printf("  %9.1f %9.3f %9.4f %12.4f%s\n",
                        i / static_cast<double>(steps - 1), speeds[i],
                        quals[i], speeds[i] * quals[i], mark);
        }
        speedup_grid.push_back(speeds);
        mssim_grid.push_back(quals);
    }

    // (I) average across games.
    std::printf("\n(I) average across all games\n");
    std::printf("  %9s %9s %9s %12s\n", "threshold", "speedup", "MSSIM",
                "speed*MSSIM");
    int avg_bp = 0;
    double avg_best = 0.0;
    for (int i = 0; i < steps; ++i) {
        std::vector<double> s, q;
        for (std::size_t g = 0; g < games.size(); ++g) {
            s.push_back(speedup_grid[g][i]);
            q.push_back(mssim_grid[g][i]);
        }
        double ms = geomean(s), mq = mean(q);
        double metric = ms * perceivedQuality(mq);
        if (metric > avg_best) {
            avg_best = metric;
            avg_bp = i;
        }
        std::printf("  %9.1f %9.3f %9.4f %12.4f\n",
                    i / static_cast<double>(steps - 1), ms, mq, ms * mq);
    }
    std::printf("  average perceptual BP = %.1f; mean per-game "
                "perceptual BP = %.2f\n",
                avg_bp / static_cast<double>(steps - 1),
                mean(bp_perceptual));
    std::printf("\npaper: average BP = 0.4 with ~94%% MSSIM at that "
                "point; higher-resolution games have smaller BPs.\n");
    return 0;
}
