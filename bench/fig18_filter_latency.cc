/**
 * @file
 * Fig. 18 reproduction: normalized texture-filtering latency under the
 * four design scenarios (baseline, AF-SSIM(N), AF-SSIM(N)+(Txds), PATU)
 * at the default threshold 0.4. Paper: PATU and AF-SSIM(N)+(Txds) cut
 * filtering latency by 29 % on average (up to 42 %), beating AF-SSIM(N).
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 18", "normalized texture filtering latency");

    const DesignScenario scenarios[] = {
        DesignScenario::AfSsimN,
        DesignScenario::AfSsimNTxds,
        DesignScenario::Patu,
    };

    std::printf("%-16s %12s %18s %10s\n", "game", "AF-SSIM(N)",
                "AF-SSIM(N)+(Txds)", "PATU");

    std::vector<double> reductions[3];
    for (const Workload &w : paperWorkloads()) {
        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        base_cfg.keep_images = false;
        RunResult base = runTrace(w.trace, base_cfg);
        double base_lat =
            sumOver(base.frames, &FrameStats::texture_filter_cycles);

        double norm[3];
        for (int s = 0; s < 3; ++s) {
            RunConfig cfg = base_cfg;
            cfg.scenario = scenarios[s];
            cfg.threshold = 0.4f;
            RunResult r = runTrace(w.trace, cfg);
            double lat =
                sumOver(r.frames, &FrameStats::texture_filter_cycles);
            norm[s] = lat / base_lat;
            reductions[s].push_back(1.0 - norm[s]);
        }
        std::printf("%-16s %12.3f %18.3f %10.3f\n", w.label.c_str(),
                    norm[0], norm[1], norm[2]);
    }

    std::printf("%-16s %11.1f%% %17.1f%% %9.1f%%  (latency reduction)\n",
                "average", 100 * mean(reductions[0]),
                100 * mean(reductions[1]), 100 * mean(reductions[2]));
    std::printf("\npaper: PATU reduces texture filtering latency by 29%% "
                "avg (up to 42%%); AF-SSIM(N) saves less.\n");
    return 0;
}
