/**
 * @file
 * Fig. 20 reproduction: normalized total GPU energy (DRAM included)
 * under the design scenarios at threshold 0.4. Paper: PATU saves 11 %
 * average (up to 16 %), slightly more energy than AF-SSIM(N)+(Txds)
 * (~1 %) due to the finer-LOD fetches, with ~7 % higher runtime power
 * offset by the shorter frames.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 20", "normalized GPU energy (incl. DRAM)");

    const DesignScenario scenarios[] = {
        DesignScenario::AfSsimN,
        DesignScenario::AfSsimNTxds,
        DesignScenario::Patu,
    };

    std::printf("%-16s %12s %18s %10s %12s\n", "game", "AF-SSIM(N)",
                "AF-SSIM(N)+(Txds)", "PATU", "PATU power");

    std::vector<double> savings[3];
    std::vector<double> power_ratio;
    for (const Workload &w : paperWorkloads()) {
        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        base_cfg.keep_images = false;
        RunResult base = runTrace(w.trace, base_cfg);
        maybeWriteMetrics("fig20", w, base_cfg, base);

        double norm[3], patu_power = 0.0;
        for (int s = 0; s < 3; ++s) {
            RunConfig cfg = base_cfg;
            cfg.scenario = scenarios[s];
            cfg.threshold = 0.4f;
            RunResult r = runTrace(w.trace, cfg);
            maybeWriteMetrics("fig20", w, cfg, r);
            norm[s] = r.total_energy_nj / base.total_energy_nj;
            savings[s].push_back(1.0 - norm[s]);
            if (scenarios[s] == DesignScenario::Patu)
                patu_power = r.avg_power_w / base.avg_power_w;
        }
        power_ratio.push_back(patu_power);
        std::printf("%-16s %12.3f %18.3f %10.3f %11.2fx\n",
                    w.label.c_str(), norm[0], norm[1], norm[2],
                    patu_power);
    }

    std::printf("%-16s %11.1f%% %17.1f%% %9.1f%% %11.2fx  "
                "(energy saving / power)\n",
                "average", 100 * mean(savings[0]),
                100 * mean(savings[1]), 100 * mean(savings[2]),
                mean(power_ratio));
    std::printf("\npaper: PATU saves 11%% energy avg (up to 16%%) with "
                "~1.07x runtime power; ~1%% more energy than N+Txds.\n");
    return 0;
}
