/**
 * @file
 * Extension experiment: BC1 texture compression x PATU. The paper's
 * Section VIII positions PATU as orthogonal to texture compression; this
 * bench demonstrates it: compression shrinks texture traffic for every
 * design, PATU removes filtering work on top, and the two compose.
 */

#include "bench_util.hh"
#include "pargpu/threading.hh"
#include "pargpu/scenes.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

Scene
scene(StorageFormat format)
{
    Scene s;
    s.addTexture(std::make_unique<TextureMap>(
        512, 512, generateTexture(TextureKind::Grass, 512, 11),
        WrapMode::Repeat, TexelLayout::Tiled4x4, format));
    DrawCall ground;
    ground.mesh = makeGrid({-60, 0, 10}, {120, 0, 0}, {0, 0, -140}, 6, 8,
                           8.0f, 9.0f, 0);
    s.draws.push_back(std::move(ground));
    DrawCall wall;
    wall.mesh = makeGrid({-60, 0, -130}, {120, 0, 0}, {0, 60, 0}, 6, 3,
                         8.0f, 4.0f, 0);
    wall.backface_cull = false;
    s.draws.push_back(std::move(wall));
    return s;
}

Camera
camera(int w, int h)
{
    Camera cam;
    cam.eye = {0, 1.8f, 0};
    cam.view = Mat4::lookAt(cam.eye, {0, 1.3f, -10}, {0, 1, 0});
    cam.proj = Mat4::perspective(1.1f, static_cast<float>(w) / h, 0.3f,
                                 400.0f);
    return cam;
}

} // namespace

int
main()
{
    banner("Extension", "BC1 texture compression x PATU orthogonality");

    const int w = scaleDim(1280), h = scaleDim(1024);
    std::printf("%-8s %-10s %12s %14s %12s\n", "format", "design",
                "cycles", "tex traffic B", "MSSIM");

    // Scenes are immutable during rendering, so the format x design grid
    // shares them read-only across workers, one simulator per cell.
    const Scene scenes[] = {scene(StorageFormat::RGBA8),
                            scene(StorageFormat::BC1)};
    const DesignScenario designs[] = {DesignScenario::Baseline,
                                      DesignScenario::Patu};

    // Quality reference: uncompressed baseline frame.
    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    GpuSimulator ref_sim(makeGpuConfig(base_cfg));
    FrameOutput reference =
        ref_sim.renderFrame(scenes[0], camera(w, h), w, h);

    FrameOutput cells[4];
    ThreadPool::run(4, 1, [&](std::size_t i) {
        RunConfig cfg;
        cfg.scenario = designs[i % 2];
        GpuSimulator sim(makeGpuConfig(cfg));
        cells[i] = sim.renderFrame(scenes[i / 2], camera(w, h), w, h);
    });

    const double base_cycles =
        static_cast<double>(cells[0].stats.total_cycles);
    for (std::size_t i = 0; i < 4; ++i) {
        const FrameOutput &out = cells[i];
        std::printf("%-8s %-10s %12llu %14llu %12.4f   (%.3fx)\n",
                    i / 2 == 0 ? "RGBA8" : "BC1",
                    scenarioName(designs[i % 2]),
                    static_cast<unsigned long long>(
                        out.stats.total_cycles),
                    static_cast<unsigned long long>(
                        out.stats.traffic_texture),
                    mssim(reference.image, out.image),
                    base_cycles /
                        static_cast<double>(out.stats.total_cycles));
    }
    std::printf("\ncompression cuts traffic for both designs; PATU's "
                "speedup composes on top (orthogonal, Section VIII).\n");
    return 0;
}
