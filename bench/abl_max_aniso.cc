/**
 * @file
 * Ablation: maximum anisotropy level. Lowering the cap is the
 * conventional quality knob drivers expose (16x/8x/4x/2x AF); PATU
 * instead keeps the 16x cap and approximates per pixel. This bench
 * compares the two tuning spaces: PATU at threshold 0.4 against globally
 * reduced AF levels.
 */

#include <iterator>

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Ablation", "global max-AF level vs per-pixel PATU");

    GameTrace trace = buildGameTrace(GameId::Grid, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    // One parallel sweep: baseline, the four global caps, and PATU.
    const int caps[] = {16, 8, 4, 2};
    std::vector<RunConfig> configs;
    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    base_cfg.max_aniso = 16;
    configs.push_back(base_cfg);
    for (int cap : caps) {
        RunConfig cfg = base_cfg;
        cfg.max_aniso = cap;
        configs.push_back(cfg);
    }
    RunConfig patu_cfg;
    patu_cfg.scenario = DesignScenario::Patu;
    patu_cfg.threshold = 0.4f;
    configs.push_back(patu_cfg);

    std::vector<RunResult> runs = runSweep(trace, configs);
    const RunResult &base = runs[0];

    std::printf("%-18s %10s %10s %12s\n", "config", "speedup", "MSSIM",
                "speed*MSSIM");

    for (std::size_t i = 0; i < std::size(caps); ++i) {
        const RunResult &r = runs[i + 1];
        double speedup = base.avg_cycles / r.avg_cycles;
        double q = r.mssimAgainst(base.images);
        std::printf("%4dx AF (global) %10.3fx %10.4f %12.4f\n", caps[i],
                    speedup, q, speedup * q);
    }

    const RunResult &patu = runs.back();
    double speedup = base.avg_cycles / patu.avg_cycles;
    double q = patu.mssimAgainst(base.images);
    std::printf("%-18s %9.3fx %10.4f %12.4f\n", "PATU(0.4) @16x",
                speedup, q, speedup * q);

    std::printf("\nPATU's per-pixel decisions dominate the global knob: "
                "same speedup band at higher quality.\n");
    return 0;
}
