/**
 * @file
 * Ablation: maximum anisotropy level. Lowering the cap is the
 * conventional quality knob drivers expose (16x/8x/4x/2x AF); PATU
 * instead keeps the 16x cap and approximates per pixel. This bench
 * compares the two tuning spaces: PATU at threshold 0.4 against globally
 * reduced AF levels.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Ablation", "global max-AF level vs per-pixel PATU");

    GameTrace trace = buildGameTrace(GameId::Grid, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    base_cfg.max_aniso = 16;
    RunResult base = runTrace(trace, base_cfg);

    std::printf("%-18s %10s %10s %12s\n", "config", "speedup", "MSSIM",
                "speed*MSSIM");

    for (int cap : {16, 8, 4, 2}) {
        RunConfig cfg = base_cfg;
        cfg.max_aniso = cap;
        RunResult r = runTrace(trace, cfg);
        double speedup = base.avg_cycles / r.avg_cycles;
        double q = r.mssimAgainst(base.images);
        std::printf("%4dx AF (global) %10.3fx %10.4f %12.4f\n", cap,
                    speedup, q, speedup * q);
    }

    RunConfig patu_cfg;
    patu_cfg.scenario = DesignScenario::Patu;
    patu_cfg.threshold = 0.4f;
    RunResult patu = runTrace(trace, patu_cfg);
    double speedup = base.avg_cycles / patu.avg_cycles;
    double q = patu.mssimAgainst(base.images);
    std::printf("%-18s %9.3fx %10.4f %12.4f\n", "PATU(0.4) @16x",
                speedup, q, speedup * q);

    std::printf("\nPATU's per-pixel decisions dominate the global knob: "
                "same speedup band at higher quality.\n");
    return 0;
}
