/**
 * @file
 * Fig. 5 reproduction: normalized speedup and energy reduction of 3D
 * rendering when AF is disabled, per game. Paper: average speedup 41 %
 * (up to 60 %), average energy reduction 28 % (up to 33 %).
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 5", "speedup / energy reduction with AF disabled");

    std::printf("%-16s %10s %14s\n", "game", "speedup",
                "energy reduct.");

    std::vector<double> speedups, reductions;
    for (const Workload &w : paperWorkloads()) {
        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        base_cfg.keep_images = false;
        RunResult base = runTrace(w.trace, base_cfg);

        RunConfig off_cfg = base_cfg;
        off_cfg.scenario = DesignScenario::NoAF;
        RunResult off = runTrace(w.trace, off_cfg);

        double speedup = base.avg_cycles / off.avg_cycles;
        double reduction = 1.0 - off.total_energy_nj / base.total_energy_nj;
        speedups.push_back(speedup);
        reductions.push_back(reduction);
        std::printf("%-16s %9.2fx %13.1f%%\n", w.label.c_str(), speedup,
                    100.0 * reduction);
    }

    std::printf("%-16s %9.2fx %13.1f%%\n", "average",
                geomean(speedups), 100.0 * mean(reductions));
    std::printf("\npaper: avg speedup 1.41x (up to 1.60x), avg energy "
                "reduction 28%% (up to 33%%).\n");
    return 0;
}
