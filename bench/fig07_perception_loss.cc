/**
 * @file
 * Fig. 7 reproduction: impact of disabling AF on perceived image quality
 * (MSSIM loss per game). Paper: disabling AF degrades perceived quality
 * by 28 % on average (up to 39 %).
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 7", "MSSIM loss when AF is disabled");

    std::printf("%-16s %12s %12s\n", "game", "MSSIM", "quality loss");

    std::vector<double> losses;
    for (const Workload &w : paperWorkloads()) {
        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        RunResult base = runTrace(w.trace, base_cfg);

        RunConfig off_cfg;
        off_cfg.scenario = DesignScenario::NoAF;
        RunResult off = runTrace(w.trace, off_cfg);

        double q = off.mssimAgainst(base.images);
        losses.push_back(1.0 - q);
        std::printf("%-16s %12.4f %11.1f%%\n", w.label.c_str(), q,
                    100.0 * (1.0 - q));
    }

    std::printf("%-16s %12s %11.1f%%\n", "average", "",
                100.0 * mean(losses));
    std::printf("\npaper: average quality loss 28%% (up to 39%%) when "
                "AF is disabled.\n");
    return 0;
}
