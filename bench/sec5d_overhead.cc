/**
 * @file
 * Section V-D reproduction: PATU hardware overhead. Paper: 260 bits per
 * hash-table entry, ~2 KB per texture unit, ~0.15 mm^2 per cluster
 * (~0.2 % of a 66 mm^2 GPU at 28 nm), sub-cycle table access.
 */

#include <cstdio>

#include "pargpu/analysis.hh"

using namespace pargpu;

int
main()
{
    OverheadReport r = computeOverhead();
    std::printf("Section V-D: PATU design overhead\n");
    std::printf("---------------------------------------------------\n");
    std::printf("%-36s %d bits\n", "hash-table entry (8x32b addr + tag)",
                r.bits_per_entry);
    std::printf("%-36s %.0f bytes (~2 KB)\n",
                "table storage per texture unit", r.table_bytes_per_tu);
    std::printf("%-36s %.3f mm^2\n", "area per shader cluster",
                r.area_mm2_per_cluster);
    std::printf("%-36s %.3f mm^2\n", "total area (4 clusters)",
                r.total_area_mm2);
    std::printf("%-36s %.2f %% of 66 mm^2 GPU\n", "area fraction",
                100.0 * r.area_fraction);
    std::printf("%-36s %d cycle\n", "table access latency",
                r.table_access_cycles);
    std::printf("\npaper: ~2 KB per TU, 0.15 mm^2 per cluster, 0.2%% of "
                "GPU area, <1 cycle access.\n");
    return 0;
}
