/**
 * @file
 * Tile-parallelism perf bench: times one high-resolution frame of the
 * texel-bound scenario (baseline 16xAF — every pixel through the full
 * AF path) serially and with intra-frame tile parallelism at 1/2/4/8
 * workers, checks every variant is bit-identical to the serial run, and
 * writes BENCH_tile.json.
 *
 * A single frame on purpose: frame-level parallelism has nothing to
 * chew on, so any speedup comes from the tile-parallel fragment phase
 * alone. Fixed 1280x1024 and clusters=8 so the number is comparable
 * across machines and PRs. Wall-clock speedup depends on the machine's
 * core count (hardware_concurrency is recorded in the JSON); the
 * simulated metrics are machine-independent and are what
 * scripts/check.sh gates against bench/baselines/ via
 * tools/pargpu_report.py.
 *
 * Environment:
 *   PARGPU_METRICS_DIR  also export the serial run as a standard
 *                       metrics document (schema in docs/METRICS.md)
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "pargpu/simd.hh"
#include "pargpu/threading.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
runsIdentical(const RunResult &a, const RunResult &b)
{
    bool same = a.frames.size() == b.frames.size() &&
        a.avg_cycles == b.avg_cycles &&
        a.total_energy_nj == b.total_energy_nj &&
        a.avg_power_w == b.avg_power_w;
    for (std::size_t i = 0; same && i < a.frames.size(); ++i) {
        const FrameStats &fa = a.frames[i];
        const FrameStats &fb = b.frames[i];
        same = fa.total_cycles == fb.total_cycles &&
            fa.fragment_cycles == fb.fragment_cycles &&
            fa.texture_mem_stall == fb.texture_mem_stall &&
            fa.texels == fb.texels &&
            fa.l1_misses == fb.l1_misses &&
            fa.llc_misses == fb.llc_misses &&
            fa.dram_reads == fb.dram_reads &&
            fa.clusters.size() == fb.clusters.size();
        for (std::size_t c = 0; same && c < fa.clusters.size(); ++c)
            same = fa.clusters[c].tiles == fb.clusters[c].tiles &&
                fa.clusters[c].cycles == fb.clusters[c].cycles &&
                fa.clusters[c].texels == fb.clusters[c].texels;
    }
    return same;
}

} // namespace

int
main()
{
    banner("Perf tile",
           "intra-frame tile parallelism, serial vs 1/2/4/8 workers");

    // One frame, paper-native resolution, texel-bound scenario: the
    // fragment phase dominates, which is exactly what tile parallelism
    // accelerates.
    GameTrace trace = buildGameTrace(GameId::HL2, 1280, 1024, 1);

    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Baseline;
    serial_cfg.keep_images = false;
    serial_cfg.threads = 1;
    serial_cfg.clusters = 8;
    RunConfig tile_cfg = serial_cfg;
    tile_cfg.tile_parallel = true;

    const unsigned hw = std::thread::hardware_concurrency();
    constexpr unsigned kWorkers[] = {1, 2, 4, 8};

    // Warm up once (page cache, pool spin-up) outside the timed region.
    ThreadPool::setDefaultThreads(2);
    runTrace(trace, tile_cfg);
    ThreadPool::setDefaultThreads(0);

    auto t0 = std::chrono::steady_clock::now();
    RunResult serial = runTrace(trace, serial_cfg);
    auto t1 = std::chrono::steady_clock::now();
    const double s_sec = seconds(t0, t1);

    std::printf("1 frame at %dx%d (scenario baseline, 8 clusters), "
                "%u hardware cores\n",
                trace.width, trace.height, hw);
    std::printf("  serial    : %7.2f s\n", s_sec);

    double tile_sec[4] = {0, 0, 0, 0};
    bool identical = true;
    for (int i = 0; i < 4; ++i) {
        ThreadPool::setDefaultThreads(kWorkers[i]);
        auto w0 = std::chrono::steady_clock::now();
        RunResult tiled = runTrace(trace, tile_cfg);
        auto w1 = std::chrono::steady_clock::now();
        tile_sec[i] = seconds(w0, w1);
        const bool same = runsIdentical(serial, tiled);
        identical = identical && same;
        std::printf("  %u worker%s : %7.2f s  (%.2fx)  bit-identical: %s\n",
                    kWorkers[i], kWorkers[i] == 1 ? " " : "s",
                    tile_sec[i], s_sec / tile_sec[i], same ? "yes" : "NO");
        ThreadPool::setDefaultThreads(0);
    }

    FILE *f = std::fopen("BENCH_tile.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_tile.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_tile\",\n"
                 "  \"workload\": \"hl2\",\n"
                 "  \"scenario\": \"baseline\",\n"
                 "  \"frames\": 1,\n"
                 "  \"width\": %d,\n"
                 "  \"height\": %d,\n"
                 "  \"clusters\": 8,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"cpu_sse\": %s,\n"
                 "  \"cpu_avx2\": %s,\n"
                 "  \"simd_dispatch\": \"%s\",\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"tile_parallel\": [\n",
                 trace.width, trace.height, hw,
                 simd::hostHasSse() ? "true" : "false",
                 simd::hostHasAvx2() ? "true" : "false",
                 simd::tierName(simd::activeTier()), s_sec);
    for (int i = 0; i < 4; ++i)
        std::fprintf(f,
                     "    {\"workers\": %u, \"seconds\": %.6f, "
                     "\"speedup\": %.6f}%s\n",
                     kWorkers[i], tile_sec[i], s_sec / tile_sec[i],
                     i < 3 ? "," : "");
    std::fprintf(f,
                 "  ],\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_tile.json\n");

    // Export the serial run in the standard metrics schema when
    // PARGPU_METRICS_DIR is set; scripts/check.sh gates it against
    // bench/baselines/ with tools/pargpu_report.py.
    Workload w;
    w.label = "HL2-" + std::to_string(trace.width) + "x" +
        std::to_string(trace.height);
    w.trace = std::move(trace);
    maybeWriteMetrics("perf_tile", w, serial_cfg, serial);

    return identical ? 0 : 1;
}
