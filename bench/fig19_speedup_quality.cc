/**
 * @file
 * Fig. 19 reproduction: overall 3D-rendering speedup (bars) and MSSIM
 * (lines) under the four design scenarios at threshold 0.4. Paper: PATU
 * achieves 17 % average speedup (up to 24 %) at 93 % average MSSIM (up
 * to 98 %); AF-SSIM(N)+(Txds) is slightly faster but loses ~16 % MSSIM;
 * higher resolutions speed up more.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 19", "overall speedup and MSSIM per design scenario");

    const DesignScenario scenarios[] = {
        DesignScenario::AfSsimN,
        DesignScenario::AfSsimNTxds,
        DesignScenario::Patu,
    };
    const char *names[] = {"AF-SSIM(N)", "N+Txds", "PATU"};

    std::printf("%-16s", "game");
    for (const char *n : names)
        std::printf(" | %9s spd  MSSIM", n);
    std::printf("\n");

    std::vector<double> speedups[3], mssims[3];
    for (const Workload &w : paperWorkloads()) {
        // Baseline plus the three scenarios, swept in parallel.
        std::vector<RunConfig> configs(4);
        configs[0].scenario = DesignScenario::Baseline;
        for (int s = 0; s < 3; ++s) {
            configs[s + 1].scenario = scenarios[s];
            configs[s + 1].threshold = 0.4f;
        }
        std::vector<RunResult> runs = runSweep(w.trace, configs);
        const RunResult &base = runs[0];
        maybeWriteMetrics("fig19", w, configs[0], base);

        std::printf("%-16s", w.label.c_str());
        for (int s = 0; s < 3; ++s) {
            const RunResult &r = runs[s + 1];
            double speedup = base.avg_cycles / r.avg_cycles;
            double q = r.mssimAgainst(base.images);
            maybeWriteMetrics("fig19", w, configs[s + 1], r, q);
            speedups[s].push_back(speedup);
            mssims[s].push_back(q);
            std::printf(" | %9.3fx %7.3f", speedup, q);
        }
        std::printf("\n");
    }

    std::printf("%-16s", "average");
    for (int s = 0; s < 3; ++s)
        std::printf(" | %9.3fx %7.3f", geomean(speedups[s]),
                    mean(mssims[s]));
    std::printf("\n");

    std::printf("\npaper: PATU 1.17x avg speedup (up to 1.24x) at 93%% "
                "avg MSSIM; N+Txds slightly faster but ~16%% quality "
                "loss; AF-SSIM(N) ~1.10x.\n");
    return 0;
}
