/**
 * @file
 * Section V-C(1) reproduction: prediction divergence within quads. The
 * paper measures that only ~1 % of quads (up to 1.6 %) contain pixels
 * with different PATU decisions, justifying the simple SIMD design.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Section V-C(1)", "PATU decision divergence within quads");

    std::printf("%-16s %14s %14s %12s\n", "game", "AF quads",
                "divergent", "fraction");

    std::vector<double> fracs;
    for (const Workload &w : paperWorkloads()) {
        RunConfig cfg;
        cfg.scenario = DesignScenario::Patu;
        cfg.threshold = 0.4f;
        cfg.keep_images = false;
        RunResult r = runTrace(w.trace, cfg);

        double divergent =
            sumOver(r.frames, &FrameStats::divergent_quads);
        double af_quads = sumOver(r.frames, &FrameStats::af_quads);
        double frac = af_quads > 0 ? divergent / af_quads : 0.0;
        fracs.push_back(frac);
        std::printf("%-16s %14.0f %14.0f %11.2f%%\n", w.label.c_str(),
                    af_quads, divergent, 100 * frac);
    }

    std::printf("%-16s %14s %14s %11.2f%%\n", "average", "", "",
                100 * mean(fracs));
    std::printf("\npaper: ~1%% average (up to 1.6%%) of quads diverge; "
                "no special divergence hardware is warranted.\n");
    return 0;
}
