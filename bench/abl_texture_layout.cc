/**
 * @file
 * Ablation: texel memory layout. The baseline stores textures in 4x4
 * texel tiles so a bilinear footprint usually coalesces into one or two
 * cache lines; a linear (row-major) layout fragments footprints across
 * rows and degrades texture-cache behaviour. PATU's savings are layout-
 * independent (it removes whole samples), so its relative benefit holds
 * under both.
 */

#include "bench_util.hh"
#include "pargpu/threading.hh"
#include "pargpu/scenes.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

// A single-texture ground scene so the layout is the only variable.
Scene
layoutScene(TexelLayout layout)
{
    Scene scene;
    scene.addTexture(std::make_unique<TextureMap>(
        512, 512, generateTexture(TextureKind::Noise, 512, 7),
        WrapMode::Repeat, layout));
    DrawCall d;
    d.mesh = makeGrid({-60, 0, 10}, {120, 0, 0}, {0, 0, -120}, 6, 8,
                      10.0f, 10.0f, 0);
    scene.draws.push_back(std::move(d));
    return scene;
}

Camera
camera(int w, int h)
{
    Camera cam;
    cam.eye = {0, 1.8f, 0};
    cam.view = Mat4::lookAt(cam.eye, {0, 1.3f, -10}, {0, 1, 0});
    cam.proj = Mat4::perspective(1.1f, static_cast<float>(w) / h, 0.3f,
                                 400.0f);
    return cam;
}

} // namespace

int
main()
{
    banner("Ablation", "texel layout: 4x4 tiled vs linear");

    const int w = scaleDim(1280), h = scaleDim(1024);
    std::printf("%-8s %-10s %12s %10s %10s %12s\n", "layout", "design",
                "cycles", "L1 hit%", "LLC hit%", "DRAM reads");

    // The layout x design grid renders in parallel: scenes are shared
    // read-only, each cell owns its simulator and writes its own slot.
    const Scene scenes[] = {layoutScene(TexelLayout::Tiled4x4),
                            layoutScene(TexelLayout::Linear)};
    const DesignScenario designs[] = {DesignScenario::Baseline,
                                      DesignScenario::Patu};

    FrameOutput cells[4];
    ThreadPool::run(4, 1, [&](std::size_t i) {
        RunConfig cfg;
        cfg.scenario = designs[i % 2];
        GpuSimulator sim(makeGpuConfig(cfg));
        cells[i] = sim.renderFrame(scenes[i / 2], camera(w, h), w, h);
    });

    for (std::size_t i = 0; i < 4; ++i) {
        const FrameStats &f = cells[i].stats;
        std::printf("%-8s %-10s %12llu %9.1f%% %9.1f%% %12llu\n",
                    i / 2 == 0 ? "tiled" : "linear",
                    scenarioName(designs[i % 2]),
                    static_cast<unsigned long long>(f.total_cycles),
                    100.0 * f.l1_hits /
                        std::max<std::uint64_t>(
                            1, f.l1_hits + f.l1_misses),
                    100.0 * f.llc_hits /
                        std::max<std::uint64_t>(
                            1, f.llc_hits + f.llc_misses),
                    static_cast<unsigned long long>(f.dram_reads));
    }
    return 0;
}
