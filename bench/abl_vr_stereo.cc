/**
 * @file
 * Extension experiment: multi-view VR rendering. The paper motivates
 * PATU partly with VR workloads and lists multi-view VR among the
 * simulator features (Section VI); here each frame renders twice from
 * IPD-offset eyes. The doubled fragment/texture load makes AF's cost —
 * and PATU's savings — proportionally larger against the fixed front end.
 */

#include "bench_util.hh"
#include "pargpu/threading.hh"
#include "pargpu/sim.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Extension", "stereo (multi-view VR) rendering");

    GameTrace trace = buildGameTrace(GameId::Ut3, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    std::printf("%-10s %14s %14s %10s\n", "design", "mono cycles",
                "stereo cycles", "stereo/mono");

    // One task per design scenario, each with its own simulator; totals
    // land in per-scenario slots and print in the original order.
    const DesignScenario designs[] = {DesignScenario::Baseline,
                                      DesignScenario::Patu,
                                      DesignScenario::NoAF};
    double monos[3] = {}, stereos[3] = {};
    ThreadPool::run(3, 1, [&](std::size_t i) {
        RunConfig cfg;
        cfg.scenario = designs[i];
        cfg.threshold = 0.4f;
        GpuSimulator sim(makeGpuConfig(cfg));

        for (const Camera &cam : trace.cameras) {
            FrameOutput m = sim.renderFrame(trace.scene, cam, trace.width,
                                            trace.height);
            monos[i] += static_cast<double>(m.stats.total_cycles);
            StereoFrame sf = renderStereo(sim, trace.scene, cam,
                                          trace.width, trace.height);
            stereos[i] += static_cast<double>(sf.totalCycles());
        }
    });

    const double base_stereo = stereos[0];
    for (std::size_t i = 0; i < 3; ++i) {
        std::printf("%-10s %14.0f %14.0f %9.2fx", scenarioName(designs[i]),
                    monos[i] / trace.cameras.size(),
                    stereos[i] / trace.cameras.size(),
                    stereos[i] / monos[i]);
        if (i != 0)
            std::printf("   (stereo speedup vs baseline: %.3fx)",
                        base_stereo / stereos[i]);
        std::printf("\n");
    }
    return 0;
}
