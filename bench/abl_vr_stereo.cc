/**
 * @file
 * Extension experiment: multi-view VR rendering. The paper motivates
 * PATU partly with VR workloads and lists multi-view VR among the
 * simulator features (Section VI); here each frame renders twice from
 * IPD-offset eyes. The doubled fragment/texture load makes AF's cost —
 * and PATU's savings — proportionally larger against the fixed front end.
 */

#include "bench_util.hh"
#include "sim/stereo.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Extension", "stereo (multi-view VR) rendering");

    GameTrace trace = buildGameTrace(GameId::Ut3, scaleDim(1280),
                                     scaleDim(1024), numFrames());

    std::printf("%-10s %14s %14s %10s\n", "design", "mono cycles",
                "stereo cycles", "stereo/mono");

    double base_stereo = 0.0;
    for (DesignScenario s :
         {DesignScenario::Baseline, DesignScenario::Patu,
          DesignScenario::NoAF}) {
        RunConfig cfg;
        cfg.scenario = s;
        cfg.threshold = 0.4f;
        GpuSimulator sim(makeGpuConfig(cfg));

        double mono = 0.0, stereo = 0.0;
        for (const Camera &cam : trace.cameras) {
            FrameOutput m = sim.renderFrame(trace.scene, cam, trace.width,
                                            trace.height);
            mono += static_cast<double>(m.stats.total_cycles);
            StereoFrame sf = renderStereo(sim, trace.scene, cam,
                                          trace.width, trace.height);
            stereo += static_cast<double>(sf.totalCycles());
        }
        if (s == DesignScenario::Baseline)
            base_stereo = stereo;
        std::printf("%-10s %14.0f %14.0f %9.2fx", scenarioName(s),
                    mono / trace.cameras.size(),
                    stereo / trace.cameras.size(), stereo / mono);
        if (s != DesignScenario::Baseline)
            std::printf("   (stereo speedup vs baseline: %.3fx)",
                        base_stereo / stereo);
        std::printf("\n");
    }
    return 0;
}
