/**
 * @file
 * Fig. 12 reproduction: percentage of AF input samples that share the
 * same set of texels with TF during 3D rendering. Paper: 62 % on
 * average — the headroom the distribution-based prediction exploits.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 12", "AF input samples sharing texel sets with TF");

    std::printf("%-16s %16s\n", "game", "shared samples");

    std::vector<double> fracs;
    for (const Workload &w : paperWorkloads()) {
        RunConfig cfg;
        cfg.scenario = DesignScenario::Baseline;
        cfg.keep_images = false;
        RunResult r = runTrace(w.trace, cfg);

        double shared = sumOver(r.frames, &FrameStats::shared_samples);
        double total = sumOver(r.frames, &FrameStats::af_input_samples);
        double frac = total > 0 ? shared / total : 0.0;
        fracs.push_back(frac);
        std::printf("%-16s %15.1f%%\n", w.label.c_str(), 100 * frac);
    }

    std::printf("%-16s %15.1f%%\n", "average", 100 * mean(fracs));
    std::printf("\npaper: an average 62%% of AF's input samples share "
                "the same texel set with TF.\n");
    return 0;
}
