/**
 * @file
 * Table I reproduction: the baseline simulator configuration, printed
 * from the live GpuConfig structure so the table can never drift from
 * the code.
 */

#include <cstdio>

#include "pargpu/config.hh"

using namespace pargpu;

int
main()
{
    GpuConfig c;
    std::printf("Table I: baseline simulator configuration\n");
    std::printf("---------------------------------------------------\n");
    std::printf("%-30s %g GHz\n", "Frequency", c.frequency_ghz);
    std::printf("%-30s %u\n", "Number of clusters", c.clusters);
    std::printf("%-30s %u\n", "Unified shaders per cluster",
                c.shaders_per_cluster);
    std::printf("%-30s SIMD%u-scale ALUs\n", "Shader configuration",
                c.simd_width);
    std::printf("%-30s %ux%u\n", "Tile size", c.tile_size, c.tile_size);
    std::printf("%-30s %u per cluster\n", "Texture units",
                c.texture_units);
    std::printf("%-30s %u address ALUs, %u filtering ALUs\n",
                "Texture unit configuration", c.addr_alus, c.filter_alus);
    std::printf("%-30s %llu cycles per trilinear\n", "Texture throughput",
                static_cast<unsigned long long>(c.cycles_per_trilinear));
    std::printf("%-30s %llu KB, %u-way\n", "Texture L1 cache",
                static_cast<unsigned long long>(c.mem.tc_size / 1024),
                c.mem.tc_assoc);
    std::printf("%-30s %llu KB, %u-way\n", "Texture L2 cache (LLC)",
                static_cast<unsigned long long>(c.mem.llc_size / 1024),
                c.mem.llc_assoc);
    std::printf("%-30s %u bytes/cycle, %u channels, %u banks/channel\n",
                "Memory configuration", c.mem.dram.bytes_per_cycle,
                c.mem.dram.channels, c.mem.dram.banks);
    std::printf("%-30s %d\n", "Max anisotropy", c.max_aniso);
    return 0;
}
