/**
 * @file
 * FilterPolicy comparison testbed (docs/FILTERING.md): quality vs. texel
 * fetches vs. energy for every registered texture filter policy, on one
 * texel-bound workload (HL2) and one anisotropy-heavy workload (NFS).
 *
 * Rows per workload: the exact-filtering reference (baseline scenario,
 * patu policy — the predictor never downgrades there), then each policy
 * under the PATU design scenario at the paper's threshold 0.4. Quality is
 * MSSIM against the exact reference, so the stochastic policies are
 * scored against ground truth rather than their own noise.
 *
 * With PARGPU_METRICS_DIR set, each run is exported as
 * fig_policies_<workload>_<policy>[_ref].json (standard pargpu-metrics
 * schema); feed the directory to `pargpu_report.py --compare-policies`
 * for the machine-made version of the table printed here.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

/** maybeWriteMetrics() names files by scenario, which collides across
 *  policies; export with the policy name (and a _ref marker) instead. */
void
writePolicyMetrics(const Workload &w, const RunConfig &config,
                   const RunResult &run, double mssim, bool reference)
{
    const char *dir = std::getenv("PARGPU_METRICS_DIR");
    if (!dir || !dir[0])
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best-effort
    RunMetadata meta;
    meta.tool = "fig_policies";
    meta.workload = w.label;
    meta.width = w.trace.width;
    meta.height = w.trace.height;
    meta.frames = static_cast<int>(w.trace.cameras.size());
    std::string path = std::string(dir) + "/fig_policies_" + w.label +
        "_" + filterPolicyName(config.filter_policy) +
        (reference ? "_ref" : "") + ".json";
    if (!writeMetricsJson(path, meta, config, run, mssim))
        std::fprintf(stderr, "bench: cannot write metrics to %s\n",
                     path.c_str());
}

std::uint64_t
totalOf(const RunResult &run, std::uint64_t FrameStats::*field)
{
    std::uint64_t t = 0;
    for (const FrameStats &f : run.frames)
        t += f.*field;
    return t;
}

} // namespace

int
main()
{
    banner("FilterPolicy comparison",
           "quality vs. texel fetches vs. energy per filter policy");

    // One texel-bound and one anisotropy-heavy Table II workload.
    const struct
    {
        GameId id;
        const char *abbr;
        int width, height;
    } games[] = {
        {GameId::HL2, "hl2", 1280, 1024}, // texel-bound
        {GameId::Nfs, "nfs", 1280, 1024}, // anisotropy-heavy
    };

    for (const auto &g : games) {
        Workload w;
        w.trace = buildGameTrace(g.id, scaleDim(g.width),
                                 scaleDim(g.height), numFrames());
        w.label = std::string(g.abbr) + "-" + std::to_string(g.width) +
            "x" + std::to_string(g.height);

        // Reference first, then every registered policy — one sweep so
        // the runs share the thread pool.
        std::vector<RunConfig> configs;
        RunConfig ref;
        ref.scenario = DesignScenario::Baseline;
        ref.filter_policy = FilterPolicyId::Patu;
        configs.push_back(ref);
        for (const FilterPolicyDesc &d : filterPolicyRegistry()) {
            RunConfig c;
            c.scenario = DesignScenario::Patu;
            c.threshold = 0.4f;
            c.filter_policy = d.id;
            configs.push_back(c);
        }
        std::vector<RunResult> runs = runSweep(w.trace, configs);
        const RunResult &base = runs[0];
        writePolicyMetrics(w, configs[0], base, -1.0, true);

        std::printf("\n%s\n", w.label.c_str());
        std::printf("%-22s %8s %12s %12s %10s %8s\n", "policy", "MSSIM",
                    "texels", "filt-ops", "energy-uJ", "speedup");
        const double base_texels =
            static_cast<double>(totalOf(base, &FrameStats::texels));
        std::printf("%-22s %8s %12llu %12llu %10.1f %7.3fx\n",
                    "reference (exact AF)", "1.000",
                    static_cast<unsigned long long>(
                        totalOf(base, &FrameStats::texels)),
                    static_cast<unsigned long long>(
                        totalOf(base, &FrameStats::trilinear_samples)),
                    base.total_energy_nj / 1e3, 1.0);

        for (std::size_t s = 1; s < runs.size(); ++s) {
            const RunResult &r = runs[s];
            const double q = r.mssimAgainst(base.images);
            writePolicyMetrics(w, configs[s], r, q, false);
            const std::uint64_t texels = totalOf(r, &FrameStats::texels);
            const std::uint64_t ops =
                totalOf(r, &FrameStats::trilinear_samples) +
                totalOf(r, &FrameStats::stf_samples);
            std::printf("%-22s %8.3f %12llu %12llu %10.1f %7.3fx"
                        "  (%4.1f%% texels)\n",
                        filterPolicyName(configs[s].filter_policy), q,
                        static_cast<unsigned long long>(texels),
                        static_cast<unsigned long long>(ops),
                        r.total_energy_nj / 1e3,
                        base.avg_cycles / r.avg_cycles,
                        100.0 * static_cast<double>(texels) / base_texels);
        }
    }

    std::printf("\nexpectation: stf_* trade quality for ~1/8 the texel "
                "fetches (weighted >> uniform); filter_after_shading "
                "keeps quality high at one AF chain per quad; patu sits "
                "between, spending fetches only where AF-SSIM predicts "
                "visible loss.\n");
    return 0;
}
