/**
 * @file
 * Fig. 22 reproduction: simulated user-satisfaction scores over PATU
 * thresholds for the doom3 and HL2 replays (30-rater psychometric model,
 * see DESIGN.md). Paper: interior thresholds beat both the no-AF and
 * baseline endpoints; high-resolution replays favor lower thresholds
 * (performance), low-resolution ones higher thresholds (quality).
 */

#include "bench_util.hh"
#include "pargpu/replay.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 22", "user satisfaction over thresholds (simulated)");

    struct Case
    {
        GameId id;
        int w, h;
    };
    const Case cases[] = {
        {GameId::Doom3, 1280, 1024},
        {GameId::Doom3, 640, 480},
        {GameId::HL2, 1280, 1024},
        {GameId::HL2, 640, 480},
    };
    const float thresholds[] = {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f};

    // The replay needs enough frames for the vsync staircase to produce
    // mixed refresh counts (the paper connected 600 frames per video).
    const int frames = std::max(6, numFrames());

    for (const Case &c : cases) {
        GameTrace trace = buildGameTrace(c.id, scaleDim(c.w),
                                         scaleDim(c.h), frames);
        std::string label = std::string(gameAbbr(c.id)) + "-" +
            std::to_string(c.w) + "x" + std::to_string(c.h);

        RunConfig base_cfg;
        base_cfg.scenario = DesignScenario::Baseline;
        RunResult base = runTrace(trace, base_cfg);

        // Normalize the absolute cycle scale to the paper's operating
        // point: our procedural scenes are structurally simpler than
        // commercial games, so the 16xAF baseline is pinned just above
        // the one-refresh GPU budget — the regime the paper's replays ran
        // in (33-58 fps), where per-threshold savings move individual
        // frames across refresh boundaries. All relative effects are
        // preserved.
        ReplayConfig rc;
        double budget = (1.0 - rc.cpu_fraction) *
            static_cast<double>(rc.refreshCycles());
        double scale = 1.06 * budget / base.avg_cycles;

        std::printf("\n%s\n", label.c_str());
        std::printf("  %9s %8s %8s %12s\n", "threshold", "fps", "MSSIM",
                    "satisfaction");

        double best_score = 0.0;
        float best_threshold = 0.0f;
        for (float t : thresholds) {
            RunConfig cfg;
            cfg.scenario = DesignScenario::Patu;
            cfg.threshold = t;
            RunResult r = runTrace(trace, cfg);
            double q = r.mssimAgainst(base.images);

            std::vector<Cycle> cyc;
            for (const FrameStats &f : r.frames)
                cyc.push_back(static_cast<Cycle>(
                    static_cast<double>(f.total_cycles) * scale));
            ReplayResult replay = simulateReplay(cyc);

            ReplayCondition cond;
            cond.mssim = q;
            cond.avg_fps = replay.avg_fps;
            cond.lag_fraction = replay.lag_fraction;
            cond.width = c.w;
            cond.height = c.h;
            double score = satisfactionScore(cond);
            if (score > best_score) {
                best_score = score;
                best_threshold = t;
            }
            std::printf("  %9.1f %8.1f %8.4f %12.2f\n", t,
                        replay.avg_fps, q, score);
        }
        std::printf("  preferred threshold: %.1f (score %.2f)\n",
                    best_threshold, best_score);
    }

    std::printf("\npaper: PATU's interior thresholds score above both "
                "endpoints; doom3-1280x1024 users prefer 0.2, low-res "
                "replays prefer 0.8.\n");
    return 0;
}
