/**
 * @file
 * Serve-amortization perf bench: drives the real ServeLoop (the loop
 * behind pargpu_serve) with framed JSON requests and measures what a
 * persistent session buys on repeated sweeps.
 *
 * Two modes over the same 16-config threshold sweep, repeated
 * kSweeps times:
 *   amortized — one server: a single "load" (asset decode counted
 *               once), then every sweep against the shared immutable
 *               trace;
 *   fresh     — one server per sweep: each iteration pays the full
 *               session boot + asset decode, the cost of shelling out
 *               to a fresh process per sweep (a lower bound on it — no
 *               exec/link/teardown is included).
 *
 * Every response frame of every sweep is compared byte-for-byte across
 * modes: amortization must not change a single payload. A ping flood
 * through the same loop measures protocol overhead as requests/second.
 * Results go to BENCH_serve.json; scripts/check.sh gates the speedup
 * and the bit-identity via tools/pargpu_report.py --serve-bench.
 *
 * A tiny render (48x36, 1 frame) on purpose: the bench isolates the
 * per-request asset and boot overheads the Session API amortizes, not
 * simulation throughput (perf_smoke/perf_tile cover that). Wall-clock
 * depends on the machine; the bit-identity check does not.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "pargpu/session.hh"

using namespace pargpu;

namespace
{

constexpr int kSweeps = 16;
constexpr int kConfigsPerSweep = 16;
constexpr int kPings = 20000;

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The "load" request decoding the bench workload server-side. */
std::string
loadRequest()
{
    return R"({"op":"load","key":"hl2","game":"hl2",)"
           R"("width":48,"height":36,"frames":1})";
}

/** One 16-config threshold sweep (fig17-style) as a request payload. */
std::string
sweepRequest()
{
    std::string configs;
    for (int i = 0; i < kConfigsPerSweep; ++i) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      R"(%s{"scenario":"patu","threshold":%.4f,)"
                      R"("keep_images":false})",
                      i == 0 ? "" : ",",
                      0.5 + 0.03 * static_cast<double>(i));
        configs += buf;
    }
    return R"({"op":"sweep","trace":"hl2","configs":[)" + configs + "]}";
}

/** Frame payloads into one request stream. */
std::string
frameAll(const std::vector<std::string> &payloads)
{
    std::ostringstream out;
    for (const std::string &p : payloads)
        ServeLoop::writeFrame(out, p);
    return out.str();
}

/** Split a response stream back into per-frame payloads. */
std::vector<std::string>
splitFrames(const std::string &stream)
{
    std::istringstream in(stream);
    std::vector<std::string> frames;
    std::string payload;
    while (ServeLoop::readFrame(in, payload, nullptr))
        frames.push_back(payload);
    return frames;
}

/** Serve @p requests on one fresh server; returns the response stream. */
std::string
serveOnce(const std::string &requests)
{
    std::istringstream in(requests);
    std::ostringstream out;
    ServeLoop loop(in, out);
    if (loop.run() != 0) {
        std::fprintf(stderr, "perf_serve: serve loop failed\n");
        std::exit(1);
    }
    return out.str();
}

} // namespace

int
main()
{
    std::printf("=============================================="
                "========================\n");
    std::printf("Perf serve: persistent session vs fresh "
                "boot per sweep\n");
    std::printf("%d sweeps x %d configs, hl2 48x36x1, "
                "decode amortized across sweeps\n",
                kSweeps, kConfigsPerSweep);
    std::printf("=============================================="
                "========================\n");

    const std::string sweep = sweepRequest();

    // Amortized: one server, one load, kSweeps sweeps. The decode
    // happens once, inside the timed region (it is part of the cost a
    // persistent server pays exactly once).
    std::vector<std::string> amortized_requests = {loadRequest()};
    for (int i = 0; i < kSweeps; ++i)
        amortized_requests.push_back(sweep);
    amortized_requests.push_back(R"({"op":"shutdown"})");

    auto a0 = std::chrono::steady_clock::now();
    const std::string amortized_out =
        serveOnce(frameAll(amortized_requests));
    auto a1 = std::chrono::steady_clock::now();
    const double amortized_sec = seconds(a0, a1);

    // Fresh: a new server (new Session, full asset decode) per sweep —
    // what "one process per sweep" costs at minimum.
    const std::string fresh_requests =
        frameAll({loadRequest(), sweep, R"({"op":"shutdown"})"});
    std::vector<std::string> fresh_outs;
    auto f0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSweeps; ++i)
        fresh_outs.push_back(serveOnce(fresh_requests));
    auto f1 = std::chrono::steady_clock::now();
    const double fresh_sec = seconds(f0, f1);

    // Bit-identity across modes: sweep i's response frames (one
    // job_done event per config plus the final metrics frame) must be
    // byte-identical whether the session was fresh or reused.
    const std::vector<std::string> amortized_frames =
        splitFrames(amortized_out);
    // load ack, then kSweeps * (kConfigsPerSweep + 1) frames, then bye.
    const std::size_t per_sweep = kConfigsPerSweep + 1;
    bool identical =
        amortized_frames.size() == 2 + kSweeps * per_sweep;
    for (int i = 0; identical && i < kSweeps; ++i) {
        const std::vector<std::string> fresh_frames =
            splitFrames(fresh_outs[static_cast<std::size_t>(i)]);
        identical = fresh_frames.size() == 2 + per_sweep;
        for (std::size_t j = 0; identical && j < per_sweep; ++j)
            identical =
                amortized_frames[1 + static_cast<std::size_t>(i) *
                                         per_sweep + j] ==
                fresh_frames[1 + j];
    }

    // Protocol overhead: a ping flood through the same framed loop.
    std::vector<std::string> pings(kPings, R"({"op":"ping"})");
    auto p0 = std::chrono::steady_clock::now();
    const std::string ping_out = serveOnce(frameAll(pings));
    auto p1 = std::chrono::steady_clock::now();
    const double ping_sec = seconds(p0, p1);
    const double ping_rps =
        ping_sec > 0.0 ? kPings / ping_sec : 0.0;
    if (splitFrames(ping_out).size() != kPings) {
        std::fprintf(stderr, "perf_serve: ping flood lost frames\n");
        return 1;
    }

    const double speedup =
        amortized_sec > 0.0 ? fresh_sec / amortized_sec : 0.0;
    std::printf("  amortized : %7.2f s  (%.2f sweeps/s)\n",
                amortized_sec, kSweeps / amortized_sec);
    std::printf("  fresh     : %7.2f s  (%.2f sweeps/s)\n",
                fresh_sec, kSweeps / fresh_sec);
    std::printf("  speedup   : %7.2fx  bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");
    std::printf("  ping      : %9.0f requests/s\n", ping_rps);

    FILE *f = std::fopen("BENCH_serve.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_serve\",\n"
                 "  \"schema\": \"pargpu-serve-bench\",\n"
                 "  \"schema_version\": 1,\n"
                 "  \"workload\": \"hl2\",\n"
                 "  \"width\": 48,\n"
                 "  \"height\": 36,\n"
                 "  \"frames\": 1,\n"
                 "  \"sweeps\": %d,\n"
                 "  \"configs_per_sweep\": %d,\n"
                 "  \"amortized_seconds\": %.6f,\n"
                 "  \"amortized_sweeps_per_second\": %.6f,\n"
                 "  \"fresh_seconds\": %.6f,\n"
                 "  \"fresh_sweeps_per_second\": %.6f,\n"
                 "  \"amortization_speedup\": %.6f,\n"
                 "  \"ping_requests_per_second\": %.1f,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 kSweeps, kConfigsPerSweep, amortized_sec,
                 kSweeps / amortized_sec, fresh_sec,
                 kSweeps / fresh_sec, speedup, ping_rps,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");

    return identical ? 0 : 1;
}
