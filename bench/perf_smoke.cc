/**
 * @file
 * Perf smoke test, two sections:
 *
 * 1. Parallel engine — times runTrace() at 1 thread and at N threads on
 *    a fixed workload, checks the results are bit-identical, and writes
 *    BENCH_parallel.json (simulation throughput + parallel speedup).
 *
 * 2. Texel hot path — times the texel-bound scenario (baseline 16xAF:
 *    every texel fetched, no PATU approximation) single-threaded and
 *    writes BENCH_texel.json with the wall-clock speedup against the
 *    recorded pre-rework reference (kTexelSeedSecPerFrame, measured in
 *    the same container before the Morton-storage/memo/batching rework).
 *    Also reports the new hot-path counters (memo hit rate, distinct
 *    lines per quad).
 *
 * With PARGPU_METRICS_DIR set, both sections additionally export the
 * standard metrics document; scripts/check.sh gates the texel export
 * against bench/baselines/ via tools/pargpu_report.py.
 *
 * Environment:
 *   PARGPU_THREADS   parallel thread count (default: hardware cores)
 *   PARGPU_FRAMES    frames in the timed traces (default: 8 here)
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "pargpu/simd.hh"
#include "pargpu/threading.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    banner("Perf smoke", "runTrace wall-clock, 1 vs N threads");

    const char *fenv = std::getenv("PARGPU_FRAMES");
    const int frames = fenv ? numFrames() : 8;
    GameTrace trace = buildGameTrace(GameId::HL2, scaleDim(1280),
                                     scaleDim(1024), frames);

    const unsigned hw = std::thread::hardware_concurrency();
    const bool cpu_sse = simd::hostHasSse();
    const bool cpu_avx2 = simd::hostHasAvx2();
    const char *dispatch = simd::tierName(simd::activeTier());
    unsigned n_threads = ThreadPool::defaultThreads();
    if (n_threads < 2)
        n_threads = 2; // Exercise the parallel path even on 1 core.

    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.keep_images = false;
    serial_cfg.threads = 1;
    RunConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = static_cast<int>(n_threads);

    // Warm up once (page cache, pool spin-up) outside the timed region.
    runTrace(trace, parallel_cfg);

    auto t0 = std::chrono::steady_clock::now();
    RunResult serial = runTrace(trace, serial_cfg);
    auto t1 = std::chrono::steady_clock::now();
    RunResult parallel = runTrace(trace, parallel_cfg);
    auto t2 = std::chrono::steady_clock::now();

    const double s_sec = seconds(t0, t1);
    const double p_sec = seconds(t1, t2);
    const double s_fps = frames / s_sec;
    const double p_fps = frames / p_sec;
    const double speedup = s_sec / p_sec;

    bool identical = serial.frames.size() == parallel.frames.size() &&
        serial.avg_cycles == parallel.avg_cycles &&
        serial.total_energy_nj == parallel.total_energy_nj &&
        serial.avg_power_w == parallel.avg_power_w;
    for (std::size_t i = 0; identical && i < serial.frames.size(); ++i)
        identical = serial.frames[i].total_cycles ==
            parallel.frames[i].total_cycles;

    std::printf("%d frames at %dx%d, %u hardware cores\n", frames,
                trace.width, trace.height, hw);
    std::printf("  1 thread : %7.2f s  (%6.3f frames/s)\n", s_sec, s_fps);
    std::printf("  %u threads: %7.2f s  (%6.3f frames/s)\n", n_threads,
                p_sec, p_fps);
    std::printf("  speedup  : %.2fx   bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");

    FILE *f = std::fopen("BENCH_parallel.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_smoke\",\n"
                 "  \"workload\": \"hl2\",\n"
                 "  \"frames\": %d,\n"
                 "  \"width\": %d,\n"
                 "  \"height\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"cpu_sse\": %s,\n"
                 "  \"cpu_avx2\": %s,\n"
                 "  \"simd_dispatch\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"parallel_seconds\": %.6f,\n"
                 "  \"serial_frames_per_sec\": %.6f,\n"
                 "  \"parallel_frames_per_sec\": %.6f,\n"
                 "  \"speedup\": %.6f,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 frames, trace.width, trace.height, hw,
                 cpu_sse ? "true" : "false", cpu_avx2 ? "true" : "false",
                 dispatch, n_threads, s_sec,
                 p_sec, s_fps, p_fps, speedup,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");

    // Also export the serial run in the standard metrics schema when
    // PARGPU_METRICS_DIR is set, so perf_smoke results feed
    // tools/pargpu_report.py like every other producer.
    Workload w;
    w.label = "HL2-" + std::to_string(trace.width) + "x" +
        std::to_string(trace.height);
    w.trace = std::move(trace);
    maybeWriteMetrics("perf_smoke", w, serial_cfg, serial);

    // ---- Section 2: texel hot path -----------------------------------
    // Baseline 16xAF is the texel-bound extreme: every pixel runs full
    // anisotropic filtering, so wall-clock is dominated by footprint
    // fetches and cache-model traffic. Single-threaded on a fixed
    // 640x512 viewport so the number is comparable across machines of
    // different core counts and across PRs.
    banner("Perf smoke: texel hot path",
           "baseline 16xAF 640x512, 1 thread, vs pre-rework reference");

    // Wall-clock per frame of this workload before the texel-hot-path
    // rework (linear-only storage, per-texel cache probes, heap-based
    // sample buffers), measured in the CI container. Informational
    // yardstick: simulated metrics are gated by pargpu_report.py
    // instead, because wall-clock depends on the machine.
    constexpr double kTexelSeedSecPerFrame = 2.73 / 4.0;

    // Same workload after the PR-4/5 texel rework but before the SoA
    // kernel layer (committed bench/baselines reference run). The SIMD
    // acceptance bar is measured against this number.
    constexpr double kTexelPr4SecPerFrame = 0.374622;

    // And after the first SoA kernel round (PR 6) but before the fused
    // gather/raster/framebuffer/arena work — the reference this PR's
    // hot-path push is measured against.
    constexpr double kTexelPr6SecPerFrame = 0.286801;

    GameTrace texel_trace =
        buildGameTrace(GameId::HL2, 640, 512, frames);
    RunConfig texel_cfg;
    texel_cfg.scenario = DesignScenario::Baseline;
    texel_cfg.keep_images = false;
    texel_cfg.threads = 1;

    runTrace(texel_trace, texel_cfg); // Warm-up outside the timed region.
    auto t3 = std::chrono::steady_clock::now();
    RunResult texel = runTrace(texel_trace, texel_cfg);
    auto t4 = std::chrono::steady_clock::now();

    const double x_sec = seconds(t3, t4);
    const double x_fps = frames / x_sec;
    const double sec_per_frame = x_sec / frames;
    const double speedup_vs_seed = kTexelSeedSecPerFrame / sec_per_frame;
    const double speedup_vs_pr4 = kTexelPr4SecPerFrame / sec_per_frame;
    const double speedup_vs_pr6 = kTexelPr6SecPerFrame / sec_per_frame;

    const double quads = sumOver(texel.frames, &FrameStats::quads);
    const double lines = sumOver(texel.frames, &FrameStats::tex_lines);
    const double lookups =
        sumOver(texel.frames, &FrameStats::memo_lookups);
    const double hits = sumOver(texel.frames, &FrameStats::memo_hits);
    const double lines_per_quad = quads > 0.0 ? lines / quads : 0.0;
    const double memo_hit_rate = lookups > 0.0 ? hits / lookups : 0.0;

    std::printf("%d frames at 640x512 (scenario baseline, 1 thread)\n",
                frames);
    std::printf("  wall     : %7.2f s  (%6.3f frames/s)\n", x_sec, x_fps);
    std::printf("  vs seed  : %.2fx   (seed %.3f s/frame, this run %.3f)\n",
                speedup_vs_seed, kTexelSeedSecPerFrame, sec_per_frame);
    std::printf("  vs PR4   : %.2fx   (PR4 %.3f s/frame, dispatch %s)\n",
                speedup_vs_pr4, kTexelPr4SecPerFrame, dispatch);
    std::printf("  vs PR6   : %.2fx   (PR6 %.3f s/frame)\n",
                speedup_vs_pr6, kTexelPr6SecPerFrame);
    std::printf("  hot path : %.3f memo hit rate, %.2f lines/quad\n",
                memo_hit_rate, lines_per_quad);

    f = std::fopen("BENCH_texel.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_texel.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_smoke_texel\",\n"
                 "  \"workload\": \"hl2\",\n"
                 "  \"scenario\": \"baseline\",\n"
                 "  \"frames\": %d,\n"
                 "  \"width\": 640,\n"
                 "  \"height\": 512,\n"
                 "  \"threads\": 1,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"cpu_sse\": %s,\n"
                 "  \"cpu_avx2\": %s,\n"
                 "  \"simd_dispatch\": \"%s\",\n"
                 "  \"seconds\": %.6f,\n"
                 "  \"frames_per_sec\": %.6f,\n"
                 "  \"seconds_per_frame\": %.6f,\n"
                 "  \"seed_seconds_per_frame\": %.6f,\n"
                 "  \"speedup_vs_seed\": %.6f,\n"
                 "  \"pr4_seconds_per_frame\": %.6f,\n"
                 "  \"speedup_vs_pr4\": %.6f,\n"
                 "  \"pr6_seconds_per_frame\": %.6f,\n"
                 "  \"speedup_vs_pr6\": %.6f,\n"
                 "  \"memo_hit_rate\": %.6f,\n"
                 "  \"lines_per_quad\": %.6f\n"
                 "}\n",
                 frames, hw, cpu_sse ? "true" : "false",
                 cpu_avx2 ? "true" : "false", dispatch, x_sec, x_fps,
                 sec_per_frame, kTexelSeedSecPerFrame, speedup_vs_seed,
                 kTexelPr4SecPerFrame, speedup_vs_pr4,
                 kTexelPr6SecPerFrame, speedup_vs_pr6, memo_hit_rate,
                 lines_per_quad);
    std::fclose(f);
    std::printf("wrote BENCH_texel.json\n");

    Workload tw;
    tw.label = "HL2-640x512";
    tw.trace = std::move(texel_trace);
    maybeWriteMetrics("perf_texel", tw, texel_cfg, texel);

    return identical ? 0 : 1;
}
