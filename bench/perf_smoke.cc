/**
 * @file
 * Perf smoke test for the parallel execution engine: times runTrace() at
 * 1 thread and at N threads on a fixed workload, checks the results are
 * bit-identical, and writes BENCH_parallel.json so the simulation
 * throughput (frames/sec) and parallel speedup are tracked across PRs.
 *
 * Environment:
 *   PARGPU_THREADS   parallel thread count (default: hardware cores)
 *   PARGPU_FRAMES    frames in the timed trace (default: 8 here)
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "common/threadpool.hh"

using namespace pargpu;
using namespace pargpu::bench;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    banner("Perf smoke", "runTrace wall-clock, 1 vs N threads");

    const char *fenv = std::getenv("PARGPU_FRAMES");
    const int frames = fenv ? numFrames() : 8;
    GameTrace trace = buildGameTrace(GameId::HL2, scaleDim(1280),
                                     scaleDim(1024), frames);

    const unsigned hw = std::thread::hardware_concurrency();
    unsigned n_threads = ThreadPool::defaultThreads();
    if (n_threads < 2)
        n_threads = 2; // Exercise the parallel path even on 1 core.

    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.keep_images = false;
    serial_cfg.threads = 1;
    RunConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = static_cast<int>(n_threads);

    // Warm up once (page cache, pool spin-up) outside the timed region.
    runTrace(trace, parallel_cfg);

    auto t0 = std::chrono::steady_clock::now();
    RunResult serial = runTrace(trace, serial_cfg);
    auto t1 = std::chrono::steady_clock::now();
    RunResult parallel = runTrace(trace, parallel_cfg);
    auto t2 = std::chrono::steady_clock::now();

    const double s_sec = seconds(t0, t1);
    const double p_sec = seconds(t1, t2);
    const double s_fps = frames / s_sec;
    const double p_fps = frames / p_sec;
    const double speedup = s_sec / p_sec;

    bool identical = serial.frames.size() == parallel.frames.size() &&
        serial.avg_cycles == parallel.avg_cycles &&
        serial.total_energy_nj == parallel.total_energy_nj &&
        serial.avg_power_w == parallel.avg_power_w;
    for (std::size_t i = 0; identical && i < serial.frames.size(); ++i)
        identical = serial.frames[i].total_cycles ==
            parallel.frames[i].total_cycles;

    std::printf("%d frames at %dx%d, %u hardware cores\n", frames,
                trace.width, trace.height, hw);
    std::printf("  1 thread : %7.2f s  (%6.3f frames/s)\n", s_sec, s_fps);
    std::printf("  %u threads: %7.2f s  (%6.3f frames/s)\n", n_threads,
                p_sec, p_fps);
    std::printf("  speedup  : %.2fx   bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");

    FILE *f = std::fopen("BENCH_parallel.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"perf_smoke\",\n"
                 "  \"workload\": \"hl2\",\n"
                 "  \"frames\": %d,\n"
                 "  \"width\": %d,\n"
                 "  \"height\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"threads\": %u,\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"parallel_seconds\": %.6f,\n"
                 "  \"serial_frames_per_sec\": %.6f,\n"
                 "  \"parallel_frames_per_sec\": %.6f,\n"
                 "  \"speedup\": %.6f,\n"
                 "  \"bit_identical\": %s\n"
                 "}\n",
                 frames, trace.width, trace.height, hw, n_threads, s_sec,
                 p_sec, s_fps, p_fps, speedup,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_parallel.json\n");

    // Also export the serial run in the standard metrics schema when
    // PARGPU_METRICS_DIR is set, so perf_smoke results feed
    // tools/pargpu_report.py like every other producer.
    Workload w;
    w.label = "HL2-" + std::to_string(trace.width) + "x" +
        std::to_string(trace.height);
    w.trace = std::move(trace);
    maybeWriteMetrics("perf_smoke", w, serial_cfg, serial);

    return identical ? 0 : 1;
}
