/**
 * @file
 * Fig. 21 reproduction: performance when LLC and texture-cache capacities
 * scale up, with and without PATU. Paper: capacity alone barely helps
 * (rendering is throughput-bound), while PATU adds 24-28 % on top of
 * every configuration — it is orthogonal to cache scaling.
 */

#include <iterator>

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 21", "cache scaling with and without PATU");

    struct Config
    {
        const char *label;
        unsigned tc_scale;
        unsigned llc_scale;
    };
    const Config configs[] = {
        {"1x (baseline)", 1, 1},
        {"2xLLC", 1, 2},
        {"4xLLC", 1, 4},
        {"2xTC+4xLLC", 2, 4},
    };

    std::printf("%-14s %14s %14s\n", "config", "no PATU", "with PATU");

    // Per game, one parallel sweep covers the shared 1x baseline plus a
    // plain and a PATU condition for every cache configuration.
    const std::size_t nc = std::size(configs);
    std::vector<std::vector<double>> plain(nc), patu(nc);
    for (const Workload &w : paperWorkloads()) {
        std::vector<RunConfig> sweep;
        RunConfig base_cfg; // 1x, no PATU = normalization point.
        base_cfg.scenario = DesignScenario::Baseline;
        base_cfg.keep_images = false;
        sweep.push_back(base_cfg);
        for (const Config &c : configs) {
            RunConfig plain_cfg = base_cfg;
            plain_cfg.tc_scale = c.tc_scale;
            plain_cfg.llc_scale = c.llc_scale;
            sweep.push_back(plain_cfg);

            RunConfig patu_cfg = plain_cfg;
            patu_cfg.scenario = DesignScenario::Patu;
            patu_cfg.threshold = 0.4f;
            sweep.push_back(patu_cfg);
        }
        std::vector<RunResult> runs = runSweep(w.trace, sweep);
        const RunResult &base = runs[0];
        maybeWriteMetrics("fig21", w, base_cfg, base);
        for (std::size_t i = 0; i < nc; ++i) {
            plain[i].push_back(base.avg_cycles / runs[1 + 2 * i].avg_cycles);
            patu[i].push_back(base.avg_cycles / runs[2 + 2 * i].avg_cycles);
        }
    }

    // Average across the Table II games.
    for (std::size_t i = 0; i < nc; ++i)
        std::printf("%-14s %13.3fx %13.3fx\n", configs[i].label,
                    geomean(plain[i]), geomean(patu[i]));

    std::printf("\npaper: capacity alone gives little; PATU delivers "
                "24.1/28.0/28.3%% on the scaled configs and scales with "
                "LLC size.\n");
    return 0;
}
