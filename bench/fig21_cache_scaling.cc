/**
 * @file
 * Fig. 21 reproduction: performance when LLC and texture-cache capacities
 * scale up, with and without PATU. Paper: capacity alone barely helps
 * (rendering is throughput-bound), while PATU adds 24-28 % on top of
 * every configuration — it is orthogonal to cache scaling.
 */

#include "bench_util.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 21", "cache scaling with and without PATU");

    struct Config
    {
        const char *label;
        unsigned tc_scale;
        unsigned llc_scale;
    };
    const Config configs[] = {
        {"1x (baseline)", 1, 1},
        {"2xLLC", 1, 2},
        {"4xLLC", 1, 4},
        {"2xTC+4xLLC", 2, 4},
    };

    std::printf("%-14s %14s %14s\n", "config", "no PATU", "with PATU");

    // Average across the Table II games.
    for (const Config &c : configs) {
        std::vector<double> plain, patu;
        for (const Workload &w : paperWorkloads()) {
            RunConfig base_cfg; // 1x, no PATU = normalization point.
            base_cfg.scenario = DesignScenario::Baseline;
            base_cfg.keep_images = false;
            RunResult base = runTrace(w.trace, base_cfg);

            RunConfig plain_cfg = base_cfg;
            plain_cfg.tc_scale = c.tc_scale;
            plain_cfg.llc_scale = c.llc_scale;
            RunResult rp = runTrace(w.trace, plain_cfg);
            plain.push_back(base.avg_cycles / rp.avg_cycles);

            RunConfig patu_cfg = plain_cfg;
            patu_cfg.scenario = DesignScenario::Patu;
            patu_cfg.threshold = 0.4f;
            RunResult rq = runTrace(w.trace, patu_cfg);
            patu.push_back(base.avg_cycles / rq.avg_cycles);
        }
        std::printf("%-14s %13.3fx %13.3fx\n", c.label, geomean(plain),
                    geomean(patu));
    }

    std::printf("\npaper: capacity alone gives little; PATU delivers "
                "24.1/28.0/28.3%% on the scaled configs and scales with "
                "LLC size.\n");
    return 0;
}
