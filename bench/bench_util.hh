/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench renders real frames through the simulator, which is costly
 * at the paper's native resolutions on one core. By default the benches
 * run at half linear resolution with 2 frames per game (relative results
 * are resolution-stable; see EXPERIMENTS.md). Set PARGPU_FULLRES=1 for
 * the paper's native resolutions and PARGPU_FRAMES=n to change the frame
 * count.
 */

#ifndef PARGPU_BENCH_BENCH_UTIL_HH
#define PARGPU_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pargpu/metrics.hh"
#include "pargpu/config.hh"

namespace pargpu::bench
{

/** True when PARGPU_FULLRES=1: use the paper's native resolutions. */
inline bool
fullRes()
{
    const char *v = std::getenv("PARGPU_FULLRES");
    return v && v[0] == '1';
}

/** Frames per game trace (PARGPU_FRAMES, default 2). */
inline int
numFrames()
{
    const char *v = std::getenv("PARGPU_FRAMES");
    int n = v ? std::atoi(v) : 2;
    return n > 0 ? n : 2;
}

/** Scale a paper resolution down unless full-res mode is on. */
inline int
scaleDim(int dim)
{
    return fullRes() ? dim : dim / 2;
}

/** A workload instance used by most benches. */
struct Workload
{
    GameTrace trace;
    std::string label;
};

/** Build the nine Table II game/resolution pairs. */
inline std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    for (const BenchmarkEntry &e : paperBenchmarks()) {
        Workload w;
        w.trace = buildGameTrace(e.id, scaleDim(e.width),
                                 scaleDim(e.height), numFrames());
        w.label = std::string(e.abbr) + "-" + std::to_string(e.width) +
            "x" + std::to_string(e.height);
        out.push_back(std::move(w));
    }
    return out;
}

/** Print the standard bench banner. */
inline void
banner(const char *fig, const char *title)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s: %s\n", fig, title);
    std::printf("resolution mode: %s, %d frame(s) per game\n",
                fullRes() ? "paper-native" : "half-linear (set "
                                             "PARGPU_FULLRES=1 for native)",
                numFrames());
    std::printf("================================================="
                "=====================\n");
}

/**
 * Export one run as a metrics document when PARGPU_METRICS_DIR is set
 * (no-op otherwise). The file is named
 * <dir>/<tool>_<workload>_<scenario>.json so sweeps don't collide, and
 * uses the same schema as `pargpu_harness --metrics-json`
 * (docs/METRICS.md) — so any two bench runs can be diffed with
 * tools/pargpu_report.py.
 *
 * @param mssim  Quality vs. a reference run, or < 0 if not measured.
 */
inline void
maybeWriteMetrics(const char *tool, const Workload &w,
                  const RunConfig &config, const RunResult &run,
                  double mssim = -1.0)
{
    const char *dir = std::getenv("PARGPU_METRICS_DIR");
    if (!dir || !dir[0])
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best-effort
    RunMetadata meta;
    meta.tool = tool;
    meta.workload = w.label;
    meta.width = w.trace.width;
    meta.height = w.trace.height;
    meta.frames = static_cast<int>(w.trace.cameras.size());
    std::string path = std::string(dir) + "/" + tool + "_" + w.label +
        "_" + scenarioMetricName(config.scenario) + ".json";
    if (!writeMetricsJson(path, meta, config, run, mssim))
        std::fprintf(stderr, "bench: cannot write metrics to %s\n",
                     path.c_str());
}

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

} // namespace pargpu::bench

#endif // PARGPU_BENCH_BENCH_UTIL_HH
