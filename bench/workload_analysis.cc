/**
 * @file
 * Workload analysis: per-game anisotropy-degree distributions (pixel
 * share and texel-cost share per N bucket), the statistic that determines
 * how much headroom each prediction stage has. Complements Table II with
 * the structural properties the evaluation depends on.
 */

#include "bench_util.hh"
#include "pargpu/sim.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Analysis", "anisotropy-degree distribution per game");

    for (const Workload &w : paperWorkloads()) {
        const GameTrace &t = w.trace;
        const Camera &cam = t.cameras[0];
        std::uint64_t pix[17] = {0};
        std::uint64_t tex[17] = {0};
        std::vector<SetupTriangle> tris;

        for (const DrawCall &d : t.scene.draws) {
            Mat4 mvp = cam.proj * cam.view * d.model;
            tris.clear();
            for (std::size_t i = 0; i + 2 < d.mesh.indices.size(); i += 3) {
                Vertex tv[3] = {
                    d.mesh.vertices[d.mesh.indices[i]],
                    d.mesh.vertices[d.mesh.indices[i + 1]],
                    d.mesh.vertices[d.mesh.indices[i + 2]],
                };
                setupTriangles(tv, mvp, 1.0f, d.mesh.texture_id, d.filter,
                               d.backface_cull, t.width, t.height, tris,
                               d.specular);
            }
            const TextureMap &texture = *t.scene.textures[d.mesh.texture_id];
            TextureSampler sampler(texture);
            for (const SetupTriangle &st : tris) {
                rasterizeTriangle(
                    st, st.min_x, st.min_y, st.max_x, st.max_y,
                    [&](const QuadFragment &q) {
                        AnisotropyInfo info = sampler.computeAnisotropy(
                            q.duvdx, q.duvdy, 16);
                        int cov = __builtin_popcount(q.coverage);
                        pix[info.anisoDegree] +=
                            static_cast<std::uint64_t>(cov);
                        tex[info.anisoDegree] +=
                            static_cast<std::uint64_t>(cov) *
                            info.sampleSize * 8;
                    });
            }
        }

        std::uint64_t tp = 0, tt = 0;
        for (int i = 1; i <= 16; ++i) {
            tp += pix[i];
            tt += tex[i];
        }
        double avg_n = 0.0;
        for (int i = 1; i <= 16; ++i)
            avg_n += static_cast<double>(i) * pix[i];
        avg_n /= static_cast<double>(tp > 0 ? tp : 1);

        std::printf("\n%s  (avg degree %.2f)\n", w.label.c_str(), avg_n);
        std::printf("  %4s %9s %12s\n", "N", "pixels", "texel cost");
        for (int i = 1; i <= 16; ++i) {
            if (pix[i] == 0)
                continue;
            std::printf("  %4d %8.1f%% %11.1f%%\n", i,
                        100.0 * pix[i] / tp, 100.0 * tex[i] / tt);
        }
    }
    return 0;
}
