/**
 * @file
 * Table II reproduction: the 3D gaming benchmark inventory, printed from
 * the live scene registry together with the generated workload sizes.
 */

#include <cstdio>

#include "pargpu/scenes.hh"

using namespace pargpu;

int
main()
{
    std::printf("Table II: 3D gaming benchmarks\n");
    std::printf("%-8s %-34s %-12s %-10s %9s %8s\n", "abbr", "name",
                "resolution", "library", "tris", "textures");

    for (const BenchmarkEntry &e : paperBenchmarks()) {
        // Build a 1-frame instance to report workload size.
        GameTrace t = buildGameTrace(e.id, e.width, e.height, 1);
        std::printf("%-8s %-34s %4dx%-7d %-10s %9zu %8zu\n", e.abbr,
                    e.full_name, e.width, e.height, e.library,
                    t.scene.numTriangles(), t.scene.textures.size());
    }

    std::printf("\n(the procedural scenes stand in for the commercial "
                "game traces; see DESIGN.md)\n");
    return 0;
}
