/**
 * @file
 * Fig. 8 reproduction: a selected HL2 frame rendered with AF on and off,
 * plus their SSIM index map (lighter = more similar). Writes the three
 * images as PPMs and reports the key observation: a large fraction of
 * pixels remain highly similar without AF.
 */

#include "bench_util.hh"
#include "pargpu/quality.hh"

using namespace pargpu;
using namespace pargpu::bench;

int
main()
{
    banner("Figure 8", "SSIM index map of AF-on vs AF-off (HL2)");

    // The paper's frame is HL2 at 1600x1200.
    int w = scaleDim(1600), h = scaleDim(1200);
    GameTrace trace = buildGameTrace(GameId::HL2, w, h, 1);

    RunConfig on_cfg;
    on_cfg.scenario = DesignScenario::Baseline;
    RunResult on = runTrace(trace, on_cfg);

    RunConfig off_cfg;
    off_cfg.scenario = DesignScenario::NoAF;
    RunResult off = runTrace(trace, off_cfg);

    std::vector<float> map = ssimMap(off.images[0], on.images[0]);
    double m = mssimOfMap(map);

    // Fraction of pixels that stay perceptually close without AF.
    std::size_t high = 0;
    for (float v : map)
        high += v >= 0.93f;
    double frac = static_cast<double>(high) / map.size();

    on.images[0].writePPM("fig08_af_on.ppm");
    off.images[0].writePPM("fig08_af_off.ppm");
    ssimMapImage(map, w, h).writePPM("fig08_ssim_map.ppm");

    std::printf("frame MSSIM (AF-off vs AF-on) : %.4f\n", m);
    std::printf("pixels with SSIM >= 0.93      : %.1f%%\n", 100 * frac);
    std::printf("wrote fig08_af_on.ppm, fig08_af_off.ppm, "
                "fig08_ssim_map.ppm\n");
    std::printf("\npaper: more than half of the pixels keep high "
                "perceived quality without AF.\n");
    return 0;
}
