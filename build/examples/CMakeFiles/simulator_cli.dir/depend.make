# Empty dependencies file for simulator_cli.
# This may be replaced when dependencies are built.
