file(REMOVE_RECURSE
  "CMakeFiles/simulator_cli.dir/simulator_cli.cpp.o"
  "CMakeFiles/simulator_cli.dir/simulator_cli.cpp.o.d"
  "simulator_cli"
  "simulator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
