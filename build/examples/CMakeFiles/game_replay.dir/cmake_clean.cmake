file(REMOVE_RECURSE
  "CMakeFiles/game_replay.dir/game_replay.cpp.o"
  "CMakeFiles/game_replay.dir/game_replay.cpp.o.d"
  "game_replay"
  "game_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
