# Empty compiler generated dependencies file for ssim_tool.
# This may be replaced when dependencies are built.
