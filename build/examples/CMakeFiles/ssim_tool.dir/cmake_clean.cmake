file(REMOVE_RECURSE
  "CMakeFiles/ssim_tool.dir/ssim_tool.cpp.o"
  "CMakeFiles/ssim_tool.dir/ssim_tool.cpp.o.d"
  "ssim_tool"
  "ssim_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
