file(REMOVE_RECURSE
  "CMakeFiles/pargpu_power.dir/energy.cc.o"
  "CMakeFiles/pargpu_power.dir/energy.cc.o.d"
  "libpargpu_power.a"
  "libpargpu_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
