file(REMOVE_RECURSE
  "libpargpu_power.a"
)
