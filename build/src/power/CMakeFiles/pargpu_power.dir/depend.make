# Empty dependencies file for pargpu_power.
# This may be replaced when dependencies are built.
