# Empty compiler generated dependencies file for pargpu_sim.
# This may be replaced when dependencies are built.
