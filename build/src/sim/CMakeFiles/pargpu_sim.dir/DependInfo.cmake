
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/framebuffer.cc" "src/sim/CMakeFiles/pargpu_sim.dir/framebuffer.cc.o" "gcc" "src/sim/CMakeFiles/pargpu_sim.dir/framebuffer.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/pargpu_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/pargpu_sim.dir/pipeline.cc.o.d"
  "/root/repo/src/sim/raster.cc" "src/sim/CMakeFiles/pargpu_sim.dir/raster.cc.o" "gcc" "src/sim/CMakeFiles/pargpu_sim.dir/raster.cc.o.d"
  "/root/repo/src/sim/stereo.cc" "src/sim/CMakeFiles/pargpu_sim.dir/stereo.cc.o" "gcc" "src/sim/CMakeFiles/pargpu_sim.dir/stereo.cc.o.d"
  "/root/repo/src/sim/texunit.cc" "src/sim/CMakeFiles/pargpu_sim.dir/texunit.cc.o" "gcc" "src/sim/CMakeFiles/pargpu_sim.dir/texunit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pargpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/pargpu_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pargpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pargpu_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
