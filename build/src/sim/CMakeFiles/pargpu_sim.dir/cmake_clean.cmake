file(REMOVE_RECURSE
  "CMakeFiles/pargpu_sim.dir/framebuffer.cc.o"
  "CMakeFiles/pargpu_sim.dir/framebuffer.cc.o.d"
  "CMakeFiles/pargpu_sim.dir/pipeline.cc.o"
  "CMakeFiles/pargpu_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/pargpu_sim.dir/raster.cc.o"
  "CMakeFiles/pargpu_sim.dir/raster.cc.o.d"
  "CMakeFiles/pargpu_sim.dir/stereo.cc.o"
  "CMakeFiles/pargpu_sim.dir/stereo.cc.o.d"
  "CMakeFiles/pargpu_sim.dir/texunit.cc.o"
  "CMakeFiles/pargpu_sim.dir/texunit.cc.o.d"
  "libpargpu_sim.a"
  "libpargpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
