file(REMOVE_RECURSE
  "libpargpu_sim.a"
)
