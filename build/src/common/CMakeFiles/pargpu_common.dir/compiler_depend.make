# Empty compiler generated dependencies file for pargpu_common.
# This may be replaced when dependencies are built.
