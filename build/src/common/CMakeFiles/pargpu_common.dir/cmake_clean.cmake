file(REMOVE_RECURSE
  "CMakeFiles/pargpu_common.dir/image.cc.o"
  "CMakeFiles/pargpu_common.dir/image.cc.o.d"
  "CMakeFiles/pargpu_common.dir/logging.cc.o"
  "CMakeFiles/pargpu_common.dir/logging.cc.o.d"
  "CMakeFiles/pargpu_common.dir/stats.cc.o"
  "CMakeFiles/pargpu_common.dir/stats.cc.o.d"
  "libpargpu_common.a"
  "libpargpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
