file(REMOVE_RECURSE
  "libpargpu_common.a"
)
