# Empty dependencies file for pargpu_quality.
# This may be replaced when dependencies are built.
