file(REMOVE_RECURSE
  "libpargpu_quality.a"
)
