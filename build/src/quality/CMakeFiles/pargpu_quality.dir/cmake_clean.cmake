file(REMOVE_RECURSE
  "CMakeFiles/pargpu_quality.dir/ssim.cc.o"
  "CMakeFiles/pargpu_quality.dir/ssim.cc.o.d"
  "libpargpu_quality.a"
  "libpargpu_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
