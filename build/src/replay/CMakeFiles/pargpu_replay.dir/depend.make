# Empty dependencies file for pargpu_replay.
# This may be replaced when dependencies are built.
