file(REMOVE_RECURSE
  "libpargpu_replay.a"
)
