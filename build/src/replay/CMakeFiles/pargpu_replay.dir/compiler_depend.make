# Empty compiler generated dependencies file for pargpu_replay.
# This may be replaced when dependencies are built.
