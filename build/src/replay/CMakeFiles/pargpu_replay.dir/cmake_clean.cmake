file(REMOVE_RECURSE
  "CMakeFiles/pargpu_replay.dir/replay.cc.o"
  "CMakeFiles/pargpu_replay.dir/replay.cc.o.d"
  "CMakeFiles/pargpu_replay.dir/userstudy.cc.o"
  "CMakeFiles/pargpu_replay.dir/userstudy.cc.o.d"
  "libpargpu_replay.a"
  "libpargpu_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
