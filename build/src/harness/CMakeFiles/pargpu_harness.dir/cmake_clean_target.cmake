file(REMOVE_RECURSE
  "libpargpu_harness.a"
)
