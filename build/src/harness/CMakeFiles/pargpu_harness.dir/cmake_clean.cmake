file(REMOVE_RECURSE
  "CMakeFiles/pargpu_harness.dir/runner.cc.o"
  "CMakeFiles/pargpu_harness.dir/runner.cc.o.d"
  "libpargpu_harness.a"
  "libpargpu_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
