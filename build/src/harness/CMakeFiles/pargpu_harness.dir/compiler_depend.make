# Empty compiler generated dependencies file for pargpu_harness.
# This may be replaced when dependencies are built.
