file(REMOVE_RECURSE
  "CMakeFiles/pargpu_core.dir/afssim.cc.o"
  "CMakeFiles/pargpu_core.dir/afssim.cc.o.d"
  "CMakeFiles/pargpu_core.dir/hashtable.cc.o"
  "CMakeFiles/pargpu_core.dir/hashtable.cc.o.d"
  "CMakeFiles/pargpu_core.dir/overhead.cc.o"
  "CMakeFiles/pargpu_core.dir/overhead.cc.o.d"
  "CMakeFiles/pargpu_core.dir/patu.cc.o"
  "CMakeFiles/pargpu_core.dir/patu.cc.o.d"
  "libpargpu_core.a"
  "libpargpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
