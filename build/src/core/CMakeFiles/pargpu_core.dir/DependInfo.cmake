
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/afssim.cc" "src/core/CMakeFiles/pargpu_core.dir/afssim.cc.o" "gcc" "src/core/CMakeFiles/pargpu_core.dir/afssim.cc.o.d"
  "/root/repo/src/core/hashtable.cc" "src/core/CMakeFiles/pargpu_core.dir/hashtable.cc.o" "gcc" "src/core/CMakeFiles/pargpu_core.dir/hashtable.cc.o.d"
  "/root/repo/src/core/overhead.cc" "src/core/CMakeFiles/pargpu_core.dir/overhead.cc.o" "gcc" "src/core/CMakeFiles/pargpu_core.dir/overhead.cc.o.d"
  "/root/repo/src/core/patu.cc" "src/core/CMakeFiles/pargpu_core.dir/patu.cc.o" "gcc" "src/core/CMakeFiles/pargpu_core.dir/patu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pargpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/pargpu_texture.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
