src/core/CMakeFiles/pargpu_core.dir/overhead.cc.o: \
 /root/repo/src/core/overhead.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/overhead.hh
