file(REMOVE_RECURSE
  "libpargpu_core.a"
)
