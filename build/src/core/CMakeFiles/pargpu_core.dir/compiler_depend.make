# Empty compiler generated dependencies file for pargpu_core.
# This may be replaced when dependencies are built.
