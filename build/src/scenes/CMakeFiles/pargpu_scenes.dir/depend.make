# Empty dependencies file for pargpu_scenes.
# This may be replaced when dependencies are built.
