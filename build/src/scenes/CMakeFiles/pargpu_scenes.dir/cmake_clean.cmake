file(REMOVE_RECURSE
  "CMakeFiles/pargpu_scenes.dir/meshes.cc.o"
  "CMakeFiles/pargpu_scenes.dir/meshes.cc.o.d"
  "CMakeFiles/pargpu_scenes.dir/scenes.cc.o"
  "CMakeFiles/pargpu_scenes.dir/scenes.cc.o.d"
  "libpargpu_scenes.a"
  "libpargpu_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
