file(REMOVE_RECURSE
  "libpargpu_scenes.a"
)
