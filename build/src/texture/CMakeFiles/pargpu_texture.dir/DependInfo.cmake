
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/texture/compress.cc" "src/texture/CMakeFiles/pargpu_texture.dir/compress.cc.o" "gcc" "src/texture/CMakeFiles/pargpu_texture.dir/compress.cc.o.d"
  "/root/repo/src/texture/mipmap.cc" "src/texture/CMakeFiles/pargpu_texture.dir/mipmap.cc.o" "gcc" "src/texture/CMakeFiles/pargpu_texture.dir/mipmap.cc.o.d"
  "/root/repo/src/texture/procedural.cc" "src/texture/CMakeFiles/pargpu_texture.dir/procedural.cc.o" "gcc" "src/texture/CMakeFiles/pargpu_texture.dir/procedural.cc.o.d"
  "/root/repo/src/texture/sampler.cc" "src/texture/CMakeFiles/pargpu_texture.dir/sampler.cc.o" "gcc" "src/texture/CMakeFiles/pargpu_texture.dir/sampler.cc.o.d"
  "/root/repo/src/texture/texture.cc" "src/texture/CMakeFiles/pargpu_texture.dir/texture.cc.o" "gcc" "src/texture/CMakeFiles/pargpu_texture.dir/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pargpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
