file(REMOVE_RECURSE
  "CMakeFiles/pargpu_texture.dir/compress.cc.o"
  "CMakeFiles/pargpu_texture.dir/compress.cc.o.d"
  "CMakeFiles/pargpu_texture.dir/mipmap.cc.o"
  "CMakeFiles/pargpu_texture.dir/mipmap.cc.o.d"
  "CMakeFiles/pargpu_texture.dir/procedural.cc.o"
  "CMakeFiles/pargpu_texture.dir/procedural.cc.o.d"
  "CMakeFiles/pargpu_texture.dir/sampler.cc.o"
  "CMakeFiles/pargpu_texture.dir/sampler.cc.o.d"
  "CMakeFiles/pargpu_texture.dir/texture.cc.o"
  "CMakeFiles/pargpu_texture.dir/texture.cc.o.d"
  "libpargpu_texture.a"
  "libpargpu_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
