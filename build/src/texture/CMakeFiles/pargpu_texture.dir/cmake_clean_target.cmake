file(REMOVE_RECURSE
  "libpargpu_texture.a"
)
