# Empty dependencies file for pargpu_texture.
# This may be replaced when dependencies are built.
