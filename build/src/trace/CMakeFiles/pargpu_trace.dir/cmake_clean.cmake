file(REMOVE_RECURSE
  "CMakeFiles/pargpu_trace.dir/trace.cc.o"
  "CMakeFiles/pargpu_trace.dir/trace.cc.o.d"
  "libpargpu_trace.a"
  "libpargpu_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
