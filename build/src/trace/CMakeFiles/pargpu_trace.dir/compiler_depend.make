# Empty compiler generated dependencies file for pargpu_trace.
# This may be replaced when dependencies are built.
