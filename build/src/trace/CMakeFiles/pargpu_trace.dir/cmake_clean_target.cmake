file(REMOVE_RECURSE
  "libpargpu_trace.a"
)
