# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("texture")
subdirs("mem")
subdirs("quality")
subdirs("sim")
subdirs("core")
subdirs("power")
subdirs("trace")
subdirs("scenes")
subdirs("replay")
subdirs("harness")
