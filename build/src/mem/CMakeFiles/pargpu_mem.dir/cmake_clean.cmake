file(REMOVE_RECURSE
  "CMakeFiles/pargpu_mem.dir/cache.cc.o"
  "CMakeFiles/pargpu_mem.dir/cache.cc.o.d"
  "CMakeFiles/pargpu_mem.dir/dram.cc.o"
  "CMakeFiles/pargpu_mem.dir/dram.cc.o.d"
  "CMakeFiles/pargpu_mem.dir/memsys.cc.o"
  "CMakeFiles/pargpu_mem.dir/memsys.cc.o.d"
  "libpargpu_mem.a"
  "libpargpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pargpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
