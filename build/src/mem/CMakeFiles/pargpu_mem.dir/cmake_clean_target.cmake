file(REMOVE_RECURSE
  "libpargpu_mem.a"
)
