# Empty dependencies file for pargpu_mem.
# This may be replaced when dependencies are built.
