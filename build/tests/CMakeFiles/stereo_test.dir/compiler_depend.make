# Empty compiler generated dependencies file for stereo_test.
# This may be replaced when dependencies are built.
