file(REMOVE_RECURSE
  "CMakeFiles/stereo_test.dir/stereo_test.cc.o"
  "CMakeFiles/stereo_test.dir/stereo_test.cc.o.d"
  "stereo_test"
  "stereo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stereo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
