file(REMOVE_RECURSE
  "CMakeFiles/patu_test.dir/patu_test.cc.o"
  "CMakeFiles/patu_test.dir/patu_test.cc.o.d"
  "patu_test"
  "patu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
