# Empty compiler generated dependencies file for patu_test.
# This may be replaced when dependencies are built.
