# Empty dependencies file for scenes_test.
# This may be replaced when dependencies are built.
