file(REMOVE_RECURSE
  "CMakeFiles/scenes_test.dir/scenes_test.cc.o"
  "CMakeFiles/scenes_test.dir/scenes_test.cc.o.d"
  "scenes_test"
  "scenes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
