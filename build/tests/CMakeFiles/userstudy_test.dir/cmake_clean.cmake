file(REMOVE_RECURSE
  "CMakeFiles/userstudy_test.dir/userstudy_test.cc.o"
  "CMakeFiles/userstudy_test.dir/userstudy_test.cc.o.d"
  "userstudy_test"
  "userstudy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userstudy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
