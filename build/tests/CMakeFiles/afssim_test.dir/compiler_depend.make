# Empty compiler generated dependencies file for afssim_test.
# This may be replaced when dependencies are built.
