file(REMOVE_RECURSE
  "CMakeFiles/afssim_test.dir/afssim_test.cc.o"
  "CMakeFiles/afssim_test.dir/afssim_test.cc.o.d"
  "afssim_test"
  "afssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
