file(REMOVE_RECURSE
  "CMakeFiles/energy_sweep_test.dir/energy_sweep_test.cc.o"
  "CMakeFiles/energy_sweep_test.dir/energy_sweep_test.cc.o.d"
  "energy_sweep_test"
  "energy_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
