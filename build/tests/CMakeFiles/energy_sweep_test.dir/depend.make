# Empty dependencies file for energy_sweep_test.
# This may be replaced when dependencies are built.
