# Empty dependencies file for mipmap_test.
# This may be replaced when dependencies are built.
