file(REMOVE_RECURSE
  "CMakeFiles/mipmap_test.dir/mipmap_test.cc.o"
  "CMakeFiles/mipmap_test.dir/mipmap_test.cc.o.d"
  "mipmap_test"
  "mipmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mipmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
