file(REMOVE_RECURSE
  "CMakeFiles/texunit_test.dir/texunit_test.cc.o"
  "CMakeFiles/texunit_test.dir/texunit_test.cc.o.d"
  "texunit_test"
  "texunit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texunit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
