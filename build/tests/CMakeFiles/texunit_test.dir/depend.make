# Empty dependencies file for texunit_test.
# This may be replaced when dependencies are built.
