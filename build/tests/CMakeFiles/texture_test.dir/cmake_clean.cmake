file(REMOVE_RECURSE
  "CMakeFiles/texture_test.dir/texture_test.cc.o"
  "CMakeFiles/texture_test.dir/texture_test.cc.o.d"
  "texture_test"
  "texture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
