# Empty dependencies file for texture_test.
# This may be replaced when dependencies are built.
