file(REMOVE_RECURSE
  "CMakeFiles/raster_edge_test.dir/raster_edge_test.cc.o"
  "CMakeFiles/raster_edge_test.dir/raster_edge_test.cc.o.d"
  "raster_edge_test"
  "raster_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
