# Empty dependencies file for raster_edge_test.
# This may be replaced when dependencies are built.
