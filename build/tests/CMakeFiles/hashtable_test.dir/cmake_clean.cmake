file(REMOVE_RECURSE
  "CMakeFiles/hashtable_test.dir/hashtable_test.cc.o"
  "CMakeFiles/hashtable_test.dir/hashtable_test.cc.o.d"
  "hashtable_test"
  "hashtable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
