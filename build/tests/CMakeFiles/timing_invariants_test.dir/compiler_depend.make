# Empty compiler generated dependencies file for timing_invariants_test.
# This may be replaced when dependencies are built.
