file(REMOVE_RECURSE
  "CMakeFiles/timing_invariants_test.dir/timing_invariants_test.cc.o"
  "CMakeFiles/timing_invariants_test.dir/timing_invariants_test.cc.o.d"
  "timing_invariants_test"
  "timing_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
