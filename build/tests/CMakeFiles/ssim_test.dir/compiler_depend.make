# Empty compiler generated dependencies file for ssim_test.
# This may be replaced when dependencies are built.
