file(REMOVE_RECURSE
  "CMakeFiles/ssim_test.dir/ssim_test.cc.o"
  "CMakeFiles/ssim_test.dir/ssim_test.cc.o.d"
  "ssim_test"
  "ssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
