# Empty dependencies file for fig08_ssim_map.
# This may be replaced when dependencies are built.
