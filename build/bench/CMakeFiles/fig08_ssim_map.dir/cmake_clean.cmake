file(REMOVE_RECURSE
  "CMakeFiles/fig08_ssim_map.dir/fig08_ssim_map.cc.o"
  "CMakeFiles/fig08_ssim_map.dir/fig08_ssim_map.cc.o.d"
  "fig08_ssim_map"
  "fig08_ssim_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ssim_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
