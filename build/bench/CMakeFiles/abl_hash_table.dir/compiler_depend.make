# Empty compiler generated dependencies file for abl_hash_table.
# This may be replaced when dependencies are built.
