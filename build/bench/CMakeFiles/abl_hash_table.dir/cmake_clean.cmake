file(REMOVE_RECURSE
  "CMakeFiles/abl_hash_table.dir/abl_hash_table.cc.o"
  "CMakeFiles/abl_hash_table.dir/abl_hash_table.cc.o.d"
  "abl_hash_table"
  "abl_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
