file(REMOVE_RECURSE
  "CMakeFiles/fig19_speedup_quality.dir/fig19_speedup_quality.cc.o"
  "CMakeFiles/fig19_speedup_quality.dir/fig19_speedup_quality.cc.o.d"
  "fig19_speedup_quality"
  "fig19_speedup_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_speedup_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
