# Empty dependencies file for fig19_speedup_quality.
# This may be replaced when dependencies are built.
