# Empty dependencies file for fig04_rbench_fps.
# This may be replaced when dependencies are built.
