file(REMOVE_RECURSE
  "CMakeFiles/fig04_rbench_fps.dir/fig04_rbench_fps.cc.o"
  "CMakeFiles/fig04_rbench_fps.dir/fig04_rbench_fps.cc.o.d"
  "fig04_rbench_fps"
  "fig04_rbench_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rbench_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
