file(REMOVE_RECURSE
  "CMakeFiles/fig06_bandwidth.dir/fig06_bandwidth.cc.o"
  "CMakeFiles/fig06_bandwidth.dir/fig06_bandwidth.cc.o.d"
  "fig06_bandwidth"
  "fig06_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
