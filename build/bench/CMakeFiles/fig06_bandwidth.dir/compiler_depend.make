# Empty compiler generated dependencies file for fig06_bandwidth.
# This may be replaced when dependencies are built.
