# Empty dependencies file for sec5c_divergence.
# This may be replaced when dependencies are built.
