file(REMOVE_RECURSE
  "CMakeFiles/sec5c_divergence.dir/sec5c_divergence.cc.o"
  "CMakeFiles/sec5c_divergence.dir/sec5c_divergence.cc.o.d"
  "sec5c_divergence"
  "sec5c_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5c_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
