# Empty dependencies file for abl_vr_stereo.
# This may be replaced when dependencies are built.
