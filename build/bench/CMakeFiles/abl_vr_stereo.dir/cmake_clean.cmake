file(REMOVE_RECURSE
  "CMakeFiles/abl_vr_stereo.dir/abl_vr_stereo.cc.o"
  "CMakeFiles/abl_vr_stereo.dir/abl_vr_stereo.cc.o.d"
  "abl_vr_stereo"
  "abl_vr_stereo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vr_stereo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
