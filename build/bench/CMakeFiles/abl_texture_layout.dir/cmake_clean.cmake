file(REMOVE_RECURSE
  "CMakeFiles/abl_texture_layout.dir/abl_texture_layout.cc.o"
  "CMakeFiles/abl_texture_layout.dir/abl_texture_layout.cc.o.d"
  "abl_texture_layout"
  "abl_texture_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_texture_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
