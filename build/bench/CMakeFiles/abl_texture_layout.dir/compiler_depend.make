# Empty compiler generated dependencies file for abl_texture_layout.
# This may be replaced when dependencies are built.
