# Empty dependencies file for fig22_user_study.
# This may be replaced when dependencies are built.
