file(REMOVE_RECURSE
  "CMakeFiles/fig22_user_study.dir/fig22_user_study.cc.o"
  "CMakeFiles/fig22_user_study.dir/fig22_user_study.cc.o.d"
  "fig22_user_study"
  "fig22_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
