
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_threshold_sweep.cc" "bench/CMakeFiles/fig17_threshold_sweep.dir/fig17_threshold_sweep.cc.o" "gcc" "bench/CMakeFiles/fig17_threshold_sweep.dir/fig17_threshold_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pargpu_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pargpu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pargpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/pargpu_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pargpu_power.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pargpu_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/scenes/CMakeFiles/pargpu_scenes.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pargpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pargpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/pargpu_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pargpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
