file(REMOVE_RECURSE
  "CMakeFiles/fig17_threshold_sweep.dir/fig17_threshold_sweep.cc.o"
  "CMakeFiles/fig17_threshold_sweep.dir/fig17_threshold_sweep.cc.o.d"
  "fig17_threshold_sweep"
  "fig17_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
