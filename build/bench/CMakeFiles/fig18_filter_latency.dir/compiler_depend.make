# Empty compiler generated dependencies file for fig18_filter_latency.
# This may be replaced when dependencies are built.
