file(REMOVE_RECURSE
  "CMakeFiles/fig21_cache_scaling.dir/fig21_cache_scaling.cc.o"
  "CMakeFiles/fig21_cache_scaling.dir/fig21_cache_scaling.cc.o.d"
  "fig21_cache_scaling"
  "fig21_cache_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cache_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
