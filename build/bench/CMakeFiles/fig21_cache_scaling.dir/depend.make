# Empty dependencies file for fig21_cache_scaling.
# This may be replaced when dependencies are built.
