# Empty dependencies file for abl_max_aniso.
# This may be replaced when dependencies are built.
