file(REMOVE_RECURSE
  "CMakeFiles/abl_max_aniso.dir/abl_max_aniso.cc.o"
  "CMakeFiles/abl_max_aniso.dir/abl_max_aniso.cc.o.d"
  "abl_max_aniso"
  "abl_max_aniso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_max_aniso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
