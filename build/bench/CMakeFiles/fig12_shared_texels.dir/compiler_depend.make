# Empty compiler generated dependencies file for fig12_shared_texels.
# This may be replaced when dependencies are built.
