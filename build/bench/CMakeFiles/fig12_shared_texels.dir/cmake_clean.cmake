file(REMOVE_RECURSE
  "CMakeFiles/fig12_shared_texels.dir/fig12_shared_texels.cc.o"
  "CMakeFiles/fig12_shared_texels.dir/fig12_shared_texels.cc.o.d"
  "fig12_shared_texels"
  "fig12_shared_texels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_shared_texels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
