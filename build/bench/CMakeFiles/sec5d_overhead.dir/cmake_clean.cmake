file(REMOVE_RECURSE
  "CMakeFiles/sec5d_overhead.dir/sec5d_overhead.cc.o"
  "CMakeFiles/sec5d_overhead.dir/sec5d_overhead.cc.o.d"
  "sec5d_overhead"
  "sec5d_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5d_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
