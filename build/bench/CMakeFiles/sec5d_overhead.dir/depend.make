# Empty dependencies file for sec5d_overhead.
# This may be replaced when dependencies are built.
