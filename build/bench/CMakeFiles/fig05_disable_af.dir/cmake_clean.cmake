file(REMOVE_RECURSE
  "CMakeFiles/fig05_disable_af.dir/fig05_disable_af.cc.o"
  "CMakeFiles/fig05_disable_af.dir/fig05_disable_af.cc.o.d"
  "fig05_disable_af"
  "fig05_disable_af.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_disable_af.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
