# Empty compiler generated dependencies file for fig05_disable_af.
# This may be replaced when dependencies are built.
