# Empty dependencies file for fig07_perception_loss.
# This may be replaced when dependencies are built.
