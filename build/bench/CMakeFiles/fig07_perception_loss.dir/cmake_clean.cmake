file(REMOVE_RECURSE
  "CMakeFiles/fig07_perception_loss.dir/fig07_perception_loss.cc.o"
  "CMakeFiles/fig07_perception_loss.dir/fig07_perception_loss.cc.o.d"
  "fig07_perception_loss"
  "fig07_perception_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_perception_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
