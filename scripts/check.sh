#!/usr/bin/env bash
# pargpu correctness matrix: one command that builds and tests the tree
# under every supported analysis configuration and fails loudly on the
# first problem.
#
#   1. Release + contracts (-DPARGPU_CHECKS=ON) + -Werror, full ctest
#   2. AddressSanitizer build, full ctest
#   3. UndefinedBehaviorSanitizer build (no-recover), full ctest
#   4. ThreadSanitizer build, threading-focused ctest subset, run twice:
#      as-is and again with PARGPU_TILE_PARALLEL=1 so the intra-frame
#      tile-parallel fragment phase is exercised under TSAN
#   5. -DPARGPU_TRACING=OFF build (macros compiled out), tracing subset
#   6. pargpu-lint standalone (includes header self-containment builds)
#   7. clang-tidy over src/ (skipped with a note when not installed)
#   8. perf gate: perf_smoke's texel-bound export and perf_tile's
#      tile-parallel export diffed against the committed baselines
#      (bench/baselines/) with --fail-on-regress
#   9. SIMD bit-identity: -DPARGPU_SIMD=OFF build vs the ON build —
#      determinism subset + simd_kernel_test under both, then the
#      harness metrics exports diffed field-by-field (only the
#      dispatch-reporting fields may differ)
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
    case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

cd "$ROOT"

stage() {
    echo
    echo "==== check.sh: $* ===="
}

configure_build_test() {
    local dir="$1"
    shift
    local ctest_args=("--output-on-failure" "-j" "$JOBS")
    cmake -B "$dir" -S . "$@" >"$dir.configure.log" 2>&1 || {
        cat "$dir.configure.log" >&2
        return 1
    }
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" "${ctest_args[@]}"
}

stage "1/9 Release + contracts + -Werror"
configure_build_test build-check \
    -DCMAKE_BUILD_TYPE=Release -DPARGPU_CHECKS=ON -DPARGPU_WERROR=ON

stage "2/9 AddressSanitizer"
configure_build_test build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_ASAN=ON -DPARGPU_CHECKS=ON

stage "3/9 UndefinedBehaviorSanitizer"
configure_build_test build-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_UBSAN=ON -DPARGPU_CHECKS=ON

stage "4/9 ThreadSanitizer (threading subset)"
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_TSAN=ON \
    >build-tsan.configure.log 2>&1 || { cat build-tsan.configure.log >&2; exit 1; }
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R "threadpool_test|determinism_test|pipeline_test|integration_test|contract_test"
# Second pass with tile parallelism forced on: every renderFrame() in the
# subset fans its fragment phase out across clusters, so TSAN sees the
# per-cluster sharding and the ordered commit pass.
PARGPU_TILE_PARALLEL=1 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R "determinism_test|pipeline_test|integration_test"

stage "5/9 tracing compiled out (-DPARGPU_TRACING=OFF)"
cmake -B build-notrace -S . \
    -DCMAKE_BUILD_TYPE=Release -DPARGPU_TRACING=OFF \
    >build-notrace.configure.log 2>&1 || { cat build-notrace.configure.log >&2; exit 1; }
cmake --build build-notrace -j "$JOBS" \
    --target tracing_test determinism_test pargpu_harness
ctest --test-dir build-notrace --output-on-failure -j "$JOBS" \
    -R "tracing_test|determinism_test"

stage "6/9 pargpu-lint"
python3 tools/pargpu_lint.py --root "$ROOT"

stage "7/9 clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build-check -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build-check --quiet "${tidy_sources[@]}"
else
    echo "clang-tidy not installed; skipping (config committed in .clang-tidy)"
fi

stage "8/9 perf gate (texel hot path + tile parallelism vs committed baselines)"
# Plain Release (contracts off) so wall-clock resembles production; the
# gates themselves are on the *simulated* metrics, which are
# deterministic — wall-clock speedups in BENCH_texel.json and
# BENCH_tile.json are informational (they depend on the core count).
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release \
    >build-perf.configure.log 2>&1 || { cat build-perf.configure.log >&2; exit 1; }
cmake --build build-perf -j "$JOBS" --target perf_smoke perf_tile
PERF_METRICS="$ROOT/build-perf/perf-metrics"
mkdir -p "$PERF_METRICS"
( cd build-perf && PARGPU_FRAMES=2 PARGPU_METRICS_DIR="$PERF_METRICS" \
    ./bench/perf_smoke )
python3 tools/pargpu_report.py \
    bench/baselines/perf_texel_HL2-640x512_baseline.json \
    "$PERF_METRICS/perf_texel_HL2-640x512_baseline.json" \
    --fail-on-regress 0.01
( cd build-perf && PARGPU_METRICS_DIR="$PERF_METRICS" ./bench/perf_tile )
python3 tools/pargpu_report.py \
    bench/baselines/perf_tile_HL2-1280x1024_baseline.json \
    "$PERF_METRICS/perf_tile_HL2-1280x1024_baseline.json" \
    --fail-on-regress 0.01

stage "9/9 SIMD bit-identity (-DPARGPU_SIMD=OFF vs ON)"
# The scalar-only build must render the same frames and register the
# same metrics as the SIMD build; only the dispatch-reporting fields
# (run.simd_dispatch, registry simd.dispatch / texunit.simd_width) may
# differ. build-perf is the ON build (the knob defaults to ON).
cmake -B build-simd-off -S . -DCMAKE_BUILD_TYPE=Release -DPARGPU_SIMD=OFF \
    >build-simd-off.configure.log 2>&1 || { cat build-simd-off.configure.log >&2; exit 1; }
cmake --build build-simd-off -j "$JOBS" \
    --target determinism_test simd_kernel_test pargpu_harness
cmake --build build-perf -j "$JOBS" \
    --target determinism_test simd_kernel_test pargpu_harness
ctest --test-dir build-simd-off --output-on-failure -j "$JOBS" \
    -R "determinism_test|simd_kernel_test"
ctest --test-dir build-perf --output-on-failure -j "$JOBS" \
    -R "determinism_test|simd_kernel_test"
SIMD_DIFF="$ROOT/build-simd-off/simd-diff"
mkdir -p "$SIMD_DIFF"
for build in build-simd-off build-perf; do
    "$ROOT/$build/src/harness/pargpu_harness" \
        --run-game wolf --run-scenario patu \
        --run-width 160 --run-height 120 --run-frames 2 --quiet \
        --metrics-json "$SIMD_DIFF/$build.json"
done
python3 - "$SIMD_DIFF/build-simd-off.json" "$SIMD_DIFF/build-perf.json" <<'EOF'
import json, sys

# The only fields the dispatch tier may change.
ALLOWED = {
    "run/simd_dispatch",
    "registry/scalars/simd.dispatch",
    "registry/scalars/texunit.simd_width",
}

def flatten(node, prefix, out):
    if isinstance(node, dict):
        for k, v in node.items():
            flatten(v, f"{prefix}/{k}" if prefix else k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            flatten(v, f"{prefix}[{i}]", out)
    else:
        out[prefix] = node
    return out

a = flatten(json.load(open(sys.argv[1])), "", {})
b = flatten(json.load(open(sys.argv[2])), "", {})
bad = [k for k in a.keys() | b.keys()
       if k not in ALLOWED and a.get(k) != b.get(k)]
if bad:
    for k in sorted(bad):
        print(f"SIMD OFF/ON mismatch {k}: {a.get(k)} vs {b.get(k)}",
              file=sys.stderr)
    sys.exit(1)
print(f"SIMD OFF/ON exports identical ({len(a)} fields, "
      f"{len(ALLOWED)} dispatch fields excluded)")
EOF

stage "all stages passed"
