#!/usr/bin/env bash
# pargpu correctness matrix: one command that builds and tests the tree
# under every supported analysis configuration and fails loudly on the
# first problem.
#
#    1. Release + contracts (-DPARGPU_CHECKS=ON) + -Werror, full ctest
#    2. AddressSanitizer build, full ctest
#    3. UndefinedBehaviorSanitizer build (no-recover), full ctest
#    4. ThreadSanitizer build, threading-focused ctest subset, run three
#       times: as-is, with PARGPU_TILE_PARALLEL=1 so the intra-frame
#       tile-parallel fragment phase is exercised under TSAN, and with
#       tile parallelism + PARGPU_ARENA=0 so the heap-scratch fallback
#       is raced too
#    5. -DPARGPU_TRACING=OFF build (macros compiled out), tracing subset
#    6. pargpu-lint standalone (includes header self-containment builds)
#    7. clang-tidy over src/ (skipped with a note when not installed)
#    8. perf gate: perf_smoke's texel-bound export and perf_tile's
#       tile-parallel export diffed against the committed baselines
#       (bench/baselines/) with --fail-on-regress
#    9. SIMD bit-identity: -DPARGPU_SIMD=OFF build vs the ON build —
#       determinism subset + simd_kernel_test under both, then the
#       harness metrics exports diffed field-by-field (only the
#       dispatch-reporting fields may differ); then the ON build re-run
#       with each runnable tier forced via PARGPU_SIMD and with
#       PARGPU_ARENA=0, diffed the same way (forced tiers may change
#       only the dispatch fields, arena-off only the arena fields)
#   10. pargpu-analyze (concurrency & determinism AST rules) plus the
#       fixture selftest that proves every rule fires
#   11. Clang Thread Safety Analysis build (-DPARGPU_TSA=ON with
#       -Werror=thread-safety; skipped with a note when clang++ is not
#       installed)
#   12. filter-policy matrix: the determinism subset re-run under every
#       registered FilterPolicy (PARGPU_FILTER_POLICY), then the harness
#       metrics exports diffed across policies — selecting a policy may
#       change values but never the exported key set (only the
#       policy-reporting fields may differ; docs/FILTERING.md)
#   13. serve round-trip + amortization gate: pargpu_report.py boots the
#       ASan and UBSan pargpu_serve binaries and drives a real sweep
#       through the framed protocol (docs/SERVE.md), then perf_serve's
#       BENCH_serve.json is gated — a persistent session must beat a
#       fresh boot per sweep by >= 3x, bit-identically
#
# Each stage is timed; a PASS/SKIP/FAIL summary table is printed at the
# end (or at the first failure). Skipped stages announce themselves
# with a greppable "SKIP:" line.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
    case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

cd "$ROOT"

# --- stage runner ---------------------------------------------------------
# Stage bodies are functions. run_stage executes one in a subshell with
# errexit live (so any failing command aborts the stage), records
# PASS/SKIP/FAIL plus wall time, and stops the matrix at the first
# failure. A body signals SKIP by printing "SKIP: <reason>" and
# returning $SKIP_RC.
SKIP_RC=99
SUMMARY=()

summary() {
    echo
    echo "==== check.sh summary ===="
    printf '%-7s %-52s %s\n' "status" "stage" "time"
    local row st nm tm
    for row in "${SUMMARY[@]}"; do
        IFS='|' read -r st nm tm <<<"$row"
        printf '%-7s %-52s %4ss\n' "$st" "$nm" "$tm"
    done
}

run_stage() {
    local name="$1" fn="$2" rc=0 t0 t1
    echo
    echo "==== check.sh: $name ===="
    t0=$(date +%s)
    set +e
    ( set -euo pipefail; "$fn" )
    rc=$?
    set -e
    t1=$(date +%s)
    case "$rc" in
    0) SUMMARY+=("PASS|$name|$((t1 - t0))") ;;
    "$SKIP_RC") SUMMARY+=("SKIP|$name|$((t1 - t0))") ;;
    *)
        SUMMARY+=("FAIL|$name|$((t1 - t0))")
        summary
        echo "check.sh: stage '$name' failed (exit $rc)" >&2
        exit 1
        ;;
    esac
}

configure_build_test() {
    local dir="$1"
    shift
    local ctest_args=("--output-on-failure" "-j" "$JOBS")
    cmake -B "$dir" -S . "$@" >"$dir.configure.log" 2>&1 || {
        cat "$dir.configure.log" >&2
        return 1
    }
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" "${ctest_args[@]}"
}

# --- stages ---------------------------------------------------------------

stage_release() {
    configure_build_test build-check \
        -DCMAKE_BUILD_TYPE=Release -DPARGPU_CHECKS=ON -DPARGPU_WERROR=ON
}

stage_asan() {
    configure_build_test build-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_ASAN=ON -DPARGPU_CHECKS=ON
}

stage_ubsan() {
    configure_build_test build-ubsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_UBSAN=ON -DPARGPU_CHECKS=ON
}

stage_tsan() {
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_TSAN=ON \
        >build-tsan.configure.log 2>&1 \
        || { cat build-tsan.configure.log >&2; return 1; }
    cmake --build build-tsan -j "$JOBS"
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R "threadpool_test|determinism_test|pipeline_test|integration_test|contract_test|session_test|serve_test|arena_test"
    # Second pass with tile parallelism forced on: every renderFrame() in
    # the subset fans its fragment phase out across clusters, so TSAN sees
    # the per-cluster sharding, the arena-backed framebuffer planes the
    # workers share, and the ordered commit pass.
    PARGPU_TILE_PARALLEL=1 ctest --test-dir build-tsan \
        --output-on-failure -j "$JOBS" \
        -R "determinism_test|pipeline_test|integration_test|arena_test"
    # Third pass: tile parallelism with the heap-scratch fallback, so the
    # PARGPU_ARENA=0 vectors see the same sharded access pattern.
    PARGPU_TILE_PARALLEL=1 PARGPU_ARENA=0 ctest --test-dir build-tsan \
        --output-on-failure -j "$JOBS" \
        -R "determinism_test|pipeline_test|integration_test"
}

stage_notrace() {
    cmake -B build-notrace -S . \
        -DCMAKE_BUILD_TYPE=Release -DPARGPU_TRACING=OFF \
        >build-notrace.configure.log 2>&1 \
        || { cat build-notrace.configure.log >&2; return 1; }
    cmake --build build-notrace -j "$JOBS" \
        --target tracing_test determinism_test pargpu_harness
    ctest --test-dir build-notrace --output-on-failure -j "$JOBS" \
        -R "tracing_test|determinism_test"
}

stage_lint() {
    python3 tools/pargpu_lint.py --root "$ROOT"
}

stage_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "SKIP: clang-tidy not installed (config committed in .clang-tidy)"
        return "$SKIP_RC"
    fi
    cmake -B build-check -S . >/dev/null
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build-check --quiet "${tidy_sources[@]}"
}

stage_perf() {
    # Plain Release (contracts off) so wall-clock resembles production;
    # the gates themselves are on the *simulated* metrics, which are
    # deterministic — wall-clock speedups in BENCH_texel.json and
    # BENCH_tile.json are informational (they depend on the core count).
    cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release \
        >build-perf.configure.log 2>&1 \
        || { cat build-perf.configure.log >&2; return 1; }
    cmake --build build-perf -j "$JOBS" --target perf_smoke perf_tile
    local perf_metrics="$ROOT/build-perf/perf-metrics"
    mkdir -p "$perf_metrics"
    ( cd build-perf && PARGPU_FRAMES=2 PARGPU_METRICS_DIR="$perf_metrics" \
        ./bench/perf_smoke )
    python3 tools/pargpu_report.py \
        bench/baselines/perf_texel_HL2-640x512_baseline.json \
        "$perf_metrics/perf_texel_HL2-640x512_baseline.json" \
        --fail-on-regress 0.01
    ( cd build-perf && PARGPU_METRICS_DIR="$perf_metrics" ./bench/perf_tile )
    python3 tools/pargpu_report.py \
        bench/baselines/perf_tile_HL2-1280x1024_baseline.json \
        "$perf_metrics/perf_tile_HL2-1280x1024_baseline.json" \
        --fail-on-regress 0.01
}

stage_simd_identity() {
    # The scalar-only build must render the same frames and register the
    # same metrics as the SIMD build; only the dispatch-reporting fields
    # (run.simd_dispatch, registry simd.dispatch / texunit.simd_width)
    # may differ. build-perf is the ON build (the knob defaults to ON).
    cmake -B build-simd-off -S . -DCMAKE_BUILD_TYPE=Release \
        -DPARGPU_SIMD=OFF >build-simd-off.configure.log 2>&1 \
        || { cat build-simd-off.configure.log >&2; return 1; }
    cmake --build build-simd-off -j "$JOBS" \
        --target determinism_test simd_kernel_test pargpu_harness
    cmake --build build-perf -j "$JOBS" \
        --target determinism_test simd_kernel_test pargpu_harness
    ctest --test-dir build-simd-off --output-on-failure -j "$JOBS" \
        -R "determinism_test|simd_kernel_test"
    ctest --test-dir build-perf --output-on-failure -j "$JOBS" \
        -R "determinism_test|simd_kernel_test"
    local simd_diff="$ROOT/build-simd-off/simd-diff"
    mkdir -p "$simd_diff"
    local build
    for build in build-simd-off build-perf; do
        "$ROOT/$build/src/harness/pargpu_harness" \
            --run-game wolf --run-scenario patu \
            --run-width 160 --run-height 120 --run-frames 2 --quiet \
            --metrics-json "$simd_diff/$build.json"
    done
    # Shared field-by-field diff: --allow names exact keys, --allow-sub
    # whitelists every key containing a substring (for indexed per-frame
    # fields like frames[0]/arena_frame_bytes).
    cat >"$simd_diff/diff.py" <<'EOF'
import argparse, json, sys

p = argparse.ArgumentParser()
p.add_argument("a")
p.add_argument("b")
p.add_argument("--label", default="exports")
p.add_argument("--allow", action="append", default=[])
p.add_argument("--allow-sub", action="append", default=[])
args = p.parse_args()

def flatten(node, prefix, out):
    if isinstance(node, dict):
        for k, v in node.items():
            flatten(v, f"{prefix}/{k}" if prefix else k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            flatten(v, f"{prefix}[{i}]", out)
    else:
        out[prefix] = node
    return out

def allowed(k):
    return k in args.allow or any(sub in k for sub in args.allow_sub)

a = flatten(json.load(open(args.a)), "", {})
b = flatten(json.load(open(args.b)), "", {})
bad = [k for k in a.keys() | b.keys()
       if not allowed(k) and a.get(k) != b.get(k)]
if bad:
    for k in sorted(bad):
        print(f"{args.label} mismatch {k}: {a.get(k)} vs {b.get(k)}",
              file=sys.stderr)
    sys.exit(1)
print(f"{args.label} identical ({len(a)} fields)")
EOF
    # The only fields the dispatch tier may change.
    local dispatch_allow=(--allow run/simd_dispatch
        --allow registry/scalars/simd.dispatch
        --allow registry/scalars/texunit.simd_width)
    python3 "$simd_diff/diff.py" \
        "$simd_diff/build-simd-off.json" "$simd_diff/build-perf.json" \
        --label "SIMD OFF/ON" "${dispatch_allow[@]}"
    # Forced-tier matrix on the ON build: every runnable tier must
    # export the scalar run's numbers (dispatch fields aside).
    local tiers="scalar sse"
    if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
        tiers="$tiers avx2"
    fi
    local tier
    for tier in $tiers; do
        PARGPU_SIMD="$tier" "$ROOT/build-perf/src/harness/pargpu_harness" \
            --run-game wolf --run-scenario patu \
            --run-width 160 --run-height 120 --run-frames 2 --quiet \
            --metrics-json "$simd_diff/tier-$tier.json"
    done
    for tier in $tiers; do
        [ "$tier" = scalar ] && continue
        python3 "$simd_diff/diff.py" \
            "$simd_diff/tier-scalar.json" "$simd_diff/tier-$tier.json" \
            --label "tier scalar/$tier" "${dispatch_allow[@]}"
    done
    # Arena storage matrix: PARGPU_ARENA=0 may change only the
    # arena-reporting fields (they read zero), nothing else.
    PARGPU_ARENA=0 "$ROOT/build-perf/src/harness/pargpu_harness" \
        --run-game wolf --run-scenario patu \
        --run-width 160 --run-height 120 --run-frames 2 --quiet \
        --metrics-json "$simd_diff/arena-off.json"
    python3 "$simd_diff/diff.py" \
        "$simd_diff/tier-scalar.json" "$simd_diff/arena-off.json" \
        --label "arena on/off" --allow-sub arena \
        "${dispatch_allow[@]}"
}

stage_analyze() {
    # build-check carries compile_commands.json (exported by default);
    # without the libclang bindings the analyzer notes the fallback and
    # runs its builtin text front-end, so the gate holds either way.
    python3 tools/pargpu_analyze.py --root "$ROOT" --build-dir build-check
    python3 tests/lint_selftest.py --root "$ROOT"
}

stage_tsa() {
    local clangxx
    clangxx="$(command -v clang++ || true)"
    if [ -z "$clangxx" ]; then
        echo "SKIP: clang++ not installed (thread-safety analysis needs" \
             "clang's -Wthread-safety; annotations compile to no-ops here)"
        return "$SKIP_RC"
    fi
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER="$clangxx" -DPARGPU_TSA=ON \
        >build-tsa.configure.log 2>&1 \
        || { cat build-tsa.configure.log >&2; return 1; }
    # -Werror=thread-safety: the build itself is the gate; no test run
    # needed (stage 1 already executes the suite).
    cmake --build build-tsa -j "$JOBS"
}

stage_policy_matrix() {
    # build-check (stage 1) carries the binaries; run the determinism
    # subset under each registered policy, then prove the metrics schema
    # does not depend on the policy: exports across policies must agree
    # on the key set, with only the policy-reporting fields differing in
    # value.
    cmake --build build-check -j "$JOBS" \
        --target determinism_test filter_policy_test pargpu_harness
    local pdir="$ROOT/build-check/policy-matrix"
    mkdir -p "$pdir"
    local policy
    for policy in patu stf_uniform stf_blue stf_weighted \
                  filter_after_shading; do
        echo "--- policy: $policy ---"
        PARGPU_FILTER_POLICY="$policy" ctest --test-dir build-check \
            --output-on-failure -j "$JOBS" \
            -R "determinism_test|filter_policy_test"
        "$ROOT/build-check/src/harness/pargpu_harness" \
            --run-game nfs --run-scenario patu \
            --run-filter-policy "$policy" \
            --run-width 160 --run-height 120 --run-frames 2 --quiet \
            --metrics-json "$pdir/$policy.json"
    done
    python3 - "$pdir"/patu.json "$pdir"/stf_uniform.json \
        "$pdir"/stf_blue.json "$pdir"/stf_weighted.json \
        "$pdir"/filter_after_shading.json <<'EOF'
import json, sys

# The only fields whose *values* identify the policy; every other field
# may differ in value but the key set itself must be identical.
POLICY_FIELDS = {
    "run/filter_policy",
    "registry/scalars/texunit.policy",
}

def flatten(node, prefix, out):
    if isinstance(node, dict):
        for k, v in node.items():
            flatten(v, f"{prefix}/{k}" if prefix else k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            flatten(v, f"{prefix}[{i}]", out)
    else:
        out[prefix] = node
    return out

docs = [(p, flatten(json.load(open(p)), "", {})) for p in sys.argv[1:]]
ref_path, ref = docs[0]
ok = True
for path, doc in docs[1:]:
    missing = ref.keys() - doc.keys()
    extra = doc.keys() - ref.keys()
    for k in sorted(missing):
        print(f"key-set drift: {k} in {ref_path} but not {path}",
              file=sys.stderr)
    for k in sorted(extra):
        print(f"key-set drift: {k} in {path} but not {ref_path}",
              file=sys.stderr)
    ok = ok and not missing and not extra
    for k in POLICY_FIELDS:
        if doc.get(k) == ref.get(k):
            print(f"{path}: policy field {k} identical to patu "
                  f"({doc.get(k)}) — policy did not take effect",
                  file=sys.stderr)
            ok = False
if not ok:
    sys.exit(1)
print(f"policy exports schema-identical across {len(docs)} policies "
      f"({len(ref)} fields each)")
EOF
}

stage_serve() {
    # The round trip under the sanitizer matrix: the report client boots
    # the actual pargpu_serve binaries from the ASan and UBSan builds
    # (stages 2 and 3) and drives a real sweep through the framed
    # protocol end to end.
    local build
    for build in build-asan build-ubsan; do
        cmake --build "$build" -j "$JOBS" --target pargpu_serve
        python3 tools/pargpu_report.py \
            --serve "$ROOT/$build/src/harness/pargpu_serve" \
            --serve-sweep wolf:96x72x2:baseline,patu \
            --serve-out "$ROOT/$build/serve-out"
        # The streamed documents are standard metrics JSONs: a
        # self-comparison through the regular diff must gate cleanly.
        python3 tools/pargpu_report.py \
            "$ROOT/$build/serve-out/serve_wolf_patu.json" \
            "$ROOT/$build/serve-out/serve_wolf_patu.json" \
            --fail-on-regress 0.01
    done
    # Amortization gate on the build-perf (stage 8) binaries: the
    # persistent session must beat a fresh boot per sweep by >= 3x on
    # the repeated 16-config sweep, with byte-identical responses.
    cmake --build build-perf -j "$JOBS" --target perf_serve
    ( cd build-perf && ./bench/perf_serve )
    python3 tools/pargpu_report.py --serve-bench build-perf/BENCH_serve.json
}

# --- matrix ---------------------------------------------------------------

run_stage "1/13 Release + contracts + -Werror" stage_release
run_stage "2/13 AddressSanitizer" stage_asan
run_stage "3/13 UndefinedBehaviorSanitizer" stage_ubsan
run_stage "4/13 ThreadSanitizer (threading subset)" stage_tsan
run_stage "5/13 tracing compiled out (-DPARGPU_TRACING=OFF)" stage_notrace
run_stage "6/13 pargpu-lint" stage_lint
run_stage "7/13 clang-tidy" stage_tidy
run_stage "8/13 perf gate (texel + tile vs baselines)" stage_perf
run_stage "9/13 SIMD bit-identity (-DPARGPU_SIMD=OFF vs ON)" stage_simd_identity
run_stage "10/13 pargpu-analyze + fixture selftest" stage_analyze
run_stage "11/13 thread-safety analysis (-DPARGPU_TSA=ON)" stage_tsa
run_stage "12/13 filter-policy matrix (determinism + schema)" stage_policy_matrix
run_stage "13/13 serve round-trip (sanitizers) + amortization gate" stage_serve

summary
echo
echo "==== check.sh: all stages passed ===="
