#!/usr/bin/env bash
# pargpu correctness matrix: one command that builds and tests the tree
# under every supported analysis configuration and fails loudly on the
# first problem.
#
#   1. Release + contracts (-DPARGPU_CHECKS=ON) + -Werror, full ctest
#   2. AddressSanitizer build, full ctest
#   3. UndefinedBehaviorSanitizer build (no-recover), full ctest
#   4. ThreadSanitizer build, threading-focused ctest subset, run twice:
#      as-is and again with PARGPU_TILE_PARALLEL=1 so the intra-frame
#      tile-parallel fragment phase is exercised under TSAN
#   5. -DPARGPU_TRACING=OFF build (macros compiled out), tracing subset
#   6. pargpu-lint standalone (includes header self-containment builds)
#   7. clang-tidy over src/ (skipped with a note when not installed)
#   8. perf gate: perf_smoke's texel-bound export and perf_tile's
#      tile-parallel export diffed against the committed baselines
#      (bench/baselines/) with --fail-on-regress
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
    case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

cd "$ROOT"

stage() {
    echo
    echo "==== check.sh: $* ===="
}

configure_build_test() {
    local dir="$1"
    shift
    local ctest_args=("--output-on-failure" "-j" "$JOBS")
    cmake -B "$dir" -S . "$@" >"$dir.configure.log" 2>&1 || {
        cat "$dir.configure.log" >&2
        return 1
    }
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" "${ctest_args[@]}"
}

stage "1/8 Release + contracts + -Werror"
configure_build_test build-check \
    -DCMAKE_BUILD_TYPE=Release -DPARGPU_CHECKS=ON -DPARGPU_WERROR=ON

stage "2/8 AddressSanitizer"
configure_build_test build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_ASAN=ON -DPARGPU_CHECKS=ON

stage "3/8 UndefinedBehaviorSanitizer"
configure_build_test build-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_UBSAN=ON -DPARGPU_CHECKS=ON

stage "4/8 ThreadSanitizer (threading subset)"
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPARGPU_TSAN=ON \
    >build-tsan.configure.log 2>&1 || { cat build-tsan.configure.log >&2; exit 1; }
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R "threadpool_test|determinism_test|pipeline_test|integration_test|contract_test"
# Second pass with tile parallelism forced on: every renderFrame() in the
# subset fans its fragment phase out across clusters, so TSAN sees the
# per-cluster sharding and the ordered commit pass.
PARGPU_TILE_PARALLEL=1 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R "determinism_test|pipeline_test|integration_test"

stage "5/8 tracing compiled out (-DPARGPU_TRACING=OFF)"
cmake -B build-notrace -S . \
    -DCMAKE_BUILD_TYPE=Release -DPARGPU_TRACING=OFF \
    >build-notrace.configure.log 2>&1 || { cat build-notrace.configure.log >&2; exit 1; }
cmake --build build-notrace -j "$JOBS" \
    --target tracing_test determinism_test pargpu_harness
ctest --test-dir build-notrace --output-on-failure -j "$JOBS" \
    -R "tracing_test|determinism_test"

stage "6/8 pargpu-lint"
python3 tools/pargpu_lint.py --root "$ROOT"

stage "7/8 clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build-check -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build-check --quiet "${tidy_sources[@]}"
else
    echo "clang-tidy not installed; skipping (config committed in .clang-tidy)"
fi

stage "8/8 perf gate (texel hot path + tile parallelism vs committed baselines)"
# Plain Release (contracts off) so wall-clock resembles production; the
# gates themselves are on the *simulated* metrics, which are
# deterministic — wall-clock speedups in BENCH_texel.json and
# BENCH_tile.json are informational (they depend on the core count).
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release \
    >build-perf.configure.log 2>&1 || { cat build-perf.configure.log >&2; exit 1; }
cmake --build build-perf -j "$JOBS" --target perf_smoke perf_tile
PERF_METRICS="$ROOT/build-perf/perf-metrics"
mkdir -p "$PERF_METRICS"
( cd build-perf && PARGPU_FRAMES=2 PARGPU_METRICS_DIR="$PERF_METRICS" \
    ./bench/perf_smoke )
python3 tools/pargpu_report.py \
    bench/baselines/perf_texel_HL2-640x512_baseline.json \
    "$PERF_METRICS/perf_texel_HL2-640x512_baseline.json" \
    --fail-on-regress 0.01
( cd build-perf && PARGPU_METRICS_DIR="$PERF_METRICS" ./bench/perf_tile )
python3 tools/pargpu_report.py \
    bench/baselines/perf_tile_HL2-1280x1024_baseline.json \
    "$PERF_METRICS/perf_tile_HL2-1280x1024_baseline.json" \
    --fail-on-regress 0.01

stage "all stages passed"
