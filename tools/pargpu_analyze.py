#!/usr/bin/env python3
"""pargpu concurrency & determinism static analyzer.

Complements tools/pargpu_lint.py (style/layering rules) with AST-level
checks for the two properties the simulator's tests can only probe, not
prove: cross-run determinism and the cluster-ownership discipline of the
tile-parallel execution mode. Rules:

  unordered-iter   iterating a std::unordered_{map,set} — iteration
                   order is hash-seed/layout dependent, so any loop over
                   one that reaches output, stats or memory ordering is
                   a nondeterminism source. Iterate a sorted copy or use
                   an ordered container.
  wall-clock       reading host clocks (steady_clock::now, gettimeofday,
                   clock_gettime) in simulation code (src/ outside
                   src/common/). Simulated time is Cycle counters; host
                   time belongs to the tracing/bench layers only.
  random-device    std::random_device anywhere — simulations seed the
                   deterministic pargpu RNG (common/rng.hh) explicitly.
  thread-id        using std::thread::id values (get_id, thread::id
                   keys) in simulation code. Their values and ordering
                   differ per run; derive dense worker indices instead.
  addr-hash        hashing or ordering pointer values
                   (reinterpret_cast to uintptr_t, std::hash<T*>).
                   Addresses vary across runs (ASLR, allocation order),
                   so any address-derived value that reaches simulated
                   state is nondeterministic.
  fp-unsafe        floating-point determinism hazards outside src/simd/:
                   fma()/FMA intrinsics, fast-math or FP_CONTRACT
                   pragmas, std::reduce and std::execution policies.
                   Only the SIMD kernel layer may re-associate FP math,
                   and it must prove bit-identity in its tests.
  global-state     mutable namespace-scope variables outside
                   src/common/. Hidden global state breaks the
                   per-cluster sharding that makes tile-parallel mode
                   deterministic; state must live in objects owned by
                   the simulator (or in the audited common/ layer).
  cluster-escape   a cluster-private object (TextureUnit,
                   ClusterMemFront) captured by reference/pointer into a
                   ThreadPool task lambda. Workers must look their shard
                   up by cluster index inside the task; capturing one
                   cluster's unit shares it across workers.

Front-ends (--frontend auto|libclang|text):

  libclang  parses each TU via clang.cindex against the compilation
            database (CMAKE_EXPORT_COMPILE_COMMANDS) and walks the AST.
  text      builtin fallback with no dependencies: the same rules as
            lexical heuristics over comment/string-stripped source.
  auto      libclang when the python bindings import, else text (with a
            note). CI images without clang still get full coverage.

Suppressions (same UX as pargpu_lint.py):
  - inline: "pargpu-analyze: allow(<rule>)" in a comment on the
    offending line or the line directly above it
  - file-level: "<rule> <repo-relative-path>" in
    tools/analyze_allowlist.txt ('#' comments allowed)

An allowlist entry that no longer suppresses anything is itself an
error, so the list cannot rot. Exit status is non-zero when any
violation or stale entry remains, so the CTest entry and
scripts/check.sh stage 10 can gate on it.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from pargpu_lint import strip_comments_and_strings  # noqa: E402

RULES = ("unordered-iter", "wall-clock", "random-device", "thread-id",
         "addr-hash", "fp-unsafe", "global-state", "cluster-escape")

SOURCE_EXTS = (".cc", ".hh", ".h", ".cpp")

# Cluster-private types: one instance per shader cluster; sharing one
# across ThreadPool workers breaks the tile-parallel ownership model.
CLUSTER_TYPES = ("TextureUnit", "ClusterMemFront")

RE_ALLOW = re.compile(
    r"pargpu-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RE_UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*"
    r"([A-Za-z_]\w*)\s*[;({=]")
RE_RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*&?\s*([A-Za-z_]\w*)\s*\)")
RE_UNORDERED_INLINE = re.compile(
    r"\bfor\s*\([^;)]*:\s*[^)]*\bunordered_(?:map|set|multimap|multiset)\b")
RE_BEGIN_ITER = re.compile(r"=\s*([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")

RE_WALL_CLOCK = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(")
RE_RANDOM_DEVICE = re.compile(r"\brandom_device\b")
RE_THREAD_ID = re.compile(
    r"\bthis_thread\s*::\s*get_id\s*\(|\bthread\s*::\s*id\b")
RE_ADDR_HASH = re.compile(
    r"reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>"
    r"|\bhash\s*<[^<>]*\*\s*>")
RE_FP_UNSAFE = re.compile(
    r"\bfmaf?\s*\(|__builtin_fmaf?\b|\b_mm\d*_fn?madd\w*"
    r"|\bstd\s*::\s*reduce\b|\bstd\s*::\s*execution\s*::"
    r"|#\s*pragma\s+(?:STDC\s+FP_CONTRACT\s+ON|float_control"
    r"|GCC\s+optimize\s*\([^)]*fast-math)")
# Namespace-scope declaration: unindented "Type name = ..." / "Type
# name;" / "Type name{...}". Function definitions and declarations have
# a '(' before the terminator and are skipped.
RE_GLOBAL_DECL = re.compile(
    r"^[A-Za-z_][\w:]*(?:\s*<[^;]*?>)?(?:\s*[*&])?\s+[*&]?"
    r"([A-Za-z_]\w*)\s*(?:=|\{|;)")
GLOBAL_SKIP = re.compile(
    r"^\s*(?:static\s+|inline\s+)*(?:const\b|constexpr\b|class\b|struct\b"
    r"|enum\b|union\b|using\b|typedef\b|template\b|namespace\b|extern\b"
    r"|friend\b|return\b|if\b|else\b|for\b|while\b|switch\b|case\b"
    r"|public\b|private\b|protected\b|operator\b|#)")
RE_CLUSTER_DECL = re.compile(
    r"\b(" + "|".join(CLUSTER_TYPES) + r")\s*[&*]?\s+[*&]?([A-Za-z_]\w*)"
    r"\s*[;=({]")
RE_DISPATCH = re.compile(r"\bThreadPool\s*::\s*run\s*\(|\bparallelFor\s*\(")
RE_LAMBDA_CAPTURE = re.compile(r"\[([^\[\]]*)\]\s*\(")


def in_sim_code(rel):
    """Simulation code: src/ minus the audited host-side common/ layer."""
    p = rel.replace(os.sep, "/")
    return p.startswith("src/") and not p.startswith("src/common/")


def load_allowlist(path):
    allow = set()  # (rule, repo-relative path)
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in RULES:
                print(f"analyze: malformed allowlist entry: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            allow.add((parts[0], parts[1]))
    return allow


def inline_allows(raw_line):
    m = RE_ALLOW.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


# --------------------------------------------------------------------------
# Text front-end: lexical heuristics over stripped source.
# --------------------------------------------------------------------------

def text_check_file(root, rel, violations):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        raw_text = f.read()
    raw_lines = raw_text.splitlines()
    code_lines = strip_comments_and_strings(raw_text).splitlines()
    code = "\n".join(code_lines)
    sim = in_sim_code(rel)
    in_simd = rel.replace(os.sep, "/").startswith("src/simd/")

    unordered_vars = {m.group(1) for m in RE_UNORDERED_DECL.finditer(code)}
    cluster_vars = {m.group(2): m.group(1)
                    for m in RE_CLUSTER_DECL.finditer(code)}

    def report(lineno, rule, msg):
        allowed = inline_allows(raw_lines[lineno - 1])
        if lineno >= 2:
            allowed |= inline_allows(raw_lines[lineno - 2])
        if rule not in allowed:
            violations.append((rel, lineno, rule, msg))

    for lineno, line in enumerate(code_lines, 1):
        # unordered-iter: range-for (or .begin() walk) over an unordered
        # container, declared earlier or spelled inline.
        hit = RE_UNORDERED_INLINE.search(line)
        if not hit:
            m = RE_RANGE_FOR.search(line)
            if m and m.group(1) in unordered_vars:
                hit = m
            if not hit:
                m = RE_BEGIN_ITER.search(line)
                if m and m.group(1) in unordered_vars:
                    hit = m
        if hit:
            report(lineno, "unordered-iter",
                   "iteration order of unordered containers is "
                   "nondeterministic; iterate a sorted copy or use an "
                   "ordered container")

        if sim and RE_WALL_CLOCK.search(line):
            report(lineno, "wall-clock",
                   "host clocks are nondeterministic; simulation code "
                   "must use Cycle counters (tracing/bench own host time)")

        if RE_RANDOM_DEVICE.search(line):
            report(lineno, "random-device",
                   "std::random_device is nondeterministic; seed the "
                   "pargpu RNG (common/rng.hh) explicitly")

        if sim and RE_THREAD_ID.search(line):
            report(lineno, "thread-id",
                   "std::thread::id values and their ordering differ per "
                   "run; use dense worker/cluster indices instead")

        if RE_ADDR_HASH.search(line):
            report(lineno, "addr-hash",
                   "pointer values vary across runs (ASLR/allocation "
                   "order); hashing or ordering by address is "
                   "nondeterministic")

        if not in_simd and RE_FP_UNSAFE.search(line):
            report(lineno, "fp-unsafe",
                   "FP contraction/reassociation outside src/simd/ breaks "
                   "the bit-identity contract; only the kernel layer may "
                   "reorder FP math")

        # global-state: unindented mutable declaration at namespace
        # scope (function bodies and members are indented in this tree).
        if sim and line and not line[0].isspace() \
                and not GLOBAL_SKIP.match(line):
            m = RE_GLOBAL_DECL.match(line)
            if m and "(" not in line.split(m.group(0)[-1], 1)[0]:
                report(lineno, "global-state",
                       f"mutable namespace-scope state '{m.group(1)}' "
                       "outside src/common/; move it into an object owned "
                       "by the simulator")

        # cluster-escape: a ThreadPool dispatch whose task lambda
        # explicitly captures a cluster-private variable by reference.
        if RE_DISPATCH.search(line):
            window = "\n".join(code_lines[lineno - 1:lineno + 3])
            cap = RE_LAMBDA_CAPTURE.search(window)
            if cap:
                for tok in cap.group(1).split(","):
                    tok = tok.strip()
                    name = tok[1:].strip() if tok.startswith("&") else tok
                    if tok.startswith("&") and name in cluster_vars:
                        report(lineno, "cluster-escape",
                               f"cluster-private {cluster_vars[name]} "
                               f"'{name}' captured by reference into a "
                               "ThreadPool task; pass the cluster index "
                               "and look the shard up inside the worker")


def run_text(root, files):
    violations = []
    for rel in files:
        text_check_file(root, rel, violations)
    return violations


# --------------------------------------------------------------------------
# libclang front-end: the same rules over the real AST.
# --------------------------------------------------------------------------

def run_libclang(root, files, build_dir):
    from clang import cindex  # noqa: imported only when selected

    K = cindex.CursorKind
    db = cindex.CompilationDatabase.fromDirectory(build_dir)
    index = cindex.Index.create()
    violations = []
    file_set = {os.path.normpath(os.path.join(root, f)) for f in files}

    def rel_of(loc):
        if loc.file is None:
            return None
        p = os.path.normpath(loc.file.name)
        if p not in file_set:
            return None
        return os.path.relpath(p, root)

    def report(cursor, rule, msg):
        rel = rel_of(cursor.location)
        if rel is None:
            return
        lineno = cursor.location.line
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        allowed = inline_allows(raw_lines[lineno - 1]) if raw_lines else set()
        if lineno >= 2:
            allowed |= inline_allows(raw_lines[lineno - 2])
        if rule not in allowed:
            violations.append((rel, lineno, rule, msg))

    def dispatch_callee(cursor):
        ref = cursor.referenced
        return ref is not None and ref.spelling in ("run", "parallelFor")

    def walk(cursor, rel, in_dispatch):
        kind = cursor.kind
        type_spelling = cursor.type.spelling if cursor.type else ""

        if kind == K.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if len(children) >= 2 and \
                    "unordered_" in children[-2].type.spelling:
                report(cursor, "unordered-iter",
                       "iteration order of unordered containers is "
                       "nondeterministic; iterate a sorted copy or use "
                       "an ordered container")

        if kind == K.CALL_EXPR and cursor.referenced is not None:
            callee = cursor.referenced.spelling
            parent = cursor.referenced.semantic_parent
            parent_name = parent.spelling if parent else ""
            if in_sim_code(rel) and callee == "now" and \
                    parent_name.endswith("_clock"):
                report(cursor, "wall-clock",
                       "host clocks are nondeterministic; simulation "
                       "code must use Cycle counters")
            if in_sim_code(rel) and callee == "get_id":
                report(cursor, "thread-id",
                       "std::thread::id values differ per run; use dense "
                       "worker/cluster indices instead")
            if callee in ("fma", "fmaf", "reduce") and \
                    not rel.startswith("src/simd/"):
                report(cursor, "fp-unsafe",
                       "FP contraction/reassociation outside src/simd/ "
                       "breaks the bit-identity contract")

        if kind == K.VAR_DECL:
            if "random_device" in type_spelling:
                report(cursor, "random-device",
                       "std::random_device is nondeterministic; seed the "
                       "pargpu RNG (common/rng.hh) explicitly")
            parent = cursor.semantic_parent
            if in_sim_code(rel) and parent is not None and \
                    parent.kind in (K.NAMESPACE, K.TRANSLATION_UNIT) and \
                    not cursor.type.is_const_qualified():
                report(cursor, "global-state",
                       f"mutable namespace-scope state "
                       f"'{cursor.spelling}' outside src/common/")

        if kind == K.CXX_REINTERPRET_CAST_EXPR and \
                "intptr_t" in type_spelling:
            report(cursor, "addr-hash",
                   "pointer values vary across runs; hashing or ordering "
                   "by address is nondeterministic")

        if kind == K.LAMBDA_EXPR and in_dispatch:
            for child in cursor.get_children():
                if child.kind == K.DECL_REF_EXPR and child.referenced and \
                        any(t in child.referenced.type.spelling
                            for t in CLUSTER_TYPES):
                    report(cursor, "cluster-escape",
                           f"cluster-private '{child.spelling}' captured "
                           "into a ThreadPool task; pass the cluster "
                           "index and look the shard up inside the worker")
                    break

        child_dispatch = in_dispatch or \
            (kind == K.CALL_EXPR and dispatch_callee(cursor))
        for child in cursor.get_children():
            walk(child, rel, child_dispatch)

    for rel in files:
        if not rel.endswith((".cc", ".cpp")):
            continue  # headers are covered through their including TUs
        path = os.path.join(root, rel)
        cmds = db.getCompileCommands(path)
        args = []
        if cmds:
            args = [a for a in list(cmds[0].arguments)[1:]
                    if a not in ("-c", "-o", path)]
        tu = index.parse(path, args=args)
        walk(tu.cursor, rel, False)
    return violations


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def collect_files(root, build_dir):
    """File list from the compilation database, plus headers; falls back
    to walking src/ when no compile_commands.json exists."""
    files = set()
    cc_path = os.path.join(build_dir, "compile_commands.json")
    have_db = os.path.exists(cc_path)
    if have_db:
        with open(cc_path, encoding="utf-8") as f:
            for entry in json.load(f):
                p = os.path.normpath(
                    os.path.join(entry["directory"], entry["file"]))
                rel = os.path.relpath(p, root)
                if rel.replace(os.sep, "/").startswith("src/") and \
                        rel.endswith(SOURCE_EXTS):
                    files.add(rel)
    else:
        print(f"analyze: note: no compile_commands.json under {build_dir}; "
              "walking src/ instead", file=sys.stderr)
        for dirpath, _, names in os.walk(os.path.join(root, "src")):
            for name in names:
                if name.endswith(SOURCE_EXTS):
                    files.add(os.path.relpath(
                        os.path.join(dirpath, name), root))
    # Headers never appear in the database; walk them in either mode.
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in names:
            if name.endswith((".hh", ".h")):
                files.add(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files), have_db


def main():
    ap = argparse.ArgumentParser(
        description="pargpu concurrency & determinism static analyzer")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--build-dir", default=None,
                    help="build tree holding compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--frontend", choices=("auto", "libclang", "text"),
                    default="auto")
    ap.add_argument("--allowlist", default=None,
                    help="file-level allowlist "
                         "(default: <root>/tools/analyze_allowlist.txt)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    build_dir = args.build_dir or os.path.join(root, "build")
    allow_path = args.allowlist or os.path.join(root, "tools",
                                                "analyze_allowlist.txt")
    allow = load_allowlist(allow_path)

    files, have_db = collect_files(root, build_dir)

    frontend = args.frontend
    if frontend == "auto":
        try:
            from clang import cindex  # noqa: F401
            frontend = "libclang" if have_db else "text"
            if not have_db:
                print("analyze: note: libclang available but no "
                      "compilation database; using text front-end",
                      file=sys.stderr)
        except ImportError:
            frontend = "text"
            print("analyze: note: clang.cindex not importable; using "
                  "builtin text front-end", file=sys.stderr)

    if frontend == "libclang":
        violations = run_libclang(root, files, build_dir)
    else:
        violations = run_text(root, files)

    # File-level allowlist: filtered after the fact so entries that no
    # longer suppress anything are detected (and fatal), same contract
    # as pargpu_lint.py.
    used = set()
    kept = []
    for rel, lineno, rule, msg in sorted(violations):
        if (rule, rel) in allow:
            used.add((rule, rel))
        else:
            kept.append((rel, lineno, rule, msg))
    unused = allow - used

    for rel, lineno, rule, msg in kept:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    for rule, rel in sorted(unused):
        print(f"analyze: unused allowlist entry: {rule} {rel} "
              "(rule no longer fires; prune it)")
    if kept or unused:
        print(f"analyze: {len(kept)} violation(s), {len(unused)} stale "
              f"allowlist entr(ies) in {len(files)} files "
              f"(frontend={frontend})")
        return 1
    print(f"analyze: OK ({len(files)} files clean, frontend={frontend})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
