#!/usr/bin/env python3
"""pargpu custom static checker.

Enforces project-specific rules over src/ that neither the compiler nor
clang-tidy covers out of the box:

  rand         no rand()/srand()/std::rand — simulations must use the
               deterministic pargpu RNG (common/rng.hh)
  raw-new      no raw new/delete — ownership goes through containers or
               smart pointers ("= delete" declarations are fine)
  float-eq     no ==/!= against floating-point literals — quantize or
               compare with an explicit tolerance
  include-cc   no #include of a .cc file
  cout         no std::cout outside src/harness (libraries report through
               common/logging.hh; stdout belongs to the CLI layer)
  header-self  every header must compile on its own (include-what-you-see
               spot build with -fsyntax-only)
  file-doc     every public header under src/ must open with an @file
               doc comment (Doxygen's per-file brief)
  metrics-doc  every stat name registered in code (a dotted "a.b.c"
               string literal passed to .inc()/.set()/.observe()) must be
               documented in docs/METRICS.md
  intrinsics   no x86 SIMD intrinsics (_mm_* / _mm256_*) outside
               src/simd/ — the kernel layer owns all vector code, and
               everything above it must stay portable scalar C++
  policy-doc   every FilterPolicy registered in the factory table
               (src/texture/filter_policy.cc) must have its name
               documented in docs/FILTERING.md
  session-doc  every facade header under include/ must declare its
               Session-vs-legacy status with a "Session-status:" line in
               its opening doc comment (docs/API.md explains the terms)

One rule runs over examples/ and bench/ instead of src/:

  internal-include  those trees are API consumers: they may include only
               the public facade ("pargpu/..."; bench_util.hh within
               bench/) — never a src-internal header like "sim/..."

Public facade headers under include/ get the header rules (file-doc,
header-self) as well.

Suppressions:
  - inline: "pargpu-lint: allow(<rule>)" in a comment on the offending
    line or the line directly above it
  - file-level: an entry "<rule> <repo-relative-path>" in the allowlist
    file (tools/lint_allowlist.txt), '#' comments allowed

An allowlist entry that no longer suppresses anything is itself an
error, so the list cannot rot (entries must be pruned when the code
they excused is fixed). header-self entries are exempt from the
unused check under --no-spot-builds, where their rule never runs.

Exit status is non-zero when any violation remains, so the CTest entry
and scripts/check.sh can gate on it.
"""

import argparse
import os
import re
import subprocess
import sys

RULES = ("rand", "raw-new", "float-eq", "include-cc", "cout", "header-self",
         "file-doc", "metrics-doc", "internal-include", "intrinsics",
         "policy-doc", "session-doc")

FLOAT_LIT = r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)f?"

RE_RAND = re.compile(r"(?:std\s*::\s*)?\b(?:rand|srand)\s*\(")
RE_NEW = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:<]|\[)")
RE_DELETE = re.compile(r"\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*]")
RE_DELETED_FN = re.compile(r"=\s*delete\b")
RE_FLOAT_EQ = re.compile(
    r"[=!]=\s*[-+]?" + FLOAT_LIT + r"|" + FLOAT_LIT + r"\s*[=!]=")
RE_INCLUDE_CC = re.compile(r'#\s*include\s*["<][^">]*\.cc[">]')
RE_COUT = re.compile(r"\bstd\s*::\s*cout\b")
RE_ALLOW = re.compile(r"pargpu-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
RE_STAT_CALL = re.compile(r"\.\s*(?:inc|set|observe)\s*\(")
# Dotted stat-name literals: absolute ("mem.dram.reads") or relative to a
# runtime prefix (".tex_l1.hits", as in prefix + ".tex_l1.hits").
RE_STAT_NAME = re.compile(r'"(\.?[a-z0-9_]+(?:\.[a-z0-9_]+)+)"')
RE_QUOTED_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')
# x86 vector intrinsics: _mm_add_ps, _mm256_fmadd_ps, _mm512_...
RE_INTRIN = re.compile(r"\b_mm\d*_[A-Za-z0-9_]+")
# A FilterPolicy registry entry: {FilterPolicyId::Patu, "patu", ...}.
RE_POLICY_ENTRY = re.compile(r'FilterPolicyId::\w+\s*,\s*"([a-z_]+)"')

SOURCE_EXTS = (".cc", ".hh", ".h", ".cpp")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay valid."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_allowlist(path):
    allow = set()  # (rule, repo-relative path)
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in RULES:
                print(f"lint: malformed allowlist entry: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            allow.add((parts[0], parts[1]))
    return allow


def inline_allows(raw_line):
    m = RE_ALLOW.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def check_file(root, rel, violations, metrics_doc):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        raw_text = f.read()
    raw_lines = raw_text.splitlines()
    code_lines = strip_comments_and_strings(raw_text).splitlines()

    in_harness = rel.replace(os.sep, "/").startswith("src/harness/")

    if rel.endswith((".hh", ".h")):
        head = "\n".join(raw_lines[:20])
        if "@file" not in head and not inline_allows(head):
            violations.append(
                (rel, 1, "file-doc",
                 "header lacks an @file doc comment in its first 20 lines"))
        # session-doc: facade headers must say where they stand relative
        # to the Session API ("session", "legacy-shim", "neutral", ...)
        # so consumers reading any pargpu/ header learn which execution
        # surface it belongs to.
        if rel.replace(os.sep, "/").startswith("include/"):
            doc_head = "\n".join(raw_lines[:30])
            if "Session-status:" not in doc_head and \
                    "session-doc" not in inline_allows(doc_head):
                violations.append(
                    (rel, 1, "session-doc",
                     "facade header lacks a \"Session-status:\" line in "
                     "its first 30 lines (see docs/API.md)"))

    # Most rules match against comment/string-stripped code so prose and
    # literals can't trip them; include-cc must see the raw line because
    # the include path *is* a string.
    line_rules = [
        ("rand", RE_RAND, False,
         "use the deterministic RNG in common/rng.hh"),
        ("raw-new", RE_NEW, False, "raw new; use containers or make_unique"),
        ("raw-new", RE_DELETE, False,
         "raw delete; use containers or make_unique"),
        ("float-eq", RE_FLOAT_EQ, False,
         "float literal ==/!=; compare with a tolerance"),
        ("include-cc", RE_INCLUDE_CC, True, "#include of a .cc file"),
    ]
    if not in_harness:
        line_rules.append(
            ("cout", RE_COUT, False, "std::cout outside harness/CLI layers"))
    if not rel.replace(os.sep, "/").startswith("src/simd/"):
        line_rules.append(
            ("intrinsics", RE_INTRIN, False,
             "x86 intrinsic outside src/simd/; use the kernel layer"))

    for lineno, code in enumerate(code_lines, start=1):
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        prev = raw_lines[lineno - 2] if lineno >= 2 else ""
        allowed_here = inline_allows(raw) | inline_allows(prev)
        for rule, regex, use_raw, msg in line_rules:
            if rule in allowed_here:
                continue
            m = regex.search(raw if use_raw else code)
            if not m:
                continue
            if rule == "raw-new" and regex is RE_DELETE and \
                    RE_DELETED_FN.search(code):
                continue
            violations.append((rel, lineno, rule, msg))

        # metrics-doc: a stat registration (".inc(" / ".set(" / ".observe(")
        # with a dotted string literal must have that name documented in
        # docs/METRICS.md. The literal may sit on the call line or, for
        # wrapped calls, on the following line. A leading '.' marks a name
        # relative to a runtime prefix (prefix + ".llc.hits").
        if "metrics-doc" not in allowed_here and \
                RE_STAT_CALL.search(code):
            search = raw
            if not RE_STAT_NAME.search(raw) and lineno < len(raw_lines):
                search += "\n" + raw_lines[lineno]
            for name in RE_STAT_NAME.findall(search):
                bare = name.lstrip(".")
                if metrics_doc is None:
                    violations.append(
                        (rel, lineno, "metrics-doc",
                         f'stat "{bare}" registered but docs/METRICS.md '
                         "does not exist"))
                elif bare not in metrics_doc:
                    violations.append(
                        (rel, lineno, "metrics-doc",
                         f'stat "{bare}" not documented in '
                         "docs/METRICS.md"))


def check_policy_docs(root, violations):
    """policy-doc: every FilterPolicy in the registry table of
    src/texture/filter_policy.cc must appear by name in
    docs/FILTERING.md — adding a policy without documenting it fails
    lint, keeping the comparison testbed docs exhaustive."""
    rel = os.path.join("src", "texture", "filter_policy.cc")
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    doc_path = os.path.join(root, "docs", "FILTERING.md")
    doc = None
    if os.path.exists(doc_path):
        with open(doc_path, encoding="utf-8") as f:
            doc = f.read()
    rel = rel.replace(os.sep, "/")
    for m in RE_POLICY_ENTRY.finditer(text):
        lineno = text.count("\n", 0, m.start()) + 1
        raw_lines = text.splitlines()
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        prev = raw_lines[lineno - 2] if lineno >= 2 else ""
        if "policy-doc" in inline_allows(raw) | inline_allows(prev):
            continue
        name = m.group(1)
        if doc is None:
            violations.append(
                (rel, lineno, "policy-doc",
                 f'policy "{name}" registered but docs/FILTERING.md '
                 "does not exist"))
        elif name not in doc:
            violations.append(
                (rel, lineno, "policy-doc",
                 f'policy "{name}" not documented in docs/FILTERING.md'))


def check_internal_include(root, rel, violations):
    """examples/ and bench/ build against the facade only: every quoted
    include must be a "pargpu/..." header (or bench's own bench_util.hh);
    system headers use angle brackets and pass freely."""
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()
    for lineno, raw in enumerate(raw_lines, start=1):
        prev = raw_lines[lineno - 2] if lineno >= 2 else ""
        allowed_here = inline_allows(raw) | inline_allows(prev)
        if "intrinsics" not in allowed_here and RE_INTRIN.search(raw):
            violations.append(
                (rel, lineno, "intrinsics",
                 "x86 intrinsic outside src/simd/; use the kernel layer"))
        if "internal-include" in allowed_here:
            continue
        m = RE_QUOTED_INCLUDE.search(raw)
        if not m:
            continue
        inc = m.group(1)
        if inc.startswith("pargpu/"):
            continue
        if rel.startswith("bench/") and inc == "bench_util.hh":
            continue
        violations.append(
            (rel, lineno, "internal-include",
             f'"{inc}" is src-internal; include the facade '
             '("pargpu/...") instead'))


def check_header_selfcontained(root, rel, compiler, std, violations):
    include_as = rel.replace(os.sep, "/")
    include_as = include_as.removeprefix("src/").removeprefix("include/")
    snippet = f'#include "{include_as}"\n'
    cmd = [compiler, f"-std={std}", "-fsyntax-only", "-x", "c++",
           "-I", os.path.join(root, "src"),
           "-I", os.path.join(root, "include"), "-"]
    proc = subprocess.run(cmd, input=snippet, capture_output=True,
                          text=True, cwd=root)
    if proc.returncode != 0:
        first = proc.stderr.strip().splitlines()
        detail = first[0] if first else "compile failed"
        violations.append(
            (rel, 1, "header-self", f"not self-contained: {detail}"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint_allowlist.txt)")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                    help="C++ compiler for header spot builds")
    ap.add_argument("--std", default="c++20", help="language standard")
    ap.add_argument("--no-spot-builds", action="store_true",
                    help="skip the header self-containment builds")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "lint_allowlist.txt")
    allow = load_allowlist(allowlist_path)

    def walk_sources(top):
        found = []
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    found.append(rel.replace(os.sep, "/"))
        found.sort()
        return found

    sources = walk_sources("src") + walk_sources("include")
    if not sources:
        print("lint: no sources found under src/", file=sys.stderr)
        return 2
    # API consumers: only the internal-include rule applies.
    consumers = walk_sources("examples") + walk_sources("bench")

    metrics_doc = None
    metrics_path = os.path.join(root, "docs", "METRICS.md")
    if os.path.exists(metrics_path):
        with open(metrics_path, encoding="utf-8") as f:
            metrics_doc = f.read()

    violations = []
    for rel in sources:
        check_file(root, rel, violations, metrics_doc)
    for rel in consumers:
        check_internal_include(root, rel, violations)
    check_policy_docs(root, violations)

    if not args.no_spot_builds:
        headers = [s for s in sources if s.endswith((".hh", ".h"))]
        for rel in headers:
            check_header_selfcontained(root, rel, args.compiler, args.std,
                                       violations)

    # File-level allowlist: filter after the fact so entries that no
    # longer suppress anything are detectable (and fatal) instead of
    # silently rotting in the list.
    used = set()
    kept = []
    for rel, lineno, rule, msg in violations:
        if (rule, rel) in allow:
            used.add((rule, rel))
        else:
            kept.append((rel, lineno, rule, msg))
    unused = allow - used
    if args.no_spot_builds:
        # header-self never ran, so its entries cannot prove themselves.
        unused = {e for e in unused if e[0] != "header-self"}

    for rel, lineno, rule, msg in kept:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    for rule, rel in sorted(unused):
        print(f"lint: unused allowlist entry: {rule} {rel} "
              "(rule no longer fires; prune it)")
    checked = len(sources) + len(consumers)
    if kept or unused:
        print(f"lint: {len(kept)} violation(s), {len(unused)} stale "
              f"allowlist entr(ies) in {checked} files")
        return 1
    print(f"lint: OK ({checked} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
