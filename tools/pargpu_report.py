#!/usr/bin/env python3
"""Compare two pargpu metrics documents (see docs/METRICS.md).

Loads two metrics JSONs produced by `pargpu_harness --metrics-json` (or by
any bench via PARGPU_METRICS_DIR), prints a regression/speedup table for
the headline metrics — cycles, DRAM traffic, texel fetches, MSSIM, energy,
power — and, with --fail-on-regress PCT, exits non-zero when any metric
moved in its bad direction by more than PCT percent. That mode is wired as
a CTest gate (see tests/CMakeLists.txt) and is meant for CI: compare a
candidate run against a stored baseline and fail the build on regressions.

A second mode, --compare-policies DIR, reads every metrics JSON in DIR
(e.g. a PARGPU_METRICS_DIR filled by bench/fig_policies), groups the runs
by workload and `run.filter_policy`, and prints one quality-vs-fetches
table per workload: MSSIM, texel fetches, filter ops (trilinear + stf),
energy and cycles, each with its ratio against the workload's reference
run (the exact-AF `*_ref` export when present, else the patu row).

A third mode is the pargpu_serve client: --serve BIN boots the server,
--serve-sweep GAME:WxHxF:SCEN[,SCEN...] loads the workload and submits
one sweep over the listed scenarios through the length-prefixed JSON
protocol (docs/SERVE.md), printing a progress line per streamed job
event. Each returned metrics document can be written with --serve-out
DIR, and when the sweep has two or more configs the first run is diffed
against each of the others with the regular table.

A fourth mode, --serve-bench FILE, gates the BENCH_serve.json that
bench/perf_serve writes: the amortization speedup of a persistent
session over a fresh boot per sweep must reach --min-speedup (default
3.0) and the response streams must have been bit-identical.

Usage:
  pargpu_report.py BASELINE.json CANDIDATE.json [--fail-on-regress PCT]
                   [--all-counters]
  pargpu_report.py --compare-policies DIR
  pargpu_report.py --serve BIN --serve-sweep SPEC [--serve-out DIR]
  pargpu_report.py --serve-bench FILE [--min-speedup X]

Exit status: 0 ok, 1 regression/gate failure, 2 usage/schema/protocol
errors.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA_NAME = "pargpu-metrics"
SUPPORTED_VERSIONS = (1,)
SERVE_SCHEMA_NAME = "pargpu-serve"
SERVE_BENCH_SCHEMA_NAME = "pargpu-serve-bench"

# (label, path, getter kind, better) — better is "lower" or "higher".
# Paths into the document: "aggregate.x" or "registry.counters.x" /
# "registry.scalars.x".
HEADLINE = [
    ("avg cycles/frame", "aggregate.avg_cycles", "lower"),
    ("total energy (nJ)", "aggregate.total_energy_nj", "lower"),
    ("avg power (W)", "aggregate.avg_power_w", "lower"),
    ("MSSIM", "aggregate.mssim", "higher"),
    ("DRAM traffic (B)", "registry.counters.mem.traffic.total_bytes",
     "lower"),
    ("DRAM reads", "registry.counters.mem.dram.reads", "lower"),
    ("texel fetches", "registry.counters.texunit.texels", "lower"),
    ("trilinear samples", "registry.counters.texunit.trilinear_samples",
     "lower"),
    ("L1 hit rate", "registry.scalars.mem.l1.hit_rate", "higher"),
    ("frame cycles p95", "registry.histograms.frame.cycles.p95", "lower"),
]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"pargpu_report: cannot load {path}: {e}")
    if doc.get("schema") != SCHEMA_NAME:
        sys.exit(f"pargpu_report: {path} is not a {SCHEMA_NAME} document")
    if doc.get("schema_version") not in SUPPORTED_VERSIONS:
        sys.exit(f"pargpu_report: {path} has unsupported schema_version "
                 f"{doc.get('schema_version')} (supported: "
                 f"{SUPPORTED_VERSIONS})")
    return doc


def lookup(doc, path):
    """Resolve a metric path; dotted metric names live as single keys
    inside the registry sections, so descend section-wise first."""
    if path.startswith("aggregate."):
        return doc.get("aggregate", {}).get(path[len("aggregate."):])
    if path.startswith("registry.counters."):
        return doc.get("registry", {}).get("counters", {}).get(
            path[len("registry.counters."):])
    if path.startswith("registry.scalars."):
        return doc.get("registry", {}).get("scalars", {}).get(
            path[len("registry.scalars."):])
    if path.startswith("registry.histograms."):
        # registry.histograms.<name>.<field> — field is the last segment.
        rest = path[len("registry.histograms."):]
        name, _, field = rest.rpartition(".")
        h = doc.get("registry", {}).get("histograms", {}).get(name)
        return None if h is None else h.get(field)
    return None


def fmt(v):
    if v is None:
        return "-"
    if abs(v) >= 1e6 or (v != 0 and abs(v) < 1e-3):
        return f"{v:.4g}"
    if float(v).is_integer():
        return f"{int(v)}"
    return f"{v:.4f}"


def compare(base, cand, rows):
    """Yield (label, a, b, delta_pct_or_None, verdict, regressed_pct)."""
    for label, path, better in rows:
        a = lookup(base, path)
        b = lookup(cand, path)
        if a is None or b is None:
            yield label, a, b, None, "missing", 0.0
            continue
        if a == 0:
            delta = 0.0 if b == 0 else float("inf")
        else:
            delta = (b - a) / abs(a) * 100.0
        bad = delta > 0 if better == "lower" else delta < 0
        regressed = abs(delta) if bad else 0.0
        if delta == 0:
            verdict = "same"
        elif bad:
            verdict = "worse"
        else:
            verdict = "better"
        yield label, a, b, delta, verdict, regressed


def policy_row(doc):
    """Extract the compare-policies table fields from one document."""
    agg = doc.get("aggregate", {})
    counters = doc.get("registry", {}).get("counters", {})
    return {
        "policy": doc.get("run", {}).get("filter_policy", "patu"),
        "scenario": doc.get("run", {}).get("scenario", "?"),
        "mssim": agg.get("mssim"),
        "texels": counters.get("texunit.texels", 0),
        "filter_ops": (counters.get("texunit.trilinear_samples", 0)
                       + counters.get("texunit.stf_samples", 0)),
        "energy": agg.get("total_energy_nj", 0.0),
        "cycles": agg.get("avg_cycles", 0.0),
    }


def compare_policies(directory):
    """Group DIR's metrics docs by workload and print one
    quality-vs-fetches table per workload. Returns an exit status."""
    try:
        names = sorted(os.listdir(directory))
    except OSError as e:
        sys.exit(f"pargpu_report: cannot list {directory}: {e}")
    by_workload = {}
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        doc = load(path)
        workload = doc.get("run", {}).get("workload", "?")
        row = policy_row(doc)
        row["reference"] = name.endswith("_ref.json")
        by_workload.setdefault(workload, []).append(row)
    if not by_workload:
        sys.exit(f"pargpu_report: no metrics documents in {directory}")

    for workload, rows in sorted(by_workload.items()):
        # Ratios are against the exact-filtering reference export when
        # one exists, else against the patu row.
        ref = next((r for r in rows if r["reference"]),
                   next((r for r in rows if r["policy"] == "patu"), rows[0]))

        def ratio(row, key):
            return row[key] / ref[key] if ref[key] else 0.0

        print(f"\n{workload}")
        print(f"{'policy':<22} {'MSSIM':>7} {'texels':>12} {'vs-ref':>7} "
              f"{'filter-ops':>12} {'energy-nJ':>12} {'cycles':>12} "
              f"{'speedup':>8}")
        ordered = ([r for r in rows if r["reference"]]
                   + sorted((r for r in rows if not r["reference"]),
                            key=lambda r: r["policy"]))
        for r in ordered:
            label = "reference" if r["reference"] else r["policy"]
            mssim = "-" if r["mssim"] is None else f"{r['mssim']:.3f}"
            speedup = ref["cycles"] / r["cycles"] if r["cycles"] else 0.0
            print(f"{label:<22} {mssim:>7} {r['texels']:>12} "
                  f"{ratio(r, 'texels'):>6.1%} {r['filter_ops']:>12} "
                  f"{r['energy']:>12.0f} {r['cycles']:>12.0f} "
                  f"{speedup:>7.3f}x")
    return 0


def serve_write_frame(pipe, payload):
    """Write one length-prefixed frame (docs/SERVE.md framing)."""
    data = payload.encode("utf-8")
    pipe.write(str(len(data)).encode("ascii") + b"\n" + data)
    pipe.flush()


def serve_read_frame(pipe):
    """Read one framed JSON document; None at EOF."""
    header = b""
    while True:
        c = pipe.read(1)
        if not c:
            return None
        if c == b"\n":
            break
        header += c
    if not header.isdigit():
        sys.exit(f"pargpu_report: malformed serve frame header {header!r}")
    length = int(header)
    payload = pipe.read(length)
    if len(payload) != length:
        sys.exit("pargpu_report: truncated serve frame")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        sys.exit(f"pargpu_report: bad serve frame payload: {e}")


def serve_request(proc, request):
    """One request/response exchange; exits on an error status."""
    serve_write_frame(proc.stdin, json.dumps(request))
    response = serve_read_frame(proc.stdout)
    if response is None:
        sys.exit("pargpu_report: server closed the stream mid-request")
    if response.get("status") != "ok":
        sys.exit(f"pargpu_report: {request.get('op')} failed: "
                 f"{response.get('status')}: {response.get('message')}")
    return response


def parse_sweep_spec(spec):
    """GAME:WxHxF:SCEN[,SCEN...] -> (game, w, h, frames, scenarios)."""
    parts = spec.split(":")
    if len(parts) != 3:
        sys.exit("pargpu_report: --serve-sweep wants "
                 "GAME:WxHxF:SCEN[,SCEN...]")
    game, dims, scenarios = parts
    dim_parts = dims.split("x")
    if len(dim_parts) != 3 or not all(p.isdigit() for p in dim_parts):
        sys.exit(f"pargpu_report: bad dimensions '{dims}' (want WxHxF)")
    scen_list = [s for s in scenarios.split(",") if s]
    if not scen_list:
        sys.exit("pargpu_report: --serve-sweep needs at least one scenario")
    w, h, frames = (int(p) for p in dim_parts)
    return game, w, h, frames, scen_list


def serve_client(binary, spec, out_dir):
    """Boot BIN, load the workload, submit the sweep, diff the runs."""
    game, w, h, frames, scenarios = parse_sweep_spec(spec)
    try:
        proc = subprocess.Popen([binary], stdin=subprocess.PIPE,
                                stdout=subprocess.PIPE)
    except OSError as e:
        sys.exit(f"pargpu_report: cannot start {binary}: {e}")
    try:
        pong = serve_request(proc, {"op": "ping", "id": "report"})
        if pong.get("schema") != SERVE_SCHEMA_NAME:
            sys.exit(f"pargpu_report: {binary} speaks "
                     f"'{pong.get('schema')}', not {SERVE_SCHEMA_NAME}")
        print(f"connected: {binary} ({SERVE_SCHEMA_NAME} v"
              f"{pong.get('schema_version')})")

        serve_request(proc, {"op": "load", "key": game, "game": game,
                             "width": w, "height": h, "frames": frames})
        print(f"loaded: {game} {w}x{h}, {frames} frame(s)")

        configs = [{"scenario": s, "keep_images": False}
                   for s in scenarios]
        serve_write_frame(proc.stdin, json.dumps(
            {"op": "sweep", "trace": game, "configs": configs}))
        results = None
        while results is None:
            event = serve_read_frame(proc.stdout)
            if event is None:
                sys.exit("pargpu_report: server closed mid-sweep")
            if event.get("status") != "ok":
                sys.exit(f"pargpu_report: sweep failed: "
                         f"{event.get('status')}: {event.get('message')}")
            if event.get("event") == "job_done":
                i = event.get("index", 0)
                snap = event.get("snapshot", {})
                agg = snap.get("aggregate", {})
                print(f"  [{i + 1}/{len(configs)}] {scenarios[i]}: "
                      f"{snap.get('frames_completed')} frame(s), "
                      f"avg cycles {fmt(agg.get('avg_cycles'))}")
            elif event.get("event") == "done":
                results = event.get("results", [])
        serve_request(proc, {"op": "shutdown"})
    finally:
        proc.stdin.close()
        proc.wait()

    if len(results) != len(scenarios):
        sys.exit(f"pargpu_report: expected {len(scenarios)} results, "
                 f"got {len(results)}")

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        for scenario, doc in zip(scenarios, results):
            path = os.path.join(out_dir,
                                f"serve_{game}_{scenario}.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2)
            print(f"wrote {path}")

    # Diff the first run against each of the others (informational —
    # different scenarios are supposed to differ).
    base = results[0]
    for scenario, cand in zip(scenarios[1:], results[1:]):
        print(f"\n== {scenarios[0]} vs {scenario} ==")
        rows = list(HEADLINE)
        width = max(len(r[0]) for r in rows)
        print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  "
              f"{'delta':>9}  verdict")
        for label, a, b, delta, verdict, _ in compare(base, cand, rows):
            d = "-" if delta is None else f"{delta:+8.2f}%"
            print(f"{label:<{width}}  {fmt(a):>14}  {fmt(b):>14}  "
                  f"{d:>9}  {verdict}")
    return 0


def gate_serve_bench(path, min_speedup):
    """Gate bench/perf_serve's BENCH_serve.json export."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"pargpu_report: cannot load {path}: {e}")
    if doc.get("schema") != SERVE_BENCH_SCHEMA_NAME:
        sys.exit(f"pargpu_report: {path} is not a "
                 f"{SERVE_BENCH_SCHEMA_NAME} document")
    speedup = doc.get("amortization_speedup", 0.0)
    identical = doc.get("bit_identical", False)
    print(f"serve bench: {doc.get('sweeps')} sweeps x "
          f"{doc.get('configs_per_sweep')} configs, amortization "
          f"{speedup:.2f}x (need >= {min_speedup}x), bit-identical: "
          f"{identical}")
    if not identical:
        print("FAIL: amortized and fresh response streams differ")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: amortization speedup {speedup:.2f}x below "
              f"{min_speedup}x")
        return 1
    print("serve bench gate passed")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?", help="baseline metrics JSON")
    ap.add_argument("candidate", nargs="?", help="candidate metrics JSON")
    ap.add_argument("--fail-on-regress", type=float, metavar="PCT",
                    default=None,
                    help="exit 1 if any metric regresses by more than PCT "
                         "percent")
    ap.add_argument("--all-counters", action="store_true",
                    help="also diff every registry counter present in "
                         "both documents")
    ap.add_argument("--compare-policies", metavar="DIR", default=None,
                    help="tabulate quality vs. fetches per filter policy "
                         "from every metrics JSON in DIR")
    ap.add_argument("--serve", metavar="BIN", default=None,
                    help="pargpu_serve binary to boot as a sweep client")
    ap.add_argument("--serve-sweep", metavar="SPEC", default=None,
                    help="sweep to submit: GAME:WxHxF:SCEN[,SCEN...]")
    ap.add_argument("--serve-out", metavar="DIR", default=None,
                    help="write each sweep result's metrics JSON to DIR")
    ap.add_argument("--serve-bench", metavar="FILE", default=None,
                    help="gate a BENCH_serve.json written by perf_serve")
    ap.add_argument("--min-speedup", type=float, metavar="X", default=3.0,
                    help="required serve amortization speedup "
                         "(default 3.0)")
    args = ap.parse_args()

    if args.serve_bench is not None:
        return gate_serve_bench(args.serve_bench, args.min_speedup)
    if args.serve is not None:
        if args.serve_sweep is None:
            ap.error("--serve requires --serve-sweep")
        return serve_client(args.serve, args.serve_sweep, args.serve_out)
    if args.serve_sweep is not None or args.serve_out is not None:
        ap.error("--serve-sweep/--serve-out require --serve")
    if args.compare_policies is not None:
        return compare_policies(args.compare_policies)
    if args.baseline is None or args.candidate is None:
        ap.error("BASELINE and CANDIDATE are required unless "
                 "--compare-policies is given")

    base = load(args.baseline)
    cand = load(args.candidate)

    def run_of(doc):
        r = doc.get("run", {})
        return (f"{r.get('workload', '?')} scenario={r.get('scenario', '?')}"
                f" threshold={r.get('threshold', '?')}")

    print(f"baseline : {args.baseline}  ({run_of(base)})")
    print(f"candidate: {args.candidate}  ({run_of(cand)})")
    print()

    rows = list(HEADLINE)
    if args.all_counters:
        shared = sorted(
            set(base.get("registry", {}).get("counters", {}))
            & set(cand.get("registry", {}).get("counters", {})))
        rows += [(name, f"registry.counters.{name}", "lower")
                 for name in shared]

    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>9}  verdict")
    worst = 0.0
    worst_label = None
    for label, a, b, delta, verdict, regressed in compare(base, cand, rows):
        d = "-" if delta is None else f"{delta:+8.2f}%"
        print(f"{label:<{width}}  {fmt(a):>14}  {fmt(b):>14}  {d:>9}  "
              f"{verdict}")
        if regressed > worst:
            worst = regressed
            worst_label = label

    print()
    if args.fail_on_regress is not None and worst > args.fail_on_regress:
        print(f"FAIL: '{worst_label}' regressed {worst:.2f}% "
              f"(> {args.fail_on_regress}%)")
        return 1
    if worst > 0:
        print(f"worst regression: {worst:.2f}% ({worst_label})")
    else:
        print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
