/**
 * @file
 * Command-line simulator driver: render any game workload under any
 * design scenario and print the full measurement set — the ATTILA-style
 * "run a trace, dump stats" workflow.
 *
 * Usage:
 *   simulator_cli [--game hl2|doom3|grid|nfs|stal|ut3|wolf|rbench]
 *                 [--scenario baseline|noaf|n|ntxds|patu]
 *                 [--threshold T] [--width W] [--height H]
 *                 [--frames N] [--tc-scale S] [--llc-scale S]
 *                 [--threads N] [--stereo] [--dump-ppm PREFIX]
 *
 * --threads N (or PARGPU_THREADS=N) renders frames N-wide in parallel;
 * results are bit-identical to a serial run.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pargpu/threading.hh"
#include "pargpu/config.hh"
#include "pargpu/power.hh"
#include "pargpu/sim.hh"

using namespace pargpu;

namespace
{

struct Options
{
    GameId game = GameId::HL2;
    RunConfig run;
    int width = 640;
    int height = 512;
    int frames = 2;
    bool stereo = false;
    std::string dump_prefix;
};

GameId
parseGame(const std::string &v)
{
    if (v == "hl2") return GameId::HL2;
    if (v == "doom3") return GameId::Doom3;
    if (v == "grid") return GameId::Grid;
    if (v == "nfs") return GameId::Nfs;
    if (v == "stal") return GameId::Stalker;
    if (v == "ut3") return GameId::Ut3;
    if (v == "wolf") return GameId::Wolf;
    if (v == "rbench") return GameId::RBench;
    std::fprintf(stderr, "unknown game '%s'\n", v.c_str());
    std::exit(1);
}

DesignScenario
parseScenario(const std::string &v)
{
    if (v == "baseline") return DesignScenario::Baseline;
    if (v == "noaf") return DesignScenario::NoAF;
    if (v == "n") return DesignScenario::AfSsimN;
    if (v == "ntxds") return DesignScenario::AfSsimNTxds;
    if (v == "patu") return DesignScenario::Patu;
    std::fprintf(stderr, "unknown scenario '%s'\n", v.c_str());
    std::exit(1);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--game") {
            o.game = parseGame(need("--game"));
        } else if (a == "--scenario") {
            o.run.scenario = parseScenario(need("--scenario"));
        } else if (a == "--threshold") {
            o.run.threshold =
                static_cast<float>(std::atof(need("--threshold").c_str()));
        } else if (a == "--width") {
            o.width = std::atoi(need("--width").c_str());
        } else if (a == "--height") {
            o.height = std::atoi(need("--height").c_str());
        } else if (a == "--frames") {
            o.frames = std::atoi(need("--frames").c_str());
        } else if (a == "--tc-scale") {
            o.run.tc_scale =
                static_cast<unsigned>(std::atoi(need("--tc-scale").c_str()));
        } else if (a == "--llc-scale") {
            o.run.llc_scale = static_cast<unsigned>(
                std::atoi(need("--llc-scale").c_str()));
        } else if (a == "--threads") {
            o.run.threads = std::atoi(need("--threads").c_str());
            if (o.run.threads > 0)
                ThreadPool::setDefaultThreads(
                    static_cast<unsigned>(o.run.threads));
        } else if (a == "--stereo") {
            o.stereo = true;
        } else if (a == "--dump-ppm") {
            o.dump_prefix = need("--dump-ppm");
        } else if (a == "--help" || a == "-h") {
            std::printf("see the file header for usage\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            std::exit(1);
        }
    }
    return o;
}

void
printFrame(const char *tag, const FrameStats &f)
{
    EnergyBreakdown e = computeEnergy(f);
    std::printf("[%s]\n", tag);
    std::printf("  total cycles          %llu (%.2f fps @1GHz)\n",
                static_cast<unsigned long long>(f.total_cycles), f.fps());
    std::printf("  geometry / fragment   %llu / %llu\n",
                static_cast<unsigned long long>(f.geometry_cycles),
                static_cast<unsigned long long>(f.fragment_cycles));
    std::printf("  texture filter cycles %llu (stall %llu)\n",
                static_cast<unsigned long long>(f.texture_filter_cycles),
                static_cast<unsigned long long>(f.texture_mem_stall));
    std::printf("  pixels / quads        %llu / %llu\n",
                static_cast<unsigned long long>(f.pixels_shaded),
                static_cast<unsigned long long>(f.quads));
    std::printf("  trilinear / texels    %llu / %llu\n",
                static_cast<unsigned long long>(f.trilinear_samples),
                static_cast<unsigned long long>(f.texels));
    std::printf("  decisions: trivial %llu  st1 %llu  st2 %llu  "
                "fullAF %llu\n",
                static_cast<unsigned long long>(f.trivial_tf),
                static_cast<unsigned long long>(f.approx_stage1),
                static_cast<unsigned long long>(f.approx_stage2),
                static_cast<unsigned long long>(f.full_af));
    std::printf("  traffic (B): tex %llu  col/z %llu  geo %llu\n",
                static_cast<unsigned long long>(f.traffic_texture),
                static_cast<unsigned long long>(f.traffic_colordepth),
                static_cast<unsigned long long>(f.traffic_geometry));
    std::printf("  caches: L1 %.1f%%  LLC %.1f%%  DRAM reads %llu\n",
                100.0 * f.l1_hits /
                    std::max<std::uint64_t>(1, f.l1_hits + f.l1_misses),
                100.0 * f.llc_hits /
                    std::max<std::uint64_t>(1, f.llc_hits + f.llc_misses),
                static_cast<unsigned long long>(f.dram_reads));
    std::printf("  energy: %.3f mJ (%.2f W avg)\n",
                e.total_nj() * 1e-6, averagePowerW(e, f));
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    GameTrace trace = buildGameTrace(o.game, o.width, o.height, o.frames);

    std::printf("workload  : %s (%zu draws, %zu tris, %zu textures)\n",
                trace.name.c_str(), trace.scene.draws.size(),
                trace.scene.numTriangles(), trace.scene.textures.size());
    std::printf("scenario  : %s, threshold %.2f%s\n",
                scenarioName(o.run.scenario), o.run.threshold,
                o.stereo ? ", stereo" : "");
    std::printf("threads   : %u\n",
                o.run.threads > 0 ? static_cast<unsigned>(o.run.threads)
                                  : ThreadPool::defaultThreads());

    if (o.stereo) {
        GpuSimulator sim(makeGpuConfig(o.run));
        for (int f = 0; f < o.frames; ++f) {
            const Camera &cam = trace.cameras[f];
            StereoFrame sf = renderStereo(sim, trace.scene, cam, o.width,
                                          o.height);
            std::printf("\n=== frame %d (stereo: %llu total cycles) ===\n",
                        f, static_cast<unsigned long long>(
                               sf.totalCycles()));
            printFrame("left eye", sf.left.stats);
            printFrame("right eye", sf.right.stats);
            if (!o.dump_prefix.empty()) {
                sf.left.image.writePPM(o.dump_prefix + "_f" +
                                       std::to_string(f) + "_L.ppm");
                sf.right.image.writePPM(o.dump_prefix + "_f" +
                                        std::to_string(f) + "_R.ppm");
            }
        }
        return 0;
    }

    // Mono path: frames render (possibly in parallel) through the
    // harness, then print in order — output is identical to a serial run.
    o.run.keep_images = !o.dump_prefix.empty();
    RunResult run = runTrace(trace, o.run);
    for (int f = 0; f < o.frames; ++f) {
        std::printf("\n=== frame %d ===\n", f);
        printFrame("frame", run.frames[f]);
        if (!o.dump_prefix.empty()) {
            run.images[f].writePPM(o.dump_prefix + "_f" +
                                   std::to_string(f) + ".ppm");
        }
    }
    return 0;
}
