/**
 * @file
 * Game replay: serialize a game workload to a trace file, reload it (the
 * ATTILA-style capture/replay flow), render every frame under baseline and
 * PATU, run the vsync replay model and the simulated user-study panel, and
 * dump the frames as PPM images.
 *
 * Usage: game_replay [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pargpu/config.hh"
#include "pargpu/replay.hh"
#include "pargpu/trace.hh"

using namespace pargpu;

int
main(int argc, char **argv)
{
    int frames = argc >= 2 ? std::atoi(argv[1]) : 4;
    const int width = 640, height = 480;

    // Capture.
    GameTrace original = buildGameTrace(GameId::Doom3, width, height,
                                        frames);
    const std::string path = "doom3.pgtrace";
    if (!writeTrace(original, path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("captured %s (%zu draws, %d frames) -> %s\n",
                original.name.c_str(), original.scene.draws.size(),
                frames, path.c_str());

    // Replay from file.
    bool ok = false;
    GameTrace trace = readTrace(path, ok);
    if (!ok) {
        std::fprintf(stderr, "failed to reload %s\n", path.c_str());
        return 1;
    }

    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    RunResult base = runTrace(trace, base_cfg);

    RunConfig patu_cfg;
    patu_cfg.scenario = DesignScenario::Patu;
    RunResult patu = runTrace(trace, patu_cfg);

    ReplayResult base_replay = simulateReplay(frameCycles(base));
    ReplayResult patu_replay = simulateReplay(frameCycles(patu));
    double quality = patu.mssimAgainst(base.images);

    ReplayCondition base_cond{1.0, base_replay.avg_fps,
                              base_replay.lag_fraction, width, height};
    ReplayCondition patu_cond{quality, patu_replay.avg_fps,
                              patu_replay.lag_fraction, width, height};

    std::printf("\n%-12s %10s %10s %8s %12s\n",
                "design", "avg fps", "lag frac", "MSSIM", "satisfaction");
    std::printf("%-12s %10.1f %10.2f %8.4f %12.2f\n", "baseline",
                base_replay.avg_fps, base_replay.lag_fraction, 1.0,
                satisfactionScore(base_cond));
    std::printf("%-12s %10.1f %10.2f %8.4f %12.2f\n", "PATU",
                patu_replay.avg_fps, patu_replay.lag_fraction, quality,
                satisfactionScore(patu_cond));

    for (std::size_t i = 0; i < patu.images.size(); ++i) {
        std::string name = "replay_frame" + std::to_string(i) + ".ppm";
        patu.images[i].writePPM(name);
    }
    std::printf("\nwrote %zu replay_frame*.ppm images\n",
                patu.images.size());
    return 0;
}
