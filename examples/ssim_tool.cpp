/**
 * @file
 * SSIM tool: compare two PPM images with the quality layer (MSSIM, PSNR)
 * and optionally write the SSIM index map visualization (Fig. 8 style).
 *
 * Usage: ssim_tool <a.ppm> <b.ppm> [map.ppm]
 *
 * With no arguments, runs a self-demonstration on a rendered frame pair
 * (AF on vs off).
 */

#include <cstdio>

#include "pargpu/config.hh"
#include "pargpu/quality.hh"

using namespace pargpu;

namespace
{

int
selfDemo()
{
    std::printf("no inputs given: demonstrating on HL2 AF-on vs AF-off\n");
    GameTrace trace = buildGameTrace(GameId::HL2, 640, 480, 1);

    RunConfig on_cfg;
    on_cfg.scenario = DesignScenario::Baseline;
    RunResult on = runTrace(trace, on_cfg);

    RunConfig off_cfg;
    off_cfg.scenario = DesignScenario::NoAF;
    RunResult off = runTrace(trace, off_cfg);

    std::vector<float> map = ssimMap(off.images[0], on.images[0]);
    std::printf("MSSIM(AF-off vs AF-on) = %.4f\n", mssimOfMap(map));
    std::printf("PSNR                   = %.2f dB\n",
                psnr(off.images[0], on.images[0]));

    Image vis = ssimMapImage(map, 640, 480);
    vis.writePPM("ssim_map.ppm");
    on.images[0].writePPM("ssim_af_on.ppm");
    off.images[0].writePPM("ssim_af_off.ppm");
    std::printf("wrote ssim_af_on.ppm, ssim_af_off.ppm, ssim_map.ppm\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return selfDemo();

    Image a = Image::readPPM(argv[1]);
    Image b = Image::readPPM(argv[2]);
    if (a.empty() || b.empty()) {
        std::fprintf(stderr, "could not read inputs\n");
        return 1;
    }
    if (a.width() != b.width() || a.height() != b.height()) {
        std::fprintf(stderr, "image dimensions differ\n");
        return 1;
    }

    std::vector<float> map = ssimMap(a, b);
    std::printf("MSSIM = %.4f\n", mssimOfMap(map));
    std::printf("PSNR  = %.2f dB\n", psnr(a, b));

    if (argc >= 4) {
        Image vis = ssimMapImage(map, a.width(), a.height());
        if (vis.writePPM(argv[3]))
            std::printf("wrote %s\n", argv[3]);
    }
    return 0;
}
