/**
 * @file
 * Quickstart: render one frame of a game scene with the baseline 16x AF
 * texture unit and again with PATU, then compare performance, energy and
 * perceived quality.
 *
 * Usage: quickstart [width height]
 */

#include <cstdio>
#include <cstdlib>

#include "pargpu/session.hh"

using namespace pargpu;

int
main(int argc, char **argv)
{
    int width = 640, height = 480;
    if (argc >= 3) {
        width = std::atoi(argv[1]);
        height = std::atoi(argv[2]);
    }

    std::printf("pargpu quickstart: HL2-style scene at %dx%d\n\n",
                width, height);

    // The scene decodes once into the session; both runs share it.
    Session session;
    session.load("hl2", GameId::HL2, width, height, 1);

    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    RunResult base = session.submit("hl2", base_cfg)->result();

    RunConfig patu_cfg;
    patu_cfg.scenario = DesignScenario::Patu;
    patu_cfg.threshold = 0.4f;
    RunResult patu = session.submit("hl2", patu_cfg)->result();

    double speedup = base.avg_cycles / patu.avg_cycles;
    double energy = patu.total_energy_nj / base.total_energy_nj;
    double quality = patu.mssimAgainst(base.images);

    const FrameStats &bs = base.frames[0];
    const FrameStats &ps = patu.frames[0];

    std::printf("%-28s %14s %14s\n", "", "Baseline-16xAF", "PATU(0.4)");
    std::printf("%-28s %14llu %14llu\n", "frame cycles",
                static_cast<unsigned long long>(bs.total_cycles),
                static_cast<unsigned long long>(ps.total_cycles));
    std::printf("%-28s %14llu %14llu\n", "texture filter cycles",
                static_cast<unsigned long long>(bs.texture_filter_cycles),
                static_cast<unsigned long long>(ps.texture_filter_cycles));
    std::printf("%-28s %14llu %14llu\n", "trilinear samples",
                static_cast<unsigned long long>(bs.trilinear_samples),
                static_cast<unsigned long long>(ps.trilinear_samples));
    std::printf("%-28s %14llu %14llu\n", "texels fetched",
                static_cast<unsigned long long>(bs.texels),
                static_cast<unsigned long long>(ps.texels));
    std::printf("%-28s %14.2f %14.2f\n", "fps @1GHz",
                bs.fps(), ps.fps());
    std::printf("\n");
    std::printf("PATU decisions: trivial-TF %llu, stage-1 %llu, "
                "stage-2 %llu, full-AF %llu\n",
                static_cast<unsigned long long>(ps.trivial_tf),
                static_cast<unsigned long long>(ps.approx_stage1),
                static_cast<unsigned long long>(ps.approx_stage2),
                static_cast<unsigned long long>(ps.full_af));
    std::printf("\n");
    std::printf("speedup            : %.3fx\n", speedup);
    std::printf("energy (vs base)   : %.3fx\n", energy);
    std::printf("MSSIM (vs base)    : %.4f\n", quality);

    if (base.images[0].writePPM("quickstart_baseline.ppm") &&
        patu.images[0].writePPM("quickstart_patu.ppm")) {
        std::printf("\nwrote quickstart_baseline.ppm / "
                    "quickstart_patu.ppm\n");
    }
    return 0;
}
