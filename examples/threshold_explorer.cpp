/**
 * @file
 * Threshold explorer: sweep PATU's unified AF-SSIM threshold for one game
 * and print the performance-quality trade-off curve (the per-game view of
 * the paper's Fig. 17), including the best point by speedup x MSSIM.
 *
 * Usage: threshold_explorer [game] [width height]
 *   game in {hl2, doom3, grid, nfs, stal, ut3, wolf, rbench}
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pargpu/config.hh"

using namespace pargpu;

namespace
{

GameId
parseGame(const char *s)
{
    std::string v = s;
    if (v == "hl2") return GameId::HL2;
    if (v == "doom3") return GameId::Doom3;
    if (v == "grid") return GameId::Grid;
    if (v == "nfs") return GameId::Nfs;
    if (v == "stal") return GameId::Stalker;
    if (v == "ut3") return GameId::Ut3;
    if (v == "wolf") return GameId::Wolf;
    if (v == "rbench") return GameId::RBench;
    std::fprintf(stderr, "unknown game '%s', using hl2\n", s);
    return GameId::HL2;
}

} // namespace

int
main(int argc, char **argv)
{
    GameId game = argc >= 2 ? parseGame(argv[1]) : GameId::HL2;
    int width = 640, height = 480;
    if (argc >= 4) {
        width = std::atoi(argv[2]);
        height = std::atoi(argv[3]);
    }

    GameTrace trace = buildGameTrace(game, width, height, 2);
    std::printf("threshold sweep for %s\n\n", trace.name.c_str());

    RunConfig base_cfg;
    base_cfg.scenario = DesignScenario::Baseline;
    RunResult base = runTrace(trace, base_cfg);

    std::printf("%9s %9s %9s %12s\n",
                "threshold", "speedup", "MSSIM", "speed*MSSIM");

    double best_metric = 0.0;
    float best_threshold = 1.0f;
    for (int i = 0; i <= 10; ++i) {
        float threshold = 0.1f * static_cast<float>(i);
        RunConfig cfg;
        cfg.scenario = DesignScenario::Patu;
        cfg.threshold = threshold;
        RunResult run = runTrace(trace, cfg);
        double speedup = base.avg_cycles / run.avg_cycles;
        double quality = run.mssimAgainst(base.images);
        double metric = speedup * quality;
        if (metric > best_metric) {
            best_metric = metric;
            best_threshold = threshold;
        }
        std::printf("%9.1f %9.3f %9.4f %12.4f\n",
                    threshold, speedup, quality, metric);
    }
    std::printf("\nbest point (BP): threshold = %.1f "
                "(speedup x MSSIM = %.4f)\n",
                best_threshold, best_metric);
    return 0;
}
