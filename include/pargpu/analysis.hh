/**
 * @file
 * pargpu public API — PATU decision analysis.
 *
 * Re-exports the AF-SSIM predictors (Eqs. 6/10), the texel-address hash
 * table, the PATU decision unit, and the area/energy overhead model
 * (Section VI).
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_ANALYSIS_HH
#define PARGPU_ANALYSIS_HH

#include "core/afssim.hh"
#include "core/hashtable.hh"
#include "core/overhead.hh"
#include "core/patu.hh"

#endif // PARGPU_ANALYSIS_HH
