/**
 * @file
 * pargpu public API — the Session facade and the serve protocol.
 *
 * Re-exports the session-based entry points (docs/SERVE.md): Session
 * (immutable shared assets via load(), synchronous run()/sweep(),
 * asynchronous submit()/submitSweep() returning JobHandles with streamed
 * metrics snapshots), the typed Status/StatusCode error surface,
 * the validated EnvOverrides snapshot, and the ServeLoop request loop
 * that pargpu_serve wraps. This is the preferred execution surface; the
 * legacy free functions in pargpu/config.hh are thin deprecated shims
 * over the process-global Session and stay bit-identical to it.
 *
 * Session-status: session — the canonical Session-based entry point.
 */

#ifndef PARGPU_SESSION_HH
#define PARGPU_SESSION_HH

#include "harness/serve.hh"
#include "harness/session.hh"

#endif // PARGPU_SESSION_HH
