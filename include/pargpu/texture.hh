/**
 * @file
 * pargpu public API — textures and filtering.
 *
 * Re-exports TextureMap (simulated TexelLayout + host TexelStorage),
 * mip-pyramid construction, BC1 compression, the procedural texture
 * generators, TextureSampler with its trilinear/anisotropic filters, and
 * the FilterPolicy family (docs/FILTERING.md).
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_TEXTURE_HH
#define PARGPU_TEXTURE_HH

#include "texture/compress.hh"
#include "texture/filter_policy.hh"
#include "texture/mipmap.hh"
#include "texture/procedural.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"

#endif // PARGPU_TEXTURE_HH
