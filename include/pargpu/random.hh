/**
 * @file
 * pargpu public API — deterministic RNG.
 *
 * Re-exports the seeded RNG every procedural generator uses (rand() is
 * banned repo-wide for reproducibility).
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_RANDOM_HH
#define PARGPU_RANDOM_HH

#include "common/rng.hh"

#endif // PARGPU_RANDOM_HH
