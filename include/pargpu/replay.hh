/**
 * @file
 * pargpu public API — replay and user-study models.
 *
 * Re-exports the vsync replay model and the user-study score synthesis
 * (Figs. 19-20).
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_REPLAY_HH
#define PARGPU_REPLAY_HH

#include "replay/replay.hh"
#include "replay/userstudy.hh"

#endif // PARGPU_REPLAY_HH
