/**
 * @file
 * pargpu public API — SoA filtering kernel layer.
 *
 * Re-exports the batch structs, the kernel table with its runtime
 * instruction-set dispatch, and the QuadFilter front-end for kernel
 * benches and bit-identity tests.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_SIMD_HH
#define PARGPU_SIMD_HH

#include "simd/batch.hh"
#include "simd/dispatch.hh"
#include "simd/filter.hh"
#include "simd/kernels.hh"

#endif // PARGPU_SIMD_HH
