/**
 * @file
 * pargpu public API — metrics schema and exporters.
 *
 * Re-exports the versioned metrics document (metricsJson,
 * writeMetricsJson/writeMetricsCsv, buildRunRegistry, RunMetadata,
 * kMetricsSchemaVersion) described in docs/METRICS.md.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_METRICS_HH
#define PARGPU_METRICS_HH

#include "harness/metrics.hh"

#endif // PARGPU_METRICS_HH
