/**
 * @file
 * pargpu public API — experiment configuration and execution.
 *
 * Re-exports the experiment condition (RunConfig + RunConfig::validate()),
 * the modeled machine (GpuConfig, Table I defaults), the design scenarios
 * (DesignScenario), and the run entry points runTrace()/runSweep() with
 * their RunResult aggregation.
 *
 * Session-status: legacy-shim — runTrace()/runSweep() are deprecated
 * wrappers over the process-global Session (pargpu/session.hh).
 */

#ifndef PARGPU_CONFIG_HH
#define PARGPU_CONFIG_HH

#include "harness/runner.hh"
#include "sim/config.hh"

#endif // PARGPU_CONFIG_HH
