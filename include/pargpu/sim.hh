/**
 * @file
 * pargpu public API — simulator internals surface.
 *
 * Re-exports the GpuSimulator pipeline with FrameStats/FrameOutput, the
 * rasterizer quad types, and the stereo-rendering model for benches that
 * drive the simulator directly.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_SIM_HH
#define PARGPU_SIM_HH

#include "sim/pipeline.hh"
#include "sim/raster.hh"
#include "sim/stereo.hh"

#endif // PARGPU_SIM_HH
