/**
 * @file
 * pargpu public API — image quality metrics.
 *
 * Re-exports the SSIM/MSSIM implementation used for the paper's quality
 * axis.
 */

#ifndef PARGPU_QUALITY_HH
#define PARGPU_QUALITY_HH

#include "quality/ssim.hh"

#endif // PARGPU_QUALITY_HH
