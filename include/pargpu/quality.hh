/**
 * @file
 * pargpu public API — image quality metrics.
 *
 * Re-exports the SSIM/MSSIM implementation used for the paper's quality
 * axis.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_QUALITY_HH
#define PARGPU_QUALITY_HH

#include "quality/ssim.hh"

#endif // PARGPU_QUALITY_HH
