/**
 * @file
 * pargpu public API — game workloads.
 *
 * Re-exports GameTrace/GameId/buildGameTrace, the Table II benchmark list
 * (paperBenchmarks), and the procedural scene/mesh builders.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_SCENES_HH
#define PARGPU_SCENES_HH

#include "scenes/meshes.hh"
#include "scenes/scenes.hh"

#endif // PARGPU_SCENES_HH
