/**
 * @file
 * pargpu public API — the single entry point for applications.
 *
 * Everything an embedding program needs to reproduce the paper's
 * experiments: build a game workload (GameTrace), describe an experimental
 * condition (RunConfig, validated via RunConfig::validate()), render it
 * through a Session (load assets once, run()/sweep()/submit() many —
 * pargpu/session.hh; the legacy runTrace/runSweep shims remain), and
 * export the run as a versioned metrics document (pargpu/metrics.hh).
 *
 * Out-of-repo consumers and the in-repo examples/ and bench/ trees build
 * exclusively against `pargpu/...` headers; the `src/...` spelling of the
 * internals is reserved for the library itself (enforced by the
 * internal-include lint rule). Topic headers narrow the surface when the
 * umbrella is too broad: pargpu/session.hh, pargpu/config.hh,
 * pargpu/metrics.hh, pargpu/scenes.hh, pargpu/texture.hh, pargpu/quality.hh,
 * pargpu/replay.hh, pargpu/sim.hh, pargpu/analysis.hh, pargpu/mem.hh,
 * pargpu/power.hh, pargpu/trace.hh, pargpu/threading.hh,
 * pargpu/random.hh. See docs/API.md.
 *
 * Session-status: umbrella — pulls in pargpu/session.hh (preferred
 * execution surface) alongside the legacy shims in pargpu/config.hh.
 */

#ifndef PARGPU_PARGPU_HH
#define PARGPU_PARGPU_HH

#include "pargpu/config.hh"
#include "pargpu/metrics.hh"
#include "pargpu/scenes.hh"
#include "pargpu/session.hh"
#include "pargpu/texture.hh"

#endif // PARGPU_PARGPU_HH
