/**
 * @file
 * pargpu public API — deterministic parallelism.
 *
 * Re-exports the ThreadPool used for frame/config-level parallelism
 * (PARGPU_THREADS, setDefaultThreads, parallel-for).
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_THREADING_HH
#define PARGPU_THREADING_HH

#include "common/threadpool.hh"

#endif // PARGPU_THREADING_HH
