/**
 * @file
 * pargpu public API — deterministic parallelism.
 *
 * Re-exports the ThreadPool used for frame/config-level parallelism
 * (PARGPU_THREADS, setDefaultThreads, parallel-for).
 */

#ifndef PARGPU_THREADING_HH
#define PARGPU_THREADING_HH

#include "common/threadpool.hh"

#endif // PARGPU_THREADING_HH
