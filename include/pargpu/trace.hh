/**
 * @file
 * pargpu public API — workload trace serialization.
 *
 * Re-exports binary trace writing/reading (the ATTILA-trace analog): a
 * trace reconstructs a bit-identical workload.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_TRACE_HH
#define PARGPU_TRACE_HH

#include "trace/trace.hh"

#endif // PARGPU_TRACE_HH
