/**
 * @file
 * pargpu public API — memory hierarchy models.
 *
 * Re-exports the set-associative cache, DRAM timing model and the composed
 * MemorySystem for cache-focused benches.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_MEM_HH
#define PARGPU_MEM_HH

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memsys.hh"

#endif // PARGPU_MEM_HH
