/**
 * @file
 * pargpu public API — memory hierarchy models.
 *
 * Re-exports the set-associative cache, DRAM timing model and the composed
 * MemorySystem for cache-focused benches.
 */

#ifndef PARGPU_MEM_HH
#define PARGPU_MEM_HH

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memsys.hh"

#endif // PARGPU_MEM_HH
