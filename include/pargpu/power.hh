/**
 * @file
 * pargpu public API — energy model.
 *
 * Re-exports the per-frame energy breakdown (computeEnergy,
 * EnergyBreakdown, averagePowerW) behind Fig. 17's energy axis.
 *
 * Session-status: neutral — data types and models shared by the Session
 * and legacy execution paths; no run entry points of its own.
 */

#ifndef PARGPU_POWER_HH
#define PARGPU_POWER_HH

#include "power/energy.hh"

#endif // PARGPU_POWER_HH
