/**
 * @file
 * pargpu public API — energy model.
 *
 * Re-exports the per-frame energy breakdown (computeEnergy,
 * EnergyBreakdown, averagePowerW) behind Fig. 17's energy axis.
 */

#ifndef PARGPU_POWER_HH
#define PARGPU_POWER_HH

#include "power/energy.hh"

#endif // PARGPU_POWER_HH
