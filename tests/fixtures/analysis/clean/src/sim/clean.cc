// Fixture: the approved counterparts of every analyzer rule's target —
// ordered iteration, Cycle counters instead of host clocks, explicit
// RNG seeding, dense worker indices, value keys, plain mul-add, state
// owned by an object, and per-index shard lookup inside the task.
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace pargpu
{

using Cycle = std::uint64_t;

class TextureUnit;
struct ThreadPool
{
    static void run(std::size_t n, std::size_t chunk, void (*fn)(void *));
};

struct FrameClock
{
    Cycle now = 0; ///< Simulated time: advanced by the model, not read
                   ///< from the host.
};

std::uint64_t
sumTileCycles(const std::map<int, std::uint64_t> &cycles_by_tile)
{
    std::uint64_t total = 0;
    for (const auto &kv : cycles_by_tile)
        total += kv.second;
    return total;
}

float
blendWeight(float a, float b, float c)
{
    return a * b + c;
}

void
filterAllTiles(std::vector<TextureUnit *> &tus)
{
    ThreadPool::run(4, 1, [&tus](std::size_t c) {
        (void)*tus[c]; // Each worker owns exactly its cluster's shard.
    });
}

} // namespace pargpu
