// Fixture: contracted FP math outside src/simd/ (rule: fp-unsafe).
#include <cmath>

namespace pargpu
{

float
blendWeight(float a, float b, float c)
{
    return std::fma(a, b, c);
}

} // namespace pargpu
