// Fixture: host clock read in simulation code (rule: wall-clock).
#include <chrono>
#include <cstdint>

namespace pargpu
{

std::uint64_t
frameStartNanos()
{
    auto t = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

} // namespace pargpu
