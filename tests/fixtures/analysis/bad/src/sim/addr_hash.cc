// Fixture: pointer value used as data (rule: addr-hash).
#include <cstdint>

namespace pargpu
{

struct Texture;

std::uint64_t
textureKey(const Texture *tex)
{
    return reinterpret_cast<std::uintptr_t>(tex) >> 4;
}

} // namespace pargpu
