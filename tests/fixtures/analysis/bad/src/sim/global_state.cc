// Fixture: mutable namespace-scope state (rule: global-state).
#include <cstdint>

namespace pargpu
{

namespace
{

std::uint64_t g_frames_rendered = 0;

} // namespace

void
noteFrame()
{
    ++g_frames_rendered;
}

} // namespace pargpu
