// Fixture: cluster-private unit shared across workers (rule:
// cluster-escape). One cluster's TextureUnit is captured by reference
// into every ThreadPool task instead of each worker looking up its own
// shard by cluster index.
#include <cstddef>
#include <vector>

namespace pargpu
{

class TextureUnit;
struct ThreadPool
{
    static void run(std::size_t n, std::size_t chunk, void (*fn)(void *));
};

void
filterAllTiles(std::vector<TextureUnit *> &tus)
{
    TextureUnit &tu = *tus[0];
    ThreadPool::run(4, 1, [&tu](std::size_t c) {
        (void)c;
        (void)tu;
    });
}

} // namespace pargpu
