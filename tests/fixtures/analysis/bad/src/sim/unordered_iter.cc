// Fixture: iterating an unordered container (rule: unordered-iter).
#include <cstdint>
#include <unordered_map>

namespace pargpu
{

std::uint64_t
sumTileCycles()
{
    std::unordered_map<int, std::uint64_t> cycles_by_tile;
    cycles_by_tile[3] = 7;
    std::uint64_t total = 0;
    for (const auto &kv : cycles_by_tile)
        total += kv.second;
    return total;
}

} // namespace pargpu
