// Fixture: hardware entropy source (rule: random-device).
#include <random>

namespace pargpu
{

unsigned
jitterSeed()
{
    std::random_device rd;
    return rd();
}

} // namespace pargpu
