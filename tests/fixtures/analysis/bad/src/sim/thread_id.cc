// Fixture: thread identity as a value (rule: thread-id).
#include <cstddef>
#include <functional>
#include <thread>

namespace pargpu
{

std::size_t
workerSlot(std::size_t slots)
{
    auto id = std::this_thread::get_id();
    return std::hash<decltype(id)>{}(id) % slots;
}

} // namespace pargpu
