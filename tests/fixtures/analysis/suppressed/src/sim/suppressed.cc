// Fixture: a real violation excused at the use site. The analyzer must
// honor the inline grant and stay silent.
#include <chrono>
#include <cstdint>

namespace pargpu
{

std::uint64_t
hostTimestampForLogOnly()
{
    // Host time never reaches simulated state here; log header only.
    // pargpu-analyze: allow(wall-clock)
    auto t = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

} // namespace pargpu
