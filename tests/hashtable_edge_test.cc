/**
 * @file
 * Edge cases of PATU's texel-address hash table, guarded by the new
 * contract invariants: overflow of ablation-sized tables, duplicate
 * texel-address sets with count-tag saturation, and address keys at the
 * wraparound end of the 32-bit texel address space.
 */

#include "core/hashtable.hh"

#include <gtest/gtest.h>

#include <cmath>

using pargpu::Addr;
using pargpu::TexelAddressTable;
using pargpu::TexelAddrSet;

namespace
{

TexelAddrSet
setOf(Addr base)
{
    TexelAddrSet s;
    for (int i = 0; i < 8; ++i)
        s[i] = base + static_cast<Addr>(i) * 4;
    return s;
}

float
vectorSum(const std::vector<float> &p)
{
    float sum = 0.0f;
    for (float v : p)
        sum += v;
    return sum;
}

TEST(HashTableEdgeTest, FullTableDropsOverflowingSets)
{
    // Ablation-sized table: 4 entries, 8 distinct sample sets. The last
    // four find the table full and are dropped from storage — but not
    // from the probability distribution, where each dropped sample must
    // appear as a singleton (conservative Txds).
    TexelAddressTable t(4);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(t.insert(setOf(static_cast<Addr>(i) * 0x1000)));

    EXPECT_EQ(t.distinctSets(), 4);
    EXPECT_EQ(t.samplesInserted(), 8);

    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 8u); // 4 stored + 4 dropped singletons.
    for (float v : p)
        EXPECT_NEAR(v, 1.0f / 8.0f, 1e-6f);
    EXPECT_NEAR(vectorSum(p), 1.0f, 1e-5f);
}

TEST(HashTableEdgeTest, FullTableStillMatchesStoredEntries)
{
    // A full table must keep recognizing already-stored sets (shared
    // samples) even though it cannot store new ones.
    TexelAddressTable t(2);
    EXPECT_FALSE(t.insert(setOf(0x100)));
    EXPECT_FALSE(t.insert(setOf(0x200)));
    EXPECT_FALSE(t.insert(setOf(0x300))); // dropped
    EXPECT_TRUE(t.insert(setOf(0x100)));  // still matches entry 0
    EXPECT_TRUE(t.insert(setOf(0x200)));  // still matches entry 1
    EXPECT_FALSE(t.insert(setOf(0x300))); // dropped again, no memory of it
    EXPECT_EQ(t.distinctSets(), 2);
    EXPECT_EQ(t.samplesInserted(), 6);
}

TEST(HashTableEdgeTest, DuplicateSetsShareOneEntry)
{
    TexelAddressTable t;
    EXPECT_FALSE(t.insert(setOf(0x4000)));
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(t.insert(setOf(0x4000)));

    EXPECT_EQ(t.distinctSets(), 1);
    EXPECT_EQ(t.samplesInserted(), 8);
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 1.0f, 1e-6f);
}

TEST(HashTableEdgeTest, CountTagSaturatesAtSixteenSamples)
{
    // The 4-bit count tag stores up to 15 extra hits (16 samples). With
    // 20 inserts of one set the stored mass saturates at 16 and the
    // remaining 4 samples surface as dropped singletons — keeping the
    // distribution normalized (and the stored<=inserted invariant holds).
    TexelAddressTable t;
    const int kInserts = 20;
    for (int i = 0; i < kInserts; ++i)
        t.insert(setOf(0x8000));

    EXPECT_EQ(t.distinctSets(), 1);
    EXPECT_EQ(t.samplesInserted(), kInserts);
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 1u + (kInserts - 16));
    EXPECT_NEAR(p[0], 16.0f / kInserts, 1e-6f);
    for (std::size_t i = 1; i < p.size(); ++i)
        EXPECT_NEAR(p[i], 1.0f / kInserts, 1e-6f);
    EXPECT_NEAR(vectorSum(p), 1.0f, 1e-5f);
}

TEST(HashTableEdgeTest, WraparoundKeysStayDistinct)
{
    // Texel addresses at the very top of the address space: sets whose
    // members straddle the 32-bit wraparound boundary (the hardware
    // compares full words, so 0xFFFFFFFC and 0x00000000 are distinct
    // keys, never aliased).
    const Addr top32 = 0xFFFF'FFFCu;
    TexelAddressTable t;
    EXPECT_FALSE(t.insert(setOf(top32)));
    EXPECT_FALSE(t.insert(setOf(0)));
    EXPECT_EQ(t.distinctSets(), 2);
    EXPECT_TRUE(t.insert(setOf(top32)));
    EXPECT_EQ(t.distinctSets(), 2);

    // A set differing only in its last member must not collide.
    TexelAddrSet almost = setOf(top32);
    almost[7] = ~Addr{0};
    EXPECT_FALSE(t.insert(almost));
    EXPECT_EQ(t.distinctSets(), 3);
}

TEST(HashTableEdgeTest, ResetClearsOccupancyAndDistribution)
{
    TexelAddressTable t(4);
    for (int i = 0; i < 6; ++i)
        t.insert(setOf(static_cast<Addr>(i) * 0x40));
    t.reset();
    EXPECT_EQ(t.distinctSets(), 0);
    EXPECT_EQ(t.samplesInserted(), 0);
    EXPECT_TRUE(t.probabilityVector().empty());

    // The table is fully reusable after reset.
    EXPECT_FALSE(t.insert(setOf(0x123)));
    EXPECT_TRUE(t.insert(setOf(0x123)));
    EXPECT_EQ(t.distinctSets(), 1);
}

TEST(HashTableEdgeTest, SingleEntryTableIsConservative)
{
    // The degenerate 1-entry ablation: everything beyond the first
    // distinct set drops, and the distribution stays normalized.
    TexelAddressTable t(1);
    for (int i = 0; i < 4; ++i)
        t.insert(setOf(static_cast<Addr>(i) * 0x10));
    EXPECT_EQ(t.distinctSets(), 1);
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_NEAR(vectorSum(p), 1.0f, 1e-5f);
}

} // namespace
