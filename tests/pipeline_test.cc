/**
 * @file
 * Unit tests for the full GPU pipeline simulator on small controlled
 * scenes.
 */

#include <gtest/gtest.h>

#include "scenes/meshes.hh"
#include "sim/pipeline.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

// A minimal scene: one textured ground plane receding from the camera.
Scene
groundScene(FilterMode filter = FilterMode::Anisotropic)
{
    Scene scene;
    int tex = scene.addTexture(std::make_unique<TextureMap>(
        256, 256, generateTexture(TextureKind::Checker, 256, 3)));
    DrawCall d;
    d.mesh = makeGrid({-50, 0, 10}, {100, 0, 0}, {0, 0, -200}, 4, 8,
                      30.0f, 60.0f, tex);
    d.filter = filter;
    scene.draws.push_back(std::move(d));
    return scene;
}

Camera
standingCamera(int w, int h)
{
    Camera cam;
    cam.eye = {0, 1.8f, 0};
    cam.view = Mat4::lookAt(cam.eye, {0, 1.4f, -10}, {0, 1, 0});
    cam.proj = Mat4::perspective(1.1f, static_cast<float>(w) / h, 0.3f,
                                 400.0f);
    return cam;
}

GpuConfig
configFor(DesignScenario s, float threshold = 0.4f)
{
    GpuConfig c;
    c.patu.scenario = s;
    c.patu.threshold = threshold;
    return c;
}

} // namespace

TEST(PipelineTest, RendersNonTrivialImage)
{
    GpuSimulator sim(configFor(DesignScenario::Baseline));
    Scene scene = groundScene();
    FrameOutput out = sim.renderFrame(scene, standingCamera(160, 120),
                                      160, 120);
    EXPECT_EQ(out.image.width(), 160);
    EXPECT_EQ(out.image.height(), 120);
    EXPECT_GT(out.stats.pixels_shaded, 1000u);
    EXPECT_GT(out.stats.total_cycles, 0u);

    // The ground must produce varied colors, not a constant clear color.
    double min_l = 1.0, max_l = 0.0;
    for (const Color4f &p : out.image.pixels()) {
        min_l = std::min<double>(min_l, p.luma());
        max_l = std::max<double>(max_l, p.luma());
    }
    EXPECT_GT(max_l - min_l, 0.2);
}

TEST(PipelineTest, DeterministicAcrossRuns)
{
    GpuConfig cfg = configFor(DesignScenario::Patu);
    Scene scene = groundScene();
    Camera cam = standingCamera(160, 120);
    GpuSimulator sim_a(cfg), sim_b(cfg);
    FrameOutput a = sim_a.renderFrame(scene, cam, 160, 120);
    FrameOutput b = sim_b.renderFrame(scene, cam, 160, 120);
    EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
    EXPECT_EQ(a.stats.texels, b.stats.texels);
    for (std::size_t i = 0; i < a.image.pixels().size(); i += 97) {
        EXPECT_FLOAT_EQ(a.image.pixels()[i].r, b.image.pixels()[i].r);
    }
}

TEST(PipelineTest, GroundPlaneGeneratesAnisotropy)
{
    GpuSimulator sim(configFor(DesignScenario::Baseline));
    Scene scene = groundScene();
    FrameOutput out = sim.renderFrame(scene, standingCamera(160, 120),
                                      160, 120);
    // A receding plane must produce anisotropic pixels.
    EXPECT_GT(out.stats.af_candidate_pixels, out.stats.pixels_shaded / 4);
    // ... and more than 1 trilinear sample per pixel on average.
    EXPECT_GT(out.stats.trilinear_samples, out.stats.pixels_shaded);
}

TEST(PipelineTest, DisablingAfReducesCyclesAndTexels)
{
    Scene scene = groundScene();
    Camera cam = standingCamera(160, 120);
    GpuSimulator base(configFor(DesignScenario::Baseline));
    GpuSimulator noaf(configFor(DesignScenario::NoAF));
    FrameOutput b = base.renderFrame(scene, cam, 160, 120);
    FrameOutput n = noaf.renderFrame(scene, cam, 160, 120);
    EXPECT_LT(n.stats.texels, b.stats.texels);
    EXPECT_LT(n.stats.total_cycles, b.stats.total_cycles);
    EXPECT_LT(n.stats.texture_filter_cycles,
              b.stats.texture_filter_cycles);
}

TEST(PipelineTest, PatuBetweenBaselineAndNoAf)
{
    Scene scene = groundScene();
    Camera cam = standingCamera(160, 120);
    GpuSimulator base(configFor(DesignScenario::Baseline));
    GpuSimulator patu(configFor(DesignScenario::Patu, 0.4f));
    GpuSimulator noaf(configFor(DesignScenario::NoAF));
    Cycle cb = base.renderFrame(scene, cam, 160, 120).stats.total_cycles;
    Cycle cp = patu.renderFrame(scene, cam, 160, 120).stats.total_cycles;
    Cycle cn = noaf.renderFrame(scene, cam, 160, 120).stats.total_cycles;
    EXPECT_LE(cp, cb);
    EXPECT_GE(cp, cn);
}

TEST(PipelineTest, DepthTestResolvesOcclusion)
{
    // A red plane in front of a green plane: the image must show red.
    Scene scene;
    std::vector<RGBA8> red(64 * 64, RGBA8{255, 0, 0, 255});
    std::vector<RGBA8> green(64 * 64, RGBA8{0, 255, 0, 255});
    int red_tex = scene.addTexture(
        std::make_unique<TextureMap>(64, 64, std::move(red)));
    int green_tex = scene.addTexture(
        std::make_unique<TextureMap>(64, 64, std::move(green)));

    // Far green wall drawn first... then near red wall.
    DrawCall far_wall;
    far_wall.mesh = makeGrid({-20, -10, -30}, {40, 0, 0}, {0, 30, 0},
                             2, 2, 1, 1, green_tex);
    far_wall.backface_cull = false;
    scene.draws.push_back(std::move(far_wall));
    DrawCall near_wall;
    near_wall.mesh = makeGrid({-20, -10, -10}, {40, 0, 0}, {0, 30, 0},
                              2, 2, 1, 1, red_tex);
    near_wall.backface_cull = false;
    scene.draws.push_back(std::move(near_wall));

    GpuSimulator sim(configFor(DesignScenario::Baseline));
    FrameOutput out = sim.renderFrame(scene, standingCamera(64, 64),
                                      64, 64);
    const Color4f &center = out.image.at(32, 32);
    EXPECT_GT(center.r, center.g);

    // Draw order reversed: depth test must still give red.
    Scene reversed;
    std::vector<RGBA8> red2(64 * 64, RGBA8{255, 0, 0, 255});
    std::vector<RGBA8> green2(64 * 64, RGBA8{0, 255, 0, 255});
    int red_tex2 = reversed.addTexture(
        std::make_unique<TextureMap>(64, 64, std::move(red2)));
    int green_tex2 = reversed.addTexture(
        std::make_unique<TextureMap>(64, 64, std::move(green2)));
    DrawCall near2;
    near2.mesh = makeGrid({-20, -10, -10}, {40, 0, 0}, {0, 30, 0}, 2, 2,
                          1, 1, red_tex2);
    near2.backface_cull = false;
    reversed.draws.push_back(std::move(near2));
    DrawCall far2;
    far2.mesh = makeGrid({-20, -10, -30}, {40, 0, 0}, {0, 30, 0}, 2, 2,
                         1, 1, green_tex2);
    far2.backface_cull = false;
    reversed.draws.push_back(std::move(far2));

    GpuSimulator sim2(configFor(DesignScenario::Baseline));
    FrameOutput out2 = sim2.renderFrame(reversed, standingCamera(64, 64),
                                        64, 64);
    const Color4f &center2 = out2.image.at(32, 32);
    EXPECT_GT(center2.r, center2.g);
}

TEST(PipelineTest, TrafficSplitsAcrossClasses)
{
    GpuSimulator sim(configFor(DesignScenario::Baseline));
    Scene scene = groundScene();
    FrameOutput out = sim.renderFrame(scene, standingCamera(160, 120),
                                      160, 120);
    EXPECT_GT(out.stats.traffic_texture, 0u);
    EXPECT_GT(out.stats.traffic_colordepth, 0u);
    EXPECT_GT(out.stats.traffic_geometry, 0u);
    EXPECT_EQ(out.stats.totalTraffic(),
              out.stats.traffic_texture + out.stats.traffic_colordepth +
                  out.stats.traffic_geometry);
}

TEST(PipelineTest, FpsComputedFromCycles)
{
    FrameStats s;
    s.total_cycles = 20'000'000; // 20 ms at 1 GHz -> 50 fps.
    EXPECT_NEAR(s.fps(1.0), 50.0, 1e-6);
}

TEST(PipelineTest, EmptySceneStillCompletes)
{
    GpuSimulator sim(configFor(DesignScenario::Baseline));
    Scene scene;
    scene.clear_color = {0.3f, 0.1f, 0.2f, 1.0f};
    FrameOutput out = sim.renderFrame(scene, standingCamera(64, 64),
                                      64, 64);
    EXPECT_EQ(out.stats.pixels_shaded, 0u);
    EXPECT_FLOAT_EQ(out.image.at(10, 10).r, 0.3f);
}

TEST(PipelineDeathTest, RejectsBadViewport)
{
    GpuSimulator sim(configFor(DesignScenario::Baseline));
    Scene scene;
    EXPECT_EXIT(sim.renderFrame(scene, standingCamera(0, 0), 0, 64),
                testing::ExitedWithCode(1), "viewport");
}
