/**
 * @file
 * Unit tests for the PATU-extended texture unit: filtering decisions,
 * texel accounting and timing behaviour on controlled quads.
 */

#include <gtest/gtest.h>

#include "sim/texunit.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

// A fully-covered quad with controllable anisotropy (texels per pixel
// along x vs y on a 64x64 texture).
QuadFragment
quadWithAniso(float texels_x, float texels_y)
{
    QuadFragment q;
    q.x = 0;
    q.y = 0;
    q.coverage = 0xF;
    Vec2 base{0.5f, 0.5f};
    q.duvdx = {texels_x / 64.0f, 0.0f};
    q.duvdy = {0.0f, texels_y / 64.0f};
    for (int i = 0; i < 4; ++i) {
        q.uv[i] = Vec2{base.x + (i & 1) * q.duvdx.x,
                       base.y + (i >> 1) * q.duvdy.y};
        q.depth[i] = 0.5f;
    }
    return q;
}

struct Fixture
{
    GpuConfig config;
    MemorySystem mem;
    TextureMap tex;

    explicit Fixture(DesignScenario s, float threshold = 0.4f)
        : config(makeConfig(s, threshold)),
          mem(config.mem),
          tex(64, 64, generateTexture(TextureKind::Noise, 64, 7))
    {
        tex.setBaseAddr(0x1000'0000);
    }

    static GpuConfig
    makeConfig(DesignScenario s, float threshold)
    {
        GpuConfig c;
        c.patu.scenario = s;
        c.patu.threshold = threshold;
        return c;
    }
};

} // namespace

TEST(TexUnitTest, IsotropicQuadFiltersOneSamplePerPixel)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    QuadFilterResult r = tu.processQuad(quadWithAniso(1, 1), f.tex,
                                        FilterMode::Anisotropic, 0);
    EXPECT_EQ(tu.stats().pixels, 4u);
    EXPECT_EQ(tu.stats().trilinear_samples, 4u);
    EXPECT_EQ(tu.stats().texels, 32u);
    EXPECT_GT(r.busy, 0u);
}

TEST(TexUnitTest, BaselineFiltersAllAnisoSamples)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(8, 1), f.tex, FilterMode::Anisotropic,
                   0);
    // N = 8: 8 samples per pixel, 4 pixels.
    EXPECT_EQ(tu.stats().trilinear_samples, 32u);
    EXPECT_EQ(tu.stats().texels, 256u);
    EXPECT_EQ(tu.stats().full_af, 4u);
}

TEST(TexUnitTest, NoAfAlwaysSingleSample)
{
    Fixture f(DesignScenario::NoAF);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(8, 1), f.tex, FilterMode::Anisotropic,
                   0);
    EXPECT_EQ(tu.stats().trilinear_samples, 4u);
    EXPECT_EQ(tu.stats().texels, 32u);
}

TEST(TexUnitTest, PatuStage1ApproximatesSmallN)
{
    Fixture f(DesignScenario::Patu, 0.4f);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(2, 1), f.tex, FilterMode::Anisotropic,
                   0);
    EXPECT_EQ(tu.stats().approx_stage1, 4u);
    EXPECT_EQ(tu.stats().trilinear_samples, 4u);
}

TEST(TexUnitTest, PatuReducesWorkVsBaseline)
{
    Fixture fb(DesignScenario::Baseline);
    TextureUnit base_tu(fb.config, 0, fb.mem);
    base_tu.assertSerialPhase(); // Single-threaded test driver.
    base_tu.processQuad(quadWithAniso(12, 1), fb.tex,
                        FilterMode::Anisotropic, 0);

    Fixture fp(DesignScenario::Patu, 0.4f);
    TextureUnit patu_tu(fp.config, 0, fp.mem);
    patu_tu.assertSerialPhase(); // Single-threaded test driver.
    patu_tu.processQuad(quadWithAniso(12, 1), fp.tex,
                        FilterMode::Anisotropic, 0);

    EXPECT_LE(patu_tu.stats().texels, base_tu.stats().texels);
    EXPECT_LE(patu_tu.stats().filter_busy, base_tu.stats().filter_busy);
}

TEST(TexUnitTest, TrilinearModeIgnoresPatu)
{
    Fixture f(DesignScenario::Patu, 0.4f);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(8, 1), f.tex, FilterMode::Trilinear, 0);
    EXPECT_EQ(tu.stats().trilinear_samples, 4u);
    EXPECT_EQ(tu.stats().af_candidate_pixels, 0u);
}

TEST(TexUnitTest, PartialCoverageProcessesOnlyCoveredPixels)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    QuadFragment q = quadWithAniso(1, 1);
    q.coverage = 0x5; // Pixels 0 and 2.
    tu.processQuad(q, f.tex, FilterMode::Anisotropic, 0);
    EXPECT_EQ(tu.stats().pixels, 2u);
}

TEST(TexUnitTest, ColorsMatchStandaloneSamplerForBaseline)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    QuadFragment q = quadWithAniso(4, 1);
    QuadFilterResult r = tu.processQuad(q, f.tex,
                                        FilterMode::Anisotropic, 0);

    TextureSampler s(f.tex);
    AnisotropyInfo info = s.computeAnisotropy(q.duvdx, q.duvdy, 16);
    FilterResult expect = s.filterAnisotropic(q.uv[0], info);
    EXPECT_NEAR(r.color[0].r, expect.color.r, 1e-5f);
    EXPECT_NEAR(r.color[0].g, expect.color.g, 1e-5f);
}

TEST(TexUnitTest, ApproximatedColorIsTrilinearAtChosenLod)
{
    Fixture f(DesignScenario::Patu, 0.4f);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    QuadFragment q = quadWithAniso(2, 1); // Stage-1 approximation.
    QuadFilterResult r = tu.processQuad(q, f.tex,
                                        FilterMode::Anisotropic, 0);

    TextureSampler s(f.tex);
    AnisotropyInfo info = s.computeAnisotropy(q.duvdx, q.duvdy, 16);
    // PATU uses AF's LOD for approximated pixels.
    FilterResult expect = s.filterTrilinear(q.uv[0], info.lodAF);
    EXPECT_NEAR(r.color[0].r, expect.color.r, 1e-5f);
}

TEST(TexUnitTest, StatsResetClearsCounters)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(4, 1), f.tex, FilterMode::Anisotropic,
                   0);
    EXPECT_GT(tu.stats().pixels, 0u);
    tu.resetStats();
    EXPECT_EQ(tu.stats().pixels, 0u);
    EXPECT_EQ(tu.stats().texels, 0u);
    EXPECT_EQ(tu.stats().filter_busy, 0u);
}

TEST(TexUnitTest, MemoryTrafficFlowsThroughTextureClass)
{
    Fixture f(DesignScenario::Baseline);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(8, 1), f.tex, FilterMode::Anisotropic,
                   0);
    EXPECT_GT(f.mem.trafficBytes(TrafficClass::Texture), 0u);
    EXPECT_EQ(f.mem.trafficBytes(TrafficClass::Geometry), 0u);
}

TEST(TexUnitTest, DivergenceCountedWhenPixelsDisagree)
{
    // Craft a quad whose pixels straddle the stage-1 threshold: two pixels
    // with N = 2 (approximated at threshold 0.4) and two with high N.
    // Divergence requires differing uv derivatives per pixel, which a
    // single quad cannot express (shared derivatives); so instead verify
    // the no-divergence case is not counted.
    Fixture f(DesignScenario::Patu, 0.4f);
    TextureUnit tu(f.config, 0, f.mem);
    tu.assertSerialPhase(); // Single-threaded test driver.
    tu.processQuad(quadWithAniso(8, 1), f.tex, FilterMode::Anisotropic,
                   0);
    EXPECT_EQ(tu.stats().divergent_quads, 0u);
    EXPECT_EQ(tu.stats().af_quads, 1u);
}
