/**
 * @file
 * Unit tests for the per-quad footprint memo and the bump arena behind
 * the texel hot path. The memo must return exactly what a fresh fetch
 * would (bit-identical filtering), and divergent footprints — different
 * mip level or corner, as produced by a quad with divergent derivatives —
 * must never alias.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "texture/sampler.hh"

using namespace pargpu;

namespace
{

std::vector<RGBA8>
checker(int w, int h)
{
    std::vector<RGBA8> t;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
            std::uint8_t v = ((x ^ y) & 1) != 0 ? 255 : 0;
            t.push_back({v, static_cast<std::uint8_t>(x * 4),
                         static_cast<std::uint8_t>(y * 4), 255});
        }
    return t;
}

bool
sameColor(const Color4f &a, const Color4f &b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

} // namespace

TEST(FootprintMemoTest, MissesWhenEmptyAndHitsAfterStore)
{
    FootprintMemo memo;
    memo.reset();
    Color4f c[4] = {{0.1f, 0.2f, 0.3f, 1.0f},
                    {0.4f, 0.5f, 0.6f, 1.0f},
                    {0.7f, 0.8f, 0.9f, 1.0f},
                    {0.2f, 0.3f, 0.4f, 1.0f}};
    Addr a[4] = {0x100, 0x104, 0x140, 0x144};
    Color4f oc[4];
    Addr oa[4];
    EXPECT_FALSE(memo.lookup(1, 4, 8, oc, oa));
    memo.store(1, 4, 8, c, a);
    ASSERT_TRUE(memo.lookup(1, 4, 8, oc, oa));
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(sameColor(oc[i], c[i])) << i;
        EXPECT_EQ(oa[i], a[i]) << i;
    }
    EXPECT_EQ(memo.lookups(), 2u);
    EXPECT_EQ(memo.hits(), 1u);
}

TEST(FootprintMemoTest, DivergentFootprintsNeverAlias)
{
    // A quad with divergent derivatives produces footprints that differ in
    // level or corner; none of them may be served from another's entry.
    FootprintMemo memo;
    memo.reset();
    Color4f c[4] = {};
    Addr a[4] = {1, 2, 3, 4};
    memo.store(2, 10, 12, c, a);
    Color4f oc[4];
    Addr oa[4];
    EXPECT_FALSE(memo.lookup(3, 10, 12, oc, oa)); // Level diverges.
    EXPECT_FALSE(memo.lookup(2, 11, 12, oc, oa)); // Corner x diverges.
    EXPECT_FALSE(memo.lookup(2, 10, 13, oc, oa)); // Corner y diverges.
    EXPECT_TRUE(memo.lookup(2, 10, 12, oc, oa));
}

TEST(FootprintMemoTest, SlotCollisionEvictsInsteadOfCorrupting)
{
    // Find two distinct keys that land in the same direct-mapped slot; the
    // second store evicts the first, and the first then misses (it must
    // not return the second key's data).
    FootprintMemo memo;
    memo.reset();
    Color4f c1[4] = {{1, 0, 0, 1}, {1, 0, 0, 1}, {1, 0, 0, 1}, {1, 0, 0, 1}};
    Color4f c2[4] = {{0, 1, 0, 1}, {0, 1, 0, 1}, {0, 1, 0, 1}, {0, 1, 0, 1}};
    Addr a1[4] = {10, 11, 12, 13};
    Addr a2[4] = {20, 21, 22, 23};
    memo.store(0, 0, 0, c1, a1);
    // Scan for a colliding second key by probing: store and check whether
    // the first key got evicted.
    Color4f oc[4];
    Addr oa[4];
    bool found = false;
    for (int x = 1; x < 4096 && !found; ++x) {
        memo.store(0, x, 0, c2, a2);
        if (!memo.lookup(0, 0, 0, oc, oa)) {
            // Evicted: same slot. The evictee misses; the evictor hits
            // with its own data.
            ASSERT_TRUE(memo.lookup(0, x, 0, oc, oa));
            EXPECT_TRUE(sameColor(oc[0], c2[0]));
            EXPECT_EQ(oa[0], a2[0]);
            found = true;
        }
    }
    EXPECT_TRUE(found) << "no slot collision in 4096 keys";
}

TEST(FootprintMemoTest, ResetClearsEntriesAndCounters)
{
    FootprintMemo memo;
    memo.reset();
    Color4f c[4] = {};
    Addr a[4] = {};
    memo.store(0, 1, 1, c, a);
    Color4f oc[4];
    Addr oa[4];
    ASSERT_TRUE(memo.lookup(0, 1, 1, oc, oa));
    memo.reset();
    EXPECT_FALSE(memo.lookup(0, 1, 1, oc, oa));
    EXPECT_EQ(memo.lookups(), 1u);
    EXPECT_EQ(memo.hits(), 0u);
}

TEST(MemoizedFilteringTest, MemoizedTrilinearIsBitIdentical)
{
    TextureMap tex(32, 32, checker(32, 32));
    TextureSampler sampler(tex);
    FootprintMemo memo;
    memo.reset();

    // Sweep uv positions and LODs; the memoized path must reproduce the
    // unmemoized sample exactly even as entries accumulate and hit.
    for (int i = 0; i < 64; ++i) {
        Vec2 uv{(i % 8) / 7.9f, (i / 8) / 7.9f};
        float lod = static_cast<float>(i % 5) * 0.6f;
        TrilinearSample plain = sampler.trilinear(uv, lod);
        TrilinearSample memoized;
        sampler.trilinearInto(uv, sampler.selectLod(lod), memoized, &memo);
        EXPECT_TRUE(sameColor(plain.color, memoized.color)) << i;
        for (int t = 0; t < 8; ++t) {
            EXPECT_EQ(plain.texels[t].addr, memoized.texels[t].addr);
            EXPECT_EQ(plain.texels[t].level, memoized.texels[t].level);
        }
    }
    EXPECT_GT(memo.hits(), 0u); // Overlapping footprints actually shared.
}

TEST(MemoizedFilteringTest, DivergentDerivativesDoNotShareFootprints)
{
    // Two pixels of a quad with wildly different derivatives select
    // different mip levels; their samples must not hit each other's memo
    // entries even when their uv corners coincide numerically.
    TextureMap tex(64, 64, checker(64, 64));
    TextureSampler sampler(tex);
    FootprintMemo memo;
    memo.reset();

    Vec2 uv{0.25f, 0.25f};
    TrilinearSample fine, coarse;
    sampler.trilinearInto(uv, sampler.selectLod(0.0f), fine, &memo);
    std::uint64_t hits_before = memo.hits();
    sampler.trilinearInto(uv, sampler.selectLod(3.0f), coarse, &memo);
    EXPECT_EQ(memo.hits(), hits_before); // Different levels: no sharing.
    EXPECT_NE(fine.texels[0].addr, coarse.texels[0].addr);
    // Each still matches its own unmemoized reference.
    TrilinearSample ref_fine = sampler.trilinear(uv, 0.0f);
    TrilinearSample ref_coarse = sampler.trilinear(uv, 3.0f);
    EXPECT_TRUE(sameColor(fine.color, ref_fine.color));
    EXPECT_TRUE(sameColor(coarse.color, ref_coarse.color));
}

TEST(BumpArenaTest, SpansAreDistinctAndZeroConstructed)
{
    BumpArena arena(1024);
    auto a = arena.allocSpan<TrilinearSample>(4);
    auto b = arena.allocSpan<TrilinearSample>(4);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_NE(a.data(), b.data());
    for (const TrilinearSample &s : a)
        EXPECT_EQ(s.level0, 0); // Default-constructed.
    a[0].level0 = 7;
    EXPECT_EQ(b[0].level0, 0); // No overlap.
}

TEST(BumpArenaTest, ResetReusesMemoryAndOverflowGrows)
{
    BumpArena arena(1024); // Minimum block: a handful of samples.
    auto a = arena.allocSpan<TrilinearSample>(1);
    TrilinearSample *first = a.data();
    // Overflow the first block several times over: must still succeed.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(arena.allocSpan<TrilinearSample>(1).size(), 1u);
    arena.reset();
    auto c = arena.allocSpan<TrilinearSample>(1);
    EXPECT_EQ(c.data(), first); // Bump pointer rewound to block 0.
}
