/**
 * @file
 * Unit tests for the vsync replay model (Section VI's analysis layer).
 */

#include <gtest/gtest.h>

#include "replay/replay.hh"

using namespace pargpu;

TEST(ReplayTest, EmptyInputYieldsEmptyResult)
{
    ReplayResult r = simulateReplay({});
    EXPECT_DOUBLE_EQ(r.avg_fps, 0.0);
    EXPECT_TRUE(r.refreshes_per_frame.empty());
}

TEST(ReplayTest, RefreshIntervalIs16point7MCyclesAt1Ghz)
{
    ReplayConfig cfg;
    EXPECT_NEAR(static_cast<double>(cfg.refreshCycles()), 1e9 / 60.0,
                1.0);
}

TEST(ReplayTest, FastFramesHitSixtyFps)
{
    // GPU budget per refresh: interval - cpu half = ~8.33M cycles.
    std::vector<Cycle> frames(10, 4'000'000);
    ReplayResult r = simulateReplay(frames);
    EXPECT_DOUBLE_EQ(r.avg_fps, 60.0);
    EXPECT_DOUBLE_EQ(r.lag_fraction, 0.0);
}

TEST(ReplayTest, SlowFrameMissesRefresh)
{
    // 12M GPU cycles + 8.33M CPU > one 16.7M interval: takes 2 refreshes.
    std::vector<Cycle> frames(10, 12'000'000);
    ReplayResult r = simulateReplay(frames);
    EXPECT_DOUBLE_EQ(r.avg_fps, 30.0);
    EXPECT_DOUBLE_EQ(r.lag_fraction, 1.0);
    for (int refreshes : r.refreshes_per_frame)
        EXPECT_EQ(refreshes, 2);
}

TEST(ReplayTest, MixedFramesAverageBetween)
{
    std::vector<Cycle> frames = {4'000'000, 12'000'000};
    ReplayResult r = simulateReplay(frames);
    EXPECT_DOUBLE_EQ(r.avg_fps, 45.0); // (60 + 30) / 2.
    EXPECT_DOUBLE_EQ(r.min_fps, 30.0);
    EXPECT_DOUBLE_EQ(r.max_fps, 60.0);
    EXPECT_DOUBLE_EQ(r.lag_fraction, 0.5);
}

TEST(ReplayTest, VerySlowFrameTakesManyRefreshes)
{
    std::vector<Cycle> frames = {100'000'000};
    ReplayResult r = simulateReplay(frames);
    ASSERT_EQ(r.refreshes_per_frame.size(), 1u);
    // (8.33M + 100M) / 16.67M -> 7 refreshes.
    EXPECT_EQ(r.refreshes_per_frame[0], 7);
}

TEST(ReplayTest, CustomRefreshRateRespected)
{
    ReplayConfig cfg;
    cfg.refresh_hz = 120.0;
    std::vector<Cycle> frames(4, 1'000'000);
    ReplayResult r = simulateReplay(frames, cfg);
    EXPECT_DOUBLE_EQ(r.avg_fps, 120.0);
}

TEST(ReplayTest, FasterGpuImprovesFps)
{
    std::vector<Cycle> slow(8, 20'000'000);
    std::vector<Cycle> fast(8, 15'000'000);
    EXPECT_GE(simulateReplay(fast).avg_fps,
              simulateReplay(slow).avg_fps);
}
