/**
 * @file
 * Unit tests for the experiment runner (src/harness).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace pargpu;

namespace
{

const GameTrace &
tinyTrace()
{
    static GameTrace t = buildGameTrace(GameId::Wolf, 160, 120, 2);
    return t;
}

} // namespace

TEST(HarnessTest, MakeGpuConfigTransfersKnobs)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::AfSsimNTxds;
    cfg.threshold = 0.7f;
    cfg.tc_scale = 2;
    cfg.llc_scale = 4;
    cfg.max_aniso = 8;
    GpuConfig g = makeGpuConfig(cfg);
    EXPECT_EQ(g.patu.scenario, DesignScenario::AfSsimNTxds);
    EXPECT_FLOAT_EQ(g.patu.threshold, 0.7f);
    EXPECT_EQ(g.mem.tc_scale, 2u);
    EXPECT_EQ(g.mem.llc_scale, 4u);
    EXPECT_EQ(g.max_aniso, 8);
    EXPECT_EQ(g.patu.max_aniso, 8);
}

TEST(HarnessTest, RunProducesOneResultPerFrame)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    RunResult r = runTrace(tinyTrace(), cfg);
    EXPECT_EQ(r.frames.size(), 2u);
    EXPECT_EQ(r.images.size(), 2u);
    EXPECT_GT(r.avg_cycles, 0.0);
    EXPECT_GT(r.total_energy_nj, 0.0);
    EXPECT_GT(r.avg_power_w, 0.0);
}

TEST(HarnessTest, KeepImagesFalseSkipsImages)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    cfg.keep_images = false;
    RunResult r = runTrace(tinyTrace(), cfg);
    EXPECT_TRUE(r.images.empty());
    EXPECT_EQ(r.frames.size(), 2u);
}

TEST(HarnessTest, FrameCyclesMatchesStats)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    RunResult r = runTrace(tinyTrace(), cfg);
    std::vector<Cycle> c = frameCycles(r);
    ASSERT_EQ(c.size(), r.frames.size());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c[i], r.frames[i].total_cycles);
}

TEST(HarnessTest, SumOverAccumulatesField)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    RunResult r = runTrace(tinyTrace(), cfg);
    double total = sumOver(r.frames, &FrameStats::pixels_shaded);
    double manual = 0.0;
    for (const FrameStats &f : r.frames)
        manual += static_cast<double>(f.pixels_shaded);
    EXPECT_DOUBLE_EQ(total, manual);
    EXPECT_GT(total, 0.0);
}

TEST(HarnessTest, MssimAgainstSelfIsOne)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    RunResult r = runTrace(tinyTrace(), cfg);
    EXPECT_NEAR(r.mssimAgainst(r.images), 1.0, 1e-9);
}

TEST(HarnessDeathTest, MssimWithoutImagesFatal)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    cfg.keep_images = false;
    RunResult r = runTrace(tinyTrace(), cfg);
    RunResult ref = runTrace(tinyTrace(), RunConfig{});
    EXPECT_EXIT(r.mssimAgainst(ref.images), testing::ExitedWithCode(1),
                "unavailable");
}

TEST(HarnessTest, RunsAreReproducible)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    RunResult a = runTrace(tinyTrace(), cfg);
    RunResult b = runTrace(tinyTrace(), cfg);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        EXPECT_EQ(a.frames[i].total_cycles, b.frames[i].total_cycles);
        EXPECT_EQ(a.frames[i].texels, b.frames[i].texels);
    }
    EXPECT_DOUBLE_EQ(a.total_energy_nj, b.total_energy_nj);
}
