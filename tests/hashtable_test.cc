/**
 * @file
 * Unit tests for PATU's 16-entry texel-address hash table (Fig. 14,
 * component 2).
 */

#include <gtest/gtest.h>

#include "core/hashtable.hh"

#include <cmath>

using namespace pargpu;

namespace
{

TexelAddrSet
set8(Addr base)
{
    TexelAddrSet s;
    for (int i = 0; i < 8; ++i)
        s[i] = base + static_cast<Addr>(i) * 4;
    return s;
}

} // namespace

TEST(HashTableTest, EntryBitWidthMatchesPaper)
{
    // Section V-D: (8 x 32) + 4 = 260 bits per entry.
    EXPECT_EQ(TexelAddressTable::kEntryBits, 260u);
    EXPECT_EQ(TexelAddressTable::kEntries, 16);
}

TEST(HashTableTest, FirstInsertIsMiss)
{
    TexelAddressTable t;
    EXPECT_FALSE(t.insert(set8(0x100)));
    EXPECT_EQ(t.distinctSets(), 1);
    EXPECT_EQ(t.samplesInserted(), 1);
}

TEST(HashTableTest, DuplicateInsertHits)
{
    TexelAddressTable t;
    t.insert(set8(0x100));
    EXPECT_TRUE(t.insert(set8(0x100)));
    EXPECT_EQ(t.distinctSets(), 1);
    EXPECT_EQ(t.samplesInserted(), 2);
}

TEST(HashTableTest, PartialOverlapIsNotAMatch)
{
    // The hardware compares the full 8-address set; sharing 7 of 8 texels
    // is a miss.
    TexelAddressTable t;
    TexelAddrSet a = set8(0x100);
    TexelAddrSet b = a;
    b[7] += 4;
    t.insert(a);
    EXPECT_FALSE(t.insert(b));
    EXPECT_EQ(t.distinctSets(), 2);
}

TEST(HashTableTest, ProbabilityVectorMatchesPaperExample)
{
    // Fig. 11: five samples; three share one set, the other two are
    // distinct -> P = {0.6, 0.2, 0.2}.
    TexelAddressTable t;
    t.insert(set8(0x100));
    t.insert(set8(0x100));
    t.insert(set8(0x100));
    t.insert(set8(0x200));
    t.insert(set8(0x300));
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_NEAR(p[0], 0.6f, 1e-6f);
    EXPECT_NEAR(p[1], 0.2f, 1e-6f);
    EXPECT_NEAR(p[2], 0.2f, 1e-6f);
}

TEST(HashTableTest, ProbabilityVectorSumsToOne)
{
    TexelAddressTable t;
    for (int i = 0; i < 7; ++i)
        t.insert(set8(0x100 * (i % 3)));
    float sum = 0.0f;
    for (float p : t.probabilityVector())
        sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(HashTableTest, EmptyTableYieldsEmptyVector)
{
    TexelAddressTable t;
    EXPECT_TRUE(t.probabilityVector().empty());
}

TEST(HashTableTest, ResetClearsForNextPixel)
{
    TexelAddressTable t;
    t.insert(set8(0x100));
    t.insert(set8(0x200));
    t.reset();
    EXPECT_EQ(t.distinctSets(), 0);
    EXPECT_EQ(t.samplesInserted(), 0);
    // Previously stored sets are gone.
    EXPECT_FALSE(t.insert(set8(0x100)));
}

TEST(HashTableTest, HoldsMaxAnisoDistinctSets)
{
    // 16 entries == the max AF level: a pixel can never overflow it.
    TexelAddressTable t;
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(t.insert(set8(0x1000 * (i + 1))));
    EXPECT_EQ(t.distinctSets(), 16);
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 16u);
    for (float pi : p)
        EXPECT_NEAR(pi, 1.0f / 16.0f, 1e-6f);
}

TEST(HashTableTest, TopToBottomSearchFindsEarliestEntry)
{
    TexelAddressTable t;
    t.insert(set8(0xA00));
    t.insert(set8(0xB00));
    t.insert(set8(0xA00)); // Should hit entry 0, not allocate.
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0], 2.0f / 3.0f, 1e-6f);
    EXPECT_NEAR(p[1], 1.0f / 3.0f, 1e-6f);
}

TEST(HashTableTest, OverflowedSamplesCountAsSingletons)
{
    // An undersized (ablation) table must stay conservative: samples it
    // cannot store contribute maximum-entropy singleton events.
    TexelAddressTable t(2);
    EXPECT_EQ(t.capacity(), 2);
    t.insert(set8(0x100));
    t.insert(set8(0x200));
    t.insert(set8(0x300)); // Dropped (table full).
    t.insert(set8(0x400)); // Dropped.
    std::vector<float> p = t.probabilityVector();
    ASSERT_EQ(p.size(), 4u);
    float sum = 0.0f;
    for (float pi : p)
        sum += pi;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    for (float pi : p)
        EXPECT_NEAR(pi, 0.25f, 1e-6f);
}

TEST(HashTableTest, OverflowNeverRaisesTxdsAboveFullTable)
{
    // For the same insert stream, a smaller table's distribution must
    // have entropy >= the full table's (conservative direction).
    for (int small_cap : {2, 4, 8}) {
        TexelAddressTable small(small_cap), full(16);
        // Stream: 16 samples over 6 distinct sets with skewed counts.
        const int plan[16] = {0, 0, 0, 0, 0, 1, 1, 1, 2, 2,
                              3, 3, 4, 4, 5, 5};
        for (int s : plan) {
            small.insert(set8(0x100 * (s + 1)));
            full.insert(set8(0x100 * (s + 1)));
        }
        auto entropy = [](const std::vector<float> &p) {
            float e = 0.0f;
            for (float pi : p)
                if (pi > 0.0f)
                    e -= pi * std::log2(pi);
            return e;
        };
        EXPECT_GE(entropy(small.probabilityVector()) + 1e-5f,
                  entropy(full.probabilityVector()))
            << "capacity " << small_cap;
    }
}
