/**
 * @file
 * End-to-end tests for the pargpu_serve request loop (ServeLoop over
 * string streams): framing, every protocol op, typed error responses,
 * the streamed sweep event sequence, and byte-identical replays of a
 * full request stream.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/serve.hh"

using namespace pargpu;

namespace
{

/** Frame a sequence of JSON payloads into one request stream. */
std::string
frameAll(const std::vector<std::string> &payloads)
{
    std::ostringstream out;
    for (const std::string &p : payloads)
        ServeLoop::writeFrame(out, p);
    return out.str();
}

/** Run one server over @p requests; returns (exit code, responses). */
std::pair<int, std::vector<Json>>
serve(const std::vector<std::string> &requests,
      unsigned job_workers = 0)
{
    std::istringstream in(frameAll(requests));
    std::ostringstream out;
    ServeLoop loop(in, out, ServeOptions{job_workers});
    int rc = loop.run();

    std::vector<Json> responses;
    std::istringstream replies(out.str());
    std::string payload;
    std::string error;
    while (ServeLoop::readFrame(replies, payload, &error)) {
        Json r = Json::parse(payload, &error);
        EXPECT_TRUE(r.isObject()) << error;
        responses.push_back(std::move(r));
    }
    EXPECT_TRUE(error.empty()) << error;
    return {rc, std::move(responses)};
}

/** The standard tiny-workload load request the tests share. */
std::string
loadRequest()
{
    return R"({"op":"load","key":"w","game":"wolf",)"
           R"("width":64,"height":48,"frames":2})";
}

} // namespace

TEST(ServeFramingTest, FramesRoundTripThroughReadAndWrite)
{
    std::ostringstream out;
    ServeLoop::writeFrame(out, "hello");
    ServeLoop::writeFrame(out, "");
    ServeLoop::writeFrame(out, "{\"op\":\"ping\"}");
    EXPECT_EQ(out.str().substr(0, 7), "5\nhello");

    std::istringstream in(out.str());
    std::string payload;
    std::string error;
    ASSERT_TRUE(ServeLoop::readFrame(in, payload, &error));
    EXPECT_EQ(payload, "hello");
    ASSERT_TRUE(ServeLoop::readFrame(in, payload, &error));
    EXPECT_EQ(payload, "");
    ASSERT_TRUE(ServeLoop::readFrame(in, payload, &error));
    EXPECT_EQ(payload, "{\"op\":\"ping\"}");
    // Clean EOF: false with no error text.
    EXPECT_FALSE(ServeLoop::readFrame(in, payload, &error));
    EXPECT_TRUE(error.empty());
}

TEST(ServeFramingTest, MalformedHeaderIsAnIoErrorAndStopsTheLoop)
{
    std::istringstream in("not-a-length\n{}");
    std::ostringstream out;
    ServeLoop loop(in, out);
    EXPECT_EQ(loop.run(), 1);

    std::istringstream replies(out.str());
    std::string payload;
    std::string error;
    ASSERT_TRUE(ServeLoop::readFrame(replies, payload, &error));
    Json r = Json::parse(payload, &error);
    EXPECT_EQ(r["status"].str(), "io_error");
    EXPECT_NE(r["message"].str().find("malformed frame header"),
              std::string::npos);
}

TEST(ServeFramingTest, TruncatedPayloadIsAnIoError)
{
    std::istringstream in("100\n{\"op\":\"ping\"}");
    std::ostringstream out;
    ServeLoop loop(in, out);
    EXPECT_EQ(loop.run(), 1);
    EXPECT_NE(out.str().find("truncated frame payload"),
              std::string::npos);
}

TEST(ServeProtocolTest, PingEchoesIdAndReportsSchema)
{
    auto [rc, responses] =
        serve({R"({"op":"ping","id":"client-1"})"});
    EXPECT_EQ(rc, 0); // Clean EOF after the last request.
    ASSERT_EQ(responses.size(), 1u);
    const Json &r = responses[0];
    EXPECT_EQ(r["status"].str(), "ok");
    EXPECT_EQ(r["type"].str(), "pong");
    EXPECT_EQ(r["schema"].str(), "pargpu-serve");
    EXPECT_EQ(r["schema_version"].number(), 1.0);
    EXPECT_EQ(r["id"].str(), "client-1");
}

TEST(ServeProtocolTest, BadJsonAndUnknownOpsAreTypedNotFatal)
{
    auto [rc, responses] = serve({
        "this is not json",
        R"({"op":"frobnicate"})",
        R"({"op":"ping"})",
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0]["status"].str(), "invalid_request");
    EXPECT_NE(responses[0]["message"].str().find("bad JSON"),
              std::string::npos);
    EXPECT_EQ(responses[1]["status"].str(), "invalid_request");
    EXPECT_NE(responses[1]["message"].str().find("unknown op"),
              std::string::npos);
    // The loop keeps serving after request-level errors.
    EXPECT_EQ(responses[2]["type"].str(), "pong");
}

TEST(ServeProtocolTest, LoadThenTracesListsTheAsset)
{
    auto [rc, responses] = serve({
        loadRequest(),
        loadRequest(), // Duplicate key is a typed rejection.
        R"({"op":"traces"})",
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0]["status"].str(), "ok");
    EXPECT_EQ(responses[1]["status"].str(), "duplicate_key");
    const Json &traces = responses[2]["traces"];
    ASSERT_TRUE(traces.isArray());
    ASSERT_EQ(traces.items().size(), 1u);
    EXPECT_EQ(traces[0]["key"].str(), "w");
    EXPECT_EQ(traces[0]["width"].number(), 64.0);
    EXPECT_EQ(traces[0]["height"].number(), 48.0);
    EXPECT_EQ(traces[0]["frames"].number(), 2.0);
}

TEST(ServeProtocolTest, RunValidatesConfigWithTypedReasons)
{
    auto [rc, responses] = serve({
        loadRequest(),
        // Unknown config member: the server never guesses.
        R"({"op":"run","trace":"w","config":{"treshold":0.5}})",
        // Known member, out-of-range value: InvalidConfig with the
        // configErrorMessage() text.
        R"({"op":"run","trace":"w","config":{"threshold":1.5}})",
        // Unknown trace key.
        R"({"op":"run","trace":"nope"})",
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_EQ(responses[1]["status"].str(), "invalid_request");
    EXPECT_NE(responses[1]["message"].str().find(
                  "config.treshold: unknown member"),
              std::string::npos);
    EXPECT_EQ(responses[2]["status"].str(), "invalid_config");
    EXPECT_NE(responses[2]["message"].str().find(
                  configErrorMessage(ConfigError::BadThreshold)),
              std::string::npos);
    EXPECT_EQ(responses[3]["status"].str(), "unknown_trace");
}

TEST(ServeProtocolTest, RunReturnsTheVersionedMetricsDocument)
{
    auto [rc, responses] = serve({
        loadRequest(),
        R"({"op":"run","trace":"w",)"
        R"("config":{"scenario":"patu","keep_images":false}})",
        R"({"op":"status"})",
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 3u);
    const Json &metrics = responses[1]["metrics"];
    ASSERT_TRUE(metrics.isObject());
    EXPECT_EQ(metrics["schema"].str(), "pargpu-metrics");
    EXPECT_EQ(metrics["run"]["workload"].str(), "w");
    EXPECT_EQ(metrics["run"]["scenario"].str(), "patu");
    EXPECT_TRUE(metrics["aggregate"].has("avg_cycles"));
    EXPECT_EQ(metrics["frames"].items().size(), 2u);
    EXPECT_EQ(responses[2]["jobs_submitted"].number(), 1.0);
    EXPECT_EQ(responses[2]["jobs_completed"].number(), 1.0);
}

TEST(ServeProtocolTest, SweepStreamsJobEventsThenResults)
{
    auto [rc, responses] = serve(
        {
            loadRequest(),
            R"({"op":"sweep","trace":"w","id":"s1","configs":[)"
            R"({"scenario":"baseline","keep_images":false},)"
            R"({"scenario":"patu","keep_images":false},)"
            R"({"scenario":"ntxds","keep_images":false}]})",
        },
        /*job_workers=*/3);
    EXPECT_EQ(rc, 0);
    // load ack + 3 job_done events + 1 final results frame.
    ASSERT_EQ(responses.size(), 5u);
    for (std::size_t i = 0; i < 3; ++i) {
        const Json &event = responses[1 + i];
        EXPECT_EQ(event["status"].str(), "ok");
        EXPECT_EQ(event["event"].str(), "job_done");
        EXPECT_EQ(event["index"].number(), static_cast<double>(i));
        EXPECT_EQ(event["id"].str(), "s1");
        EXPECT_EQ(event["snapshot"]["state"].str(), "done");
        EXPECT_EQ(event["snapshot"]["frames_completed"].number(),
                  event["snapshot"]["frames_total"].number());
    }
    const Json &done = responses[4];
    EXPECT_EQ(done["event"].str(), "done");
    EXPECT_EQ(done["id"].str(), "s1");
    ASSERT_EQ(done["results"].items().size(), 3u);
    EXPECT_EQ(done["results"][0]["run"]["scenario"].str(), "baseline");
    EXPECT_EQ(done["results"][1]["run"]["scenario"].str(), "patu");
    EXPECT_EQ(done["results"][2]["run"]["scenario"].str(), "ntxds");
}

TEST(ServeProtocolTest, SweepRejectionsNameTheOffendingConfig)
{
    auto [rc, responses] = serve({
        loadRequest(),
        R"({"op":"sweep","trace":"w","configs":[)"
        R"({"scenario":"baseline"},{"threshold":"high"}]})",
        R"({"op":"sweep","trace":"w","configs":[)"
        R"({"scenario":"baseline"},{"tc_scale":7}]})",
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[1]["status"].str(), "invalid_request");
    EXPECT_NE(responses[1]["message"].str().find("configs[1]"),
              std::string::npos);
    // Range failures surface at submission, still indexed.
    EXPECT_EQ(responses[2]["status"].str(), "invalid_config");
    EXPECT_NE(responses[2]["message"].str().find("configs[1]"),
              std::string::npos);
}

TEST(ServeProtocolTest, ShutdownStopsBeforeLaterRequests)
{
    auto [rc, responses] = serve({
        R"({"op":"shutdown","id":"bye-now"})",
        R"({"op":"ping"})", // Never served.
    });
    EXPECT_EQ(rc, 0);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0]["type"].str(), "bye");
    EXPECT_EQ(responses[0]["id"].str(), "bye-now");
}

TEST(ServeDeterminismTest, IdenticalRequestStreamsYieldIdenticalBytes)
{
    // The acceptance property behind the protocol: with a deterministic
    // simulator, the full response stream — including the concurrently
    // executed sweep — is a pure function of the request stream.
    const std::string requests = frameAll({
        loadRequest(),
        R"({"op":"sweep","trace":"w","id":"rep","configs":[)"
        R"({"scenario":"baseline","keep_images":false},)"
        R"({"scenario":"patu","threshold":0.8,"keep_images":false}]})",
        R"({"op":"status"})",
        R"({"op":"shutdown"})",
    });

    std::string first;
    for (int round = 0; round < 2; ++round) {
        std::istringstream in(requests);
        std::ostringstream out;
        ServeLoop loop(in, out, ServeOptions{2});
        ASSERT_EQ(loop.run(), 0);
        if (round == 0)
            first = out.str();
        else
            EXPECT_EQ(out.str(), first);
    }
    EXPECT_FALSE(first.empty());
}
