/**
 * @file
 * Unit tests for the stats registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace pargpu;

TEST(StatRegistryTest, CountersStartAtZero)
{
    StatRegistry s;
    EXPECT_EQ(s.counter("never.touched"), 0u);
    EXPECT_FALSE(s.hasCounter("never.touched"));
}

TEST(StatRegistryTest, IncrementAccumulates)
{
    StatRegistry s;
    s.inc("a");
    s.inc("a", 5);
    EXPECT_EQ(s.counter("a"), 6u);
    EXPECT_TRUE(s.hasCounter("a"));
}

TEST(StatRegistryTest, ScalarsSetAndRead)
{
    StatRegistry s;
    s.set("x", 3.25);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 3.25);
    s.set("x", -1.0);
    EXPECT_DOUBLE_EQ(s.scalar("x"), -1.0);
    EXPECT_DOUBLE_EQ(s.scalar("missing"), 0.0);
}

TEST(StatRegistryTest, ResetClearsEverything)
{
    StatRegistry s;
    s.inc("a", 10);
    s.set("b", 1.0);
    s.reset();
    EXPECT_EQ(s.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("b"), 0.0);
    EXPECT_FALSE(s.hasCounter("a"));
}

TEST(StatRegistryTest, DumpIsSortedByName)
{
    StatRegistry s;
    s.inc("z.last", 1);
    s.inc("a.first", 2);
    std::ostringstream os;
    s.dump(os);
    std::string out = os.str();
    auto pos_a = out.find("a.first");
    auto pos_z = out.find("z.last");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_z, std::string::npos);
    EXPECT_LT(pos_a, pos_z);
}
