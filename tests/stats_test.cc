/**
 * @file
 * Unit tests for the stats registry.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"

using namespace pargpu;

TEST(StatRegistryTest, CountersStartAtZero)
{
    StatRegistry s;
    EXPECT_EQ(s.counter("never.touched"), 0u);
    EXPECT_FALSE(s.hasCounter("never.touched"));
}

TEST(StatRegistryTest, IncrementAccumulates)
{
    StatRegistry s;
    s.inc("a");
    s.inc("a", 5);
    EXPECT_EQ(s.counter("a"), 6u);
    EXPECT_TRUE(s.hasCounter("a"));
}

TEST(StatRegistryTest, ScalarsSetAndRead)
{
    StatRegistry s;
    s.set("x", 3.25);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 3.25);
    s.set("x", -1.0);
    EXPECT_DOUBLE_EQ(s.scalar("x"), -1.0);
    EXPECT_DOUBLE_EQ(s.scalar("missing"), 0.0);
}

TEST(StatRegistryTest, ResetClearsEverything)
{
    StatRegistry s;
    s.inc("a", 10);
    s.set("b", 1.0);
    s.reset();
    EXPECT_EQ(s.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("b"), 0.0);
    EXPECT_FALSE(s.hasCounter("a"));
}

TEST(StatRegistryTest, DumpIsSortedByName)
{
    StatRegistry s;
    s.inc("z.last", 1);
    s.inc("a.first", 2);
    std::ostringstream os;
    s.dump(os);
    std::string out = os.str();
    auto pos_a = out.find("a.first");
    auto pos_z = out.find("z.last");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_z, std::string::npos);
    EXPECT_LT(pos_a, pos_z);
}

TEST(HistogramTest, SummaryOfKnownSamples)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.observe(static_cast<double>(v));
    HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.p50, 50.0); // Nearest-rank over 1..100.
    EXPECT_DOUBLE_EQ(s.p95, 95.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(HistogramTest, EmptySummaryIsAllZero)
{
    HistogramSummary s = Histogram{}.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.sum, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsItsOwnQuantiles)
{
    Histogram h;
    h.observe(7.5);
    HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.p50, 7.5);
    EXPECT_DOUBLE_EQ(s.p95, 7.5);
}

TEST(StatRegistryTest, HistogramsObserveAndSummarize)
{
    StatRegistry s;
    s.observe("frame.time", 10.0);
    s.observe("frame.time", 30.0);
    s.observe("frame.time", 20.0);
    HistogramSummary h = s.histogram("frame.time");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.min, 10.0);
    EXPECT_DOUBLE_EQ(h.max, 30.0);
    EXPECT_DOUBLE_EQ(h.p50, 20.0);
    EXPECT_EQ(s.histogram("never.observed").count, 0u);
}

TEST(StatRegistryTest, SnapshotIsDetachedCopy)
{
    StatRegistry s;
    s.inc("c", 3);
    s.set("v", 1.5);
    s.observe("h", 2.0);
    StatSnapshot snap = s.snapshot();
    s.inc("c", 100);
    EXPECT_EQ(snap.counters.at("c"), 3u);
    EXPECT_DOUBLE_EQ(snap.scalars.at("v"), 1.5);
    EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(StatRegistryTest, SnapshotJsonRoundTrips)
{
    StatRegistry s;
    s.inc("mem.dram.reads", 42);
    s.set("mem.l1.hit_rate", 0.75);
    s.observe("frame.cycles", 100.0);
    s.observe("frame.cycles", 200.0);

    Json j = s.snapshot().toJson();
    std::string error;
    Json reparsed = Json::parse(j.dump(2), &error);
    ASSERT_TRUE(reparsed.isObject()) << error;

    StatSnapshot back = StatSnapshot::fromJson(reparsed);
    EXPECT_EQ(back.counters.at("mem.dram.reads"), 42u);
    EXPECT_DOUBLE_EQ(back.scalars.at("mem.l1.hit_rate"), 0.75);
    const HistogramSummary &h = back.histograms.at("frame.cycles");
    EXPECT_EQ(h.count, 2u);
    EXPECT_DOUBLE_EQ(h.sum, 300.0);
    EXPECT_DOUBLE_EQ(h.min, 100.0);
    EXPECT_DOUBLE_EQ(h.max, 200.0);
}

TEST(StatRegistryTest, DumpTreeGroupsByDottedSegments)
{
    StatRegistry s;
    s.inc("mem.dram.reads", 42);
    s.inc("mem.dram.row_hits", 7);
    s.inc("sim.frames", 3);
    std::ostringstream os;
    s.dumpTree(os);
    std::string out = os.str();
    // Parent segments appear once, leaves are indented beneath them.
    EXPECT_NE(out.find("mem"), std::string::npos);
    EXPECT_NE(out.find("dram"), std::string::npos);
    EXPECT_NE(out.find("reads 42"), std::string::npos);
    EXPECT_NE(out.find("row_hits 7"), std::string::npos);
    EXPECT_NE(out.find("frames 3"), std::string::npos);
    EXPECT_EQ(out.find("mem.dram"), std::string::npos);
}

TEST(StatRegistryTest, ConcurrentIncrementsDoNotLoseUpdates)
{
    StatRegistry s;
    constexpr int kThreads = 4;
    constexpr int kIters = 5000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&s] {
            for (int i = 0; i < kIters; ++i) {
                s.inc("shared.counter");
                s.observe("shared.hist", 1.0);
            }
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(s.counter("shared.counter"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(s.histogram("shared.hist").count,
              static_cast<std::uint64_t>(kThreads) * kIters);
}
