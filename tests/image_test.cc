/**
 * @file
 * Unit tests for the Image class and PPM I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/image.hh"

using namespace pargpu;

TEST(ImageTest, ConstructionFillsWithColor)
{
    Image img(4, 3, Color4f{0.5f, 0.25f, 0.75f, 1.0f});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_FALSE(img.empty());
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 4; ++x) {
            EXPECT_FLOAT_EQ(img.at(x, y).r, 0.5f);
            EXPECT_FLOAT_EQ(img.at(x, y).g, 0.25f);
        }
    }
}

TEST(ImageTest, DefaultImageIsEmpty)
{
    Image img;
    EXPECT_TRUE(img.empty());
    EXPECT_EQ(img.width(), 0);
}

TEST(ImageTest, PixelWritesStick)
{
    Image img(2, 2);
    img.at(1, 0) = Color4f{1, 0, 0, 1};
    EXPECT_FLOAT_EQ(img.at(1, 0).r, 1.0f);
    EXPECT_FLOAT_EQ(img.at(0, 0).r, 0.0f);
}

TEST(ImageTest, LumaPlaneMatchesPerPixelLuma)
{
    Image img(2, 1);
    img.at(0, 0) = Color4f{1, 0, 0, 1};
    img.at(1, 0) = Color4f{0, 1, 0, 1};
    std::vector<float> luma = img.lumaPlane();
    ASSERT_EQ(luma.size(), 2u);
    EXPECT_NEAR(luma[0], 0.299f, 1e-6f);
    EXPECT_NEAR(luma[1], 0.587f, 1e-6f);
}

TEST(ImageTest, PpmRoundTrip)
{
    Image img(8, 5);
    for (int y = 0; y < 5; ++y)
        for (int x = 0; x < 8; ++x)
            img.at(x, y) = Color4f{x / 8.0f, y / 5.0f, 0.5f, 1.0f};

    const std::string path = "image_test_roundtrip.ppm";
    ASSERT_TRUE(img.writePPM(path));
    Image back = Image::readPPM(path);
    std::remove(path.c_str());

    ASSERT_FALSE(back.empty());
    ASSERT_EQ(back.width(), 8);
    ASSERT_EQ(back.height(), 5);
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 8; ++x) {
            // 8-bit quantization error bound.
            EXPECT_NEAR(back.at(x, y).r, img.at(x, y).r, 1.0f / 255.0f);
            EXPECT_NEAR(back.at(x, y).g, img.at(x, y).g, 1.0f / 255.0f);
            EXPECT_NEAR(back.at(x, y).b, img.at(x, y).b, 1.0f / 255.0f);
        }
    }
}

TEST(ImageTest, ReadMissingFileReturnsEmpty)
{
    Image img = Image::readPPM("/definitely/not/a/file.ppm");
    EXPECT_TRUE(img.empty());
}

TEST(ImageTest, ReadRejectsNonPpm)
{
    const std::string path = "image_test_garbage.ppm";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a ppm at all", f);
    std::fclose(f);
    Image img = Image::readPPM(path);
    std::remove(path.c_str());
    EXPECT_TRUE(img.empty());
}
