/**
 * @file
 * Unit tests for the vector/matrix math substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/vec.hh"

using namespace pargpu;

TEST(Vec2Test, ArithmeticOperators)
{
    Vec2 a{1.0f, 2.0f}, b{3.0f, -4.0f};
    Vec2 s = a + b;
    EXPECT_FLOAT_EQ(s.x, 4.0f);
    EXPECT_FLOAT_EQ(s.y, -2.0f);
    Vec2 d = a - b;
    EXPECT_FLOAT_EQ(d.x, -2.0f);
    EXPECT_FLOAT_EQ(d.y, 6.0f);
    Vec2 m = a * 2.0f;
    EXPECT_FLOAT_EQ(m.x, 2.0f);
    EXPECT_FLOAT_EQ(m.y, 4.0f);
}

TEST(Vec2Test, DotAndLength)
{
    Vec2 a{3.0f, 4.0f};
    EXPECT_FLOAT_EQ(a.dot(a), 25.0f);
    EXPECT_FLOAT_EQ(a.length(), 5.0f);
}

TEST(Vec3Test, CrossProductOrthogonality)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0};
    Vec3 z = x.cross(y);
    EXPECT_FLOAT_EQ(z.x, 0.0f);
    EXPECT_FLOAT_EQ(z.y, 0.0f);
    EXPECT_FLOAT_EQ(z.z, 1.0f);
}

TEST(Vec3Test, NormalizedHasUnitLength)
{
    Vec3 v{2.0f, -3.0f, 6.0f};
    EXPECT_NEAR(v.normalized().length(), 1.0f, 1e-6f);
}

TEST(Vec3Test, NormalizedZeroVectorIsZero)
{
    Vec3 v{};
    Vec3 n = v.normalized();
    EXPECT_FLOAT_EQ(n.x, 0.0f);
    EXPECT_FLOAT_EQ(n.y, 0.0f);
    EXPECT_FLOAT_EQ(n.z, 0.0f);
}

TEST(Mat4Test, IdentityPreservesVector)
{
    Mat4 id = Mat4::identity();
    Vec4 v{1.0f, -2.0f, 3.0f, 1.0f};
    Vec4 r = id * v;
    EXPECT_FLOAT_EQ(r.x, v.x);
    EXPECT_FLOAT_EQ(r.y, v.y);
    EXPECT_FLOAT_EQ(r.z, v.z);
    EXPECT_FLOAT_EQ(r.w, v.w);
}

TEST(Mat4Test, TranslateMovesPoint)
{
    Mat4 t = Mat4::translate({1, 2, 3});
    Vec4 r = t * Vec4{0, 0, 0, 1};
    EXPECT_FLOAT_EQ(r.x, 1.0f);
    EXPECT_FLOAT_EQ(r.y, 2.0f);
    EXPECT_FLOAT_EQ(r.z, 3.0f);
}

TEST(Mat4Test, TranslateIgnoresDirection)
{
    // w == 0 vectors (directions) must not be translated.
    Mat4 t = Mat4::translate({5, 5, 5});
    Vec4 r = t * Vec4{1, 0, 0, 0};
    EXPECT_FLOAT_EQ(r.x, 1.0f);
    EXPECT_FLOAT_EQ(r.y, 0.0f);
    EXPECT_FLOAT_EQ(r.z, 0.0f);
}

TEST(Mat4Test, MatrixProductComposesTransforms)
{
    Mat4 t = Mat4::translate({1, 0, 0});
    Mat4 s = Mat4::scale({2, 2, 2});
    // (t * s) applies scale first, then translate.
    Vec4 r = (t * s) * Vec4{1, 1, 1, 1};
    EXPECT_FLOAT_EQ(r.x, 3.0f);
    EXPECT_FLOAT_EQ(r.y, 2.0f);
    EXPECT_FLOAT_EQ(r.z, 2.0f);
}

TEST(Mat4Test, RotateYQuarterTurn)
{
    Mat4 r = Mat4::rotateY(3.14159265f / 2.0f);
    Vec4 v = r * Vec4{1, 0, 0, 1};
    EXPECT_NEAR(v.x, 0.0f, 1e-5f);
    EXPECT_NEAR(v.z, -1.0f, 1e-5f);
}

TEST(Mat4Test, PerspectiveMapsNearPlaneToMinusW)
{
    Mat4 p = Mat4::perspective(1.0f, 1.0f, 1.0f, 100.0f);
    // A point on the near plane (z_eye = -near) maps to z_clip = -w_clip.
    Vec4 r = p * Vec4{0, 0, -1.0f, 1};
    EXPECT_NEAR(r.z, -r.w, 1e-5f);
}

TEST(Mat4Test, PerspectiveMapsFarPlaneToPlusW)
{
    Mat4 p = Mat4::perspective(1.0f, 1.0f, 1.0f, 100.0f);
    Vec4 r = p * Vec4{0, 0, -100.0f, 1};
    EXPECT_NEAR(r.z, r.w, 1e-3f);
}

TEST(Mat4Test, LookAtPlacesEyeAtOrigin)
{
    Mat4 v = Mat4::lookAt({5, 3, 8}, {0, 0, 0}, {0, 1, 0});
    Vec4 r = v * Vec4{5, 3, 8, 1};
    EXPECT_NEAR(r.x, 0.0f, 1e-4f);
    EXPECT_NEAR(r.y, 0.0f, 1e-4f);
    EXPECT_NEAR(r.z, 0.0f, 1e-4f);
}

TEST(Mat4Test, LookAtViewsTargetDownNegativeZ)
{
    Mat4 v = Mat4::lookAt({0, 0, 10}, {0, 0, 0}, {0, 1, 0});
    Vec4 r = v * Vec4{0, 0, 0, 1};
    EXPECT_NEAR(r.x, 0.0f, 1e-5f);
    EXPECT_NEAR(r.y, 0.0f, 1e-5f);
    EXPECT_LT(r.z, 0.0f);
}
