/**
 * @file
 * Unit tests for the composed memory system (texture L1 -> LLC -> DRAM).
 */

#include <gtest/gtest.h>

#include "mem/memsys.hh"

using namespace pargpu;

namespace
{

MemSysConfig
defaultConfig()
{
    return MemSysConfig{};
}

} // namespace

TEST(MemSysTest, TextureReadHierarchyLatencyOrdering)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    // Cold: miss everywhere (DRAM latency).
    Cycle cold = mem.read(0, 0x1000, 0, TrafficClass::Texture);
    // Warm in L1.
    Cycle warm = mem.read(0, 0x1000, 0, TrafficClass::Texture);
    EXPECT_LT(warm, cold);
    EXPECT_EQ(warm, mem.config().latencies.l1_hit);
}

TEST(MemSysTest, L2HitSlowerThanL1FasterThanDram)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    Cycle cold = mem.read(0, 0x2000, 0, TrafficClass::Texture);
    // Another cluster misses its own L1 but hits the shared LLC.
    Cycle l2 = mem.read(1, 0x2000, 0, TrafficClass::Texture);
    Cycle l1 = mem.read(1, 0x2000, 0, TrafficClass::Texture);
    EXPECT_LT(l2, cold);
    EXPECT_LT(l1, l2);
}

TEST(MemSysTest, NonTextureTrafficBypassesTextureL1)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0x3000, 0, TrafficClass::Geometry);
    // The texture L1 saw nothing.
    EXPECT_EQ(mem.textureL1(0).accesses(), 0u);
    EXPECT_GT(mem.llc().accesses(), 0u);
}

TEST(MemSysTest, TrafficAccountedPerClass)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0x10000, 0, TrafficClass::Texture);
    mem.read(0, 0x20000, 0, TrafficClass::Geometry);
    mem.write(0x30000, 512, 0, TrafficClass::ColorDepth);
    EXPECT_EQ(mem.trafficBytes(TrafficClass::Texture), 64u);
    EXPECT_EQ(mem.trafficBytes(TrafficClass::Geometry), 64u);
    EXPECT_EQ(mem.trafficBytes(TrafficClass::ColorDepth), 512u);
    EXPECT_EQ(mem.totalTrafficBytes(), 64u + 64 + 512);
}

TEST(MemSysTest, L1HitGeneratesNoDramTraffic)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0x5000, 0, TrafficClass::Texture);
    Bytes after_cold = mem.trafficBytes(TrafficClass::Texture);
    mem.read(0, 0x5000, 100, TrafficClass::Texture);
    EXPECT_EQ(mem.trafficBytes(TrafficClass::Texture), after_cold);
}

TEST(MemSysTest, PerClusterL1sAreIndependent)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0x7000, 0, TrafficClass::Texture);
    EXPECT_EQ(mem.textureL1(0).misses(), 1u);
    EXPECT_EQ(mem.textureL1(1).misses(), 0u);
}

TEST(MemSysTest, ResetClearsCachesAndTraffic)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0x9000, 0, TrafficClass::Texture);
    mem.reset();
    EXPECT_EQ(mem.totalTrafficBytes(), 0u);
    // After reset the same address misses again (traffic reappears).
    mem.read(0, 0x9000, 0, TrafficClass::Texture);
    EXPECT_EQ(mem.trafficBytes(TrafficClass::Texture), 64u);
}

TEST(MemSysTest, ScaleFactorsGrowCaches)
{
    MemSysConfig cfg = defaultConfig();
    cfg.llc_scale = 4;
    cfg.tc_scale = 2;
    MemorySystem mem(cfg);
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    EXPECT_EQ(mem.llc().config().size_bytes, 4u * 128 * 1024);
    EXPECT_EQ(mem.textureL1(0).config().size_bytes, 2u * 16 * 1024);
}

TEST(MemSysTest, ExportStatsPopulatesRegistry)
{
    MemorySystem mem(defaultConfig());
    PhaseGuard serial(mem.serial_phase); // Single-threaded test driver.
    mem.read(0, 0xA000, 0, TrafficClass::Texture);
    mem.read(0, 0xA000, 0, TrafficClass::Texture);
    StatRegistry stats;
    mem.exportStats(stats, "mem");
    EXPECT_EQ(stats.counter("mem.tex_l1.hits"), 1u);
    EXPECT_EQ(stats.counter("mem.tex_l1.misses"), 1u);
    EXPECT_EQ(stats.counter("mem.dram.reads"), 1u);
    EXPECT_EQ(stats.counter("mem.traffic.texture"), 64u);
}
