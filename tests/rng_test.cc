/**
 * @file
 * Unit tests for deterministic random number generation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace pargpu;

TEST(SplitMix64Test, DeterministicForSameSeed)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, FloatInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(SplitMix64Test, FloatRangeRespectsBounds)
{
    SplitMix64 rng(9);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat(-3.0f, 5.0f);
        EXPECT_GE(f, -3.0f);
        EXPECT_LT(f, 5.0f);
    }
}

TEST(SplitMix64Test, BoundedStaysInBound)
{
    SplitMix64 rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(SplitMix64Test, UniformMeanIsCentered)
{
    SplitMix64 rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextFloat();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64Test, GaussianMeanAndVariance)
{
    SplitMix64 rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(HashCombineTest, DeterministicAndSeedSensitive)
{
    EXPECT_EQ(hashCombine(3, 5, 7), hashCombine(3, 5, 7));
    EXPECT_NE(hashCombine(3, 5, 7), hashCombine(3, 5, 8));
    EXPECT_NE(hashCombine(3, 5, 7), hashCombine(5, 3, 7));
}

TEST(HashCombineTest, AvalanchesOnNeighboringInputs)
{
    // Neighboring lattice points should produce effectively independent
    // values: check a weak bit-difference criterion.
    int total_bits = 0;
    for (std::uint32_t x = 0; x < 32; ++x) {
        std::uint32_t a = hashCombine(x, 0, 1);
        std::uint32_t b = hashCombine(x + 1, 0, 1);
        total_bits += __builtin_popcount(a ^ b);
    }
    // Expect on average ~16 differing bits; allow a broad margin.
    EXPECT_GT(total_bits, 32 * 8);
}
