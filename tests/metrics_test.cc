/**
 * @file
 * Tests for the metrics exporter (harness/metrics.hh): the JSON document
 * carries the documented schema, the registry names match
 * docs/METRICS.md, and the CSV form is one row per frame.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/metrics.hh"
#include "harness/runner.hh"

using namespace pargpu;

namespace
{

const GameTrace &
tinyTrace()
{
    static GameTrace t = buildGameTrace(GameId::Wolf, 128, 96, 2);
    return t;
}

RunConfig
tinyConfig()
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.keep_images = false;
    cfg.threads = 1;
    return cfg;
}

RunMetadata
tinyMeta()
{
    RunMetadata meta;
    meta.tool = "metrics_test";
    meta.workload = "Wolf-128x96";
    meta.width = 128;
    meta.height = 96;
    meta.frames = 2;
    return meta;
}

} // namespace

TEST(MetricsTest, ScenarioNamesAreStable)
{
    EXPECT_STREQ(scenarioMetricName(DesignScenario::Baseline), "baseline");
    EXPECT_STREQ(scenarioMetricName(DesignScenario::NoAF), "noaf");
    EXPECT_STREQ(scenarioMetricName(DesignScenario::AfSsimN), "n");
    EXPECT_STREQ(scenarioMetricName(DesignScenario::AfSsimNTxds), "ntxds");
    EXPECT_STREQ(scenarioMetricName(DesignScenario::Patu), "patu");
}

TEST(MetricsTest, JsonDocumentMatchesSchema)
{
    RunConfig cfg = tinyConfig();
    RunResult run = runTrace(tinyTrace(), cfg);
    Json doc = metricsJson(tinyMeta(), cfg, run, 0.99);

    EXPECT_EQ(doc["schema"].str(), kMetricsSchemaName);
    EXPECT_EQ(static_cast<int>(doc["schema_version"].number()),
              kMetricsSchemaVersion);

    const Json &rj = doc["run"];
    EXPECT_EQ(rj["tool"].str(), "metrics_test");
    EXPECT_EQ(rj["workload"].str(), "Wolf-128x96");
    EXPECT_EQ(rj["scenario"].str(), "patu");
    EXPECT_EQ(static_cast<int>(rj["frames"].number()), 2);

    const Json &agg = doc["aggregate"];
    EXPECT_DOUBLE_EQ(agg["avg_cycles"].number(), run.avg_cycles);
    EXPECT_DOUBLE_EQ(agg["total_energy_nj"].number(), run.total_energy_nj);
    EXPECT_DOUBLE_EQ(agg["mssim"].number(), 0.99);

    ASSERT_TRUE(doc["frames"].isArray());
    ASSERT_EQ(doc["frames"].items().size(), run.frames.size());
    const Json &f0 = doc["frames"][0];
    EXPECT_DOUBLE_EQ(f0["total_cycles"].number(),
                     static_cast<double>(run.frames[0].total_cycles));
    EXPECT_TRUE(f0.has("texels"));
    EXPECT_TRUE(f0.has("earlyz_tested"));

    const Json &reg = doc["registry"];
    ASSERT_TRUE(reg["counters"].isObject());
    EXPECT_TRUE(reg["counters"].has("texunit.texels"));
    EXPECT_TRUE(reg["counters"].has("mem.traffic.total_bytes"));
    EXPECT_TRUE(reg["scalars"].has("mem.l1.hit_rate"));
    EXPECT_TRUE(reg["scalars"].has("run.mssim"));
    ASSERT_TRUE(reg["histograms"].has("frame.cycles"));
    EXPECT_EQ(reg["histograms"]["frame.cycles"]["count"].number(), 2.0);
}

TEST(MetricsTest, MssimOmittedWhenNegative)
{
    RunConfig cfg = tinyConfig();
    RunResult run = runTrace(tinyTrace(), cfg);
    Json doc = metricsJson(tinyMeta(), cfg, run, -1.0);
    EXPECT_FALSE(doc["aggregate"].has("mssim"));
    EXPECT_FALSE(doc["registry"]["scalars"].has("run.mssim"));
}

TEST(MetricsTest, RegistryCountersMatchFrameTotals)
{
    RunConfig cfg = tinyConfig();
    RunResult run = runTrace(tinyTrace(), cfg);
    StatRegistry reg;
    buildRunRegistry(run, reg);

    std::uint64_t texels = 0, dram_reads = 0;
    for (const FrameStats &f : run.frames) {
        texels += f.texels;
        dram_reads += f.dram_reads;
    }
    EXPECT_EQ(reg.counter("texunit.texels"), texels);
    EXPECT_EQ(reg.counter("mem.dram.reads"), dram_reads);
    EXPECT_EQ(reg.histogram("frame.cycles").count, run.frames.size());
}

TEST(MetricsTest, WrittenJsonParsesBack)
{
    RunConfig cfg = tinyConfig();
    RunResult run = runTrace(tinyTrace(), cfg);
    const std::string path = "metrics_test_out.json";
    ASSERT_TRUE(writeMetricsJson(path, tinyMeta(), cfg, run));

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    std::string error;
    Json doc = Json::parse(ss.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;
    EXPECT_EQ(doc["schema"].str(), kMetricsSchemaName);
    std::remove(path.c_str());
}

TEST(MetricsTest, CsvHasHeaderAndOneRowPerFrame)
{
    RunConfig cfg = tinyConfig();
    RunResult run = runTrace(tinyTrace(), cfg);
    const std::string path = "metrics_test_out.csv";
    ASSERT_TRUE(writeMetricsCsv(path, tinyMeta(), cfg, run));

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_EQ(line.rfind("# pargpu-metrics-csv v1", 0), 0u) << line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_EQ(line.rfind("frame,total_cycles,", 0), 0u) << line;
    std::size_t rows = 0;
    while (std::getline(f, line))
        if (!line.empty())
            ++rows;
    EXPECT_EQ(rows, run.frames.size());
    std::remove(path.c_str());
}
