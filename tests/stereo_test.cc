/**
 * @file
 * Unit tests for the multi-view (stereo VR) rendering extension.
 */

#include <gtest/gtest.h>

#include "scenes/meshes.hh"
#include "sim/stereo.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

Scene
simpleScene()
{
    Scene scene;
    int tex = scene.addTexture(std::make_unique<TextureMap>(
        128, 128, generateTexture(TextureKind::Checker, 128, 3)));
    DrawCall d;
    d.mesh = makeGrid({-30, 0, 5}, {60, 0, 0}, {0, 0, -80}, 4, 4, 8.0f,
                      10.0f, tex);
    scene.draws.push_back(std::move(d));
    return scene;
}

Camera
centerCamera()
{
    Camera cam;
    cam.eye = {0, 1.7f, 0};
    cam.view = Mat4::lookAt(cam.eye, {0, 1.2f, -10}, {0, 1, 0});
    cam.proj = Mat4::perspective(1.1f, 4.0f / 3.0f, 0.3f, 200.0f);
    return cam;
}

} // namespace

TEST(StereoTest, EyesAreSymmetricallyOffset)
{
    Camera center = centerCamera();
    StereoConfig cfg;
    Camera left = stereoEye(center, 0, cfg);
    Camera right = stereoEye(center, 1, cfg);
    // View-space translation differs by exactly the IPD.
    EXPECT_NEAR(right.view.m[3][0] - left.view.m[3][0], -cfg.ipd, 1e-6f);
    // World eye positions straddle the center.
    EXPECT_NEAR(left.eye.x + right.eye.x, 2.0f * center.eye.x, 1e-5f);
}

TEST(StereoTest, ZeroIpdEqualsMono)
{
    Camera center = centerCamera();
    StereoConfig cfg;
    cfg.ipd = 0.0f;
    Camera left = stereoEye(center, 0, cfg);
    EXPECT_FLOAT_EQ(left.view.m[3][0], center.view.m[3][0]);
    EXPECT_FLOAT_EQ(left.eye.x, center.eye.x);
}

TEST(StereoTest, RendersBothEyes)
{
    GpuConfig config;
    GpuSimulator sim(config);
    Scene scene = simpleScene();
    StereoFrame frame =
        renderStereo(sim, scene, centerCamera(), 160, 120);
    EXPECT_EQ(frame.left.image.width(), 160);
    EXPECT_EQ(frame.right.image.width(), 160);
    EXPECT_GT(frame.left.stats.pixels_shaded, 0u);
    EXPECT_GT(frame.right.stats.pixels_shaded, 0u);
    EXPECT_EQ(frame.totalCycles(), frame.left.stats.total_cycles +
                                       frame.right.stats.total_cycles);
}

TEST(StereoTest, EyesSeeSlightlyDifferentImages)
{
    GpuConfig config;
    GpuSimulator sim(config);
    Scene scene = simpleScene();
    StereoConfig cfg;
    cfg.ipd = 0.6f; // Exaggerated for a visible parallax at low res.
    StereoFrame frame =
        renderStereo(sim, scene, centerCamera(), 160, 120, cfg);
    int differing = 0;
    for (int y = 0; y < 120; ++y) {
        for (int x = 0; x < 160; ++x) {
            if (std::abs(frame.left.image.at(x, y).luma() -
                         frame.right.image.at(x, y).luma()) > 0.02f)
                ++differing;
        }
    }
    EXPECT_GT(differing, 100);
}

TEST(StereoTest, StereoCostsRoughlyTwiceMono)
{
    GpuConfig config;
    GpuSimulator sim(config);
    Scene scene = simpleScene();
    Camera cam = centerCamera();
    FrameOutput mono = sim.renderFrame(scene, cam, 160, 120);
    StereoFrame stereo = renderStereo(sim, scene, cam, 160, 120);
    double ratio = static_cast<double>(stereo.totalCycles()) /
        static_cast<double>(mono.stats.total_cycles);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}
