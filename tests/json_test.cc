/**
 * @file
 * Tests for the minimal JSON value type (common/json.hh): construction,
 * deterministic dumping, and the strict parser (round-trips, escapes,
 * error reporting).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/json.hh"

using namespace pargpu;

TEST(JsonTest, ScalarConstruction)
{
    EXPECT_TRUE(Json{}.isNull());
    EXPECT_TRUE(Json{true}.isBool());
    EXPECT_TRUE(Json{1.5}.isNumber());
    EXPECT_TRUE(Json{"hi"}.isString());
    EXPECT_DOUBLE_EQ(Json{std::uint64_t{42}}.number(), 42.0);
    EXPECT_EQ(Json{"hi"}.str(), "hi");
}

TEST(JsonTest, DumpCompactObjectIsSortedByKey)
{
    Json o = Json::object();
    o.set("zeta", Json{1});
    o.set("alpha", Json{2});
    EXPECT_EQ(o.dump(), R"({"alpha":2,"zeta":1})");
}

TEST(JsonTest, IntegersDumpWithoutFraction)
{
    EXPECT_EQ(Json{std::uint64_t{9007199254740992ull}}.dump(),
              "9007199254740992");
    EXPECT_EQ(Json{123456789}.dump(), "123456789");
    EXPECT_EQ(Json{0.5}.dump(), "0.5");
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull)
{
    EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
    EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(),
              "null");
}

TEST(JsonTest, StringEscapesRoundTrip)
{
    Json s{"line\n\"quote\"\tand\\slash"};
    std::string error;
    Json back = Json::parse(s.dump(), &error);
    ASSERT_TRUE(back.isString()) << error;
    EXPECT_EQ(back.str(), s.str());
}

TEST(JsonTest, ParseDocumentAndChainLookups)
{
    std::string error;
    Json doc = Json::parse(
        R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}})", &error);
    ASSERT_TRUE(doc.isObject()) << error;
    EXPECT_DOUBLE_EQ(doc["a"][0].number(), 1.0);
    EXPECT_DOUBLE_EQ(doc["a"][1].number(), 2.5);
    EXPECT_EQ(doc["a"][2].str(), "x");
    EXPECT_TRUE(doc["b"]["c"].boolean());
    EXPECT_TRUE(doc["b"]["d"].isNull());
    // Absent keys and out-of-range indices chain to null, not UB.
    EXPECT_TRUE(doc["missing"]["deep"][9].isNull());
}

TEST(JsonTest, ParseUnicodeEscape)
{
    std::string error;
    Json v = Json::parse("\"a\\u0041b\"", &error);
    ASSERT_TRUE(v.isString()) << error;
    EXPECT_EQ(v.str(), "aAb");
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_TRUE(Json::parse("{", &error).isNull());
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(Json::parse("[1,]", &error).isNull());
    EXPECT_TRUE(Json::parse("tru", &error).isNull());
    EXPECT_TRUE(Json::parse("", &error).isNull());
    // Trailing garbage after a valid document is an error.
    EXPECT_TRUE(Json::parse("{} x", &error).isNull());
}

TEST(JsonTest, DumpParseRoundTripNested)
{
    Json root = Json::object();
    Json arr = Json::array();
    for (int i = 0; i < 3; ++i) {
        Json e = Json::object();
        e.set("i", Json{i});
        e.set("sq", Json{i * i});
        arr.push(std::move(e));
    }
    root.set("rows", std::move(arr));
    root.set("ok", Json{true});

    for (int indent : {-1, 0, 2}) {
        std::string error;
        Json back = Json::parse(root.dump(indent), &error);
        ASSERT_TRUE(back.isObject()) << error;
        EXPECT_EQ(back.dump(), root.dump());
    }
}
