/**
 * @file
 * Unit tests for the Section V-D PATU overhead model.
 */

#include <gtest/gtest.h>

#include "core/overhead.hh"

using namespace pargpu;

TEST(OverheadTest, EntryBitsMatchPaper)
{
    OverheadReport r = computeOverhead();
    // (8 x 32) + 4 = 260 bits per entry.
    EXPECT_EQ(r.bits_per_entry, 260);
}

TEST(OverheadTest, TableIsAboutTwoKBPerTextureUnit)
{
    OverheadReport r = computeOverhead();
    // 4 pipelines x 16 entries x 260 bits = 16640 bits = 2080 bytes.
    EXPECT_NEAR(r.table_bytes_per_tu, 2080.0, 1.0);
    EXPECT_GT(r.table_bytes_per_tu, 1.8 * 1024);
    EXPECT_LT(r.table_bytes_per_tu, 2.2 * 1024);
}

TEST(OverheadTest, AreaPerClusterMatchesPaperBallpark)
{
    OverheadReport r = computeOverhead();
    // Paper: ~0.15 mm^2 per unified shader cluster.
    EXPECT_GT(r.area_mm2_per_cluster, 0.10);
    EXPECT_LT(r.area_mm2_per_cluster, 0.20);
}

TEST(OverheadTest, AreaFractionIsFractionOfAPercent)
{
    OverheadReport r = computeOverhead();
    // Paper: ~0.2 % of a 66 mm^2 GPU.
    EXPECT_GT(r.area_fraction, 0.001);
    EXPECT_LT(r.area_fraction, 0.004);
}

TEST(OverheadTest, AccessLatencyWithinOneCycle)
{
    EXPECT_LE(computeOverhead().table_access_cycles, 1);
}

TEST(OverheadTest, ScalesWithConfiguration)
{
    OverheadConfig big;
    big.table_entries = 32;
    OverheadReport r32 = computeOverhead(big);
    OverheadReport r16 = computeOverhead();
    EXPECT_NEAR(r32.table_bytes_per_tu, 2 * r16.table_bytes_per_tu, 1.0);
    EXPECT_GT(r32.total_area_mm2, r16.total_area_mm2);
}
