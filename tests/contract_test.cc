/**
 * @file
 * Contract-subsystem behavior: macros fire on violation in checked
 * builds (this TU forces checks on, so the build type doesn't matter),
 * are zero-evaluation no-ops in unchecked builds (helper TU with checks
 * forced off), and every evaluation is counted in ContractStats.
 */

#define PARGPU_FORCE_CHECKED 1
#include "common/contract.hh"

#include <gtest/gtest.h>

using pargpu::contract::ContractStats;
using pargpu::contract::ContractViolation;
using pargpu::contract::ScopedFailHandler;

namespace pargpu_contract_test
{
int uncheckedEvaluations();
bool uncheckedViolationSurvives();
} // namespace pargpu_contract_test

namespace
{

TEST(ContractTest, PassingContractsDoNotFire)
{
    ScopedFailHandler guard;
    int n = 3;
    EXPECT_NO_THROW({
        PARGPU_ASSERT(n == 3, "n=", n);
        PARGPU_INVARIANT(n > 0, "n=", n);
        PARGPU_CHECK_RANGE(n, 0, 16, "n in table bounds");
    });
}

TEST(ContractTest, AssertFiresOnViolation)
{
    ScopedFailHandler guard;
    int lod = -2;
    EXPECT_THROW(PARGPU_ASSERT(lod >= 0, "lod=", lod), ContractViolation);
}

TEST(ContractTest, InvariantFiresOnViolation)
{
    ScopedFailHandler guard;
    EXPECT_THROW(PARGPU_INVARIANT(false, "broken state"),
                 ContractViolation);
}

TEST(ContractTest, CheckRangeBoundsAreInclusive)
{
    ScopedFailHandler guard;
    EXPECT_NO_THROW(PARGPU_CHECK_RANGE(0, 0, 16));
    EXPECT_NO_THROW(PARGPU_CHECK_RANGE(16, 0, 16));
    EXPECT_THROW(PARGPU_CHECK_RANGE(-1, 0, 16), ContractViolation);
    EXPECT_THROW(PARGPU_CHECK_RANGE(17, 0, 16), ContractViolation);
    EXPECT_NO_THROW(PARGPU_CHECK_RANGE(0.5f, 0.0f, 1.0f));
    EXPECT_THROW(PARGPU_CHECK_RANGE(1.5f, 0.0f, 1.0f), ContractViolation);
}

TEST(ContractTest, MessageCarriesSiteAndStreamedValues)
{
    ScopedFailHandler guard;
    int aniso = 37;
    try {
        PARGPU_ASSERT(aniso <= 16, "anisotropy N=", aniso, " exceeds max");
        FAIL() << "contract did not fire";
    } catch (const ContractViolation &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("contract_test.cc"), std::string::npos) << what;
        EXPECT_NE(what.find("aniso <= 16"), std::string::npos) << what;
        EXPECT_NE(what.find("anisotropy N=37 exceeds max"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("assert"), std::string::npos) << what;
    }
}

TEST(ContractTest, RangeMessageCarriesValueAndBounds)
{
    ScopedFailHandler guard;
    try {
        PARGPU_CHECK_RANGE(42, 0, 16, "table occupancy");
        FAIL() << "contract did not fire";
    } catch (const ContractViolation &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("value=42"), std::string::npos) << what;
        EXPECT_NE(what.find("range=[0, 16]"), std::string::npos) << what;
        EXPECT_NE(what.find("table occupancy"), std::string::npos) << what;
    }
}

TEST(ContractTest, StatsCountEveryEvaluation)
{
    ContractStats before = pargpu::contract::stats();
    const int kLoops = 100;
    for (int i = 0; i < kLoops; ++i) {
        PARGPU_ASSERT(i >= 0, "i=", i);
    }
    ContractStats after = pargpu::contract::stats();
    EXPECT_EQ(after.checks, before.checks + kLoops);
    // The loop's site registered exactly once and counted every pass.
    EXPECT_EQ(after.sites, before.sites + 1);
    bool found = false;
    for (const ContractStats::Row &row : after.rows) {
        if (row.expr == std::string("i >= 0")) {
            found = true;
            EXPECT_EQ(row.checks, static_cast<std::uint64_t>(kLoops));
            EXPECT_NE(row.file.find("contract_test.cc"), std::string::npos);
        }
    }
    EXPECT_TRUE(found);
}

TEST(ContractTest, StatsCountViolations)
{
    ScopedFailHandler guard;
    ContractStats before = pargpu::contract::stats();
    for (int i = 0; i < 3; ++i) {
        EXPECT_THROW(PARGPU_INVARIANT(false, "counted"), ContractViolation);
    }
    ContractStats after = pargpu::contract::stats();
    EXPECT_EQ(after.violations, before.violations + 3);
}

TEST(ContractTest, StatsReportMentionsTotals)
{
    PARGPU_ASSERT(true, "make sure at least one site exists");
    std::ostringstream os;
    pargpu::contract::statsReport(os);
    std::string report = os.str();
    EXPECT_NE(report.find("contract stats:"), std::string::npos) << report;
    EXPECT_NE(report.find("sites"), std::string::npos) << report;
    EXPECT_NE(report.find("checks"), std::string::npos) << report;
}

TEST(ContractTest, UncheckedBuildEvaluatesNothing)
{
    ContractStats before = pargpu::contract::stats();
    // The helper TU's side-effecting operands must never run...
    EXPECT_EQ(pargpu_contract_test::uncheckedEvaluations(), 0);
    // ...violated contracts must be dead code...
    EXPECT_TRUE(pargpu_contract_test::uncheckedViolationSurvives());
    // ...and no Site may have registered or counted from that TU.
    ContractStats after = pargpu::contract::stats();
    EXPECT_EQ(after.sites, before.sites);
    EXPECT_EQ(after.checks, before.checks);
    EXPECT_EQ(after.violations, before.violations);
}

#if !defined(__SANITIZE_THREAD__)
TEST(ContractDeathTest, DefaultHandlerAborts)
{
    // Without a test handler a violation must terminate the process.
    EXPECT_DEATH(PARGPU_INVARIANT(false, "fatal by default"),
                 "contract violation");
}
#endif

} // namespace
