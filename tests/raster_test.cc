/**
 * @file
 * Unit tests for triangle setup, clipping and quad rasterization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/raster.hh"

using namespace pargpu;

namespace
{

// A camera looking down -z from the origin.
Mat4
simpleMvp(int, int)
{
    Mat4 proj = Mat4::perspective(1.0f, 1.0f, 0.5f, 100.0f);
    Mat4 view = Mat4::lookAt({0, 0, 0}, {0, 0, -1}, {0, 1, 0});
    return proj * view;
}

// Gather all quads of a triangle over its whole bbox.
std::vector<QuadFragment>
allQuads(const SetupTriangle &t)
{
    std::vector<QuadFragment> out;
    rasterizeTriangle(t, t.min_x, t.min_y, t.max_x, t.max_y,
                      [&](const QuadFragment &q) { out.push_back(q); });
    return out;
}

int
coveredPixels(const std::vector<QuadFragment> &quads)
{
    int n = 0;
    for (const QuadFragment &q : quads)
        n += __builtin_popcount(q.coverage);
    return n;
}

} // namespace

TEST(SetupTest, FrontFacingTriangleSurvives)
{
    // CCW when viewed from +z (camera side).
    Vertex tri[3] = {
        {{-1, -1, -5}, {0, 0}},
        {{1, -1, -5}, {1, 0}},
        {{0, 1, -5}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    int n = setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                           FilterMode::Trilinear, true, 64, 64, out);
    EXPECT_EQ(n, 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0].inv_area, 0.0f);
}

TEST(SetupTest, BackFacingTriangleCulled)
{
    // CW order: culled when backface_cull is on.
    Vertex tri[3] = {
        {{-1, -1, -5}, {0, 0}},
        {{0, 1, -5}, {0.5f, 1}},
        {{1, -1, -5}, {1, 0}},
    };
    std::vector<SetupTriangle> out;
    int n = setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                           FilterMode::Trilinear, true, 64, 64, out);
    EXPECT_EQ(n, 0);
    // With culling disabled, it survives (re-wound internally).
    n = setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                       FilterMode::Trilinear, false, 64, 64, out);
    EXPECT_EQ(n, 1);
}

TEST(SetupTest, TriangleBehindCameraRejected)
{
    Vertex tri[3] = {
        {{-1, -1, 5}, {0, 0}},
        {{1, -1, 5}, {1, 0}},
        {{0, 1, 5}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    int n = setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                           FilterMode::Trilinear, true, 64, 64, out);
    EXPECT_EQ(n, 0);
}

TEST(SetupTest, NearPlaneClipSplitsTriangle)
{
    // One vertex behind the camera: clipping yields a quad (2 triangles).
    Vertex tri[3] = {
        {{-2, -1, -5}, {0, 0}},
        {{2, -1, -5}, {1, 0}},
        {{0, 1, 3}, {0.5f, 1}}, // Behind the near plane.
    };
    std::vector<SetupTriangle> out;
    int n = setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                           FilterMode::Trilinear, false, 64, 64, out);
    EXPECT_EQ(n, 2);
}

TEST(SetupTest, BboxClampedToViewport)
{
    Vertex tri[3] = {
        {{-50, -50, -5}, {0, 0}},
        {{50, -50, -5}, {1, 0}},
        {{0, 50, -5}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, true, 64, 64, out),
              1);
    EXPECT_GE(out[0].min_x, 0);
    EXPECT_GE(out[0].min_y, 0);
    EXPECT_LE(out[0].max_x, 63);
    EXPECT_LE(out[0].max_y, 63);
}

TEST(RasterTest, FullScreenQuadCoversEveryPixel)
{
    // Two triangles spanning the viewport must cover all 32x32 pixels
    // exactly once... here we rasterize one triangle covering the lower-
    // left half and check coverage is roughly half the pixels.
    Vertex tri[3] = {
        {{-10, -10, -5}, {0, 0}},
        {{10, -10, -5}, {1, 0}},
        {{-10, 10, -5}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(32, 32), 1.0f, 0,
                             FilterMode::Trilinear, true, 32, 32, out),
              1);
    int covered = coveredPixels(allQuads(out[0]));
    // Half of 32x32 = 512; allow the diagonal's rounding.
    EXPECT_NEAR(covered, 512, 40);
}

TEST(RasterTest, QuadsAreAlignedAndInWindow)
{
    Vertex tri[3] = {
        {{-1, -1, -3}, {0, 0}},
        {{1, -1, -3}, {1, 0}},
        {{0, 1, -3}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, true, 64, 64, out),
              1);
    for (const QuadFragment &q : allQuads(out[0])) {
        EXPECT_EQ(q.x % 2, 0);
        EXPECT_EQ(q.y % 2, 0);
        EXPECT_NE(q.coverage, 0u);
    }
}

TEST(RasterTest, WindowRestrictsCoverage)
{
    Vertex tri[3] = {
        {{-10, -10, -5}, {0, 0}},
        {{10, -10, -5}, {1, 0}},
        {{0, 10, -5}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, true, 64, 64, out),
              1);
    // Rasterize only a 16x16 tile: no covered pixel may fall outside it.
    rasterizeTriangle(out[0], 16, 16, 31, 31,
        [](const QuadFragment &q) {
            for (int i = 0; i < 4; ++i) {
                if (q.coverage & (1u << i)) {
                    int px = q.x + (i & 1);
                    int py = q.y + (i >> 1);
                    EXPECT_GE(px, 16);
                    EXPECT_LE(px, 31);
                    EXPECT_GE(py, 16);
                    EXPECT_LE(py, 31);
                }
            }
        });
}

TEST(RasterTest, UvInterpolationIsPerspectiveCorrect)
{
    // A deep quad: at the screen midpoint between near and far edges the
    // perspective-correct u differs from the affine midpoint. Compare the
    // rasterized u at a known pixel against the analytic value.
    Vertex tri[3] = {
        {{-1, -1, -2}, {0, 0}},
        {{1, -1, -2}, {1, 0}},
        {{-1, -1, -20}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, false, 64, 64, out),
              1);
    // All uv values must stay within the triangle's attribute range for
    // covered pixels (a property affine interpolation of u/w, 1/w
    // guarantees only with perspective division).
    for (const QuadFragment &q : allQuads(out[0])) {
        for (int i = 0; i < 4; ++i) {
            if (!(q.coverage & (1u << i)))
                continue;
            EXPECT_GE(q.uv[i].x, -0.01f);
            EXPECT_LE(q.uv[i].x, 1.01f);
            EXPECT_GE(q.uv[i].y, -0.01f);
            EXPECT_LE(q.uv[i].y, 1.01f);
        }
    }
}

TEST(RasterTest, DerivativesReflectFootprintAnisotropy)
{
    // A ground plane receding to the horizon: dv/dy (depth direction)
    // must grow much larger than du/dx near the top of the triangle.
    Vertex tri[3] = {
        {{-5, -1, -2}, {0, 0}},
        {{5, -1, -2}, {1, 0}},
        {{-5, -1, -60}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, false, 64, 64, out),
              1);
    bool found_aniso = false;
    for (const QuadFragment &q : allQuads(out[0])) {
        float dx = q.duvdx.length();
        float dy = q.duvdy.length();
        if (dy > 4.0f * dx && dx > 0.0f)
            found_aniso = true;
    }
    EXPECT_TRUE(found_aniso);
}

TEST(RasterTest, DepthInterpolatedWithinUnitRange)
{
    Vertex tri[3] = {
        {{-1, -1, -2}, {0, 0}},
        {{1, -1, -2}, {1, 0}},
        {{0, 1, -50}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setupTriangles(tri, simpleMvp(64, 64), 1.0f, 0,
                             FilterMode::Trilinear, true, 64, 64, out),
              1);
    for (const QuadFragment &q : allQuads(out[0])) {
        for (int i = 0; i < 4; ++i) {
            if (!(q.coverage & (1u << i)))
                continue;
            EXPECT_GE(q.depth[i], -0.01f);
            EXPECT_LE(q.depth[i], 1.01f);
        }
    }
}

TEST(EdgeFunctionTest, SignIndicatesSide)
{
    // Points left of the upward edge (0,0)->(0,10) have negative area in
    // this convention; right side positive.
    EXPECT_LT(edgeFunction(0, 0, 0, 10, -1, 5), 0.0f);
    EXPECT_GT(edgeFunction(0, 0, 0, 10, 1, 5), 0.0f);
    EXPECT_FLOAT_EQ(edgeFunction(0, 0, 0, 10, 0, 3), 0.0f);
}
